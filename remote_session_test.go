package tooleval_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"tooleval"
	"tooleval/internal/bench"
	"tooleval/internal/remote"
	"tooleval/internal/runner"
)

// startBenchWorker spins up a real worker daemon surface — the same
// handler cmd/toolbench-worker serves — computing genuine simulation
// cells through bench.ComputeCell.
func startBenchWorker(t *testing.T, opts ...remote.WorkerOption) *httptest.Server {
	t.Helper()
	w := remote.NewWorker(runner.New(4), bench.ComputeCell, opts...)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteSessionMatchesLocal is the session-level location
// transparency check: the same figure swept locally and through
// WithRemoteExecutor over live workers produces identical numbers, and
// the per-node counters account for every computed cell.
func TestRemoteSessionMatchesLocal(t *testing.T) {
	ctx := context.Background()
	local := tooleval.NewSession(tooleval.WithParallelism(2))
	defer local.Close()
	want, err := local.Fig2(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startBenchWorker(t), startBenchWorker(t)
	rem := tooleval.NewSession(
		tooleval.WithParallelism(4),
		tooleval.WithRemoteExecutor(w1.URL, w2.URL),
	)
	defer rem.Close()
	got, err := rem.Fig2(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("remote Fig2 differs from local:\nlocal:  %+v\nremote: %+v", want, got)
	}

	stats := rem.NodeStats()
	if len(stats) != 2 {
		t.Fatalf("NodeStats() = %d nodes, want 2", len(stats))
	}
	var completed int64
	for _, ns := range stats {
		if ns.State != "ok" {
			t.Fatalf("node %s state %q, want ok", ns.Node, ns.State)
		}
		completed += ns.Completed
	}
	_, misses := rem.Stats()
	if completed != misses {
		t.Fatalf("nodes completed %d RPCs, cache recorded %d misses — every miss should be exactly one RPC", completed, misses)
	}
	if local.NodeStats() != nil {
		t.Fatal("local session reports NodeStats, want nil")
	}
}

// TestRemoteSessionVersionMismatch: a session sweeping against a
// version-skewed worker fails with the typed refusal.
func TestRemoteSessionVersionMismatch(t *testing.T) {
	skewed := startBenchWorker(t, remote.WithWorkerEngine(999))
	sess := tooleval.NewSession(tooleval.WithRemoteExecutor(skewed.URL))
	defer sess.Close()
	_, err := sess.Fig2(context.Background(), 16)
	var ve *tooleval.RemoteVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Fig2 against skewed worker = %v, want *RemoteVersionError", err)
	}
	if ve.WorkerEngine != 999 {
		t.Fatalf("VersionError = %+v", ve)
	}
}

// The remote backend refuses option combinations it cannot honor.
func TestWithRemoteExecutorConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []tooleval.Option
	}{
		{"with executor", []tooleval.Option{
			tooleval.WithExecutor(runner.New(2)),
			tooleval.WithRemoteExecutor("localhost:1"),
		}},
		{"with sharded", []tooleval.Option{
			tooleval.WithShardedExecutor(4),
			tooleval.WithRemoteExecutor("localhost:1"),
		}},
		{"with custom tool", []tooleval.Option{
			tooleval.WithTool("mine", nil),
			tooleval.WithRemoteExecutor("localhost:1"),
		}},
		{"blank node", []tooleval.Option{
			tooleval.WithRemoteExecutor(""),
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSession(%s) did not panic", tt.name)
				}
			}()
			tooleval.NewSession(tt.opts...)
		})
	}
}
