GO ?= go

.PHONY: build test vet bench-smoke bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench-smoke compiles and runs every benchmark for exactly one
# iteration — the CI guard against benchmark bit-rot.
bench-smoke:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...

# bench-baseline records the current figure + engine benchmark numbers
# into BENCH_PR3.json under the "pr3" label (see scripts/record_bench.sh).
bench-baseline:
	./scripts/record_bench.sh pr3
