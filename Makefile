GO ?= go

.PHONY: build test vet examples bench-smoke bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# examples builds and smoke-runs every examples/ program — the local
# mirror of CI's examples job.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do echo "==> $$d"; $(GO) run "./$$d" > /dev/null; done

# bench-smoke compiles and runs every benchmark for exactly one
# iteration — the CI guard against benchmark bit-rot.
bench-smoke:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...

# bench-baseline records the current figure + engine benchmark numbers
# into BENCH_PR3.json under the "pr3" label (see scripts/record_bench.sh).
bench-baseline:
	./scripts/record_bench.sh pr3
