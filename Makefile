GO ?= go

# Staticcheck is pinned so CI results cannot drift as new checks land
# upstream; bump deliberately, together with any burn-down the new
# version requires.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test vet toolvet lint examples toolbenchd-smoke remote-smoke chaos bench-smoke bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# toolvet is the repo's own analyzer suite (internal/lint): the
# determinism and error-contract invariants — no wall-clock in
# simulation paths, no map iteration feeding output, errors.As/Is over
# bare assertions, bounded goroutine fan-out — machine-checked. Runs
# from the module, so analyzer and code versions move together.
toolvet:
	$(GO) run ./cmd/toolvet ./...

# lint is the full static gate: vet + toolvet + staticcheck (the last
# only when installed — the pinned version is what CI enforces).
lint: vet toolvet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# examples builds and smoke-runs every examples/ program — the local
# mirror of CI's examples job.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do echo "==> $$d"; $(GO) run "./$$d" > /dev/null; done

# toolbenchd-smoke is the local mirror of CI's toolbenchd job: build
# the daemon, run the server suite under the race detector, and stream
# the short-mode concurrent-tenant load test.
toolbenchd-smoke:
	$(GO) build -o /tmp/toolbenchd ./cmd/toolbenchd
	$(GO) test -race ./internal/server
	$(GO) test -race -short -run TestLoadManyConcurrentTenants -v ./internal/server

# remote-smoke is the local mirror of CI's remote-smoke job: build the
# coordinator and worker binaries, distribute a full sweep across two
# spawned worker daemons and diff it against a serial run
# (scripts/remote_smoke.sh), then run the remote-executor suite under
# the race detector.
remote-smoke:
	./scripts/remote_smoke.sh
	$(GO) test -race ./internal/remote

# chaos is the local mirror of CI's chaos job: the seeded
# fault-injection suite under the race detector, once with the pinned
# -short seed and once with a fresh logged seed (reproduce a failure
# with TOOLEVAL_CHAOS_SEED=<seed> make chaos).
chaos:
	$(GO) test -race -short -run TestChaos ./...
	$(GO) test -race -run TestChaos ./...

# bench-smoke compiles and runs every benchmark for exactly one
# iteration — the CI guard against benchmark bit-rot — plus one
# multi-threaded pass of the scheduler-contention benchmarks (their
# serial/pooled/sharded comparison is meaningless single-threaded).
bench-smoke:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...
	$(GO) test -run=NoSuchTest -bench='MemoContention|ShardedSweep' -benchtime=1x -cpu 4 ./internal/runner

# bench-baseline records the current figure + store + remote + engine
# + scheduler benchmark numbers into BENCH_PR9.json under the "pr9"
# label, carrying the seed/pr3/pr5/pr6 history forward (see
# scripts/record_bench.sh).
bench-baseline:
	./scripts/record_bench.sh pr9
