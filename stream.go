package tooleval

import (
	"context"
	"fmt"
	"iter"
	"sync"
)

// Stream runs a heterogeneous batch of experiments and yields one
// (Result, error) pair per spec, in spec order, each delivered as soon
// as its spec completes — the consumer sees result i while specs j > i
// are still simulating, instead of waiting for the whole batch the way
// [Session.Submit] callers do. Every spec starts immediately and all
// of them share the session's worker pool and memoization cache, so
// the sweep's total schedule is the same as Submit's; only delivery is
// incremental. Virtual time keeps each result bit-identical to running
// its spec alone.
//
// Error handling is per spec: a failed or invalid spec yields its
// error (with its position in the batch) and the stream continues with
// the next spec. A cancelled ctx makes remaining specs yield ctx.Err().
// Breaking out of the loop cancels the specs still in flight and waits
// for the cells already simulating to finish — consumers can stop at
// the first error and get Submit's early-exit behavior, or drain
// everything and get [Session.SubmitAll]'s; either way, when the loop
// exits no batch work is still running.
//
// Each yielded Result echoes its spec; on error the payload fields are
// zero. The iterator is single-use: range over the return value once.
func (s *Session) Stream(ctx context.Context, specs []ExperimentSpec) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		// Cancelling on early break is what lets a consumer abandon the
		// batch: specs not yet past the scheduler gate abort with
		// ctx.Err() instead of simulating. The iterator does not return
		// until every producer goroutine has exited — cells already in
		// flight complete (and are charged/cached/reported) first, so
		// after Stream returns the session is quiescent: no event sink
		// fires late and Stats is stable.
		ictx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		defer func() {
			cancel()
			wg.Wait()
		}()

		type outcome struct {
			res Result
			err error
		}
		// One buffered slot per spec: producers never block on the
		// consumer, so an early break strands no goroutines.
		slots := make([]chan outcome, len(specs))
		for i := range slots {
			slots[i] = make(chan outcome, 1)
		}
		wg.Add(len(specs))
		for i, spec := range specs {
			//toolvet:ignore boundedgo one producer per submitted spec is the streaming contract; each parks on its own buffered slot and cell-level concurrency is bounded by the scheduler's admission gate
			go func(i int, spec ExperimentSpec) {
				defer wg.Done()
				// Every submitted spec gets exactly one SpecStart/SpecDone
				// pair, whatever its fate — invalid and cancelled specs
				// included — so event sinks counting lifecycle pairs
				// against the batch never miscount.
				s.emit(ictx, SpecStart{Index: i, Spec: spec})
				finish := func(res Result, err error) {
					s.emit(ictx, SpecDone{Index: i, Spec: spec, Err: err})
					slots[i] <- outcome{res, err}
				}
				if err := spec.validate(); err != nil {
					finish(Result{Spec: spec}, fmt.Errorf("tooleval: spec %d: %w", i, err))
					return
				}
				if err := ictx.Err(); err != nil {
					finish(Result{Spec: spec}, err)
					return
				}
				res, err := s.runSpec(ictx, spec)
				finish(res, err)
			}(i, spec)
		}
		for i := range specs {
			o := <-slots[i]
			if !yield(o.res, o.err) {
				return
			}
		}
	}
}

// SubmitAll runs every spec of the batch to completion and reports
// per-spec outcomes: results[i] and errs[i] describe specs[i], and
// errs[i] is non-nil exactly when that spec failed (including
// validation failures). Unlike [Session.Submit], one bad spec does not
// abort the rest of the sweep — the paper's heterogeneous matrix often
// contains cells that cannot run (a tool without a port, an exhausted
// budget), and SubmitAll returns everything else anyway.
//
// It is Stream drained to the end; both slices always have len(specs).
func (s *Session) SubmitAll(ctx context.Context, specs []ExperimentSpec) (results []Result, errs []error) {
	results = make([]Result, 0, len(specs))
	errs = make([]error, 0, len(specs))
	for res, err := range s.Stream(ctx, specs) {
		results = append(results, res)
		errs = append(errs, err)
	}
	return results, errs
}
