package tooleval_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tooleval"
	"tooleval/internal/runner"
)

// TestWithResultStoreIncrementalAcrossSessions is the restart story:
// a second session over the same store directory replays every cell
// from disk — zero misses, identical numbers.
func TestWithResultStoreIncrementalAcrossSessions(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sizes := []int{64, 1 << 10, 16 << 10}

	sess1 := tooleval.NewSession(tooleval.WithResultStore(dir))
	cold, err := sess1.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := sess1.Stats(); misses == 0 {
		t.Fatal("cold run reported zero misses; nothing was simulated?")
	}
	if st := sess1.ResultStore(); st == nil || st.Len() == 0 {
		t.Fatal("cold run wrote nothing to the result store")
	}
	if err := sess1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cells.seg")); err != nil {
		t.Fatalf("segment file missing after Close: %v", err)
	}

	sess2 := tooleval.NewSession(tooleval.WithResultStore(dir))
	defer sess2.Close()
	warm, err := sess2.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := sess2.Stats()
	if misses != 0 {
		t.Fatalf("warm run simulated %d cells, want 0 (all replayed from the store)", misses)
	}
	if hits == 0 {
		t.Fatal("warm run reported zero hits")
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("size %d: warm %v != cold %v; replayed cells must be identical", sizes[i], warm[i], cold[i])
		}
	}
}

// TestSessionCloseWithoutStore: Close on a storeless session is a nil
// no-op, so callers can defer it unconditionally.
func TestSessionCloseWithoutStore(t *testing.T) {
	sess := tooleval.NewSession()
	if sess.ResultStore() != nil {
		t.Fatal("storeless session reports a result store")
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWithResultStoreConflictsPanic: the option combinations that would
// silently mis-wire the durable tier must fail loudly at construction.
func TestWithResultStoreConflictsPanic(t *testing.T) {
	mustPanicStore := func(name, wantSub string, build func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: NewSession accepted a conflicting configuration", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSub) {
				t.Fatalf("%s: panic %v does not explain the conflict (want %q)", name, r, wantSub)
			}
		}()
		build()
	}
	dir := t.TempDir()
	mustPanicStore("WithResultStore+WithExecutor", "WithResultStore", func() {
		tooleval.NewSession(tooleval.WithExecutor(runner.New(1)), tooleval.WithResultStore(dir))
	})
	// A shared cache that already carries a tier must not be silently
	// pointed at a second store by another session.
	cache := tooleval.NewCache()
	sess := tooleval.NewSession(tooleval.WithCache(cache), tooleval.WithResultStore(t.TempDir()))
	defer sess.Close()
	mustPanicStore("second store on a shared cache", "already has a result store", func() {
		tooleval.NewSession(tooleval.WithCache(cache), tooleval.WithResultStore(t.TempDir()))
	})
}

// TestOpenResultStoreWithCustomExecutor is the escape hatch the
// WithExecutor panic points at: open the store yourself and attach it
// to the executor's cache.
func TestOpenResultStoreWithCustomExecutor(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sizes := []int{128, 2 << 10}

	st, err := tooleval.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	x := runner.New(2)
	x.Cache().SetTier(st)
	sess := tooleval.NewSession(tooleval.WithExecutor(x))
	cold, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A store-owning session over the same directory replays the cells
	// the custom executor persisted.
	sess2 := tooleval.NewSession(tooleval.WithResultStore(dir))
	defer sess2.Close()
	warm, err := sess2.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := sess2.Stats(); misses != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", misses)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Fatalf("size %d: warm %v != cold %v", sizes[i], warm[i], cold[i])
		}
	}
}
