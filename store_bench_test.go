// Benchmarks for the durable result store: what a sweep costs when it
// must populate the store (cold) versus when every cell replays from
// disk (warm). The pair bounds the write-through overhead and the
// restart win that `toolbench all -store` buys.
package tooleval_test

import (
	"os"
	"testing"

	"tooleval"
)

// benchStoreSweep runs the Table 3 sweep (the paper's send/receive
// matrix — a few hundred cells) through a store-backed session.
func benchStoreSweep(b *testing.B, dir string) {
	b.Helper()
	sess := tooleval.NewSession(tooleval.WithResultStore(dir))
	if _, err := sess.Table3(benchCtx); err != nil {
		b.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreColdSweep measures a first run against an empty store:
// every cell simulates and is persisted. Compare with BenchmarkTable3
// (no store) to see the write-through overhead.
func BenchmarkStoreColdSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "cold")
		if err != nil {
			b.Fatal(err)
		}
		benchStoreSweep(b, dir)
	}
}

// BenchmarkStoreWarmSweep measures a restart against a populated store:
// opening the segment, replaying its index, and serving the whole sweep
// without simulating a single cell.
func BenchmarkStoreWarmSweep(b *testing.B) {
	dir := b.TempDir()
	benchStoreSweep(b, dir) // populate once, outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStoreSweep(b, dir)
	}
}
