package tooleval_test

// Tests for the session seams the toolbenchd server builds on: the
// per-batch EventContext sink, idempotent concurrent-safe Close, and
// the Err accessor surfacing a degraded durable store mid-run.

import (
	"context"
	"sync"
	"testing"

	"tooleval"
)

// sinkRecorder collects events concurrently (sinks fire from worker
// goroutines).
type sinkRecorder struct {
	mu     sync.Mutex
	events []tooleval.Event
}

func (r *sinkRecorder) sink(ev tooleval.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func (r *sinkRecorder) snapshot() []tooleval.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]tooleval.Event(nil), r.events...)
}

// TestEventContextScopesBatches runs two concurrent batches on one
// session, each with its own EventContext sink, and asserts every
// event lands only at its own batch's sink — the property that lets a
// server multiplex per-client SSE streams over one tenant session.
func TestEventContextScopesBatches(t *testing.T) {
	t.Parallel()
	static := &sinkRecorder{}
	sess := tooleval.NewSession(tooleval.WithEvents(static.sink))

	batchA := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{64, 256}},
		{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "p4", Procs: 4, Sizes: []int{64}},
	}
	batchB := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{64, 256, 1024}},
	}

	var sinkA, sinkB sinkRecorder
	var wg sync.WaitGroup
	run := func(specs []tooleval.ExperimentSpec, rec *sinkRecorder) {
		defer wg.Done()
		ctx := tooleval.EventContext(context.Background(), rec.sink)
		if _, errs := sess.SubmitAll(ctx, specs); errs != nil {
			for i, err := range errs {
				if err != nil {
					t.Errorf("spec %d: %v", i, err)
				}
			}
		}
	}
	wg.Add(2)
	go run(batchA, &sinkA)
	go run(batchB, &sinkB)
	wg.Wait()

	check := func(name string, rec *sinkRecorder, tool string, wantSpecs int) {
		t.Helper()
		starts, dones, cells := 0, 0, 0
		for _, ev := range rec.snapshot() {
			switch e := ev.(type) {
			case tooleval.SpecStart:
				starts++
				if e.Spec.Tool != tool {
					t.Errorf("%s: leaked SpecStart for tool %q (want only %q)", name, e.Spec.Tool, tool)
				}
			case tooleval.SpecDone:
				dones++
			case tooleval.CellEvent:
				cells++
				if e.Cell.Tool != tool {
					t.Errorf("%s: leaked cell %v (want only tool %q)", name, e.Cell, tool)
				}
			}
		}
		if starts != wantSpecs || dones != wantSpecs {
			t.Errorf("%s: %d SpecStart / %d SpecDone, want %d pairs", name, starts, dones, wantSpecs)
		}
		if cells == 0 {
			t.Errorf("%s: no cell events reached the batch sink", name)
		}
	}
	check("batch A", &sinkA, "p4", len(batchA))
	check("batch B", &sinkB, "pvm", len(batchB))

	// The static WithEvents sink still sees everything from both batches.
	starts := 0
	for _, ev := range static.snapshot() {
		if _, ok := ev.(tooleval.SpecStart); ok {
			starts++
		}
	}
	if want := len(batchA) + len(batchB); starts != want {
		t.Errorf("static sink saw %d SpecStarts, want %d", starts, want)
	}
}

// TestEventContextPhases asserts phase events reach a per-batch sink
// (the server streams phase_start/phase_done for evaluate jobs).
func TestEventContextPhases(t *testing.T) {
	t.Parallel()
	sess := tooleval.NewSession()
	var rec sinkRecorder
	ctx := tooleval.EventContext(context.Background(), rec.sink)
	if _, err := sess.Table3(ctx); err != nil {
		t.Fatalf("Table3: %v", err)
	}
	var start, done bool
	for _, ev := range rec.snapshot() {
		switch e := ev.(type) {
		case tooleval.PhaseStart:
			if e.Phase == "table3" {
				start = true
			}
		case tooleval.PhaseDone:
			if e.Phase == "table3" {
				done = true
			}
		}
	}
	if !start || !done {
		t.Fatalf("phase events missing from batch sink: start=%v done=%v", start, done)
	}
}

// TestSessionCloseIdempotentConcurrent is the -race regression test
// for double Close: a server closes sessions on tenant eviction and
// again on drain, possibly from different goroutines at once. Every
// call must agree on the store's single close outcome.
func TestSessionCloseIdempotentConcurrent(t *testing.T) {
	t.Parallel()
	sess := tooleval.NewSession(tooleval.WithResultStore(t.TempDir()))
	if _, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", []int{64}); err != nil {
		t.Fatalf("PingPong: %v", err)
	}
	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = sess.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close call %d returned %v, call 0 returned %v — calls disagree", i, err, errs[0])
		}
		if err != nil {
			t.Fatalf("Close call %d: %v", i, err)
		}
	}
	// A late straggler after everything settled gets the same answer,
	// and the session stays usable for evaluation (it just stops
	// persisting).
	if err := sess.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	if _, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", []int{128}); err != nil {
		t.Fatalf("PingPong after Close: %v", err)
	}
}

// TestSessionCloseNoStore: Close without a store is a nil no-op,
// repeatable.
func TestSessionCloseNoStore(t *testing.T) {
	t.Parallel()
	sess := tooleval.NewSession()
	for i := 0; i < 3; i++ {
		if err := sess.Close(); err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("Err without store: %v", err)
	}
}

// TestSessionErrHealthy: a working store reports no error mid-run.
func TestSessionErrHealthy(t *testing.T) {
	t.Parallel()
	sess := tooleval.NewSession(tooleval.WithResultStore(t.TempDir()))
	defer sess.Close()
	if _, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", []int{64}); err != nil {
		t.Fatalf("PingPong: %v", err)
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("Err on healthy store: %v", err)
	}
}
