// Package tooleval is a reproduction of the multi-level evaluation
// methodology for parallel/distributed computing (PDC) tools from
// Hariri, Park, Reddy, Subramanyan, Yadav, Fox and Parashar, "Software
// Tool Evaluation Methodology" (NPAC, Syracuse University, 1995).
//
// The package evaluates message-passing tools from three perspectives:
//
//   - Tool Performance Level (TPL): micro-benchmarks of the communication
//     primitives (send/receive, broadcast, ring, global summation);
//   - Application Performance Level (APL): execution times of real
//     applications (JPEG compression, 2D-FFT, Monte Carlo integration,
//     parallel sorting by regular sampling);
//   - Application Development Level (ADL): a usability assessment matrix.
//
// Weight profiles combine the levels into an overall score tailored to a
// user type (end user, developer, system manager).
//
// Because the 1995 systems (Express, p4, PVM) and test-beds (IBM SP-1,
// Alpha/FDDI cluster, SPARCstations on Ethernet/ATM/NYNET) are long gone,
// the package includes faithful discrete-event models of all of them:
// the tools are re-implemented over a simulated transport with the
// mechanisms the originals used (direct streams for p4, daemon routing
// and XDR for PVM, rendezvous plus fixed-size packetization for
// Express), and applications compute real results over real payloads
// while virtual time provides all measurements deterministically.
//
// # Sessions
//
// The unit of use is the [Session]: an isolated evaluation instance
// owning its scheduler, memoization cache, statistics, and tool
// registry, created with functional options:
//
//	sess := tooleval.NewSession(tooleval.WithParallelism(4))
//	ev, err := sess.Evaluate(ctx, tooleval.EndUserProfile(), 1.0)
//
// Concurrent sessions never share state (unless handed one [Cache]
// explicitly), so one process can serve many tenants; [WithMaxCells]
// and [WithMaxVirtualTime] budget each tenant, and [WithExecutor]
// swaps the execution backend entirely. [Session.Stream] runs a whole
// heterogeneous sweep declared as data and yields results in spec
// order as each completes ([Session.Submit] and [Session.SubmitAll]
// are its fail-fast and drain-everything consumers); [WithEvents]
// exposes the sweep's progress as a typed event stream. The
// package-level functions mirroring Session methods are deprecated
// compatibility wrappers over a lazily-built default session.
package tooleval

import (
	"context"
	"sync/atomic"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
)

// Re-exported core types. These aliases are the stable public surface;
// the internal packages may reorganize without breaking users.
type (
	// Platform is a simulated 1995 platform/network configuration.
	Platform = platform.Platform
	// Comm is a rank's endpoint on a message-passing tool.
	Comm = mpt.Comm
	// Ctx is what an SPMD application body receives.
	Ctx = mpt.Ctx
	// Message is a delivered message.
	Message = mpt.Message
	// RunConfig parameterizes a simulated run.
	RunConfig = mpt.RunConfig
	// RunResult reports a simulated run.
	RunResult = mpt.RunResult
	// Factory constructs a tool over an environment (for custom tools).
	Factory = mpt.Factory
	// Env is the environment a tool is built over.
	Env = mpt.Env
	// Evaluation is the outcome of the multi-level methodology.
	Evaluation = core.Evaluation
	// WeightProfile tailors an evaluation to a user type.
	WeightProfile = core.WeightProfile
	// PrimitiveMeasurement is TPL input to the methodology.
	PrimitiveMeasurement = core.PrimitiveMeasurement
	// AppMeasurement is APL input to the methodology.
	AppMeasurement = core.AppMeasurement
	// PrimitiveRanking is one Table 4 cell: tools ordered best-first
	// for one primitive on one platform.
	PrimitiveRanking = core.PrimitiveRanking
	// Series is one curve of a regenerated figure.
	Series = bench.Series
	// Table3Result is the regenerated send/receive timing table.
	Table3Result = bench.Table3Result
	// FigureResult is a regenerated figure: one or more series per
	// platform, renderable as text, ASCII chart, or .dat file.
	FigureResult = bench.FigureResult
)

// Wildcards for Recv.
const (
	AnySource = mpt.AnySource
	AnyTag    = mpt.AnyTag
)

// ErrNotSupported reports a primitive a tool does not provide (PVM's
// global operations).
var ErrNotSupported = mpt.ErrNotSupported

// Platforms returns the §3.1 platform catalog.
func Platforms() []Platform { return platform.All() }

// GetPlatform looks up a platform by key ("sun-ethernet", "sun-atm-lan",
// "sun-atm-wan", "alpha-fddi", "sp1-switch", "sp1-ethernet").
func GetPlatform(key string) (Platform, error) { return platform.Get(key) }

// ToolNames returns the evaluated tools: p4, pvm, express.
func ToolNames() []string { return tools.Names() }

// PrimitiveNames maps each communication primitive to its per-tool
// library call names (Table 1).
func PrimitiveNames() map[string]map[string]string { return tools.PrimitiveNames() }

// Experiments lists the table/figure experiment ids in paper order
// (the vocabulary of cmd/toolbench and Session's regeneration methods).
func Experiments() []string { return bench.Experiments() }

// Profiles returns the built-in weight profiles (end-user, developer,
// system-manager).
func Profiles() []WeightProfile { return core.Profiles() }

// EndUserProfile weights application performance highest (§2: response
// time is the end user's metric).
func EndUserProfile() WeightProfile { return core.EndUserProfile() }

// DeveloperProfile weights the development interface highest.
func DeveloperProfile() WeightProfile { return core.DeveloperProfile() }

// SystemManagerProfile weights raw primitive efficiency highest (§2:
// utilization is the system manager's metric).
func SystemManagerProfile() WeightProfile { return core.SystemManagerProfile() }

// RenderEvaluation formats an evaluation as a text report.
func RenderEvaluation(ev *Evaluation) string { return core.RenderEvaluation(ev) }

// MarshalReport renders an evaluation as indented JSON for downstream
// tooling (dashboards, regression tracking).
func MarshalReport(ev *Evaluation) ([]byte, error) { return core.MarshalReport(ev) }

// The process-wide default session backing the deprecated package-level
// wrappers below. Built lazily on first use; swapped atomically by
// SetParallelism, so the wrappers are safe to call concurrently with a
// swap (in-flight calls finish on the session they started on).
var defaultSession atomic.Pointer[Session]

// DefaultSession returns the lazily-built session the deprecated
// package-level functions delegate to. New code should build its own
// [Session]; this accessor exists so legacy call sites can migrate
// incrementally (e.g. to read Stats or hand the session around).
func DefaultSession() *Session {
	if s := defaultSession.Load(); s != nil {
		return s
	}
	s := NewSession()
	if defaultSession.CompareAndSwap(nil, s) {
		return s
	}
	return defaultSession.Load()
}

// SetParallelism bounds how many independent simulations the default
// session's scheduler runs at once (n < 1 selects GOMAXPROCS) by
// atomically installing a fresh default session. The swap drops the
// previous default session's memoization cache: cells computed before
// the call are re-simulated if requested again. Calls already in
// flight are unaffected — they complete on the session they started
// on, with its cache and stats. Virtual time keeps every cell
// deterministic, so results are identical at any parallelism; n == 1
// reproduces the strictly serial sweep order.
//
// Deprecated: build an isolated [Session] with [WithParallelism]
// instead of reconfiguring the shared default.
func SetParallelism(n int) {
	defaultSession.Store(NewSession(WithParallelism(n)))
}

// SchedulerStats reports the default session's memoization counters:
// cells served from cache (hits) and cells actually simulated (misses).
//
// Deprecated: use [Session.Stats].
func SchedulerStats() (hits, misses int64) {
	return DefaultSession().Stats()
}

// Run executes body as an SPMD program under the named tool on the named
// platform. All timing in the result is deterministic virtual time.
//
// Deprecated: use [Session.Run], which takes a context and an isolated
// scheduler.
func Run(platformKey, tool string, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	return DefaultSession().Run(context.Background(), platformKey, tool, cfg, body)
}

// RunWithFactory is Run for a user-supplied tool implementation — the
// methodology's second objective is serving as "a unified platform for
// PDC tool developers".
//
// Deprecated: use [Session.RunWithFactory], or register the factory
// with [WithTool] to enable the benchmark methods too.
func RunWithFactory(platformKey string, factory Factory, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	return DefaultSession().RunWithFactory(context.Background(), platformKey, factory, cfg, body)
}

// submitOne routes a deprecated wrapper through the default session's
// batch surface: every legacy entry point is one ExperimentSpec
// streamed through the same scheduler as a declarative sweep, so the
// old API cannot drift from the new one.
//
// One legacy quirk is preserved deliberately: an empty size list was a
// no-op sweep (empty curve, nil error) in the pre-spec API, while
// ExperimentSpec validation rejects it — the TPL wrappers short-circuit
// that case before building a spec. Other degenerate inputs the legacy
// path silently simulated (e.g. a collective at Procs < 2) now return
// the spec validation error.
func submitOne(spec ExperimentSpec) (Result, error) {
	results, err := DefaultSession().Submit(context.Background(), []ExperimentSpec{spec})
	if err != nil {
		return Result{Spec: spec}, err
	}
	return results[0], nil
}

// PingPong measures the send/receive round trip (Table 3's benchmark)
// and returns milliseconds per message size.
//
// Deprecated: use [Session.PingPong], or declare the sweep as an
// [ExperimentSpec] for [Session.Stream].
func PingPong(platformKey, tool string, sizes []int) ([]float64, error) {
	if len(sizes) == 0 {
		return []float64{}, nil // legacy no-op sweep
	}
	res, err := submitOne(ExperimentSpec{Kind: KindPingPong, Platform: platformKey, Tool: tool, Sizes: sizes})
	return res.Times, err
}

// Broadcast measures the collective broadcast (Figure 2's benchmark).
//
// Deprecated: use [Session.Broadcast], or declare the sweep as an
// [ExperimentSpec] for [Session.Stream].
func Broadcast(platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	if len(sizes) == 0 {
		return []float64{}, nil // legacy no-op sweep
	}
	res, err := submitOne(ExperimentSpec{Kind: KindBroadcast, Platform: platformKey, Tool: tool, Procs: procs, Sizes: sizes})
	return res.Times, err
}

// Ring measures the ring/loop benchmark (Figure 3).
//
// Deprecated: use [Session.Ring], or declare the sweep as an
// [ExperimentSpec] for [Session.Stream].
func Ring(platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	if len(sizes) == 0 {
		return []float64{}, nil // legacy no-op sweep
	}
	res, err := submitOne(ExperimentSpec{Kind: KindRing, Platform: platformKey, Tool: tool, Procs: procs, Sizes: sizes})
	return res.Times, err
}

// GlobalSum measures the integer-vector global summation (Figure 4).
//
// Deprecated: use [Session.GlobalSum], or declare the sweep as an
// [ExperimentSpec] for [Session.Stream].
func GlobalSum(platformKey, tool string, procs int, vectorLens []int) ([]float64, error) {
	if len(vectorLens) == 0 {
		return []float64{}, nil // legacy no-op sweep
	}
	res, err := submitOne(ExperimentSpec{Kind: KindGlobalSum, Platform: platformKey, Tool: tool, Procs: procs, Sizes: vectorLens})
	return res.Times, err
}

// RunApp executes a suite application ("jpeg", "fft2d", "montecarlo",
// "psrs") over a processor sweep and returns its execution-time curve.
// scale shrinks the paper-scale workload (1.0 reproduces the paper).
//
// Deprecated: use [Session.RunApp], or declare the sweep as an
// [ExperimentSpec] for [Session.Stream].
func RunApp(platformKey, tool, app string, procsList []int, scale float64) (AppMeasurement, error) {
	res, err := submitOne(ExperimentSpec{Kind: KindApp, Platform: platformKey, Tool: tool, App: app, ProcsList: procsList, Scale: scale})
	return res.App, err
}

// Evaluate runs the complete multi-level methodology on the default
// session (see [Session.Evaluate]). It cannot route through submitOne:
// ExperimentSpec names its profile, while this wrapper accepts a full
// WeightProfile value that may be custom-built and unnamed.
//
// Deprecated: use [Session.Evaluate].
func Evaluate(profile WeightProfile, scale float64) (*Evaluation, error) {
	return DefaultSession().Evaluate(context.Background(), profile, scale)
}
