// Package tooleval is a reproduction of the multi-level evaluation
// methodology for parallel/distributed computing (PDC) tools from
// Hariri, Park, Reddy, Subramanyan, Yadav, Fox and Parashar, "Software
// Tool Evaluation Methodology" (NPAC, Syracuse University, 1995).
//
// The package evaluates message-passing tools from three perspectives:
//
//   - Tool Performance Level (TPL): micro-benchmarks of the communication
//     primitives (send/receive, broadcast, ring, global summation);
//   - Application Performance Level (APL): execution times of real
//     applications (JPEG compression, 2D-FFT, Monte Carlo integration,
//     parallel sorting by regular sampling);
//   - Application Development Level (ADL): a usability assessment matrix.
//
// Weight profiles combine the levels into an overall score tailored to a
// user type (end user, developer, system manager).
//
// Because the 1995 systems (Express, p4, PVM) and test-beds (IBM SP-1,
// Alpha/FDDI cluster, SPARCstations on Ethernet/ATM/NYNET) are long gone,
// the package includes faithful discrete-event models of all of them:
// the tools are re-implemented over a simulated transport with the
// mechanisms the originals used (direct streams for p4, daemon routing
// and XDR for PVM, rendezvous plus fixed-size packetization for
// Express), and applications compute real results over real payloads
// while virtual time provides all measurements deterministically.
package tooleval

import (
	"fmt"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// Re-exported core types. These aliases are the stable public surface;
// the internal packages may reorganize without breaking users.
type (
	// Platform is a simulated 1995 platform/network configuration.
	Platform = platform.Platform
	// Comm is a rank's endpoint on a message-passing tool.
	Comm = mpt.Comm
	// Ctx is what an SPMD application body receives.
	Ctx = mpt.Ctx
	// Message is a delivered message.
	Message = mpt.Message
	// RunConfig parameterizes a simulated run.
	RunConfig = mpt.RunConfig
	// RunResult reports a simulated run.
	RunResult = mpt.RunResult
	// Factory constructs a tool over an environment (for custom tools).
	Factory = mpt.Factory
	// Env is the environment a tool is built over.
	Env = mpt.Env
	// Evaluation is the outcome of the multi-level methodology.
	Evaluation = core.Evaluation
	// WeightProfile tailors an evaluation to a user type.
	WeightProfile = core.WeightProfile
	// PrimitiveMeasurement is TPL input to the methodology.
	PrimitiveMeasurement = core.PrimitiveMeasurement
	// AppMeasurement is APL input to the methodology.
	AppMeasurement = core.AppMeasurement
	// Series is one curve of a regenerated figure.
	Series = bench.Series
)

// Wildcards for Recv.
const (
	AnySource = mpt.AnySource
	AnyTag    = mpt.AnyTag
)

// ErrNotSupported reports a primitive a tool does not provide (PVM's
// global operations).
var ErrNotSupported = mpt.ErrNotSupported

// Platforms returns the §3.1 platform catalog.
func Platforms() []Platform { return platform.All() }

// GetPlatform looks up a platform by key ("sun-ethernet", "sun-atm-lan",
// "sun-atm-wan", "alpha-fddi", "sp1-switch", "sp1-ethernet").
func GetPlatform(key string) (Platform, error) { return platform.Get(key) }

// ToolNames returns the evaluated tools: p4, pvm, express.
func ToolNames() []string { return tools.Names() }

// Run executes body as an SPMD program under the named tool on the named
// platform. All timing in the result is deterministic virtual time.
func Run(platformKey, tool string, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	if !pf.Supports(tool) {
		return nil, fmt.Errorf("tooleval: %s has no %s port (paper §3.1)", pf.Name, tool)
	}
	factory, err := tools.Factory(tool)
	if err != nil {
		return nil, err
	}
	return mpt.Run(pf, factory, cfg, body)
}

// RunWithFactory is Run for a user-supplied tool implementation — the
// methodology's second objective is serving as "a unified platform for
// PDC tool developers".
func RunWithFactory(platformKey string, factory Factory, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return mpt.Run(pf, factory, cfg, body)
}

// PingPong measures the send/receive round trip (Table 3's benchmark)
// and returns milliseconds per message size.
func PingPong(platformKey, tool string, sizes []int) ([]float64, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return bench.PingPong(pf, tool, sizes)
}

// Broadcast measures the collective broadcast (Figure 2's benchmark).
func Broadcast(platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return bench.Broadcast(pf, tool, procs, sizes)
}

// Ring measures the ring/loop benchmark (Figure 3).
func Ring(platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return bench.Ring(pf, tool, procs, sizes)
}

// GlobalSum measures the integer-vector global summation (Figure 4).
func GlobalSum(platformKey, tool string, procs int, vectorLens []int) ([]float64, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return bench.GlobalSum(pf, tool, procs, vectorLens)
}

// RunApp executes a suite application ("jpeg", "fft2d", "montecarlo",
// "psrs") over a processor sweep and returns its execution-time curve.
// scale shrinks the paper-scale workload (1.0 reproduces the paper).
func RunApp(platformKey, tool, app string, procsList []int, scale float64) (AppMeasurement, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return AppMeasurement{}, err
	}
	s, err := bench.RunAPL(pf, tool, app, procsList, scale)
	if err != nil {
		return AppMeasurement{}, err
	}
	return AppMeasurement{Platform: s.Platform, App: s.App, Tool: s.Tool, Procs: s.Procs, Seconds: s.Seconds}, nil
}

// Profiles returns the built-in weight profiles (end-user, developer,
// system-manager).
func Profiles() []WeightProfile { return core.Profiles() }

// EndUserProfile weights application performance highest (§2: response
// time is the end user's metric).
func EndUserProfile() WeightProfile { return core.EndUserProfile() }

// DeveloperProfile weights the development interface highest.
func DeveloperProfile() WeightProfile { return core.DeveloperProfile() }

// SystemManagerProfile weights raw primitive efficiency highest (§2:
// utilization is the system manager's metric).
func SystemManagerProfile() WeightProfile { return core.SystemManagerProfile() }

// Evaluate runs the complete multi-level methodology: it regenerates the
// TPL measurements (Table 3 and Figures 2-4), the APL measurements on
// the SUN/Ethernet platform at the given workload scale, combines them
// with the paper's ADL matrix, and returns the weighted evaluation.
// Every simulation routes through the experiment scheduler (see
// SetParallelism), so cells already computed in this process — by an
// earlier Evaluate or by the benchmark functions above — are served
// from the memoization cache instead of re-simulated.
func Evaluate(profile WeightProfile, scale float64) (*Evaluation, error) {
	return bench.Evaluate(profile, scale)
}

// SetParallelism bounds how many independent simulations the experiment
// scheduler runs at once (n < 1 selects GOMAXPROCS). It installs a
// fresh scheduler, so the memoization cache of previously computed
// cells is dropped. Virtual time keeps every cell deterministic, so
// results are identical at any parallelism; n == 1 reproduces the
// strictly serial sweep order.
func SetParallelism(n int) {
	runner.SetDefault(runner.New(n))
}

// SchedulerStats reports the experiment scheduler's memoization
// counters: cells served from cache (hits) and cells actually
// simulated (misses).
func SchedulerStats() (hits, misses int64) {
	st := runner.Default().Stats()
	return st.Hits, st.Misses
}

// RenderEvaluation formats an evaluation as a text report.
func RenderEvaluation(ev *Evaluation) string { return core.RenderEvaluation(ev) }
