// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (run with `go test -bench=. -benchmem`), plus the
// ablation studies of the design choices called out in DESIGN.md §6.
//
// Simulated (virtual) milliseconds are reported as custom metrics
// (sim-ms-*); the Go benchmark time measures the simulator itself.
package tooleval_test

import (
	"context"
	"testing"
	"time"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/express"
	"tooleval/internal/mpt/p4"
	"tooleval/internal/mpt/pvm"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
	"tooleval/internal/simnet"
	"tooleval/internal/usability"
)

const benchScale = 0.1 // APL workload scale for benchmark iterations

var benchCtx = context.Background()

// newBenchHarness returns the calling benchmark's private harness:
// iteration 1 simulates, later iterations replay its memoization cache.
// Unlike a package-wide shared harness, a benchmark never starts with
// cells some earlier benchmark already simulated, so first-iteration
// numbers (scripts/record_bench.sh records with -benchtime=1x) measure
// the simulator rather than the cache.
func newBenchHarness() *bench.Harness { return bench.NewHarness(runner.New(0)) }

func mustPf(b *testing.B, key string) platform.Platform {
	b.Helper()
	pf, err := platform.Get(key)
	if err != nil {
		b.Fatal(err)
	}
	return pf
}

// BenchmarkTable3 regenerates the snd/recv timing table (Table 3).
func BenchmarkTable3(b *testing.B) {
	h := newBenchHarness()
	b.ReportAllocs()
	var last *bench.Table3Result
	for i := 0; i < b.N; i++ {
		t3, err := h.Table3(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		last = t3
	}
	b.ReportMetric(last.TimesMs["ethernet"]["p4"][7], "sim-ms-p4-eth-64K")
	b.ReportMetric(last.TimesMs["ethernet"]["express"][7], "sim-ms-express-eth-64K")
}

// BenchmarkTable4 regenerates the primitive rankings (Table 4).
func BenchmarkTable4(b *testing.B) {
	h := newBenchHarness()
	b.ReportAllocs()
	var rankings []core.PrimitiveRanking
	for i := 0; i < b.N; i++ {
		t3, err := h.Table3(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		fig2, err := h.Fig2(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
		fig3, err := h.Fig3(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
		fig4, err := h.Fig4(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
		rankings = bench.Table4FromMeasurements(t3, fig2, fig3, fig4)
	}
	b.ReportMetric(float64(len(rankings)), "ranking-cells")
}

// BenchmarkFig2Broadcast regenerates the broadcast figure.
func BenchmarkFig2Broadcast(b *testing.B) {
	h := newBenchHarness()
	b.ReportAllocs()
	var fig *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = h.Fig2(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(fig, "express"), "sim-ms-express-64K")
	b.ReportMetric(lastY(fig, "p4"), "sim-ms-p4-64K")
}

// BenchmarkFig3Ring regenerates the ring figure.
func BenchmarkFig3Ring(b *testing.B) {
	h := newBenchHarness()
	b.ReportAllocs()
	var fig *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = h.Fig3(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(fig, "pvm"), "sim-ms-pvm-64K")
	b.ReportMetric(lastY(fig, "express"), "sim-ms-express-64K")
}

// BenchmarkFig4GlobalSum regenerates the global summation figure.
func BenchmarkFig4GlobalSum(b *testing.B) {
	h := newBenchHarness()
	b.ReportAllocs()
	var fig *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = h.Fig4(benchCtx, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(fig, "p4"), "sim-ms-p4-100K")
	b.ReportMetric(lastY(fig, "express"), "sim-ms-express-100K")
}

func lastY(fig *bench.FigureResult, tool string) float64 {
	for _, s := range fig.Series {
		if s.Tool == tool && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return -1
}

func benchAPLFigure(b *testing.B, figID string) {
	b.Helper()
	h := newBenchHarness()
	b.ReportAllocs()
	var fig *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = h.APLFigure(benchCtx, figID, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(fig.Series)), "series")
}

// BenchmarkFig5AlphaFDDI regenerates the ALPHA/FDDI application figure.
func BenchmarkFig5AlphaFDDI(b *testing.B) { benchAPLFigure(b, "fig5") }

// BenchmarkFig6SP1Switch regenerates the IBM-SP1 application figure.
func BenchmarkFig6SP1Switch(b *testing.B) { benchAPLFigure(b, "fig6") }

// BenchmarkFig7NYNET regenerates the SUN/ATM-WAN application figure.
func BenchmarkFig7NYNET(b *testing.B) { benchAPLFigure(b, "fig7") }

// BenchmarkFig8SunEthernet regenerates the SUN/Ethernet application
// figure.
func BenchmarkFig8SunEthernet(b *testing.B) { benchAPLFigure(b, "fig8") }

// BenchmarkADLEvaluation scores the usability matrix under every weight
// profile.
func BenchmarkADLEvaluation(b *testing.B) {
	matrix, err := usability.Matrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, profile := range core.Profiles() {
			m, err := core.New(profile)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Evaluate(nil, nil, matrix); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- ablation benches (DESIGN.md §6) ------------------------------------

func pingPong64K(b *testing.B, pf platform.Platform, factory mpt.Factory) float64 {
	b.Helper()
	payload := make([]byte, 64<<10)
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
		const tag = 1
		if c.Rank() == 0 {
			t0 := c.Now()
			if err := c.Comm.Send(1, tag, payload); err != nil {
				return nil, err
			}
			if _, err := c.Comm.Recv(1, tag); err != nil {
				return nil, err
			}
			return (c.Now() - t0).Milliseconds(), nil
		}
		msg, err := c.Comm.Recv(0, tag)
		if err != nil {
			return nil, err
		}
		return nil, c.Comm.Send(0, tag, msg.Data)
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Value.(float64)
}

// BenchmarkAblationExpressPacketSize shows why Express loses the
// large-message race: its fixed-size packetization. Bigger packets
// recover most of the gap to p4.
func BenchmarkAblationExpressPacketSize(b *testing.B) {
	pf := mustPf(b, "sun-ethernet")
	for _, pkt := range []int{256, 1024, 4096, 16384} {
		pkt := pkt
		b.Run(byteLabel(pkt), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				ms = pingPong64K(b, pf, func(env *mpt.Env) (mpt.Tool, error) {
					par := express.DefaultParams()
					par.PacketBytes = pkt
					return express.NewWithParams(env, par)
				})
			}
			b.ReportMetric(ms, "sim-ms-64K-rtt")
		})
	}
}

// BenchmarkAblationPVMDirectRoute shows the daemon hop is PVM's dominant
// cost: PvmRouteDirect recovers most of the gap to p4.
func BenchmarkAblationPVMDirectRoute(b *testing.B) {
	pf := mustPf(b, "sun-ethernet")
	for _, direct := range []bool{false, true} {
		direct := direct
		name := "daemon-route"
		if direct {
			name = "direct-route"
		}
		b.Run(name, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				ms = pingPong64K(b, pf, func(env *mpt.Env) (mpt.Tool, error) {
					par := pvm.DefaultParams()
					par.RouteDirect = direct
					return pvm.NewWithParams(env, par)
				})
			}
			b.ReportMetric(ms, "sim-ms-64K-rtt")
		})
	}
}

// BenchmarkAblationBroadcastAlgo compares linear and binomial-tree
// broadcast over the same (p4) transport: the algorithm, not the
// transport, is why Express's broadcast is worst (§3.2.2: "performance
// greatly depends on the algorithm used").
func BenchmarkAblationBroadcastAlgo(b *testing.B) {
	pf := mustPf(b, "alpha-fddi")
	payload := make([]byte, 64<<10)
	for _, algo := range []string{"linear", "binomial"} {
		algo := algo
		b.Run(algo, func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				res, err := mpt.Run(pf, p4.New, mpt.RunConfig{Procs: 8}, func(c *mpt.Ctx) (any, error) {
					var in []byte
					if c.Rank() == 0 {
						in = payload
					}
					var err error
					if algo == "linear" {
						_, err = mpt.LinearBcast(c.Comm, 0, 5, in)
					} else {
						_, err = mpt.BinomialBcast(c.Comm, 0, 5, in)
					}
					return nil, err
				})
				if err != nil {
					b.Fatal(err)
				}
				ms = float64(res.Elapsed.Milliseconds())
			}
			b.ReportMetric(ms, "sim-ms-64K-bcast8")
		})
	}
}

// BenchmarkAblationPVMRTO sweeps the pvmd retransmission timeout on the
// Ethernet ring: a tight RTO fires during ordinary bus queueing and the
// duplicate fragments feed the congestion (the mechanism behind Table
// 4's ring inversion); a generous RTO stays quiet.
func BenchmarkAblationPVMRTO(b *testing.B) {
	pf := mustPf(b, "sun-ethernet")
	for _, rtoMs := range []int{6, 12, 50, 200} {
		rtoMs := rtoMs
		b.Run(itoa(rtoMs)+"ms", func(b *testing.B) {
			var ms float64
			var retr int64
			for i := 0; i < b.N; i++ {
				payload := make([]byte, 64<<10)
				var tool *pvm.Tool
				factory := func(env *mpt.Env) (mpt.Tool, error) {
					par := pvm.DefaultParams()
					par.RTO = time.Duration(rtoMs) * time.Millisecond
					var err error
					tool, err = pvm.NewWithParams(env, par)
					return tool, err
				}
				res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: 4}, func(c *mpt.Ctx) (any, error) {
					const tag = 3
					next := (c.Rank() + 1) % c.Size()
					prev := (c.Rank() + c.Size() - 1) % c.Size()
					if err := c.Comm.Send(next, tag, payload); err != nil {
						return nil, err
					}
					_, err := c.Comm.Recv(prev, tag)
					return nil, err
				})
				if err != nil {
					b.Fatal(err)
				}
				ms = float64(res.Elapsed.Milliseconds())
				retr = tool.Stats().Retransmits
			}
			b.ReportMetric(ms, "sim-ms-ring64K")
			b.ReportMetric(float64(retr), "retransmits")
		})
	}
}

// BenchmarkAblationEthernetContention quantifies shared-medium collapse:
// ring time per station as the segment gets busier.
func BenchmarkAblationEthernetContention(b *testing.B) {
	pf := mustPf(b, "sun-ethernet")
	h := newBenchHarness()
	for _, procs := range []int{2, 4, 8} {
		procs := procs
		b.Run(procLabel(procs), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				times, err := h.Ring(benchCtx, pf, "p4", procs, []int{32 << 10})
				if err != nil {
					b.Fatal(err)
				}
				ms = times[0] / float64(procs)
			}
			b.ReportMetric(ms, "sim-ms-per-station")
		})
	}
}

// BenchmarkAblationFDDISwitchVsRing compares the Alpha cluster's actual
// switched FDDI with a classic shared token ring: the switch is what
// lets the FFT's all-to-all scale (Fig 5).
func BenchmarkAblationFDDISwitchVsRing(b *testing.B) {
	base := mustPf(b, "alpha-fddi")
	variants := []struct {
		name string
		mk   func(int) simnet.Network
	}{
		{"switched", func(n int) simnet.Network { return simnet.NewFDDISwitched(n) }},
		{"token-ring", func(n int) simnet.Network { return simnet.NewFDDIRing(n) }},
	}
	h := newBenchHarness()
	for _, v := range variants {
		v := v
		pf := base
		pf.NewNetwork = v.mk
		b.Run(v.name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				s, err := h.RunAPL(benchCtx, pf, "p4", "fft2d", []int{8}, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				secs = s.Seconds[0]
			}
			b.ReportMetric(secs*1000, "sim-ms-fft-8procs")
		})
	}
}

func byteLabel(n int) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "KB"
	default:
		return itoa(n) + "B"
	}
}

func procLabel(n int) string { return itoa(n) + "stations" }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
