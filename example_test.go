package tooleval_test

import (
	"context"
	"fmt"

	"tooleval"
)

// ExampleSession_Stream declares a heterogeneous sweep as data and
// consumes its results as they become ready, in spec order. Virtual
// time makes every cell deterministic, so the output never varies.
func ExampleSession_Stream() {
	ctx := context.Background()
	sess := tooleval.NewSession(tooleval.WithParallelism(2))
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 1 << 10, 4 << 10}},
		{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "pvm", Procs: 4, Sizes: []int{1 << 10}},
		{Kind: tooleval.KindBroadcast, Platform: "sun-atm-wan", Tool: "express", Procs: 4, Sizes: []int{0}},
	}
	for res, err := range sess.Stream(ctx, specs) {
		if err != nil {
			fmt.Println("failed:", res.Spec.Kind)
			continue // the stream carries on with the next spec
		}
		fmt.Printf("%s %s/%s: %d points, slowest %.2fms\n",
			res.Spec.Kind, res.Spec.Platform, res.Spec.Tool, len(res.Times), res.Times[len(res.Times)-1])
	}
	// Output:
	// pingpong sun-ethernet/p4: 3 points, slowest 12.28ms
	// ring sun-ethernet/pvm: 1 points, slowest 9.39ms
	// failed: broadcast
}
