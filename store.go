package tooleval

import (
	"tooleval/internal/runner"
	"tooleval/internal/sim"
	"tooleval/internal/store"
)

// ResultStore is the durable result tier: an append-only, checksummed
// segment file of memoized simulation cells, content-addressed by the
// same key that drives the in-memory [Cache]. A session configured with
// [WithResultStore] consults it on every cache miss and writes every
// completed cell through, so across process restarts a sweep only
// simulates cells the store has never seen.
//
// The store recovers instead of failing: a segment written by a
// different engine version is invalidated wholesale, and a torn or
// corrupted tail is truncated back to the last intact record — damaged
// cells re-simulate, they are never served. See tooleval/internal/store
// for the on-disk format.
type ResultStore = store.Store

// Tier is the interface a second-tier result store implements; a
// [ResultStore] is the built-in implementation. Attach one to a shared
// [Cache] with its SetTier method when building a custom [Executor]
// over the cache yourself — [WithResultStore] does exactly that for the
// built-in backends.
type Tier = runner.Tier

// OpenResultStore opens (creating if needed) the durable result store
// in dir, stamped with the current engine version. Damaged contents are
// recovered, not reported: only real IO errors (permissions, dir is a
// file) fail. Close the store when done with it; [WithResultStore]
// sessions own their store and close it in [Session.Close].
func OpenResultStore(dir string) (*ResultStore, error) {
	return store.Open(dir, sim.EngineVersion)
}

// WithResultStore attaches the durable result tier in dir to the
// session's cache: cache misses consult the store before simulating
// (a stored cell is a hit — free under quotas, reported cached to
// observers), and every successfully computed cell is persisted.
// Results are deterministic functions of their keys, so replayed cells
// are byte-identical to re-simulated ones at any parallelism.
//
// The session owns the opened store: call [Session.Close] to sync and
// close it (and surface any write error). NewSession panics if the
// store cannot be opened or created (a damaged store is recovered, not
// an error), if the option is combined with [WithExecutor] (the
// executor owns its cache — open the store with [OpenResultStore] and
// attach it via the cache's SetTier before building the executor), or
// if the session's cache already has a tier attached (two sessions
// pointing one shared [WithCache] cache at different stores would be a
// configuration bug; attach the store to the shared cache once,
// outside the sessions, instead).
func WithResultStore(dir string) Option {
	return func(c *sessionConfig) { c.storeDir = dir }
}
