package tooleval_test

import (
	"net/http/httptest"
	"testing"

	"tooleval"
	"tooleval/internal/bench"
	"tooleval/internal/remote"
	"tooleval/internal/runner"
)

// BenchmarkRemoteSweep measures the distributed backend end to end:
// the broadcast figure swept through two in-process worker daemons
// over real HTTP loopback. Iteration 1 pays one RPC per cell (the
// wire protocol plus the simulation); later iterations replay the
// coordinator's memoization cache, so -benchtime=1x (what
// scripts/record_bench.sh uses) measures the distributed path and
// longer runs measure the coordinator-side cache under the remote
// wrapper.
func BenchmarkRemoteSweep(b *testing.B) {
	w1 := httptest.NewServer(remote.NewWorker(runner.New(4), bench.ComputeCell).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(remote.NewWorker(runner.New(4), bench.ComputeCell).Handler())
	defer w2.Close()
	sess := tooleval.NewSession(
		tooleval.WithParallelism(8),
		tooleval.WithRemoteExecutor(w1.URL, w2.URL),
	)
	defer sess.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Fig2(benchCtx, 4); err != nil {
			b.Fatal(err)
		}
	}
	var rpcs, nodes int64
	for _, ns := range sess.NodeStats() {
		rpcs += ns.Completed
		nodes++
	}
	b.ReportMetric(float64(rpcs), "cell-rpcs")
	b.ReportMetric(float64(nodes), "workers")
}
