// Command benchjson converts `go test -bench` output on stdin into a
// labeled section of a JSON benchmark ledger (BENCH_PR3.json): for each
// benchmark it records ns/op, B/op and allocs/op. Labeled sections let
// one file hold a before/after pair (e.g. "seed" vs "pr3") so perf PRs
// ship with their measured evidence.
//
// Usage:
//
//	go test -run=NoSuchTest -bench=. -benchmem ./... | \
//	    go run ./scripts/benchjson -label pr3 -out BENCH_PR3.json
//
// The output file is read-modify-written: other labels are preserved,
// the given label is replaced wholesale.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded costs.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	label := flag.String("label", "", "section name to write (e.g. seed, pr3)")
	out := flag.String("out", "BENCH_PR3.json", "JSON ledger to update")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	section, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(section) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	ledger := map[string]map[string]Metrics{}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	ledger[*label] = section
	blob, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s section %q\n", len(section), *out, *label)
}

// parse extracts (name -> metrics) from benchmark output lines of the
// form:
//
//	BenchmarkName-8   100   1234 ns/op   8 extra-metric   56 B/op   7 allocs/op
//
// Custom ReportMetric columns are ignored; the GOMAXPROCS suffix is
// stripped from the name.
func parse(f *os.File) (map[string]Metrics, error) {
	res := map[string]Metrics{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, seen = v, true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if seen {
			res[name] = m
		}
	}
	return res, sc.Err()
}
