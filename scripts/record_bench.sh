#!/bin/sh
# record_bench.sh LABEL [COUNT] — run the figure benchmarks and the
# internal/sim engine microbenchmarks and record ns/op, B/op and
# allocs/op under the given label in BENCH_PR3.json (see
# scripts/benchjson). COUNT is the -benchtime for the sim
# microbenchmarks (default 20x; the figure benchmarks always run 1x so
# the first — and only — iteration actually simulates instead of
# replaying the memoization cache).
#
# Usage, from the repository root:
#
#	./scripts/record_bench.sh pr3
set -eu

label="${1:?usage: record_bench.sh LABEL [COUNT]}"
count="${2:-20x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "record_bench: figure benchmarks (-benchtime=1x)" >&2
go test -run=NoSuchTest -bench='Table|Fig|ADL' -benchmem -benchtime=1x . >"$tmp"
echo "record_bench: sim microbenchmarks (-benchtime=$count)" >&2
go test -run=NoSuchTest -bench=. -benchmem -benchtime="$count" ./internal/sim >>"$tmp"

go run ./scripts/benchjson -label "$label" -out BENCH_PR3.json <"$tmp"
