#!/bin/sh
# record_bench.sh LABEL [COUNT] — run the figure benchmarks, the
# internal/sim engine microbenchmarks, and the internal/runner
# scheduler-contention benchmarks, and record ns/op, B/op and allocs/op
# under the given label (see scripts/benchjson). COUNT is the
# -benchtime for the microbenchmarks (default 20x; the figure
# benchmarks always run 1x so the first — and only — iteration actually
# simulates instead of replaying the memoization cache).
#
# Labels seed..pr3 maintain the PR 3 ledger BENCH_PR3.json; pr5 writes
# BENCH_PR5.json seeded from the PR 3 ledger; pr6 writes
# BENCH_PR6.json seeded from the PR 5 ledger; the pr9 label (and
# anything after it) writes BENCH_PR9.json, seeded from the PR 6
# ledger — each file carries the full seed..prN progression.
#
# The contention benchmarks run at -cpu 4 so the serial/pooled/sharded
# comparison actually contends even when GOMAXPROCS defaults low.
#
# Usage, from the repository root:
#
#	./scripts/record_bench.sh pr5
set -eu

label="${1:?usage: record_bench.sh LABEL [COUNT]}"
count="${2:-20x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

out="BENCH_PR3.json"
case "$label" in
seed | pr3) ;;
pr5)
	out="BENCH_PR5.json"
	# Carry the recorded history forward: benchjson preserves every
	# label already in the output file.
	if [ ! -f "$out" ] && [ -f BENCH_PR3.json ]; then
		cp BENCH_PR3.json "$out"
	fi
	;;
pr6)
	out="BENCH_PR6.json"
	if [ ! -f "$out" ] && [ -f BENCH_PR5.json ]; then
		cp BENCH_PR5.json "$out"
	fi
	;;
*)
	out="BENCH_PR9.json"
	if [ ! -f "$out" ] && [ -f BENCH_PR6.json ]; then
		cp BENCH_PR6.json "$out"
	fi
	;;
esac

echo "record_bench: figure + store + remote benchmarks (-benchtime=1x)" >&2
go test -run=NoSuchTest -bench='Table|Fig|ADL|Store|Remote' -benchmem -benchtime=1x . >"$tmp"
echo "record_bench: sim microbenchmarks (-benchtime=$count)" >&2
go test -run=NoSuchTest -bench=. -benchmem -benchtime="$count" ./internal/sim >>"$tmp"
echo "record_bench: scheduler contention benchmarks (-cpu 4)" >&2
go test -run=NoSuchTest -bench='MemoContention|ShardedSweep' -benchmem -benchtime=2s -cpu 4 ./internal/runner >>"$tmp"

go run ./scripts/benchjson -label "$label" -out "$out" <"$tmp"
