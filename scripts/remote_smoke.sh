#!/bin/sh
# remote_smoke.sh — the distributed-execution end-to-end check, and
# the local mirror of CI's remote-smoke job: build the coordinator and
# worker binaries, spawn two real toolbench-worker daemons, distribute
# a full `all` sweep across them, and require stdout and every
# artifact byte-identical to a serial run of the same sweep.
#
# Usage, from the repository root:
#
#	./scripts/remote_smoke.sh
set -eu

work="$(mktemp -d)"
w1= w2=
cleanup() {
	[ -n "$w1" ] && kill "$w1" 2>/dev/null || true
	[ -n "$w2" ] && kill "$w2" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "remote_smoke: building toolbench + toolbench-worker" >&2
go build -o "$work/toolbench" ./cmd/toolbench
go build -o "$work/toolbench-worker" ./cmd/toolbench-worker

# Spawn the daemons on ephemeral ports (one pooled, one sharded — the
# backend mix must not matter) and scrape the logged listen addresses.
"$work/toolbench-worker" -addr 127.0.0.1:0 2>"$work/w1.log" &
w1=$!
"$work/toolbench-worker" -addr 127.0.0.1:0 -shards 2 -store "$work/wstore" 2>"$work/w2.log" &
w2=$!

addr_of() {
	i=0
	while [ "$i" -lt 100 ]; do
		addr="$(sed -n 's/^toolbench-worker: listening on \([^ ]*\).*/\1/p' "$1")"
		if [ -n "$addr" ]; then
			echo "$addr"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "remote_smoke: worker never logged its listen address:" >&2
	cat "$1" >&2
	return 1
}
a1="$(addr_of "$work/w1.log")"
a2="$(addr_of "$work/w2.log")"
echo "remote_smoke: workers at $a1 and $a2" >&2

echo "remote_smoke: serial reference sweep" >&2
"$work/toolbench" -scale 0.1 -out "$work/serial" all >"$work/serial.out"

echo "remote_smoke: distributed sweep" >&2
"$work/toolbench" -scale 0.1 -j 8 -workers "$a1,$a2" -stats \
	-out "$work/remote" all >"$work/remote.out" 2>"$work/remote.stats"

cat "$work/remote.stats" >&2
grep -q 'workers:' "$work/remote.stats" || {
	echo "remote_smoke: -stats printed no per-node table" >&2
	exit 1
}
diff "$work/serial.out" "$work/remote.out"
diff -r "$work/serial" "$work/remote"

# Both daemons drain cleanly on SIGTERM.
kill "$w1" "$w2"
wait "$w1" "$w2" || {
	echo "remote_smoke: a worker exited non-zero on SIGTERM" >&2
	exit 1
}
w1= w2=

echo "remote_smoke: distributed sweep byte-identical to serial"
