package tooleval_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"tooleval"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/p4"
)

// TestConcurrentSessionsIsolated is the acceptance test of the session
// redesign: two sessions with different parallelism run the complete
// evaluation at the same time (under -race) and must produce
// byte-identical reports from fully isolated caches and stats.
func TestConcurrentSessionsIsolated(t *testing.T) {
	const scale = 0.05
	profile := tooleval.EndUserProfile()
	sessions := []*tooleval.Session{
		tooleval.NewSession(tooleval.WithParallelism(1)),
		tooleval.NewSession(tooleval.WithParallelism(4)),
	}
	reports := make([]string, len(sessions))
	var wg sync.WaitGroup
	for i, sess := range sessions {
		i, sess := i, sess
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev, err := sess.Evaluate(context.Background(), profile, scale)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			reports[i] = tooleval.RenderEvaluation(ev)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if reports[0] == "" || reports[0] != reports[1] {
		t.Fatalf("concurrent sessions diverged:\n--- j=1 ---\n%s\n--- j=4 ---\n%s", reports[0], reports[1])
	}
	h0, m0 := sessions[0].Stats()
	h1, m1 := sessions[1].Stats()
	if m0 == 0 || m0 != m1 {
		t.Fatalf("isolated sessions must each simulate the same full sweep: misses %d vs %d", m0, m1)
	}
	if h0 != h1 {
		t.Fatalf("hit counts diverged between identical sweeps: %d vs %d", h0, h1)
	}
	if sessions[0].Parallelism() != 1 || sessions[1].Parallelism() != 4 {
		t.Fatalf("parallelism clobbered: %d, %d", sessions[0].Parallelism(), sessions[1].Parallelism())
	}
}

// TestSessionCancellation: a context cancelled mid-sweep aborts the
// evaluation promptly with ctx.Err() instead of simulating the
// remaining cells.
func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sess := tooleval.NewSession(
		tooleval.WithParallelism(2),
		tooleval.WithProgress(func(ev tooleval.CellEvent) {
			cancel() // pull the plug as soon as the first cell resolves
		}),
	)
	_, err := sess.Evaluate(ctx, tooleval.EndUserProfile(), 0.05)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Evaluate under cancelled ctx = %v, want context.Canceled", err)
	}
	// A full 0.05-scale evaluation is ~250 cells; a prompt abort
	// simulates only the handful already past the scheduler gate.
	if _, misses := sess.Stats(); misses >= 50 {
		t.Fatalf("cancelled sweep still simulated %d cells — not prompt", misses)
	}
}

func TestSessionCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := tooleval.NewSession()
	if _, err := sess.PingPong(ctx, "sun-ethernet", "p4", []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("PingPong = %v, want context.Canceled", err)
	}
	if _, err := sess.Run(ctx, "sun-ethernet", "p4", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if _, err := sess.Submit(ctx, []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	if hits, misses := sess.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("cancelled session simulated: %d hits / %d misses", hits, misses)
	}
}

// TestSetParallelismAtomicSwap: concurrent SetParallelism calls racing
// with in-flight deprecated wrappers must be safe (-race) and leave a
// coherent default session behind.
func TestSetParallelismAtomicSwap(t *testing.T) {
	// Leave a fresh default session behind for other tests.
	//lint:ignore SA1019 the deprecated swap is this test's subject
	defer tooleval.SetParallelism(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				//lint:ignore SA1019 the deprecated swap is this test's subject
				tooleval.SetParallelism(i%2 + 1)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:ignore SA1019 the deprecated wrapper is this test's subject
			ms, err := tooleval.PingPong("sun-ethernet", "p4", []int{512 * i})
			if err != nil || len(ms) != 1 {
				t.Errorf("PingPong during swap: %v, %v", ms, err)
			}
		}()
	}
	wg.Wait()
	if got := tooleval.DefaultSession().Parallelism(); got < 1 {
		t.Fatalf("default session parallelism = %d after swaps", got)
	}
}

// TestBenchmarkMethodsEnforcePortMatrix: every session method taking a
// tool name applies the same §3.1 port gate — a TPL sweep must not
// fabricate timings for a port that never existed.
func TestBenchmarkMethodsEnforcePortMatrix(t *testing.T) {
	sess := tooleval.NewSession()
	ctx := context.Background()
	if _, err := sess.PingPong(ctx, "sun-atm-wan", "express", []int{0}); err == nil {
		t.Fatal("PingPong must reject express on NYNET")
	}
	if _, err := sess.Broadcast(ctx, "sun-atm-wan", "express", 4, []int{0}); err == nil {
		t.Fatal("Broadcast must reject express on NYNET")
	}
	if _, err := sess.Ring(ctx, "sun-atm-wan", "express", 4, []int{0}); err == nil {
		t.Fatal("Ring must reject express on NYNET")
	}
	if _, err := sess.GlobalSum(ctx, "sun-atm-wan", "express", 4, []int{10}); err == nil {
		t.Fatal("GlobalSum must reject express on NYNET")
	}
	if _, err := sess.Submit(ctx, []tooleval.ExperimentSpec{
		{Kind: tooleval.KindBroadcast, Platform: "sun-atm-wan", Tool: "express", Procs: 4, Sizes: []int{0}},
	}); err == nil {
		t.Fatal("Submit must reject express on NYNET")
	}
}

func TestSubmitHeterogeneousBatch(t *testing.T) {
	sess := tooleval.NewSession()
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 1 << 10}},
		{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "express", Procs: 4, Sizes: []int{2 << 10}},
		{Kind: tooleval.KindApp, Platform: "alpha-fddi", Tool: "pvm", App: "montecarlo", ProcsList: []int{1, 2}, Scale: 0.1},
		{Kind: tooleval.KindEvaluate, Scale: 0.05, Profile: "developer"},
	}
	results, err := sess.Submit(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	if got := results[0].Times; len(got) != 2 || got[1] <= got[0] {
		t.Fatalf("pingpong result %v", got)
	}
	if got := results[1].Times; len(got) != 1 || got[0] <= 0 {
		t.Fatalf("ring result %v", got)
	}
	if app := results[2].App; app.App != "montecarlo" || len(app.Seconds) != 2 {
		t.Fatalf("app result %+v", app)
	}
	if ev := results[3].Evaluation; ev == nil || ev.Profile.Name != "developer" {
		t.Fatalf("evaluate result %+v", results[3].Evaluation)
	}
	// Results must match the same calls made one by one (order
	// preserved, cache shared).
	direct, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", []int{0, 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != results[0].Times[i] {
			t.Fatalf("Submit diverged from direct call: %v vs %v", results[0].Times, direct)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	sess := tooleval.NewSession()
	bad := [][]tooleval.ExperimentSpec{
		{{Kind: "frobnicate"}},
		{{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4"}},                              // no sizes
		{{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{1}}},                 // no procs
		{{Kind: tooleval.KindApp, Platform: "sun-ethernet", Tool: "p4", App: "jpeg", ProcsList: []int{1}}}, // no scale
		{{Kind: tooleval.KindEvaluate, Scale: 0.1, Profile: "operator"}},                                   // unknown profile
		{{}},
	}
	for i, specs := range bad {
		if _, err := sess.Submit(context.Background(), specs); err == nil {
			t.Errorf("bad spec set %d accepted", i)
		}
	}
	if hits, misses := sess.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("validation must reject before simulating (%d hits / %d misses)", hits, misses)
	}
}

func TestWithCacheSharesResults(t *testing.T) {
	cache := tooleval.NewCache()
	warm := tooleval.NewSession(tooleval.WithParallelism(2), tooleval.WithCache(cache))
	sizes := []int{0, 4 << 10}
	first, err := warm.PingPong(context.Background(), "sun-ethernet", "pvm", sizes)
	if err != nil {
		t.Fatal(err)
	}
	_, warmMisses := warm.Stats()

	reader := tooleval.NewSession(tooleval.WithParallelism(1), tooleval.WithCache(cache))
	second, err := reader.PingPong(context.Background(), "sun-ethernet", "pvm", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := reader.Stats(); misses != warmMisses {
		t.Fatalf("shared-cache session re-simulated (%d -> %d misses)", warmMisses, misses)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("shared cache replay differs: %v vs %v", first, second)
		}
	}
}

func TestWithToolRegistersCustomTool(t *testing.T) {
	// A "tool" that forwards to the built-in p4 implementation under a
	// custom name: the registry must resolve it everywhere, including
	// on platforms whose 1995 port matrix never heard of it.
	sess := tooleval.NewSession(tooleval.WithTool("mpi-lite", mpiLite))
	if got := sess.Tools(); got[len(got)-1] != "mpi-lite" {
		t.Fatalf("Tools() = %v, want mpi-lite listed", got)
	}
	ms, err := sess.PingPong(context.Background(), "sun-ethernet", "mpi-lite", []int{0, 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1] <= ms[0] {
		t.Fatalf("custom tool curve %v", ms)
	}
	if _, err := sess.Run(context.Background(), "sun-atm-wan", "mpi-lite", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("custom tool must run on every platform: %v", err)
	}
	// Unregistered names still fail.
	if _, err := tooleval.NewSession().PingPong(context.Background(), "sun-ethernet", "mpi-lite", []int{0}); err == nil {
		t.Fatal("unregistered custom tool should error")
	}
}

// mpiLite is a custom tool for the registry test: p4's transport with a
// leaner per-call path (the customtool example's hypothetical 1996
// design).
func mpiLite(env *tooleval.Env) (mpt.Tool, error) {
	par := p4.DefaultParams()
	par.SendFixedOps *= 0.7
	par.RecvFixedOps *= 0.7
	return p4.NewWithParams(env, par)
}

func TestWithProgressObservesCells(t *testing.T) {
	var mu sync.Mutex
	events := []tooleval.CellEvent{}
	sess := tooleval.NewSession(tooleval.WithProgress(func(ev tooleval.CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}))
	sizes := []int{0, 2 << 10}
	for i := 0; i < 2; i++ {
		if _, err := sess.Ring(context.Background(), "sun-ethernet", "p4", 4, sizes); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2*len(sizes) {
		t.Fatalf("got %d progress events, want %d", len(events), 2*len(sizes))
	}
	var cached, simulated int
	for _, ev := range events {
		if ev.Cell.Bench != "ring" || ev.Cell.Platform != "sun-ethernet" {
			t.Fatalf("unexpected cell %+v", ev.Cell)
		}
		if ev.Cached {
			cached++
		} else {
			simulated++
		}
	}
	if simulated != len(sizes) || cached != len(sizes) {
		t.Fatalf("events: %d simulated / %d cached, want %d / %d", simulated, cached, len(sizes), len(sizes))
	}
}
