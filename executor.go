package tooleval

import (
	"time"

	"tooleval/internal/remote"
	"tooleval/internal/runner"
)

// Executor is the session's execution backend: the scheduler every
// simulation cell, direct run, and fan-out goes through. The built-in
// implementation (selected by default, configured with
// [WithParallelism] and [WithCache]) is an in-process bounded worker
// pool over a memoization [Cache]; [WithExecutor] swaps in another
// implementation — a sharded pool, a remote fleet — without the
// Session layer changing.
//
// See the method contracts on the interface definition. The invariants
// an implementation must keep are: Memo is single-flight per [Cell]
// key and never caches context errors; Map reports the lowest-index
// error among the indices that ran; and Observe is called at most
// once, before any work is submitted.
type Executor = runner.Executor

// CellResult is what one simulated cell reports to its Executor: the
// measured value plus the virtual wall-clock the simulation covered
// (the currency of [WithMaxVirtualTime] budgets).
type CellResult = runner.CellResult

// Observer is an Executor's per-cell completion callback; see
// [Executor]'s Observe method.
type Observer = runner.Observer

// CacheStats snapshots a cache's memoization counters; see
// [Session.Stats].
type CacheStats = runner.Stats

// ErrQuotaExceeded is the sentinel a session's exhausted resource
// budget unwraps to; match it with errors.Is. The concrete error is
// always a [*QuotaError].
var ErrQuotaExceeded = runner.ErrQuotaExceeded

// QuotaError reports which session budget broke and by how much.
type QuotaError = runner.QuotaError

// WithExecutor makes the session schedule through x instead of the
// built-in worker pool. The executor owns parallelism, so
// [WithParallelism] is ignored when this option is present;
// [WithCacheCapacity] still applies (NewSession forwards it to the
// executor's cache via SetCapacity), and combining [WithCache] or
// [WithShardedExecutor] with this option makes NewSession panic — both
// would silently contradict the executor the caller already built.
// Quota options still apply — budgets wrap any executor.
//
// An Executor instance must be dedicated to one session: NewSession
// installs the session's cell observer on it, so handing the same
// instance to a second session would cross-wire their event streams.
// To pool results across sessions, share a [Cache], not an Executor.
func WithExecutor(x Executor) Option {
	return func(c *sessionConfig) { c.executor = x }
}

// WithShardedExecutor makes the session schedule through a sharded
// in-process backend: n independent worker pools hash-partitioned by
// cell key over one striped memoization cache, instead of a single
// pool funneling every cell through one semaphore and one cache lock.
// Virtual time keeps every cell deterministic, so results are
// bit-identical to the single-pool (and serial) sweep — only lock and
// semaphore contention changes.
//
// [WithParallelism] sets the total worker count, divided evenly across
// the shards (rounded up, so the effective bound reported by
// [Session.Parallelism] may exceed it by up to n-1). [WithCache] and
// [WithCacheCapacity] compose as usual; for contention relief the
// shared cache should be a striped one. n <= 0 keeps the default
// single pool.
func WithShardedExecutor(n int) Option {
	return func(c *sessionConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithRemoteExecutor distributes the session's sweep across worker
// daemons (`toolbench-worker`) at the given addresses ("host:port" or
// http:// URLs). Each cell is routed to a worker by rendezvous-hashing
// its content key — the same FNV hash that picks cache stripes and
// shards — and the worker recomputes it from the key alone; cells are
// pure functions of their keys, so a distributed sweep is
// byte-identical to a local one. Memoization, the optional
// [WithResultStore] tier, quota budgets, and event observers all stay
// on the coordinator; [WithParallelism] bounds the in-flight RPCs.
//
// Worker loss is survived mid-sweep: a failing node's cells fail over
// to the next node in their rendezvous order, and after a few
// consecutive failures the node is ejected (a timed half-open probe
// re-admits it once it recovers). [Session.NodeStats] reports the
// per-node counters. A coordinator/worker engine- or protocol-version
// mismatch fails the sweep with a [*RemoteVersionError] — never a
// result computed under the wrong engine.
//
// Combining this option with [WithExecutor], [WithShardedExecutor], or
// [WithTool] makes NewSession panic (custom tool factories exist only
// in this process and cannot be evaluated remotely).
func WithRemoteExecutor(nodes ...string) Option {
	return func(c *sessionConfig) {
		c.workers = append([]string(nil), nodes...)
	}
}

// RemoteNodeStats is one worker's coordinator-side counter snapshot;
// see [Session.NodeStats].
type RemoteNodeStats = remote.NodeStats

// RemoteVersionError is the typed refusal a [WithRemoteExecutor] sweep
// fails with when a worker runs a different simulation-engine or
// wire-protocol version; match it with errors.As.
type RemoteVersionError = remote.VersionError

// WithMaxCells caps how many cells the session may simulate. Cache
// hits are free: only simulations actually executed are charged — each
// miss, and each direct run ([Session.Run], [Session.RunWithFactory],
// [Session.TraceRun]) — so a session replaying memoized results is not
// billed for them. Once the budget is spent, every further cell — hit
// or miss — fails with a [*QuotaError] matching [ErrQuotaExceeded].
// Budgets are checked before a cell is scheduled, so the session can
// overshoot by at most its parallelism bound (cells already in flight
// complete and are charged). n <= 0 means unlimited.
//
// Quota errors are never memoized: a shared [Cache] is not poisoned by
// one tenant's exhausted budget.
func WithMaxCells(n int) Option {
	return func(c *sessionConfig) { c.limits.MaxCells = int64(n) }
}

// WithMaxVirtualTime caps the summed virtual wall-clock of the cells
// the session simulates — the discrete-event analogue of a CPU-seconds
// budget. Charging and breach semantics match [WithMaxCells], except
// that direct runs charge only the cell budget (they carry no
// virtual-time report through the executor). d <= 0 means unlimited.
func WithMaxVirtualTime(d time.Duration) Option {
	return func(c *sessionConfig) { c.limits.MaxVirtualTime = d }
}

// WithCacheCapacity bounds the session's memoization cache to at most
// n cells, evicting the least recently used when full. Evicted cells
// are re-simulated on the next request — correct, since cells are
// deterministic. Combined with [WithCache] it (re)configures the
// shared cache; without it, it bounds the session's private cache.
// n <= 0 means unbounded (the default — one evaluation matrix is
// finite, so eviction only matters for long-lived shared caches).
//
// On a striped cache ([NewStripedCache], or the one a
// [WithShardedExecutor] session builds) the bound is approximate: n is
// divided evenly across the stripes (rounded up), each stripe runs its
// own LRU over its share, and eviction order is per stripe rather than
// global — the cache may hold up to stripes-1 cells more than n, and a
// stripe whose keys cluster may evict while the whole cache is under
// n. Single-stripe caches (the default) keep the exact global bound.
func WithCacheCapacity(n int) Option {
	return func(c *sessionConfig) {
		c.cacheCap, c.cacheCapSet = n, true
	}
}
