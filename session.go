package tooleval

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/remote"
	"tooleval/internal/runner"
	"tooleval/internal/sim"
	"tooleval/internal/store"
)

// Cache is a shareable store of memoized simulation cells. Every cell
// is a pure function of its content key (platform, tool, benchmark,
// procs, size/scale), so two sessions pointing WithCache at the same
// Cache pool their results: a cell simulated by one is a cache hit for
// the other. The hit/miss counters travel with the cache.
//
// Sessions sharing a Cache must agree on what every tool name means:
// two sessions registering different factories under the same custom
// name would memoize conflicting results under equal keys.
type Cache = runner.Cache

// NewCache returns an empty cell cache for use with WithCache.
func NewCache() *Cache { return runner.NewCache() }

// NewStripedCache returns an empty cell cache split into n
// independently locked segments (n < 1 selects a default). Same
// sharing contract as NewCache; prefer it when many sessions or a
// sharded executor hammer one shared cache, where a single cache lock
// would serialize them.
func NewStripedCache(n int) *Cache { return runner.NewStripedCache(n) }

// Cell identifies one memoized simulation cell — one entry of the
// paper's evaluation matrix.
type Cell = runner.Key

// CellEvent reports one resolved simulation cell to a WithProgress
// callback. Cached is true when the cell was served from the session's
// memoization cache (or coalesced onto an in-flight computation)
// instead of being simulated by this call.
type CellEvent struct {
	Cell   Cell
	Cached bool
	Err    error
}

// ProgressFunc observes cell completions. It runs on whichever
// goroutine resolved the cell and must be safe for concurrent use.
type ProgressFunc func(CellEvent)

// Session is one self-contained evaluation instance: it owns its
// execution backend (an [Executor] — by default a worker pool with a
// parallelism bound and a memoization cache), its statistics, its tool
// registry, and its event sinks. Sessions are safe for concurrent use,
// and distinct sessions are fully isolated from one another — two
// tenants in one process can evaluate concurrently with different
// parallelism, budgets, and backends without sharing or clobbering any
// state.
//
// All methods take a Context first. Cancellation and deadlines are
// observed between simulation cells: a sweep aborts promptly with
// ctx.Err(), while the cell in flight (milliseconds of virtual-time
// simulation) always runs to completion.
//
// Because virtual time makes every cell deterministic, a Session's
// results are bit-identical at any parallelism.
type Session struct {
	h           *bench.Harness
	parallelism int
	sinks       []func(Event)
	store       *store.Store   // owned durable tier (WithResultStore), nil otherwise
	remote      *remote.Remote // distributed backend (WithRemoteExecutor), nil otherwise
	closeOnce   sync.Once
	closeErr    error
}

type sessionConfig struct {
	parallelism int
	shards      int
	cache       *Cache
	cacheCap    int
	cacheCapSet bool
	tools       map[string]Factory
	sinks       []func(Event)
	executor    Executor
	limits      runner.Limits
	storeDir    string
	workers     []string // worker daemon addresses (WithRemoteExecutor)
}

// Option configures a Session under construction.
type Option func(*sessionConfig)

// WithParallelism bounds how many independent simulations the session
// runs at once (n < 1 selects GOMAXPROCS, the default). n == 1
// reproduces the strictly serial sweep order; results are identical at
// any value.
func WithParallelism(n int) Option {
	return func(c *sessionConfig) { c.parallelism = n }
}

// WithCache makes the session memoize into the given shared cache
// instead of a fresh private one. See Cache for the sharing contract.
func WithCache(cache *Cache) Option {
	return func(c *sessionConfig) {
		if cache != nil {
			c.cache = cache
		}
	}
}

// WithTool registers a user-supplied tool implementation under name,
// resolvable by every Session method that takes a tool name — the
// methodology's second objective, serving as "a unified platform for
// PDC tool developers". Custom tools are considered ported to every
// platform (they are designs under evaluation, not 1995 artifacts with
// a fixed port matrix) and shadow a built-in of the same name.
func WithTool(name string, factory Factory) Option {
	return func(c *sessionConfig) {
		if c.tools == nil {
			c.tools = make(map[string]Factory)
		}
		c.tools[name] = factory
	}
}

// WithTools registers every factory in reg; see WithTool.
func WithTools(reg map[string]Factory) Option {
	return func(c *sessionConfig) {
		for name, factory := range reg {
			if c.tools == nil {
				c.tools = make(map[string]Factory)
			}
			c.tools[name] = factory
		}
	}
}

// WithProgress installs fn as the session's per-cell progress
// callback. It is [WithEvents] restricted to [CellEvent]s — the two
// options compose, and either may repeat.
func WithProgress(fn ProgressFunc) Option {
	if fn == nil {
		return func(*sessionConfig) {}
	}
	return WithEvents(func(ev Event) {
		if ce, ok := ev.(CellEvent); ok {
			fn(ce)
		}
	})
}

// NewSession builds an isolated evaluation session. With no options it
// uses GOMAXPROCS parallelism, a fresh private unbounded cache, the
// built-in tool registry (p4, pvm, express), no budgets, and no event
// sinks.
//
// NewSession panics on genuinely conflicting option combinations —
// [WithCache] or [WithShardedExecutor] alongside [WithExecutor] — a
// configuration bug that previously was silently dropped.
func NewSession(opts ...Option) *Session {
	var cfg sessionConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	x := cfg.executor
	switch {
	case x != nil:
		// The executor was built by the caller, cache included: a second
		// cache cannot be installed after the fact, so combining the two
		// options is a configuration bug, not a preference to drop.
		if cfg.cache != nil {
			panic("tooleval: WithCache conflicts with WithExecutor — the executor owns its cache; build the executor over the shared cache instead")
		}
		if cfg.shards > 0 {
			panic("tooleval: WithShardedExecutor conflicts with WithExecutor — they both pick the execution backend")
		}
		if len(cfg.workers) > 0 {
			panic("tooleval: WithRemoteExecutor conflicts with WithExecutor — they both pick the execution backend")
		}
		if cfg.storeDir != "" {
			panic("tooleval: WithResultStore conflicts with WithExecutor — the executor owns its cache; open the store with OpenResultStore and attach it to the executor's cache via SetTier instead")
		}
		// A capacity bound, by contrast, applies to whatever cache the
		// executor carries.
		if cfg.cacheCapSet {
			x.Cache().SetCapacity(cfg.cacheCap)
		}
	case cfg.shards > 0:
		if len(cfg.workers) > 0 {
			panic("tooleval: WithRemoteExecutor conflicts with WithShardedExecutor — they both pick the execution backend")
		}
		x = runner.NewSharded(cfg.shards, shardWorkers(cfg.parallelism, cfg.shards), cfg.runnerOptions()...)
	default:
		x = runner.New(cfg.parallelism, cfg.runnerOptions()...)
	}
	if len(cfg.workers) > 0 && len(cfg.tools) > 0 {
		// A custom factory exists only in this process's registry; a
		// worker daemon handed the key alone cannot reconstruct it, so a
		// remote sweep would deterministically fail every custom-tool
		// cell. Refuse the configuration up front instead.
		panic("tooleval: WithRemoteExecutor conflicts with WithTool — custom tool factories cannot be evaluated on remote workers")
	}
	var durable *store.Store
	if cfg.storeDir != "" {
		var err error
		durable, err = store.Open(cfg.storeDir, sim.EngineVersion)
		if err != nil {
			panic(fmt.Sprintf("tooleval: WithResultStore(%q): %v", cfg.storeDir, err))
		}
		// SetTier panics if the cache (possibly shared via WithCache)
		// already carries a tier — release the file first so the panic
		// does not leak the handle.
		if x.Cache().Tier() != nil {
			durable.Close()
			panic("tooleval: WithResultStore — the session's cache already has a result store attached; attach the store to the shared cache once instead")
		}
		x.Cache().SetTier(durable)
	}
	x = runner.NewQuota(x, cfg.limits)
	// The remote layer goes on the outside, so its dispatch closure runs
	// through the quota wrapper underneath: budgets are checked and
	// charged on the coordinator (with the virtual cost the worker
	// reports), exactly as for a local sweep. Cache, durable tier, and
	// observer likewise all live in the inner executor — the workers only
	// ever see cell keys.
	var rem *remote.Remote
	if len(cfg.workers) > 0 {
		var err error
		rem, err = remote.New(cfg.workers, x)
		if err != nil {
			if durable != nil {
				durable.Close()
			}
			panic(fmt.Sprintf("tooleval: WithRemoteExecutor: %v", err))
		}
		x = rem
	}
	var custom map[string]mpt.Factory
	if len(cfg.tools) > 0 {
		custom = make(map[string]mpt.Factory, len(cfg.tools))
		for name, factory := range cfg.tools {
			custom[name] = factory
		}
	}
	s := &Session{
		h:           bench.NewHarnessWithTools(x, custom),
		parallelism: x.Workers(),
		sinks:       cfg.sinks,
		store:       durable,
		remote:      rem,
	}
	// The observer and hooks are always installed: even with no
	// WithEvents sinks, a caller may attach a per-batch sink to a
	// context with [EventContext], and those events ride the ctx the
	// work was scheduled under. emit is a no-op when neither exists.
	x.Observe(func(ctx context.Context, key runner.Key, cached bool, err error) {
		s.emit(ctx, CellEvent{Cell: key, Cached: cached, Err: err})
	})
	s.h.SetHooks(bench.Hooks{
		PhaseStart: func(ctx context.Context, id string) { s.emit(ctx, PhaseStart{Phase: id}) },
		PhaseDone:  func(ctx context.Context, id string, err error) { s.emit(ctx, PhaseDone{Phase: id, Err: err}) },
	})
	return s
}

// runnerOptions translates the session's cache configuration into
// executor construction options (shared by the pooled and sharded
// backends).
func (c *sessionConfig) runnerOptions() []runner.Option {
	ropts := make([]runner.Option, 0, 2)
	if c.cache != nil {
		ropts = append(ropts, runner.WithCache(c.cache))
	}
	if c.cacheCapSet {
		ropts = append(ropts, runner.WithCacheCapacity(c.cacheCap))
	}
	return ropts
}

// shardWorkers divides the session's total parallelism bound across
// the shards, rounding up so every shard gets at least one worker
// (total < 1 selects GOMAXPROCS, like WithParallelism).
func shardWorkers(total, shards int) int {
	if total < 1 {
		total = runtime.GOMAXPROCS(0)
	}
	per := (total + shards - 1) / shards
	if per < 1 {
		per = 1
	}
	return per
}

// emit fans an event out to every session sink, plus the per-batch
// sink riding ctx (see [EventContext]), if any.
func (s *Session) emit(ctx context.Context, ev Event) {
	for _, fn := range s.sinks {
		fn(ev)
	}
	if fn := sinkFrom(ctx); fn != nil {
		fn(ev)
	}
}

// Parallelism reports the session's simulation concurrency bound.
func (s *Session) Parallelism() int { return s.parallelism }

// Close releases resources the session owns — today, the durable
// result store opened by [WithResultStore]: it syncs and closes the
// segment file and returns the first write error the store hit (a
// latched Fill error means some cells were simulated but not
// persisted; results were still correct). Sessions without a store
// return nil. The session remains usable for evaluation after Close —
// it just stops persisting new cells.
//
// Close is idempotent and safe for concurrent callers: the store is
// closed exactly once, and every call — first, repeated, or racing —
// returns that close's error. A server evicting a tenant while a
// drain sweep closes every session must not double-close the store.
func (s *Session) Close() error {
	if s.store == nil {
		return nil
	}
	s.closeOnce.Do(func() { s.closeErr = s.store.Close() })
	return s.closeErr
}

// Err reports the first write error the session's durable result store
// has latched, without closing anything — nil when the store is
// healthy or the session has none. A non-nil Err means the store went
// lookup-only mid-run: results are still correct, but cells simulated
// since the error are not being persisted. Long-running servers poll
// it to report a degraded store (e.g. a /healthz endpoint) instead of
// discovering the error only at [Session.Close].
func (s *Session) Err() error {
	if s.store == nil {
		return nil
	}
	return s.store.Err()
}

// ResultStore returns the durable tier opened by [WithResultStore],
// or nil.
func (s *Session) ResultStore() *ResultStore { return s.store }

// Executor returns the session's execution backend: the quota-wrapped
// view of the built-in pool or of the [WithExecutor] replacement —
// what Stats and every session method schedule through.
func (s *Session) Executor() Executor { return s.h.Executor() }

// Stats reports the session's memoization counters: cells served from
// cache (hits) and cells actually simulated (misses). With WithCache
// the counters are those of the shared cache.
func (s *Session) Stats() (hits, misses int64) {
	st := s.h.Executor().Stats()
	return st.Hits, st.Misses
}

// Cache returns the session's memoization cache (shared or private),
// for handing to another session via WithCache.
func (s *Session) Cache() *Cache { return s.h.Executor().Cache() }

// NodeStats reports the per-worker coordinator counters of a
// [WithRemoteExecutor] session — RPCs sent, completed, retried onto
// this node after another failed, breaker ejections, and the current
// admission state — in configuration order. Sessions without a remote
// backend return nil.
func (s *Session) NodeStats() []RemoteNodeStats {
	if s.remote == nil {
		return nil
	}
	return s.remote.NodeStats()
}

// Tools lists every tool name this session resolves: the built-ins,
// then custom registrations in sorted order.
func (s *Session) Tools() []string { return s.h.ToolNames() }

// resolvePlatform looks up a platform and, when tool is non-empty,
// checks the session's port matrix.
func (s *Session) resolvePlatform(platformKey, tool string) (platform.Platform, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return pf, err
	}
	if tool != "" && !s.h.Supports(pf, tool) {
		return pf, fmt.Errorf("tooleval: %s has no %s port (paper §3.1)", pf.Name, tool)
	}
	return pf, nil
}

// Run executes body as an SPMD program under the named tool (built-in
// or registered via WithTool) on the named platform. All timing in the
// result is deterministic virtual time. The run occupies one slot of
// the session's parallelism bound; ctx is observed while waiting for a
// slot.
func (s *Session) Run(ctx context.Context, platformKey, tool string, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	factory, err := s.h.FactoryFor(tool)
	if err != nil {
		return nil, err
	}
	return s.runBounded(ctx, pf, factory, cfg, body)
}

// RunWithFactory is Run for a one-off tool implementation that is not
// registered in the session. Prefer WithTool, which also enables the
// benchmark methods for the custom tool.
func (s *Session) RunWithFactory(ctx context.Context, platformKey string, factory Factory, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	pf, err := platform.Get(platformKey)
	if err != nil {
		return nil, err
	}
	return s.runBounded(ctx, pf, factory, cfg, body)
}

func (s *Session) runBounded(ctx context.Context, pf Platform, factory Factory, cfg RunConfig, body func(*Ctx) (any, error)) (*RunResult, error) {
	var res *RunResult
	err := s.h.Executor().Do(ctx, func() error {
		var err error
		res, err = mpt.Run(pf, factory, cfg, body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PingPong measures the send/receive round trip (Table 3's benchmark)
// and returns milliseconds per message size.
func (s *Session) PingPong(ctx context.Context, platformKey, tool string, sizes []int) ([]float64, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	return s.h.PingPong(ctx, pf, tool, sizes)
}

// Broadcast measures the collective broadcast (Figure 2's benchmark).
func (s *Session) Broadcast(ctx context.Context, platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	return s.h.Broadcast(ctx, pf, tool, procs, sizes)
}

// Ring measures the ring/loop benchmark (Figure 3).
func (s *Session) Ring(ctx context.Context, platformKey, tool string, procs int, sizes []int) ([]float64, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	return s.h.Ring(ctx, pf, tool, procs, sizes)
}

// GlobalSum measures the integer-vector global summation (Figure 4).
func (s *Session) GlobalSum(ctx context.Context, platformKey, tool string, procs int, vectorLens []int) ([]float64, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	return s.h.GlobalSum(ctx, pf, tool, procs, vectorLens)
}

// RunApp executes a suite application ("jpeg", "fft2d", "montecarlo",
// "psrs") over a processor sweep and returns its execution-time curve.
// scale shrinks the paper-scale workload (1.0 reproduces the paper).
func (s *Session) RunApp(ctx context.Context, platformKey, tool, app string, procsList []int, scale float64) (AppMeasurement, error) {
	// Through resolvePlatform like every other tool-taking method, so
	// the §3.1 port gate applies uniformly at the session layer.
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return AppMeasurement{}, err
	}
	series, err := s.h.RunAPL(ctx, pf, tool, app, procsList, scale)
	if err != nil {
		return AppMeasurement{}, err
	}
	return AppMeasurement{Platform: series.Platform, App: series.App, Tool: series.Tool, Procs: series.Procs, Seconds: series.Seconds}, nil
}

// Evaluate runs the complete multi-level methodology: it regenerates
// the TPL measurements (Table 3 and Figures 2-4), the APL measurements
// on the SUN/Ethernet platform at the given workload scale, combines
// them with the paper's ADL matrix, and returns the weighted
// evaluation. Cells already computed in this session — by an earlier
// Evaluate or by the benchmark methods — are served from the
// memoization cache instead of re-simulated.
func (s *Session) Evaluate(ctx context.Context, profile WeightProfile, scale float64) (*Evaluation, error) {
	return s.h.Evaluate(ctx, profile, scale)
}

// Table3 regenerates the snd/recv timing table over the three SUN
// networks.
func (s *Session) Table3(ctx context.Context) (*Table3Result, error) {
	return s.h.Table3(ctx)
}

// Fig2 regenerates the broadcast figure at the given rank count (the
// paper uses 4).
func (s *Session) Fig2(ctx context.Context, procs int) (*FigureResult, error) {
	return s.h.Fig2(ctx, procs)
}

// Fig3 regenerates the ring figure.
func (s *Session) Fig3(ctx context.Context, procs int) (*FigureResult, error) {
	return s.h.Fig3(ctx, procs)
}

// Fig4 regenerates the global summation figure.
func (s *Session) Fig4(ctx context.Context, procs int) (*FigureResult, error) {
	return s.h.Fig4(ctx, procs)
}

// Table4 regenerates the primitive-ranking table from Table 3 and
// Figures 2-4 (all four fan out concurrently within the session's
// parallelism bound).
func (s *Session) Table4(ctx context.Context, procs int) ([]PrimitiveRanking, error) {
	return s.h.Table4(ctx, procs)
}

// APLFigure regenerates one of Figures 5-8 ("fig5".."fig8"): the four
// suite applications on that figure's platform across its tool set and
// processor sweep.
func (s *Session) APLFigure(ctx context.Context, figID string, scale float64) (*FigureResult, []AppMeasurement, error) {
	return s.h.APLFigure(ctx, figID, scale)
}

// TraceRun executes a small ping-pong under the named tool with the
// engine execution trace enabled and returns the formatted event log
// (the ADL debugging-support criterion). The run occupies one slot of
// the session's parallelism bound.
func (s *Session) TraceRun(ctx context.Context, platformKey, tool string, size, maxEvents int) ([]string, error) {
	pf, err := s.resolvePlatform(platformKey, tool)
	if err != nil {
		return nil, err
	}
	var events []string
	err = s.h.Executor().Do(ctx, func() error {
		var err error
		events, err = s.h.TraceRun(pf, tool, size, maxEvents)
		return err
	})
	return events, err
}

// ProfileByName looks up a built-in weight profile ("end-user",
// "developer", "system-manager").
func ProfileByName(name string) (WeightProfile, error) {
	for _, p := range core.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return WeightProfile{}, fmt.Errorf("tooleval: unknown profile %q", name)
}
