module tooleval

go 1.23
