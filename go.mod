module tooleval

go 1.22
