package tooleval_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tooleval"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/p4"
)

// gatedTool returns a factory that blocks tool construction until
// release is closed — a cell that provably cannot complete until the
// test says so.
func gatedTool(release <-chan struct{}) tooleval.Factory {
	return func(env *tooleval.Env) (mpt.Tool, error) {
		<-release
		return p4.New(env)
	}
}

// TestStreamEarlyDelivery is the acceptance test of the stream
// redesign: the consumer must observe result i while spec j > i is
// still provably incomplete (its tool factory is gated on a channel
// only the consumer closes).
func TestStreamEarlyDelivery(t *testing.T) {
	release := make(chan struct{})
	var gatedDone atomic.Bool
	sess := tooleval.NewSession(
		tooleval.WithParallelism(2),
		tooleval.WithTool("gated", gatedTool(release)),
		tooleval.WithEvents(func(ev tooleval.Event) {
			if sd, ok := ev.(tooleval.SpecDone); ok && sd.Index == 1 {
				gatedDone.Store(true)
			}
		}),
	)
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "gated", Sizes: []int{0}},
	}
	var seen []string
	for res, err := range sess.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, res.Spec.Tool)
		if res.Spec.Tool == "p4" {
			// Result 0 is in hand; spec 1 must still be in flight.
			if gatedDone.Load() {
				t.Fatal("spec 1 completed before result 0 was delivered — no early delivery")
			}
			close(release)
		}
	}
	if len(seen) != 2 || seen[0] != "p4" || seen[1] != "gated" {
		t.Fatalf("stream order = %v, want [p4 gated]", seen)
	}
	if !gatedDone.Load() {
		t.Fatal("spec 1 never reported SpecDone")
	}
}

// TestStreamOrderDespiteOutOfOrderCompletion: when spec 0 is the slow
// one, the stream must withhold spec 1's (already finished) result
// until spec 0's turn — delivery order is spec order, not completion
// order.
func TestStreamOrderDespiteOutOfOrderCompletion(t *testing.T) {
	release := make(chan struct{})
	spec1Done := make(chan struct{})
	sess := tooleval.NewSession(
		tooleval.WithParallelism(2),
		tooleval.WithTool("gated", gatedTool(release)),
		tooleval.WithEvents(func(ev tooleval.Event) {
			if sd, ok := ev.(tooleval.SpecDone); ok && sd.Index == 1 {
				close(spec1Done)
			}
		}),
	)
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "gated", Sizes: []int{0}},
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
	}
	go func() {
		<-spec1Done // spec 1 finishes first...
		close(release)
	}()
	var seen []string
	for res, err := range sess.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, res.Spec.Tool)
	}
	if len(seen) != 2 || seen[0] != "gated" || seen[1] != "p4" {
		t.Fatalf("stream order = %v, want [gated p4] (spec order)", seen)
	}
}

func TestSubmitAllReportsPerSpecOutcomes(t *testing.T) {
	sess := tooleval.NewSession()
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 1 << 10}},
		{Kind: tooleval.KindBroadcast, Platform: "sun-atm-wan", Tool: "express", Procs: 4, Sizes: []int{0}}, // no NYNET port
		{Kind: "frobnicate"}, // invalid
		{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "pvm", Procs: 4, Sizes: []int{2 << 10}},
	}
	results, errs := sess.SubmitAll(context.Background(), specs)
	if len(results) != len(specs) || len(errs) != len(specs) {
		t.Fatalf("got %d results / %d errs, want %d each", len(results), len(errs), len(specs))
	}
	if errs[0] != nil || len(results[0].Times) != 2 {
		t.Fatalf("spec 0: %v, %v", results[0].Times, errs[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "no express port") {
		t.Fatalf("spec 1 error = %v, want port-matrix rejection", errs[1])
	}
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "spec 2") || !strings.Contains(errs[2].Error(), "frobnicate") {
		t.Fatalf("spec 2 error = %v, want indexed validation failure", errs[2])
	}
	if errs[3] != nil || len(results[3].Times) != 1 {
		t.Fatalf("spec 3 must run despite earlier failures: %v, %v", results[3].Times, errs[3])
	}
	// Submit on the same batch aborts at the first failure instead.
	if _, err := sess.Submit(context.Background(), specs); err == nil {
		t.Fatal("Submit must fail on a batch SubmitAll tolerates")
	}
}

// TestStreamCancellationMidBatch (run under -race in CI): cancelling
// after the first result makes the remaining specs yield ctx.Err()
// instead of simulating.
func TestStreamCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := tooleval.NewSession(tooleval.WithParallelism(2))
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		{Kind: tooleval.KindEvaluate, Scale: 0.05},
		{Kind: tooleval.KindEvaluate, Scale: 0.05, Profile: "developer"},
	}
	var outcomes []error
	for _, err := range sess.Stream(ctx, specs) {
		outcomes = append(outcomes, err)
		cancel()
	}
	if len(outcomes) != len(specs) {
		t.Fatalf("stream yielded %d outcomes, want %d", len(outcomes), len(specs))
	}
	if outcomes[0] != nil {
		t.Fatalf("spec 0 (completed before cancel) = %v", outcomes[0])
	}
	for i, err := range outcomes[1:] {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("spec %d after cancel = %v, want context.Canceled", i+1, err)
		}
	}
	// The big evaluations were aborted between cells, not simulated out.
	if _, misses := sess.Stats(); misses >= 100 {
		t.Fatalf("cancelled stream still simulated %d cells", misses)
	}
}

// TestSubmitCancellationMidBatch mirrors the stream test through the
// Submit surface (run under -race in CI).
func TestSubmitCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sess := tooleval.NewSession(
		tooleval.WithParallelism(2),
		tooleval.WithProgress(func(tooleval.CellEvent) { once.Do(cancel) }),
	)
	_, err := sess.Submit(ctx, []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 1 << 10}},
		{Kind: tooleval.KindEvaluate, Scale: 0.05},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit under mid-batch cancel = %v, want context.Canceled", err)
	}
}

// TestStreamEarlyBreakCancelsRemaining: abandoning the iterator must
// cancel the specs still in flight rather than simulating them out.
func TestStreamEarlyBreakCancelsRemaining(t *testing.T) {
	sess := tooleval.NewSession(tooleval.WithParallelism(1))
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		{Kind: tooleval.KindEvaluate, Scale: 0.05},
	}
	for _, err := range sess.Stream(context.Background(), specs) {
		if err != nil {
			t.Fatal(err)
		}
		break // abandon the evaluation spec
	}
	// The iterator waits for in-flight work before returning, so the
	// session is quiescent here and Stats is stable: the ~250-cell
	// evaluation must not have run, only the handful of cells that were
	// in flight at the break.
	if _, misses := sess.Stats(); misses >= 100 {
		t.Fatalf("abandoned stream simulated %d cells", misses)
	}
}

// TestStreamLifecycleEventsOnEveryPath pins the event contract the
// batch surface owes its sinks: exactly one SpecStart/SpecDone pair
// per submitted spec, on every path — specs that run, specs that fail
// validation, and specs that arrive after cancellation. (Invalid and
// cancelled specs used to skip both events, so sinks counting SpecDone
// against the batch size miscounted.)
func TestStreamLifecycleEventsOnEveryPath(t *testing.T) {
	newCounter := func() (*sync.Mutex, map[int]int, map[int]int, map[int]error, tooleval.Option) {
		var mu sync.Mutex
		starts := map[int]int{}
		dones := map[int]int{}
		doneErrs := map[int]error{}
		opt := tooleval.WithEvents(func(ev tooleval.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch e := ev.(type) {
			case tooleval.SpecStart:
				starts[e.Index]++
			case tooleval.SpecDone:
				dones[e.Index]++
				doneErrs[e.Index] = e.Err
			}
		})
		return &mu, starts, dones, doneErrs, opt
	}
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		{Kind: "frobnicate"}, // fails validate()
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{0}},
	}
	assertPairs := func(t *testing.T, mu *sync.Mutex, starts, dones map[int]int, doneErrs map[int]error, errs []error) {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		for i := range specs {
			if starts[i] != 1 || dones[i] != 1 {
				t.Fatalf("spec %d: %d SpecStart / %d SpecDone, want exactly one pair", i, starts[i], dones[i])
			}
			if (doneErrs[i] == nil) != (errs[i] == nil) {
				t.Fatalf("spec %d: SpecDone.Err = %v, yielded err = %v", i, doneErrs[i], errs[i])
			}
		}
	}

	t.Run("invalid-spec", func(t *testing.T) {
		mu, starts, dones, doneErrs, opt := newCounter()
		sess := tooleval.NewSession(tooleval.WithParallelism(2), opt)
		_, errs := sess.SubmitAll(context.Background(), specs)
		if errs[1] == nil || !strings.Contains(errs[1].Error(), "frobnicate") {
			t.Fatalf("spec 1 = %v, want the validation error", errs[1])
		}
		assertPairs(t, mu, starts, dones, doneErrs, errs)
	})

	t.Run("cancelled-before-start", func(t *testing.T) {
		mu, starts, dones, doneErrs, opt := newCounter()
		sess := tooleval.NewSession(tooleval.WithParallelism(2), opt)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, errs := sess.SubmitAll(ctx, specs)
		for i, err := range errs {
			if err == nil {
				t.Fatalf("spec %d under a cancelled ctx = nil error", i)
			}
		}
		if !errors.Is(errs[0], context.Canceled) {
			t.Fatalf("spec 0 = %v, want context.Canceled", errs[0])
		}
		assertPairs(t, mu, starts, dones, doneErrs, errs)
	})
}

func TestStreamEmitsSpecEvents(t *testing.T) {
	var mu sync.Mutex
	starts := map[int]bool{}
	dones := map[int]error{}
	sess := tooleval.NewSession(tooleval.WithEvents(func(ev tooleval.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case tooleval.SpecStart:
			starts[e.Index] = true
		case tooleval.SpecDone:
			dones[e.Index] = e.Err
		}
	}))
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		{Kind: tooleval.KindRing, Platform: "sun-atm-wan", Tool: "express", Procs: 4, Sizes: []int{0}}, // fails: no port
	}
	_, errs := sess.SubmitAll(context.Background(), specs)
	mu.Lock()
	defer mu.Unlock()
	if !starts[0] || !starts[1] {
		t.Fatalf("SpecStart events = %v, want both specs", starts)
	}
	if dones[0] != nil {
		t.Fatalf("SpecDone[0].Err = %v, want nil", dones[0])
	}
	if dones[1] == nil || errs[1] == nil || dones[1].Error() != errs[1].Error() {
		t.Fatalf("SpecDone[1].Err = %v, want the spec's error %v", dones[1], errs[1])
	}
}
