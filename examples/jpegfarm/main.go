// jpegfarm reproduces the paper's motivating image-processing scenario:
// a farm of workstations compressing images with JPEG. It sweeps
// processor counts on two platforms and shows where each tool's
// communication overhead starts to eat the speedup — the §3.3
// "distribution, computation, collection" pipeline in action.
//
// The whole sweep is declared as data and handed to Session.Submit in
// one call per platform: every tool×procs cell fans out across the
// session's worker pool, and the results come back in spec order.
package main

import (
	"context"
	"fmt"
	"log"

	"tooleval"
)

func main() {
	ctx := context.Background()
	// Scale 0.5 keeps the demo quick; pass 1.0 for the full 512x512
	// paper workload.
	const scale = 0.5
	procs := []int{1, 2, 4, 8}

	sess := tooleval.NewSession()

	for _, platformKey := range []string{"alpha-fddi", "sun-ethernet"} {
		pf, err := tooleval.GetPlatform(platformKey)
		if err != nil {
			log.Fatal(err)
		}

		// Declare the platform's sweep: one spec per tool with a port.
		var specs []tooleval.ExperimentSpec
		for _, tool := range sess.Tools() {
			if !pf.Supports(tool) {
				continue
			}
			specs = append(specs, tooleval.ExperimentSpec{
				Kind:      tooleval.KindApp,
				Platform:  platformKey,
				Tool:      tool,
				App:       "jpeg",
				ProcsList: procs,
				Scale:     scale,
			})
		}
		results, err := sess.Submit(ctx, specs)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== JPEG compression farm on %s ===\n", pf.Name)
		fmt.Printf("%-10s", "procs")
		for _, p := range procs {
			fmt.Printf(" %9d", p)
		}
		fmt.Println("   (seconds, virtual)")
		best := map[int]struct {
			tool string
			secs float64
		}{}
		for _, res := range results {
			m := res.App
			fmt.Printf("%-10s", m.Tool)
			for i, p := range m.Procs {
				fmt.Printf(" %9.3f", m.Seconds[i])
				if b, ok := best[p]; !ok || m.Seconds[i] < b.secs {
					best[p] = struct {
						tool string
						secs float64
					}{m.Tool, m.Seconds[i]}
				}
			}
			fmt.Println()
		}
		fmt.Printf("best at %d procs: %s  |  speedup vs 1 proc: %.2fx\n\n",
			procs[len(procs)-1], best[procs[len(procs)-1]].tool,
			best[procs[0]].secs/best[procs[len(procs)-1]].secs)
	}
	fmt.Println("Shared 10 Mbit/s Ethernet throttles the scatter/collect phases;")
	fmt.Println("the switched FDDI cluster keeps the farm compute-bound — the")
	fmt.Println("platform, not just the tool, decides the speedup (paper §3.3).")
}
