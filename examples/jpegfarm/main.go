// jpegfarm reproduces the paper's motivating image-processing scenario:
// a farm of workstations compressing images with JPEG. It sweeps
// processor counts on two platforms and shows where each tool's
// communication overhead starts to eat the speedup — the §3.3
// "distribution, computation, collection" pipeline in action.
package main

import (
	"fmt"
	"log"

	"tooleval"
)

func main() {
	// Scale 0.5 keeps the demo quick; pass 1.0 logic through RunApp for
	// the full 512x512 paper workload.
	const scale = 0.5
	procs := []int{1, 2, 4, 8}

	for _, platformKey := range []string{"alpha-fddi", "sun-ethernet"} {
		pf, err := tooleval.GetPlatform(platformKey)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== JPEG compression farm on %s ===\n", pf.Name)
		fmt.Printf("%-10s", "procs")
		for _, p := range procs {
			fmt.Printf(" %9d", p)
		}
		fmt.Println("   (seconds, virtual)")
		best := map[int]struct {
			tool string
			secs float64
		}{}
		for _, tool := range tooleval.ToolNames() {
			if !pf.Supports(tool) {
				continue
			}
			m, err := tooleval.RunApp(platformKey, tool, "jpeg", procs, scale)
			if err != nil {
				log.Fatalf("%s on %s: %v", tool, platformKey, err)
			}
			fmt.Printf("%-10s", tool)
			for i, p := range m.Procs {
				fmt.Printf(" %9.3f", m.Seconds[i])
				if b, ok := best[p]; !ok || m.Seconds[i] < b.secs {
					best[p] = struct {
						tool string
						secs float64
					}{tool, m.Seconds[i]}
				}
			}
			fmt.Println()
		}
		fmt.Printf("best at %d procs: %s  |  speedup vs 1 proc: %.2fx\n\n",
			procs[len(procs)-1], best[procs[len(procs)-1]].tool,
			best[procs[0]].secs/best[procs[len(procs)-1]].secs)
	}
	fmt.Println("Shared 10 Mbit/s Ethernet throttles the scatter/collect phases;")
	fmt.Println("the switched FDDI cluster keeps the farm compute-bound — the")
	fmt.Println("platform, not just the tool, decides the speedup (paper §3.3).")
}
