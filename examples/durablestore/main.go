// durablestore demonstrates the disk-backed result tier: a session
// built with WithResultStore persists every simulated cell to an
// append-only segment file, so a second session over the same
// directory — a process restart, in real life — replays the whole
// sweep from disk without simulating a single cell. Results are pure
// functions of their content keys, so the replayed numbers are
// identical to the simulated ones.
//
// It also shows the recovery contract: flipping a byte in the middle
// of the segment file does not crash the next session — the corrupt
// suffix is detected by its checksum, truncated, and re-simulated.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tooleval"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "tooleval-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sizes := []int{64, 1 << 10, 16 << 10, 64 << 10}

	// Cold: an empty store. Every cell simulates and is persisted.
	cold := tooleval.NewSession(tooleval.WithResultStore(dir))
	coldTimes, err := cold.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		log.Fatal(err)
	}
	_, coldMisses := cold.Stats()
	if err := cold.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold session: %d cells simulated, %d persisted\n",
		coldMisses, cold.ResultStore().Len())

	// Warm: a fresh session (think: restarted process) over the same
	// directory replays everything from disk.
	warm := tooleval.NewSession(tooleval.WithResultStore(dir))
	warmTimes, err := warm.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		log.Fatal(err)
	}
	warmHits, warmMisses := warm.Stats()
	if err := warm.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm session: %d cells simulated, %d replayed from the store\n",
		warmMisses, warmHits)
	for i := range coldTimes {
		if warmTimes[i] != coldTimes[i] {
			log.Fatalf("size %d: replayed %v != simulated %v", sizes[i], warmTimes[i], coldTimes[i])
		}
	}
	fmt.Println("replayed results identical to simulated ones")

	// Corrupt the segment mid-file: the next session keeps the intact
	// prefix, drops the damaged suffix, and re-simulates it.
	seg := filepath.Join(dir, "cells.seg")
	blob, err := os.ReadFile(seg)
	if err != nil {
		log.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	healed := tooleval.NewSession(tooleval.WithResultStore(dir))
	healedTimes, err := healed.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		log.Fatal(err)
	}
	_, healedMisses := healed.Stats()
	if err := healed.Close(); err != nil {
		log.Fatal(err)
	}
	for i := range coldTimes {
		if healedTimes[i] != coldTimes[i] {
			log.Fatalf("size %d: post-corruption %v != original %v", sizes[i], healedTimes[i], coldTimes[i])
		}
	}
	fmt.Printf("corrupted segment recovered: %d cells re-simulated, results unchanged\n",
		healedMisses)
}
