// toolbenchd-client is a minimal Go client for the toolbenchd HTTP
// API: submit an ExperimentSpec batch, consume the server-sent event
// stream while the sweep runs, fetch the final JSON report, and — when
// the server answers 429 with a Retry-After hint — back off with
// jittered exponential delays instead of hammering the quota.
//
// To stay runnable standalone (make examples runs every example to
// completion), it hosts its own toolbenchd in-process on a loopback
// port and talks to it over real HTTP — the client half is exactly
// what a remote tenant would write against a deployed daemon.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tooleval/internal/server"
)

// submitWithRetry posts a batch, honoring 429 refusals: the wait is the
// server's Retry-After hint or the local exponential backoff, whichever
// is longer, with full jitter on top so a burst of refused clients
// spreads out instead of re-colliding on the same slot. Any other
// status returns to the caller as-is.
func submitWithRetry(ctx context.Context, base, tenant, body string) (*http.Response, error) {
	backoff := 250 * time.Millisecond
	const maxBackoff = 4 * time.Second
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wait := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && time.Duration(secs)*time.Second > wait {
				wait = time.Duration(secs) * time.Second
			}
		}
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait))) // jitter: [wait/2, 3wait/2)
		fmt.Printf("  429 (attempt %d, Retry-After %ss): backing off %v\n",
			attempt, resp.Header.Get("Retry-After"), wait.Round(time.Millisecond))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- the server half: a toolbenchd with one modest quota tier.
	// A real deployment runs `toolbenchd -addr :8080 -tier ...`
	// instead; everything below the next comment is pure client code.
	srv, err := server.New(server.Config{
		Tiers: map[string]server.QuotaTier{
			"demo":    {Name: "demo", MaxConcurrentJobs: 4},
			"metered": {Name: "metered", MaxCells: 2},
			"serial":  {Name: "serial", MaxConcurrentJobs: 1},
		},
		DefaultTier: "demo",
		TenantTiers: map[string]string{"budget-works": "metered", "burst": "serial"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// --- the client half: submit a batch as JSON.
	batch := `{"specs": [
		{"kind": "pingpong", "platform": "sun-ethernet", "tool": "p4", "sizes": [0, 1024, 65536]},
		{"kind": "pingpong", "platform": "sun-ethernet", "tool": "pvm", "sizes": [0, 1024, 65536]},
		{"kind": "app", "platform": "sun-ethernet", "tool": "p4", "app": "fft2d", "procs_list": [1, 2, 4, 8], "scale": 1}
	]}`
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/jobs", strings.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Tenant", "example")
	req.Header.Set("Accept", "text/event-stream") // stream, don't block
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s: %s", resp.Status, body)
	}

	// Consume the SSE feed: the first event names the job, then the
	// sweep lifecycle streams until job_done.
	var jobID string
	cells := 0
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "job":
				var w struct {
					Job   string `json:"job"`
					Specs int    `json:"specs"`
				}
				json.Unmarshal([]byte(data), &w)
				jobID = w.Job
				fmt.Printf("job %s admitted (%d specs)\n", w.Job, w.Specs)
			case "spec_start":
				var w struct {
					Index int `json:"index"`
					Spec  struct {
						Kind string `json:"kind"`
						Tool string `json:"tool"`
					} `json:"spec"`
				}
				json.Unmarshal([]byte(data), &w)
				fmt.Printf("  spec %d started: %s/%s\n", w.Index, w.Spec.Kind, w.Spec.Tool)
			case "cell":
				cells++
			case "spec_done":
				var w struct {
					Index int    `json:"index"`
					Error string `json:"error"`
				}
				json.Unmarshal([]byte(data), &w)
				status := "ok"
				if w.Error != "" {
					status = w.Error
				}
				fmt.Printf("  spec %d done: %s\n", w.Index, status)
			case "job_done":
				var w struct {
					State string `json:"state"`
					Cells int    `json:"cells"`
				}
				json.Unmarshal([]byte(data), &w)
				fmt.Printf("job finished: state=%s, %d cell events streamed\n", w.State, w.Cells)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// Fetch the final report — the same bytes a local Session renders
	// for this batch.
	req, err = http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+jobID+"/report", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Tenant", "example")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	report, err := io.ReadAll(r2.Body)
	r2.Body.Close()
	if err != nil || r2.StatusCode != http.StatusOK {
		log.Fatalf("report: %s: %v", r2.Status, err)
	}
	var parsed struct {
		Specs []struct {
			Spec  struct{ Kind, Tool, App string } `json:"spec"`
			Times []float64                        `json:"times"`
			App   *struct {
				Procs   []int     `json:"procs"`
				Seconds []float64 `json:"seconds"`
			} `json:"app"`
		} `json:"specs"`
	}
	if err := json.Unmarshal(report, &parsed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreport (%d bytes):\n", len(report))
	for i, s := range parsed.Specs {
		switch {
		case s.App != nil:
			fmt.Printf("  spec %d: %s %s on %d proc counts, T(1)=%.2fs T(%d)=%.2fs\n",
				i, s.Spec.App, s.Spec.Tool, len(s.App.Procs),
				s.App.Seconds[0], s.App.Procs[len(s.App.Procs)-1], s.App.Seconds[len(s.App.Seconds)-1])
		default:
			fmt.Printf("  spec %d: %s %s, %d sizes, t0=%.3fms\n",
				i, s.Spec.Kind, s.Spec.Tool, len(s.Times), s.Times[0])
		}
	}

	// A quota refusal is a typed 429: the "budget-works" tenant rides
	// the metered tier (2 cells), so a sweep of fresh cells — cache
	// hits are free, these are not cached yet — exhausts its budget
	// and the per-spec errors say which resource ran out.
	r3, err := http.Post(base+"/v1/jobs?tenant=budget-works", "application/json",
		bytes.NewReader([]byte(`{"specs":[{"kind":"ring","platform":"alpha-fddi","tool":"pvm","procs":8,"sizes":[0,1024,65536]}]}`)))
	if err != nil {
		log.Fatal(err)
	}
	body3, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	fmt.Printf("\nmetered tenant: %s\n", r3.Status)
	if r3.StatusCode != http.StatusTooManyRequests {
		log.Fatalf("expected a 429, got %s: %s", r3.Status, body3)
	}

	// A concurrent-job refusal also says when to come back: the "burst"
	// tenant's tier admits one job at a time, so while a slow sweep
	// holds the slot, a second submit gets 429 + Retry-After. The
	// client's job is to honor it — submitWithRetry backs off with
	// jittered exponential delays until the slot frees.
	slowBody := `{"specs":[{"kind":"evaluate","scale":0.05}]}`
	slowReq, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/jobs", strings.NewReader(slowBody))
	if err != nil {
		log.Fatal(err)
	}
	slowReq.Header.Set("X-Tenant", "burst")
	slowReq.Header.Set("Accept", "text/event-stream")
	slowResp, err := http.DefaultClient.Do(slowReq)
	if err != nil {
		log.Fatal(err)
	}
	if slowResp.StatusCode != http.StatusOK {
		log.Fatalf("slow submit: %s", slowResp.Status)
	}
	slowDrained := make(chan struct{})
	go func() { // drain the stream; the job releases its slot at job_done
		defer close(slowDrained)
		io.Copy(io.Discard, slowResp.Body)
		slowResp.Body.Close()
	}()
	fmt.Println("\nburst tenant: slot held by a slow sweep, retrying a second job...")
	r4, err := submitWithRetry(ctx, base, "burst",
		`{"specs":[{"kind":"pingpong","platform":"sun-ethernet","tool":"p4","sizes":[0]}]}`)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, r4.Body)
	r4.Body.Close()
	fmt.Printf("burst tenant: second job admitted after backoff: %s\n", r4.Status)
	<-slowDrained

	// SIGTERM equivalent: cancel the serve context and wait for the
	// graceful drain.
	cancel()
	if err := <-done; err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("server drained cleanly")
}
