// streaming demonstrates the stream-first evaluation API: a
// heterogeneous sweep declared as data, consumed incrementally in spec
// order while later specs are still simulating, with the session's
// typed event stream narrating progress — and per-session quotas
// keeping a runaway tenant inside its budget without poisoning the
// cache it shares.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync/atomic"

	"tooleval"
)

func main() {
	ctx := context.Background()

	// Part 1: stream a sweep. The event sink counts simulations live;
	// the result loop sees each spec's outcome the moment it is ready
	// instead of waiting for the whole batch.
	var cells atomic.Int64
	sess := tooleval.NewSession(
		tooleval.WithParallelism(4),
		tooleval.WithEvents(func(ev tooleval.Event) {
			if _, ok := ev.(tooleval.CellEvent); ok {
				cells.Add(1)
			}
		}),
	)
	specs := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 4 << 10, 64 << 10}},
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{0, 4 << 10, 64 << 10}},
		{Kind: tooleval.KindBroadcast, Platform: "sun-ethernet", Tool: "express", Procs: 4, Sizes: []int{16 << 10}},
		{Kind: tooleval.KindApp, Platform: "alpha-fddi", Tool: "p4", App: "montecarlo", ProcsList: []int{1, 2, 4}, Scale: 0.1},
	}
	fmt.Println("Streaming a heterogeneous sweep (results arrive in spec order):")
	for res, err := range sess.Stream(ctx, specs) {
		if err != nil {
			log.Fatal(err)
		}
		switch res.Spec.Kind {
		case tooleval.KindApp:
			fmt.Printf("  %-9s %-12s %-8s %d sweep points (after %d cells)\n",
				res.Spec.Kind, res.Spec.Platform, res.Spec.Tool, len(res.App.Seconds), cells.Load())
		default:
			fmt.Printf("  %-9s %-12s %-8s slowest %.2f ms (after %d cells)\n",
				res.Spec.Kind, res.Spec.Platform, res.Spec.Tool, res.Times[len(res.Times)-1], cells.Load())
		}
	}
	hits, misses := sess.Stats()
	fmt.Printf("sweep done: %d simulated, %d from cache\n\n", misses, hits)

	// Part 2: quotas. A budgeted tenant sharing the first session's
	// cache gets exactly its allotment and a typed refusal afterwards —
	// and the shared cache stays clean for everyone else.
	tenant := tooleval.NewSession(
		tooleval.WithParallelism(1),
		tooleval.WithCache(sess.Cache()),
		tooleval.WithMaxCells(2),
	)
	fmt.Println("A tenant budgeted to 2 fresh simulations:")
	// The p4 curve is already cached — hits are free, budgets charge
	// only real simulations.
	if _, err := tenant.PingPong(ctx, "sun-ethernet", "p4", []int{0, 4 << 10, 64 << 10}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  cached p4 curve replayed for free")
	// A fresh sweep burns the budget after two cells.
	_, err := tenant.Ring(ctx, "sun-ethernet", "p4", 4, []int{0, 1 << 10, 2 << 10})
	var qe *tooleval.QuotaError
	if errors.As(err, &qe) {
		fmt.Printf("  fresh ring sweep refused: %s budget spent (%d/%d)\n", qe.Resource, qe.Used, qe.Limit)
	} else {
		log.Fatalf("expected a quota breach, got %v", err)
	}
	// The refusal was never memoized: the unbudgeted session computes
	// the same cell normally.
	if _, err := sess.Ring(ctx, "sun-ethernet", "p4", 4, []int{2 << 10}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  shared cache unpoisoned: the free session computed the refused cell")
}
