// profiles runs the complete multi-level methodology under all three
// built-in weight profiles and shows how the winner depends on who is
// asking — the paper's central point: "one needs to decide first the
// point of view ... in evaluating the performance of a given tool" (§2).
package main

import (
	"context"
	"fmt"
	"log"

	"tooleval"
)

func main() {
	ctx := context.Background()
	// One session: the three evaluations share its memoization cache,
	// so the TPL/APL simulations run once and every profile re-weights
	// the same cells.
	sess := tooleval.NewSession()
	fmt.Println("Multi-level evaluation of Express, p4 and PVM (1995)")
	fmt.Println("Same measurements, three points of view:")
	fmt.Println()

	// scale 0.3 keeps the APL sweep quick; pass 1.0 for paper scale.
	const scale = 0.3
	for _, profile := range tooleval.Profiles() {
		ev, err := sess.Evaluate(ctx, profile, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tooleval.RenderEvaluation(ev))
		fmt.Printf("=> %s's pick: %s\n\n", profile.Name, ev.Ranking[0])
	}

	hits, misses := sess.Stats()
	fmt.Printf("(scheduler: %d cells simulated, %d served from the session cache)\n\n", misses, hits)
	fmt.Println("p4 dominates both performance levels; PVM owns the development")
	fmt.Println("level (its WS-heavy usability column). Change the weights, change")
	fmt.Println("the story — which is exactly why the methodology is multi-level.")
}
