// customtool demonstrates the methodology's second objective: serving as
// "a unified platform for PDC tool developers for identifying the
// deficiencies and bottlenecks in existing systems and for defining the
// requirements of future systems" (§1).
//
// It defines mpi-lite, a hypothetical 1996 tool with p4-style direct
// streams plus a tree broadcast and built-in reductions, registers it in
// an evaluation session with WithTool, runs it through the same TPL
// benchmarks as the built-in tools, and shows where it would have landed
// in Table 4.
package main

import (
	"context"
	"fmt"
	"log"

	"tooleval"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/p4"
)

// mpiLite is the custom tool: p4's transport mechanisms with a leaner
// per-call path (what MPI implementations achieved shortly after the
// paper).
func mpiLite(env *tooleval.Env) (mpt.Tool, error) {
	par := p4.DefaultParams()
	par.SendFixedOps *= 0.7
	par.RecvFixedOps *= 0.7
	par.SendOpsPerByte *= 0.85
	return p4.NewWithParams(env, par)
}

func main() {
	ctx := context.Background()
	const platformKey = "sun-ethernet"
	sizes := []int{0, 4 << 10, 16 << 10, 64 << 10}

	// WithTool makes mpi-lite a first-class citizen of this session:
	// every benchmark method resolves it by name, next to the built-ins.
	sess := tooleval.NewSession(tooleval.WithTool("mpi-lite", mpiLite))

	fmt.Println("Evaluating a custom tool (mpi-lite) against the 1995 field")
	fmt.Printf("Platform: %s, send/receive round trip (ms)\n\n", platformKey)
	fmt.Printf("%-10s", "KB")
	names := append([]string{"mpi-lite"}, tooleval.ToolNames()...)
	for _, n := range names {
		fmt.Printf(" %10s", n)
	}
	fmt.Println()

	results := map[string][]float64{}
	for _, tool := range names {
		ms, err := sess.PingPong(ctx, platformKey, tool, sizes)
		if err != nil {
			log.Fatal(err)
		}
		results[tool] = ms
	}

	for i, size := range sizes {
		fmt.Printf("%-10d", size/1024)
		for _, n := range names {
			fmt.Printf(" %10.2f", results[n][i])
		}
		fmt.Println()
	}

	fmt.Println("\nmpi-lite inherits p4's transport but trims the per-call software")
	fmt.Println("path — exactly the kind of 'requirement for future systems' the")
	fmt.Println("methodology was built to expose. A year later, MPI did just that.")
}
