// sessions demonstrates the session-based evaluation API: two tenants
// share one process but nothing else. Each builds its own
// tooleval.Session — its own scheduler parallelism, memoization cache,
// statistics, and progress stream — and both evaluate concurrently.
// Virtual time makes every simulation cell deterministic, so the two
// tenants produce byte-identical reports even though one sweeps
// serially and the other fans out over four workers.
//
// It also shows the opt-in sharing story: a third session is handed the
// first tenant's cache with WithCache and serves its whole evaluation
// from memoized cells without simulating anything.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"tooleval"
)

func main() {
	ctx := context.Background()
	const scale = 0.3
	profile := tooleval.EndUserProfile()

	type tenant struct {
		name        string
		parallelism int
		cells       atomic.Int64
		sess        *tooleval.Session
		report      string
	}
	tenants := [2]*tenant{
		{name: "tenant-serial", parallelism: 1},
		{name: "tenant-parallel", parallelism: 4},
	}
	for _, t := range tenants {
		t := t
		t.sess = tooleval.NewSession(
			tooleval.WithParallelism(t.parallelism),
			tooleval.WithProgress(func(ev tooleval.CellEvent) {
				if !ev.Cached {
					t.cells.Add(1)
				}
			}),
		)
	}

	// Both tenants evaluate at the same time; neither can clobber the
	// other's parallelism, cache, or counters.
	errs := make(chan error, len(tenants))
	for _, t := range tenants {
		t := t
		//toolvet:ignore boundedgo one goroutine per fixed demo tenant (two), not data-sized fan-out
		go func() {
			ev, err := t.sess.Evaluate(ctx, profile, scale)
			if err == nil {
				t.report = tooleval.RenderEvaluation(ev)
			}
			errs <- err
		}()
	}
	for range tenants {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}

	for _, t := range tenants {
		hits, misses := t.sess.Stats()
		fmt.Printf("%s: parallelism %d, %d cells simulated (%d progress events), %d cache hits\n",
			t.name, t.sess.Parallelism(), misses, t.cells.Load(), hits)
	}
	if tenants[0].report == tenants[1].report {
		fmt.Println("reports: byte-identical across tenants (virtual time is deterministic)")
	} else {
		log.Fatal("reports differ — isolation or determinism is broken")
	}

	// Opt-in sharing: hand tenant-serial's cache to a new session. The
	// full evaluation replays from memoized cells — zero simulations.
	shared := tooleval.NewSession(tooleval.WithCache(tenants[0].sess.Cache()))
	before, beforeMisses := shared.Stats()
	if _, err := shared.Evaluate(ctx, profile, scale); err != nil {
		log.Fatal(err)
	}
	after, afterMisses := shared.Stats()
	fmt.Printf("shared-cache session: %d new simulations, %d cells served from the shared cache\n",
		afterMisses-beforeMisses, after-before)
}
