// Quickstart: run one SPMD program under all three message-passing tools
// on a simulated 1995 platform and compare the virtual execution times —
// the smallest possible use of the evaluation methodology.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tooleval"
)

func main() {
	ctx := context.Background()
	sess := tooleval.NewSession() // owns its scheduler, cache, and stats
	const platformKey = "sun-ethernet"
	pf, err := tooleval.GetPlatform(platformKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Platform: %s — %s\n\n", pf.Name, pf.Description)

	// The program: rank 0 scatters a vector, everyone sums its share,
	// and a global sum (with PVM's manual fallback) combines the parts.
	body := func(c *tooleval.Ctx) (any, error) {
		const n = 64 * 1024
		share := n / c.Size()
		local := make([]float64, 1)
		for i := 0; i < share; i++ {
			local[0] += float64(c.Rank()*share + i)
		}
		c.Charge(float64(3 * share)) // the additions, on 1995 silicon
		total, err := sumAcross(c, local)
		if err != nil {
			return nil, err
		}
		return total[0], nil
	}

	fmt.Printf("%-10s %-14s %-12s\n", "tool", "virtual time", "result")
	for _, tool := range sess.Tools() {
		res, err := sess.Run(ctx, platformKey, tool, tooleval.RunConfig{Procs: 4}, body)
		if err != nil {
			log.Fatalf("%s: %v", tool, err)
		}
		fmt.Printf("%-10s %-14v %-12.0f\n", tool, res.Elapsed, res.Value.(float64))
	}
	fmt.Println("\nSame program, same platform, same answer — different tool overheads.")
	fmt.Println("That delta is what the multi-level methodology quantifies.")
}

func sumAcross(c *tooleval.Ctx, local []float64) ([]float64, error) {
	out, err := c.Comm.GlobalSumFloat64(local)
	if err == nil {
		return out, nil
	}
	if !errors.Is(err, tooleval.ErrNotSupported) {
		return nil, err
	}
	// PVM has no global operation (Table 1) — gather by hand like a 1995
	// application had to.
	const tag = 99
	if c.Rank() == 0 {
		acc := local[0]
		for i := 1; i < c.Size(); i++ {
			msg, err := c.Comm.Recv(tooleval.AnySource, tag)
			if err != nil {
				return nil, err
			}
			var v float64
			if _, err := fmt.Sscan(string(msg.Data), &v); err != nil {
				return nil, err
			}
			acc += v
		}
		res, err := c.Comm.Bcast(0, tag, []byte(fmt.Sprint(acc)))
		if err != nil {
			return nil, err
		}
		var total float64
		if _, err := fmt.Sscan(string(res), &total); err != nil {
			return nil, err
		}
		return []float64{total}, nil
	}
	if err := c.Comm.Send(0, tag, []byte(fmt.Sprint(local[0]))); err != nil {
		return nil, err
	}
	res, err := c.Comm.Bcast(0, tag, nil)
	if err != nil {
		return nil, err
	}
	var total float64
	if _, err := fmt.Sscan(string(res), &total); err != nil {
		return nil, err
	}
	return []float64{total}, nil
}
