// wancompute reproduces the paper's wide-area computing claim:
// "distributed computing is feasible across wide area networks and can
// outperform LANs if higher speed network technology such as ATM is
// used" (§3.3). It runs the compute-heavy applications on the NYNET ATM
// WAN (Syracuse-Rome) and on the local shared Ethernet and compares.
package main

import (
	"context"
	"fmt"
	"log"

	"tooleval"
)

func main() {
	ctx := context.Background()
	sess := tooleval.NewSession()
	const scale = 0.5
	procs := []int{1, 2, 4} // NYNET sweeps 1-4 in the paper (Fig 7)

	fmt.Println("Can a 1995 WAN beat a 1995 LAN? (virtual seconds, p4)")
	fmt.Println()
	fmt.Printf("%-12s %-8s %12s %16s %10s\n", "app", "procs", "SUN/Ethernet", "SUN/ATM-WAN", "WAN wins?")
	wanWins := 0
	total := 0
	for _, app := range []string{"jpeg", "montecarlo", "psrs"} {
		eth, err := sess.RunApp(ctx, "sun-ethernet", "p4", app, procs, scale)
		if err != nil {
			log.Fatal(err)
		}
		wan, err := sess.RunApp(ctx, "sun-atm-wan", "p4", app, procs, scale)
		if err != nil {
			log.Fatal(err)
		}
		for i := range procs {
			verdict := "no"
			if wan.Seconds[i] < eth.Seconds[i] {
				verdict = "yes"
				wanWins++
			}
			total++
			fmt.Printf("%-12s %-8d %12.3f %16.3f %10s\n", app, procs[i], eth.Seconds[i], wan.Seconds[i], verdict)
		}
	}
	fmt.Println()
	fmt.Printf("WAN outperformed the local Ethernet in %d of %d configurations.\n", wanWins, total)
	fmt.Println("(The IPX stations on NYNET are also faster than the ELCs — the")
	fmt.Println("paper's point stands: with ATM, geography stops being the bottleneck.)")

	// The latency side of the story: short-message round trips still pay
	// the ~600us propagation to Rome and back.
	lan, err := sess.PingPong(ctx, "sun-atm-lan", "p4", []int{0})
	if err != nil {
		log.Fatal(err)
	}
	wan, err := sess.PingPong(ctx, "sun-atm-wan", "p4", []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n0-byte p4 round trip: ATM LAN %.2f ms, NYNET %.2f ms (+%.0f%% — propagation, not software).\n",
		lan[0], wan[0], 100*(wan[0]-lan[0])/lan[0])
}
