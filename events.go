package tooleval

import "context"

// Event is the sum of everything a session reports through WithEvents:
// cell completions ([CellEvent]), experiment-spec lifecycle from the
// batch surface ([SpecStart], [SpecDone]), and table/figure phase
// progress from the regeneration methods ([PhaseStart], [PhaseDone]).
// Switch on the concrete type:
//
//	tooleval.WithEvents(func(ev tooleval.Event) {
//		switch e := ev.(type) {
//		case tooleval.PhaseStart:
//			log.Printf("%s ...", e.Phase)
//		case tooleval.CellEvent:
//			// one simulation cell resolved
//		}
//	})
//
// Events are emitted from whichever goroutine resolved the work, so a
// sink must be safe for concurrent use. The set of Event types may
// grow; sinks should ignore types they do not recognize.
type Event interface {
	// event marks the closed sum; only types in this package implement
	// it.
	event()
}

func (CellEvent) event()  {}
func (SpecStart) event()  {}
func (SpecDone) event()   {}
func (PhaseStart) event() {}
func (PhaseDone) event()  {}

// SpecStart reports that Submit, SubmitAll, or Stream has admitted the
// spec at Index of its batch. Every submitted spec is announced exactly
// once — including specs that fail validation or arrive after the batch
// was cancelled — so a sink can count Start/Done pairs against the
// batch size.
type SpecStart struct {
	// Index is the spec's position in the submitted batch.
	Index int
	// Spec echoes the experiment.
	Spec ExperimentSpec
}

// SpecDone reports that a batch spec finished; Err is the spec's
// outcome (nil on success; the validation error or ctx error for specs
// that never ran). Every SpecStart is matched by exactly one SpecDone.
// Specs complete in scheduler order, not batch order — the result
// iterators re-establish batch order, the event stream deliberately
// does not.
type SpecDone struct {
	Index int
	Spec  ExperimentSpec
	Err   error
}

// PhaseStart reports a table/figure regeneration beginning. Phase is an
// experiment id ("table3", "table4", "fig2".."fig8") or "report" for
// the full multi-level evaluation. Phases nest: Table4 and the report
// announce themselves and then the Table 3 / Figure 2-4 phases they
// regenerate inside (memoization makes the nested phases nearly free
// when their cells were already simulated).
type PhaseStart struct {
	Phase string
}

// PhaseDone reports a regeneration finishing with its outcome.
type PhaseDone struct {
	Phase string
	Err   error
}

// WithEvents installs fn as a session event sink: every [Event] the
// session produces is passed to fn. Repeating the option adds sinks.
// fn runs on whichever goroutine produced the event and must be safe
// for concurrent use; it must not call back into the Session.
//
// WithEvents subsumes [WithProgress]: a progress callback is an event
// sink that only sees [CellEvent]s.
func WithEvents(fn func(Event)) Option {
	return func(c *sessionConfig) {
		if fn != nil {
			c.sinks = append(c.sinks, fn)
		}
	}
}

// eventSinkKey carries a per-batch event sink through a Context.
type eventSinkKey struct{}

// EventContext returns a context that routes every [Event] produced by
// session work scheduled under it to fn, in addition to the session's
// [WithEvents] sinks. Unlike WithEvents — fixed at construction and
// fired for everything the session ever does — a context sink is
// scoped to one call tree: two concurrent [Session.Stream] batches on
// one session each see exactly their own SpecStart/SpecDone pairs,
// phase events, and cell completions, which is what lets a server
// multiplex many client streams over one per-tenant session.
//
// fn runs on whichever goroutine produced the event and must be safe
// for concurrent use; it must not call back into the Session. Cells
// coalesced onto another batch's in-flight simulation are still
// reported to this batch's sink (cached=true), exactly as they are to
// WithEvents sinks.
func EventContext(ctx context.Context, fn func(Event)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, eventSinkKey{}, fn)
}

// sinkFrom extracts the per-batch sink, if ctx carries one.
func sinkFrom(ctx context.Context) func(Event) {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(eventSinkKey{}).(func(Event))
	return fn
}
