package tooleval

import (
	"context"
	"fmt"
)

// Experiment kinds accepted by ExperimentSpec.Kind.
const (
	// KindPingPong sweeps the send/receive round trip over Sizes.
	KindPingPong = "pingpong"
	// KindBroadcast sweeps the collective broadcast over Sizes at Procs
	// ranks.
	KindBroadcast = "broadcast"
	// KindRing sweeps the ring/loop benchmark over Sizes at Procs ranks.
	KindRing = "ring"
	// KindGlobalSum sweeps the vector global sum over Sizes (vector
	// lengths) at Procs ranks.
	KindGlobalSum = "globalsum"
	// KindApp sweeps a suite application over ProcsList at Scale.
	KindApp = "app"
	// KindEvaluate runs the full multi-level methodology under Profile
	// at Scale.
	KindEvaluate = "evaluate"
)

// ExperimentSpec declares one experiment of a heterogeneous sweep as
// data: a TPL micro-benchmark, an APL application sweep, or a complete
// evaluation. Which fields apply depends on Kind (see the Kind*
// constants); unused fields are ignored.
type ExperimentSpec struct {
	// Kind selects the experiment type (required).
	Kind string
	// Platform is the platform catalog key (all kinds except
	// "evaluate", which fixes the paper's platforms).
	Platform string
	// Tool is the message-passing tool: built-in or registered via
	// WithTool (all kinds except "evaluate").
	Tool string
	// Procs is the rank count ("broadcast", "ring", "globalsum").
	Procs int
	// Sizes are message sizes in bytes, or vector lengths for
	// "globalsum" (the TPL kinds).
	Sizes []int
	// App names the suite application ("app"): "jpeg", "fft2d",
	// "montecarlo", "psrs".
	App string
	// ProcsList is the processor sweep ("app").
	ProcsList []int
	// Scale shrinks the paper-scale workload ("app", "evaluate");
	// 1.0 reproduces the paper.
	Scale float64
	// Profile is the weight-profile name ("evaluate"); empty selects
	// "end-user".
	Profile string
}

func (spec ExperimentSpec) String() string {
	switch spec.Kind {
	case KindApp:
		return fmt.Sprintf("%s %s/%s/%s scale=%g", spec.Kind, spec.Platform, spec.Tool, spec.App, spec.Scale)
	case KindEvaluate:
		profile := spec.Profile
		if profile == "" {
			profile = "end-user"
		}
		return fmt.Sprintf("%s profile=%s scale=%g", spec.Kind, profile, spec.Scale)
	default:
		return fmt.Sprintf("%s %s/%s procs=%d", spec.Kind, spec.Platform, spec.Tool, spec.Procs)
	}
}

// Result is the outcome of one ExperimentSpec. Exactly one of the
// payload fields is populated, matching the spec's Kind.
type Result struct {
	// Spec echoes the submitted experiment.
	Spec ExperimentSpec
	// Times holds the TPL curve in milliseconds, one entry per size
	// ("pingpong", "broadcast", "ring", "globalsum").
	Times []float64
	// App holds the application sweep ("app").
	App AppMeasurement
	// Evaluation holds the full methodology outcome ("evaluate").
	Evaluation *Evaluation
}

// Submit runs a heterogeneous batch of experiments through one ordered
// fan-out: every cell of every spec schedules onto the session's worker
// pool concurrently (bounded by WithParallelism and served from the
// session cache), and the results come back in spec order, bit-identical
// to running the specs one by one. It is the declarative way to express
// "the whole sweep" — callers build specs as data, Submit owns the
// scheduling.
//
// Submit is [Session.Stream] consumed to the first failure: the
// lowest-indexed failing spec aborts the batch (specs still in flight
// are cancelled), mirroring a serial loop's early exit; a cancelled ctx
// aborts it with ctx.Err(). Callers who want the rest of the batch
// despite a failure use [Session.SubmitAll]; callers who want results
// as they complete range over Stream directly.
func (s *Session) Submit(ctx context.Context, specs []ExperimentSpec) ([]Result, error) {
	// Validate the whole batch up front so a malformed spec is reported
	// before any simulation starts, whatever its position.
	for i, spec := range specs {
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("tooleval: spec %d: %w", i, err)
		}
	}
	results := make([]Result, 0, len(specs))
	for res, err := range s.Stream(ctx, specs) {
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func (spec ExperimentSpec) validate() error {
	switch spec.Kind {
	case KindPingPong:
		if len(spec.Sizes) == 0 {
			return fmt.Errorf("%s: Sizes required", spec.Kind)
		}
	case KindBroadcast, KindRing, KindGlobalSum:
		if len(spec.Sizes) == 0 {
			return fmt.Errorf("%s: Sizes required", spec.Kind)
		}
		if spec.Procs < 2 {
			return fmt.Errorf("%s: Procs = %d, need >= 2", spec.Kind, spec.Procs)
		}
	case KindApp:
		if spec.App == "" {
			return fmt.Errorf("%s: App required", spec.Kind)
		}
		if len(spec.ProcsList) == 0 {
			return fmt.Errorf("%s: ProcsList required", spec.Kind)
		}
		if spec.Scale <= 0 {
			return fmt.Errorf("%s: Scale = %g, need > 0", spec.Kind, spec.Scale)
		}
	case KindEvaluate:
		if spec.Scale <= 0 {
			return fmt.Errorf("%s: Scale = %g, need > 0", spec.Kind, spec.Scale)
		}
		if spec.Profile != "" {
			if _, err := ProfileByName(spec.Profile); err != nil {
				return fmt.Errorf("%s: %w", spec.Kind, err)
			}
		}
	case "":
		return fmt.Errorf("missing Kind")
	default:
		return fmt.Errorf("unknown Kind %q", spec.Kind)
	}
	return nil
}

func (s *Session) runSpec(ctx context.Context, spec ExperimentSpec) (Result, error) {
	res := Result{Spec: spec}
	var err error
	switch spec.Kind {
	case KindPingPong:
		res.Times, err = s.PingPong(ctx, spec.Platform, spec.Tool, spec.Sizes)
	case KindBroadcast:
		res.Times, err = s.Broadcast(ctx, spec.Platform, spec.Tool, spec.Procs, spec.Sizes)
	case KindRing:
		res.Times, err = s.Ring(ctx, spec.Platform, spec.Tool, spec.Procs, spec.Sizes)
	case KindGlobalSum:
		res.Times, err = s.GlobalSum(ctx, spec.Platform, spec.Tool, spec.Procs, spec.Sizes)
	case KindApp:
		res.App, err = s.RunApp(ctx, spec.Platform, spec.Tool, spec.App, spec.ProcsList, spec.Scale)
	case KindEvaluate:
		profileName := spec.Profile
		if profileName == "" {
			profileName = "end-user"
		}
		var profile WeightProfile
		profile, err = ProfileByName(profileName) // validated by Submit
		if err == nil {
			res.Evaluation, err = s.Evaluate(ctx, profile, spec.Scale)
		}
	}
	if err != nil {
		return res, fmt.Errorf("tooleval: %s: %w", spec, err)
	}
	return res, nil
}
