package tooleval_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tooleval"
	"tooleval/internal/runner"
)

// TestRunAppEnforcesPortMatrix: RunApp must route through the same
// §3.1 port gate as the TPL benchmark methods — no fabricated curves
// for a port that never existed (Express had no NYNET port).
func TestRunAppEnforcesPortMatrix(t *testing.T) {
	sess := tooleval.NewSession()
	_, err := sess.RunApp(context.Background(), "sun-atm-wan", "express", "jpeg", []int{1, 2}, 0.1)
	if err == nil {
		t.Fatal("RunApp must reject express on NYNET")
	}
	if !strings.Contains(err.Error(), "no express port") {
		t.Fatalf("RunApp error = %v, want the port-matrix rejection", err)
	}
	if hits, misses := sess.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("rejected RunApp still simulated: %d hits / %d misses", hits, misses)
	}
	// Custom tools are ported everywhere, including through RunApp.
	custom := tooleval.NewSession(tooleval.WithTool("mpi-lite", mpiLite))
	if _, err := custom.RunApp(context.Background(), "sun-atm-wan", "mpi-lite", "montecarlo", []int{1}, 0.05); err != nil {
		t.Fatalf("custom tool must pass the RunApp port gate: %v", err)
	}
}

func TestWithMaxCellsBreach(t *testing.T) {
	cache := tooleval.NewCache()
	sess := tooleval.NewSession(
		tooleval.WithParallelism(1),
		tooleval.WithCache(cache),
		tooleval.WithMaxCells(3),
	)
	ctx := context.Background()
	sizes := []int{0, 1 << 10, 2 << 10, 4 << 10, 8 << 10}
	_, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if !errors.Is(err, tooleval.ErrQuotaExceeded) {
		t.Fatalf("over-budget sweep = %v, want ErrQuotaExceeded", err)
	}
	var qe *tooleval.QuotaError
	if !errors.As(err, &qe) || qe.Resource != "cells" {
		t.Fatalf("error = %v, want *QuotaError over cells", err)
	}
	if _, misses := sess.Stats(); misses != 3 {
		t.Fatalf("breached session simulated %d cells, want exactly the budget 3", misses)
	}
	// The shared cache is not poisoned: an unbudgeted session completes
	// the same sweep, re-using the 3 cells the first session paid for.
	free := tooleval.NewSession(tooleval.WithParallelism(1), tooleval.WithCache(cache))
	times, err := free.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatalf("shared cache poisoned by quota breach: %v", err)
	}
	if len(times) != len(sizes) {
		t.Fatalf("got %d times, want %d", len(times), len(sizes))
	}
	// Counters travel with the shared cache: 3 misses paid by the
	// quota'd session, then 3 hits + 2 fresh misses from this sweep.
	if hits, misses := free.Stats(); hits != 3 || misses != int64(len(sizes)) {
		t.Fatalf("shared-cache stats after free sweep = %d hits / %d misses, want 3 / %d", hits, misses, len(sizes))
	}
}

func TestWithMaxVirtualTimeBreach(t *testing.T) {
	// One 64KB ping-pong on shared Ethernet covers ~100ms of virtual
	// time, so a 1ms budget admits the first cell (budgets are checked
	// before scheduling) and refuses the second.
	sess := tooleval.NewSession(
		tooleval.WithParallelism(1),
		tooleval.WithMaxVirtualTime(time.Millisecond),
	)
	_, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", []int{64 << 10, 32 << 10})
	if !errors.Is(err, tooleval.ErrQuotaExceeded) {
		t.Fatalf("over-budget sweep = %v, want ErrQuotaExceeded", err)
	}
	var qe *tooleval.QuotaError
	if !errors.As(err, &qe) || qe.Resource != "virtual time" {
		t.Fatalf("error = %v, want *QuotaError over virtual time", err)
	}
	if _, misses := sess.Stats(); misses != 1 {
		t.Fatalf("simulated %d cells, want 1 (first admitted, second refused)", misses)
	}
}

func TestQuotaAppliesToDirectRuns(t *testing.T) {
	// Session.Run goes through Executor.Do: a spent budget refuses it.
	sess := tooleval.NewSession(tooleval.WithParallelism(1), tooleval.WithMaxCells(1))
	ctx := context.Background()
	if _, err := sess.PingPong(ctx, "sun-ethernet", "p4", []int{0}); err != nil {
		t.Fatal(err)
	}
	_, err := sess.Run(ctx, "sun-ethernet", "p4", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil })
	if !errors.Is(err, tooleval.ErrQuotaExceeded) {
		t.Fatalf("Run past budget = %v, want ErrQuotaExceeded", err)
	}
}

func TestWithCacheCapacityBoundsSessionCache(t *testing.T) {
	sess := tooleval.NewSession(tooleval.WithParallelism(1), tooleval.WithCacheCapacity(2))
	sizes := []int{0, 1 << 10, 2 << 10, 4 << 10}
	if _, err := sess.PingPong(context.Background(), "sun-ethernet", "p4", sizes); err != nil {
		t.Fatal(err)
	}
	if got := sess.Cache().Len(); got != 2 {
		t.Fatalf("session cache holds %d cells, want the capacity 2", got)
	}
	if _, misses := sess.Stats(); misses != int64(len(sizes)) {
		t.Fatalf("simulated %d cells, want %d", misses, len(sizes))
	}
}

func TestPhaseEventsNest(t *testing.T) {
	var mu sync.Mutex
	var order []string
	sess := tooleval.NewSession(tooleval.WithEvents(func(ev tooleval.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case tooleval.PhaseStart:
			order = append(order, "start:"+e.Phase)
		case tooleval.PhaseDone:
			if e.Err != nil {
				order = append(order, "fail:"+e.Phase)
			} else {
				order = append(order, "done:"+e.Phase)
			}
		}
	}))
	if _, err := sess.Table4(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) == 0 || order[0] != "start:table4" || order[len(order)-1] != "done:table4" {
		t.Fatalf("phase order = %v, want table4 bracketing its nested phases", order)
	}
	seen := map[string]bool{}
	for _, ev := range order {
		seen[ev] = true
	}
	for _, want := range []string{"start:table3", "done:table3", "start:fig2", "done:fig2", "start:fig3", "done:fig3", "start:fig4", "done:fig4"} {
		if !seen[want] {
			t.Fatalf("phase stream missing %q: %v", want, order)
		}
	}
}

// fakeExecutor is a from-scratch Executor built only from the public
// surface: a serial backend with its own memoization. It proves the
// seam — Session routes every cell, direct run, and fan-out through
// whatever implementation WithExecutor supplies.
type fakeExecutor struct {
	mu      sync.Mutex
	done    map[tooleval.Cell]float64
	hits    int64
	misses  int64
	doCalls int64
	observe tooleval.Observer
	cache   *tooleval.Cache
}

func newFakeExecutor() *fakeExecutor {
	return &fakeExecutor{done: map[tooleval.Cell]float64{}, cache: tooleval.NewCache()}
}

func (e *fakeExecutor) Memo(ctx context.Context, key tooleval.Cell, compute func() (tooleval.CellResult, error)) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.done[key]; ok {
		e.hits++
		if e.observe != nil {
			e.observe(ctx, key, true, nil)
		}
		return v, nil
	}
	res, err := compute()
	if err != nil {
		return 0, err
	}
	e.done[key] = res.Value
	e.misses++
	if e.observe != nil {
		e.observe(ctx, key, false, nil)
	}
	return res.Value, nil
}

func (e *fakeExecutor) Do(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	e.doCalls++
	e.mu.Unlock()
	return fn()
}

func (e *fakeExecutor) Map(ctx context.Context, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func (e *fakeExecutor) Workers() int { return 1 }
func (e *fakeExecutor) Stats() tooleval.CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return tooleval.CacheStats{Hits: e.hits, Misses: e.misses}
}
func (e *fakeExecutor) Cache() *tooleval.Cache       { return e.cache }
func (e *fakeExecutor) Observe(fn tooleval.Observer) { e.observe = fn }

func TestWithExecutorRoutesEverything(t *testing.T) {
	x := newFakeExecutor()
	var cells int
	sess := tooleval.NewSession(
		tooleval.WithExecutor(x),
		tooleval.WithProgress(func(tooleval.CellEvent) { cells++ }), // serial backend: no mutex needed
	)
	ctx := context.Background()
	sizes := []int{0, 2 << 10}
	times, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Results through the custom backend match the built-in pool's.
	reference, err := tooleval.NewSession().PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if times[i] != reference[i] {
			t.Fatalf("custom backend diverged: %v vs %v", times, reference)
		}
	}
	if hits, misses := sess.Stats(); misses != int64(len(sizes)) || hits != 0 {
		t.Fatalf("Stats through custom backend = %d hits / %d misses", hits, misses)
	}
	if cells != len(sizes) {
		t.Fatalf("events through custom backend: %d cells, want %d", cells, len(sizes))
	}
	// Replays hit the custom backend's memoization.
	if _, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes); err != nil {
		t.Fatal(err)
	}
	if hits, _ := sess.Stats(); hits != int64(len(sizes)) {
		t.Fatalf("custom backend hits = %d, want %d", hits, len(sizes))
	}
	// Direct runs route through the backend's Do.
	if _, err := sess.Run(ctx, "sun-ethernet", "p4", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if x.doCalls != 1 {
		t.Fatalf("Do calls = %d, want 1", x.doCalls)
	}
	// Quotas wrap custom executors too.
	limited := tooleval.NewSession(tooleval.WithExecutor(newFakeExecutor()), tooleval.WithMaxCells(1))
	if _, err := limited.PingPong(ctx, "sun-ethernet", "p4", sizes); !errors.Is(err, tooleval.ErrQuotaExceeded) {
		t.Fatalf("quota over custom executor = %v, want ErrQuotaExceeded", err)
	}
}

// TestWithExecutorAppliesCacheCapacity: a capacity bound must reach a
// caller-supplied executor's cache instead of being silently dropped
// (the executor cannot be rebuilt, but SetCapacity applies to any
// cache).
func TestWithExecutorAppliesCacheCapacity(t *testing.T) {
	x := runner.New(2)
	sess := tooleval.NewSession(tooleval.WithExecutor(x), tooleval.WithCacheCapacity(5))
	if got := x.Cache().Capacity(); got != 5 {
		t.Fatalf("executor cache capacity = %d, want 5 (WithCacheCapacity applied)", got)
	}
	if sess.Cache().Capacity() != 5 {
		t.Fatalf("session cache capacity = %d, want 5", sess.Cache().Capacity())
	}
}

// TestWithExecutorConflictsPanic: combining WithCache (or
// WithShardedExecutor) with WithExecutor is a configuration bug that
// must fail loudly at construction, not be silently ignored.
func TestWithExecutorConflictsPanic(t *testing.T) {
	mustPanic := func(name string, build func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: NewSession accepted a conflicting configuration", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "WithExecutor") {
				t.Fatalf("%s: panic %v does not name the conflict", name, r)
			}
		}()
		build()
	}
	mustPanic("WithCache+WithExecutor", func() {
		tooleval.NewSession(tooleval.WithExecutor(runner.New(1)), tooleval.WithCache(tooleval.NewCache()))
	})
	mustPanic("WithShardedExecutor+WithExecutor", func() {
		tooleval.NewSession(tooleval.WithExecutor(runner.New(1)), tooleval.WithShardedExecutor(4))
	})
}

// TestWithShardedExecutorMatchesSinglePool: the sharded backend is a
// drop-in — same results, same memoization behavior, budgets and events
// still apply — only the scheduling topology changes.
func TestWithShardedExecutorMatchesSinglePool(t *testing.T) {
	ctx := context.Background()
	sizes := []int{0, 1 << 10, 4 << 10}
	var cells atomic.Int64
	sess := tooleval.NewSession(
		tooleval.WithShardedExecutor(4),
		tooleval.WithParallelism(8),
		tooleval.WithProgress(func(tooleval.CellEvent) { cells.Add(1) }),
	)
	if got := sess.Parallelism(); got != 8 {
		t.Fatalf("Parallelism = %d, want 8 (4 shards × 2)", got)
	}
	times, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := tooleval.NewSession(tooleval.WithParallelism(1)).PingPong(ctx, "sun-ethernet", "p4", sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if times[i] != reference[i] {
			t.Fatalf("sharded backend diverged from serial: %v vs %v", times, reference)
		}
	}
	if got := cells.Load(); got != int64(len(sizes)) {
		t.Fatalf("events through sharded backend: %d cells, want %d", got, len(sizes))
	}
	// Replays are hits on the shared striped cache.
	if _, err := sess.PingPong(ctx, "sun-ethernet", "p4", sizes); err != nil {
		t.Fatal(err)
	}
	if hits, misses := sess.Stats(); hits != int64(len(sizes)) || misses != int64(len(sizes)) {
		t.Fatalf("sharded Stats = %d hits / %d misses, want %d/%d", hits, misses, len(sizes), len(sizes))
	}
	// Quotas wrap the sharded backend like any executor.
	limited := tooleval.NewSession(tooleval.WithShardedExecutor(2), tooleval.WithMaxCells(1))
	if _, err := limited.PingPong(ctx, "sun-ethernet", "p4", sizes); !errors.Is(err, tooleval.ErrQuotaExceeded) {
		t.Fatalf("quota over sharded executor = %v, want ErrQuotaExceeded", err)
	}
}

// TestWithShardedExecutorSharesCache: a shared (striped) cache pools
// results between a sharded session and a single-pool session.
func TestWithShardedExecutorSharesCache(t *testing.T) {
	ctx := context.Background()
	cache := tooleval.NewStripedCache(8)
	sizes := []int{0, 2 << 10}
	sharded := tooleval.NewSession(tooleval.WithShardedExecutor(2), tooleval.WithCache(cache))
	if _, err := sharded.PingPong(ctx, "sun-ethernet", "p4", sizes); err != nil {
		t.Fatal(err)
	}
	pooled := tooleval.NewSession(tooleval.WithParallelism(2), tooleval.WithCache(cache))
	if _, err := pooled.PingPong(ctx, "sun-ethernet", "p4", sizes); err != nil {
		t.Fatal(err)
	}
	if hits, misses := pooled.Stats(); misses != int64(len(sizes)) || hits != int64(len(sizes)) {
		t.Fatalf("shared striped cache stats = %d hits / %d misses, want %d/%d", hits, misses, len(sizes), len(sizes))
	}
}
