package tooleval_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"tooleval"
	"tooleval/internal/faults"
)

// The root-package half of the seeded chaos suite: inject faults into
// the result tier mid-sweep and assert the reports a session serves are
// byte-identical to a fault-free run. The Tier contract says a tier can
// only change cost, never results — a faulted lookup is a miss that
// re-simulates, a faulted fill is a cell that goes unpersisted — and
// this is where that contract is pinned end to end.

func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	seed, pinned := faults.PickSeed("TOOLEVAL_CHAOS_SEED", testing.Short())
	if pinned {
		t.Logf("chaos seed %d (pinned)", seed)
	} else {
		t.Logf("chaos seed %d (rerun with TOOLEVAL_CHAOS_SEED=%d to reproduce)", seed, seed)
	}
	return seed
}

var chaosBatch = []tooleval.ExperimentSpec{
	{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 64, 1024}},
	{Kind: tooleval.KindRing, Platform: "sun-atm-lan", Tool: "pvm", Procs: 4, Sizes: []int{64}},
	{Kind: tooleval.KindApp, Platform: "sun-ethernet", Tool: "p4", App: "fft2d", ProcsList: []int{1, 2, 4}, Scale: 1},
}

// chaosReport renders a batch outcome to canonical bytes for
// byte-identity comparison.
func chaosReport(t *testing.T, results []tooleval.Result, errs []error) []byte {
	t.Helper()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return blob
}

// TestChaosFaultyTierKeepsReportsByteIdentical wires a seeded
// fault-injecting decorator between the session cache and the durable
// store — lookups randomly forced to miss, fills randomly dropped,
// seeded latency on both — and asserts the reports are byte-identical
// to a fault-free session's, sweep after sweep.
func TestChaosFaultyTierKeepsReportsByteIdentical(t *testing.T) {
	seed := chaosSeed(t)

	clean := tooleval.NewSession()
	wantRes, wantErrs := clean.SubmitAll(bg, chaosBatch)
	want := chaosReport(t, wantRes, wantErrs)
	clean.Close()

	dir := t.TempDir()
	st, err := tooleval.OpenResultStore(dir)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	sched := faults.NewSchedule(seed, faults.Plan{
		LookupMiss:  0.4,
		FillDrop:    0.4,
		Latency:     200 * time.Microsecond,
		LatencyRate: 0.2,
	})
	tier := faults.NewTier(st, sched)
	cache := tooleval.NewCache()
	cache.SetTier(tier)
	sess := tooleval.NewSession(tooleval.WithCache(cache))

	// Two sweeps through the faulted tier: the first simulates (some
	// fills dropped), the second replays from cache and store (some
	// lookups forced back to simulation). Both must match the clean run.
	for pass := 1; pass <= 2; pass++ {
		res, errs := sess.SubmitAll(bg, chaosBatch)
		got := chaosReport(t, res, errs)
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: faulted report differs from fault-free run\nfaulted:  %.200s\nclean: %.200s",
				pass, got, want)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store Close: %v", err)
	}
	stats := tier.Stats()
	if stats.LookupFaults == 0 && stats.FillFaults == 0 {
		t.Fatalf("no faults injected (stats %+v): the chaos seam is not wired", stats)
	}
	t.Logf("tier faults: %d/%d lookups, %d/%d fills",
		stats.LookupFaults, stats.Lookups, stats.FillFaults, stats.Fills)

	// Whatever subset of cells survived the dropped fills, a fresh
	// session replaying from the store must still render the exact same
	// bytes — stored cells are indistinguishable from simulated ones.
	replay := tooleval.NewSession(tooleval.WithResultStore(dir))
	res, errs := replay.SubmitAll(bg, chaosBatch)
	got := chaosReport(t, res, errs)
	if !bytes.Equal(got, want) {
		t.Fatalf("replay from post-chaos store differs from fault-free run")
	}
	if err := replay.Close(); err != nil {
		t.Fatalf("replay Close: %v", err)
	}
}
