// Command toolbenchd serves the tool-evaluation methodology as a
// long-running multi-tenant HTTP daemon. Tenants POST ExperimentSpec
// batches to /v1/jobs, stream the sweep lifecycle back as server-sent
// events, and fetch the final report from /v1/jobs/{id}/report; see
// internal/server for the API and README.md for examples.
//
// SIGTERM or SIGINT starts a graceful drain: the daemon stops
// admitting jobs, finishes in-flight sweeps (bounded by
// -drain-timeout), flushes the durable store, and exits 0. A second
// signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tooleval/internal/server"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("toolbenchd: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("toolbenchd", flag.ExitOnError)
	cfg := server.Config{
		Tiers:       make(map[string]server.QuotaTier),
		TenantTiers: make(map[string]string),
		Logf:        log.Printf,
	}
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.Parallelism, "j", 0, "per-tenant worker parallelism (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Shards, "shards", 0, "per-tenant sharded executor shards (0 = single pool)")
	fs.IntVar(&cfg.CacheStripes, "cache-stripes", 0, "shared cache lock stripes (0 = default)")
	fs.IntVar(&cfg.CacheCapacity, "cache-cap", 0, "shared cache capacity in cells, LRU-evicted (0 = unbounded)")
	fs.StringVar(&cfg.StoreDir, "store", "", "durable result store directory (empty = memory only)")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 0, "graceful drain deadline (0 = 30s)")
	fs.IntVar(&cfg.MaxJobsRetained, "retain-jobs", 0, "finished jobs retained per tenant (0 = 64)")
	fs.IntVar(&cfg.MaxSpecsPerJob, "max-specs", 0, "largest accepted batch (0 = 1024)")
	fs.StringVar(&cfg.DefaultTier, "default-tier", "", "tier for unmapped tenants (empty = unlimited)")
	fs.Func("tier", "quota tier `name=cells:N,vt:DUR,jobs:N` (repeatable; omitted budgets are unlimited)",
		func(v string) error {
			t, err := server.ParseTier(v)
			if err != nil {
				return err
			}
			cfg.Tiers[t.Name] = t
			return nil
		})
	fs.Func("tenant-tier", "map `tenant=tier` (repeatable)",
		func(v string) error {
			tenant, tier, err := server.ParseTenantTier(v)
			if err != nil {
				return err
			}
			cfg.TenantTiers[tenant] = tier
			return nil
		})
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: toolbenchd [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Serve the evaluation methodology as a multi-tenant HTTP daemon.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	// First SIGTERM/SIGINT cancels ctx and starts the drain; a second
	// one restores default handling, so it kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	return srv.ListenAndServe(ctx)
}
