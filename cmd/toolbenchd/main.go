// Command toolbenchd serves the tool-evaluation methodology as a
// long-running multi-tenant HTTP daemon. Tenants POST ExperimentSpec
// batches to /v1/jobs, stream the sweep lifecycle back as server-sent
// events, and fetch the final report from /v1/jobs/{id}/report; see
// internal/server for the API and README.md for examples.
//
// SIGTERM or SIGINT starts a graceful drain: the daemon stops
// admitting jobs, finishes in-flight sweeps (bounded by
// -drain-timeout), flushes the durable store, and exits 0. A second
// signal exits immediately.
//
// SIGHUP hot-reloads the quota-tier catalog from -tier-file without
// dropping in-flight jobs: the file is re-read, validated whole (a bad
// file is rejected, keeping the live config), and existing tenants
// move to their new tiers as they go idle. Without -tier-file, SIGHUP
// is a logged no-op.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tooleval/internal/server"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("toolbenchd: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("toolbenchd", flag.ExitOnError)
	cfg := server.Config{
		Tiers:       make(map[string]server.QuotaTier),
		TenantTiers: make(map[string]string),
		Logf:        log.Printf,
	}
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.Parallelism, "j", 0, "per-tenant worker parallelism (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Shards, "shards", 0, "per-tenant sharded executor shards (0 = single pool)")
	fs.IntVar(&cfg.CacheStripes, "cache-stripes", 0, "shared cache lock stripes (0 = default)")
	fs.IntVar(&cfg.CacheCapacity, "cache-cap", 0, "shared cache capacity in cells, LRU-evicted (0 = unbounded)")
	fs.StringVar(&cfg.StoreDir, "store", "", "durable result store directory (empty = memory only)")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 0, "graceful drain deadline (0 = 30s)")
	fs.IntVar(&cfg.MaxJobsRetained, "retain-jobs", 0, "finished jobs retained per tenant (0 = 64)")
	fs.IntVar(&cfg.MaxSpecsPerJob, "max-specs", 0, "largest accepted batch (0 = 1024)")
	fs.StringVar(&cfg.DefaultTier, "default-tier", "", "tier for unmapped tenants (empty = unlimited)")
	fs.Func("tier", "quota tier `name=cells:N,vt:DUR,jobs:N` (repeatable; omitted budgets are unlimited)",
		func(v string) error {
			t, err := server.ParseTier(v)
			if err != nil {
				return err
			}
			cfg.Tiers[t.Name] = t
			return nil
		})
	fs.Func("tenant-tier", "map `tenant=tier` (repeatable)",
		func(v string) error {
			tenant, tier, err := server.ParseTenantTier(v)
			if err != nil {
				return err
			}
			cfg.TenantTiers[tenant] = tier
			return nil
		})
	tierFile := fs.String("tier-file", "", "tier catalog `file` (tier/tenant-tier/default-tier directives); re-read on SIGHUP")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: toolbenchd [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Serve the evaluation methodology as a multi-tenant HTTP daemon.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *tierFile != "" {
		tiers, def, tenants, err := loadTierFile(*tierFile)
		if err != nil {
			return err
		}
		mergeTierCatalog(&cfg, tiers, def, tenants)
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	// First SIGTERM/SIGINT cancels ctx and starts the drain; a second
	// one restores default handling, so it kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	// SIGHUP: re-read the tier file and swap the catalog in place.
	// In-flight jobs keep their tiers; a rejected file changes nothing.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-hup:
			case <-ctx.Done():
				return
			}
			if *tierFile == "" {
				log.Printf("toolbenchd: SIGHUP ignored (no -tier-file to reload)")
				continue
			}
			tiers, def, tenants, err := loadTierFile(*tierFile)
			if err != nil {
				log.Printf("toolbenchd: SIGHUP reload rejected: %v", err)
				continue
			}
			reloaded := cfg // copy of the flag-derived baseline
			mergeTierCatalog(&reloaded, tiers, def, tenants)
			if err := srv.ReloadTiers(reloaded.Tiers, reloaded.DefaultTier, reloaded.TenantTiers); err != nil {
				log.Printf("toolbenchd: SIGHUP reload rejected: %v", err)
			}
		}
	}()

	return srv.ListenAndServe(ctx)
}

// loadTierFile reads and parses one tier-catalog file.
func loadTierFile(path string) (map[string]server.QuotaTier, string, map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, fmt.Errorf("tier file: %w", err)
	}
	defer f.Close()
	tiers, def, tenants, err := server.ParseTierConfig(f)
	if err != nil {
		return nil, "", nil, fmt.Errorf("tier file %s: %w", path, err)
	}
	return tiers, def, tenants, nil
}

// mergeTierCatalog overlays a tier file onto the flag-derived config:
// file entries win per key, and a default-tier directive overrides the
// flag. The merged maps are fresh — cfg's originals are not mutated, so
// the flag baseline survives for the next SIGHUP to merge onto.
func mergeTierCatalog(cfg *server.Config, tiers map[string]server.QuotaTier, def string, tenants map[string]string) {
	merged := make(map[string]server.QuotaTier, len(cfg.Tiers)+len(tiers))
	for k, v := range cfg.Tiers {
		merged[k] = v
	}
	for k, v := range tiers {
		merged[k] = v
	}
	cfg.Tiers = merged
	mergedTenants := make(map[string]string, len(cfg.TenantTiers)+len(tenants))
	for k, v := range cfg.TenantTiers {
		mergedTenants[k] = v
	}
	for k, v := range tenants {
		mergedTenants[k] = v
	}
	cfg.TenantTiers = mergedTenants
	if def != "" {
		cfg.DefaultTier = def
	}
}
