// Command toolbench regenerates every table and figure of the paper's
// evaluation section and runs the full multi-level methodology.
//
// Usage:
//
//	toolbench [flags] <experiment>
//
// Experiments: table3, table4, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// adl, trace, report, all, list.
//
// Flags:
//
//	-scale f   workload scale for APL figures (default 1.0 = paper scale)
//	-out dir   also write .txt reports and .dat series files into dir
//	-profile p weight profile for the report (end-user, developer,
//	           system-manager)
//	-chart     render figures as ASCII charts instead of tables
//	-j n       run up to n independent simulations concurrently
//	           (default GOMAXPROCS; 1 = the serial sweep). Virtual time
//	           keeps every cell deterministic, so output is identical
//	           at any -j; repeated cells (e.g. `all` followed by its
//	           closing report) are memoized and simulate once.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
	"tooleval/internal/usability"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toolbench:", err)
		os.Exit(1)
	}
}

type config struct {
	scale   float64
	outDir  string
	profile string
	chart   bool
	jobs    int
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("toolbench", flag.ContinueOnError)
	cfg := config{}
	fs.Float64Var(&cfg.scale, "scale", 1.0, "workload scale for APL figures (1.0 = paper scale)")
	fs.StringVar(&cfg.outDir, "out", "", "directory for .txt/.dat artifacts (optional)")
	fs.StringVar(&cfg.profile, "profile", "end-user", "weight profile: end-user, developer, system-manager")
	fs.BoolVar(&cfg.chart, "chart", false, "render figures as ASCII charts instead of tables")
	fs.IntVar(&cfg.jobs, "j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.jobs < 1 {
		return fmt.Errorf("-j %d: need at least one worker", cfg.jobs)
	}
	runner.SetDefault(runner.New(cfg.jobs))
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment (one of %v, report, all, list)", bench.Experiments())
	}
	exp := fs.Arg(0)
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
	}
	switch exp {
	case "list":
		fmt.Fprintln(w, "experiments:", bench.Experiments())
		fmt.Fprintln(w, "tools:", tools.Names())
		fmt.Fprintln(w, "suite (Table 2):")
		classes := make([]string, 0, len(paperdata.SuiteTable2))
		for class := range paperdata.SuiteTable2 {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(w, "  %-24s %v\n", class, paperdata.SuiteTable2[class])
		}
		return nil
	case "all":
		for _, e := range bench.Experiments() {
			if err := runExperiment(e, cfg, w); err != nil {
				return err
			}
		}
		return runReport(cfg, w)
	case "report":
		return runReport(cfg, w)
	default:
		return runExperiment(exp, cfg, w)
	}
}

func runExperiment(exp string, cfg config, w *os.File) error {
	emit := func(name, text string) error {
		fmt.Fprintln(w, text)
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(text), 0o644)
	}
	emitDat := func(name string, fig *bench.FigureResult) error {
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(fig.DatFile()), 0o644)
	}
	render := func(fig *bench.FigureResult) string {
		if cfg.chart {
			return fig.ASCIIChart(72, 22)
		}
		return fig.Render()
	}
	switch exp {
	case bench.ExpTable3:
		t3, err := bench.Table3()
		if err != nil {
			return err
		}
		return emit("table3.txt", t3.Render())
	case bench.ExpTable4:
		t3, err := bench.Table3()
		if err != nil {
			return err
		}
		fig2, err := bench.Fig2(4)
		if err != nil {
			return err
		}
		fig3, err := bench.Fig3(4)
		if err != nil {
			return err
		}
		fig4, err := bench.Fig4(4)
		if err != nil {
			return err
		}
		rankings := bench.Table4FromMeasurements(t3, fig2, fig3, fig4)
		text := core.RenderTable4(rankings, "sun-ethernet") + "\n" + core.RenderTable4(rankings, "sun-atm-wan")
		return emit("table4.txt", text)
	case bench.ExpFig2:
		fig, err := bench.Fig2(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig2.dat", fig); err != nil {
			return err
		}
		return emit("fig2.txt", render(fig))
	case bench.ExpFig3:
		fig, err := bench.Fig3(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig3.dat", fig); err != nil {
			return err
		}
		return emit("fig3.txt", render(fig))
	case bench.ExpFig4:
		fig, err := bench.Fig4(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig4.dat", fig); err != nil {
			return err
		}
		return emit("fig4.txt", render(fig))
	case bench.ExpFig5, bench.ExpFig6, bench.ExpFig7, bench.ExpFig8:
		fig, _, err := bench.APLFigure(exp, cfg.scale)
		if err != nil {
			return err
		}
		if err := emitDat(exp+".dat", fig); err != nil {
			return err
		}
		return emit(exp+".txt", render(fig))
	case "trace":
		// Execution-trace demo: the ADL debugging-support criterion.
		pf, err := platformFor("sun-ethernet")
		if err != nil {
			return err
		}
		for _, tool := range tools.Names() {
			events, err := bench.TraceRun(pf, tool, 2048, 28)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "--- %s: 2 KB ping-pong on %s (first %d events) ---\n", tool, pf.Name, len(events))
			for _, e := range events {
				fmt.Fprintln(w, e)
			}
			fmt.Fprintln(w)
		}
		return nil
	case bench.ExpADL:
		text, err := usability.Render()
		if err != nil {
			return err
		}
		names := tools.PrimitiveNames()
		prims := "Table 1: primitive name map\n"
		// Map iteration order is random per process; sort so repeated
		// runs (and -j variations) emit byte-identical output.
		order := make([]string, 0, len(names))
		for prim := range names {
			order = append(order, prim)
		}
		sort.Strings(order)
		for _, prim := range order {
			byTool := names[prim]
			prims += fmt.Sprintf("  %-14s express=%-22s p4=%-22s pvm=%s\n",
				prim, byTool["express"], byTool["p4"], byTool["pvm"])
		}
		return emit("adl.txt", prims+"\n"+text)
	default:
		return fmt.Errorf("unknown experiment %q (want one of %v, report, all, list)", exp, bench.Experiments())
	}
}

func runReport(cfg config, w *os.File) error {
	var profile core.WeightProfile
	found := false
	for _, p := range core.Profiles() {
		if p.Name == cfg.profile {
			profile, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown profile %q", cfg.profile)
	}
	ev, err := bench.Evaluate(profile, cfg.scale)
	if err != nil {
		return err
	}
	text := core.RenderEvaluation(ev)
	fmt.Fprintln(w, text)
	if cfg.outDir != "" {
		if err := os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		blob, err := core.MarshalReport(ev)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".json"), blob, 0o644)
	}
	return nil
}

// platformFor wraps platform lookup for experiment handlers.
func platformFor(key string) (platform.Platform, error) {
	return platform.Get(key)
}
