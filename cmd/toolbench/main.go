// Command toolbench regenerates every table and figure of the paper's
// evaluation section and runs the full multi-level methodology.
//
// Usage:
//
//	toolbench [flags] <experiment>
//
// Experiments: table3, table4, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// adl, trace, report, all, list.
//
// Flags:
//
//	-scale f   workload scale for APL figures (default 1.0 = paper scale)
//	-out dir   also write .txt reports and .dat series files into dir
//	-profile p weight profile for the report (end-user, developer,
//	           system-manager)
//	-chart     render figures as ASCII charts instead of tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tooleval/internal/bench"
	"tooleval/internal/core"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
	"tooleval/internal/usability"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toolbench:", err)
		os.Exit(1)
	}
}

type config struct {
	scale   float64
	outDir  string
	profile string
	chart   bool
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("toolbench", flag.ContinueOnError)
	cfg := config{}
	fs.Float64Var(&cfg.scale, "scale", 1.0, "workload scale for APL figures (1.0 = paper scale)")
	fs.StringVar(&cfg.outDir, "out", "", "directory for .txt/.dat artifacts (optional)")
	fs.StringVar(&cfg.profile, "profile", "end-user", "weight profile: end-user, developer, system-manager")
	fs.BoolVar(&cfg.chart, "chart", false, "render figures as ASCII charts instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment (one of %v, report, all, list)", bench.Experiments())
	}
	exp := fs.Arg(0)
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
	}
	switch exp {
	case "list":
		fmt.Fprintln(w, "experiments:", bench.Experiments())
		fmt.Fprintln(w, "tools:", tools.Names())
		fmt.Fprintln(w, "suite (Table 2):")
		for class, apps := range paperdata.SuiteTable2 {
			fmt.Fprintf(w, "  %-24s %v\n", class, apps)
		}
		return nil
	case "all":
		for _, e := range bench.Experiments() {
			if err := runExperiment(e, cfg, w); err != nil {
				return err
			}
		}
		return runReport(cfg, w)
	case "report":
		return runReport(cfg, w)
	default:
		return runExperiment(exp, cfg, w)
	}
}

func runExperiment(exp string, cfg config, w *os.File) error {
	emit := func(name, text string) error {
		fmt.Fprintln(w, text)
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(text), 0o644)
	}
	emitDat := func(name string, fig *bench.FigureResult) error {
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(fig.DatFile()), 0o644)
	}
	render := func(fig *bench.FigureResult) string {
		if cfg.chart {
			return fig.ASCIIChart(72, 22)
		}
		return fig.Render()
	}
	switch exp {
	case bench.ExpTable3:
		t3, err := bench.Table3()
		if err != nil {
			return err
		}
		return emit("table3.txt", t3.Render())
	case bench.ExpTable4:
		t3, err := bench.Table3()
		if err != nil {
			return err
		}
		fig2, err := bench.Fig2(4)
		if err != nil {
			return err
		}
		fig3, err := bench.Fig3(4)
		if err != nil {
			return err
		}
		fig4, err := bench.Fig4(4)
		if err != nil {
			return err
		}
		rankings := bench.Table4FromMeasurements(t3, fig2, fig3, fig4)
		text := core.RenderTable4(rankings, "sun-ethernet") + "\n" + core.RenderTable4(rankings, "sun-atm-wan")
		return emit("table4.txt", text)
	case bench.ExpFig2:
		fig, err := bench.Fig2(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig2.dat", fig); err != nil {
			return err
		}
		return emit("fig2.txt", render(fig))
	case bench.ExpFig3:
		fig, err := bench.Fig3(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig3.dat", fig); err != nil {
			return err
		}
		return emit("fig3.txt", render(fig))
	case bench.ExpFig4:
		fig, err := bench.Fig4(4)
		if err != nil {
			return err
		}
		if err := emitDat("fig4.dat", fig); err != nil {
			return err
		}
		return emit("fig4.txt", render(fig))
	case bench.ExpFig5, bench.ExpFig6, bench.ExpFig7, bench.ExpFig8:
		fig, _, err := bench.APLFigure(exp, cfg.scale)
		if err != nil {
			return err
		}
		if err := emitDat(exp+".dat", fig); err != nil {
			return err
		}
		return emit(exp+".txt", render(fig))
	case "trace":
		// Execution-trace demo: the ADL debugging-support criterion.
		pf, err := platformFor("sun-ethernet")
		if err != nil {
			return err
		}
		for _, tool := range tools.Names() {
			events, err := bench.TraceRun(pf, tool, 2048, 28)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "--- %s: 2 KB ping-pong on %s (first %d events) ---\n", tool, pf.Name, len(events))
			for _, e := range events {
				fmt.Fprintln(w, e)
			}
			fmt.Fprintln(w)
		}
		return nil
	case bench.ExpADL:
		text, err := usability.Render()
		if err != nil {
			return err
		}
		prims := "Table 1: primitive name map\n"
		for prim, byTool := range tools.PrimitiveNames() {
			prims += fmt.Sprintf("  %-14s express=%-22s p4=%-22s pvm=%s\n",
				prim, byTool["express"], byTool["p4"], byTool["pvm"])
		}
		return emit("adl.txt", prims+"\n"+text)
	default:
		return fmt.Errorf("unknown experiment %q (want one of %v, report, all, list)", exp, bench.Experiments())
	}
}

func runReport(cfg config, w *os.File) error {
	var profile core.WeightProfile
	found := false
	for _, p := range core.Profiles() {
		if p.Name == cfg.profile {
			profile, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown profile %q", cfg.profile)
	}
	ev, err := evaluate(profile, cfg.scale)
	if err != nil {
		return err
	}
	text := core.RenderEvaluation(ev)
	fmt.Fprintln(w, text)
	if cfg.outDir != "" {
		if err := os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		blob, err := core.MarshalReport(ev)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".json"), blob, 0o644)
	}
	return nil
}

func evaluate(profile core.WeightProfile, scale float64) (*core.Evaluation, error) {
	t3, err := bench.Table3()
	if err != nil {
		return nil, err
	}
	tpl := t3.Measurements()
	fig2, err := bench.Fig2(4)
	if err != nil {
		return nil, err
	}
	fig3, err := bench.Fig3(4)
	if err != nil {
		return nil, err
	}
	fig4, err := bench.Fig4(4)
	if err != nil {
		return nil, err
	}
	add := func(fig *bench.FigureResult, primitive string) {
		for _, s := range fig.Series {
			if s.Tool == "p4-NYNET" {
				continue
			}
			m := core.PrimitiveMeasurement{Platform: s.Platform, Primitive: primitive, Tool: s.Tool}
			for _, p := range s.Points {
				m.Sizes = append(m.Sizes, int(p.X*1024))
				m.TimesMs = append(m.TimesMs, p.Y)
			}
			tpl = append(tpl, m)
		}
	}
	add(fig2, "broadcast")
	add(fig3, "ring")
	add(fig4, "global sum")
	_, apl, err := bench.APLFigure("fig8", scale)
	if err != nil {
		return nil, err
	}
	adl, err := usability.Matrix()
	if err != nil {
		return nil, err
	}
	m, err := core.New(profile)
	if err != nil {
		return nil, err
	}
	return m.Evaluate(tpl, apl, adl)
}

// platformFor wraps platform lookup for experiment handlers.
func platformFor(key string) (platform.Platform, error) {
	return platform.Get(key)
}
