// Command toolbench regenerates every table and figure of the paper's
// evaluation section and runs the full multi-level methodology.
//
// Usage:
//
//	toolbench [flags] <experiment>
//
// Experiments: table3, table4, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
// adl, trace, report, all, list.
//
// Flags:
//
//	-scale f     workload scale for APL figures (default 1.0 = paper scale)
//	-out dir     also write .txt reports and .dat series files into dir
//	-profile p   weight profile for the report (end-user, developer,
//	             system-manager)
//	-chart       render figures as ASCII charts instead of tables
//	-format f    report rendering for `report`/`all`: text (default) or
//	             json (the machine-readable evaluation)
//	-j n         run up to n independent simulations concurrently
//	             (default GOMAXPROCS; 1 = the serial sweep). Virtual time
//	             keeps every cell deterministic, so output is identical
//	             at any -j; repeated cells (e.g. `all` followed by its
//	             closing report) are memoized and simulate once.
//	-shards n    partition the -j workers into n independent pools
//	             hash-sharded by cell key over a striped cache (0 =
//	             single pool). Output stays byte-identical; only lock
//	             contention changes, so it pays off at high -j.
//	-workers a,b distribute the sweep across toolbench-worker daemons at
//	             the given host:port addresses, routing each cell by its
//	             content key (rendezvous hashing). Output stays
//	             byte-identical to a local run — even if a worker dies
//	             mid-sweep (its cells fail over to survivors). Conflicts
//	             with -shards; -j bounds the in-flight RPCs.
//	-progress    stream live figure/phase progress to stderr (one line
//	             per table/figure starting and finishing). Stdout stays
//	             byte-identical with and without it.
//	-store dir   memoize results durably in dir (an append-only,
//	             checksummed segment file keyed by cell content). A
//	             second run over an intact store re-simulates nothing;
//	             a corrupted or engine-stale store is recovered by
//	             re-simulating, and output stays byte-identical either
//	             way.
//	-stats       print the cache hit/miss counters to stderr after the
//	             run (misses = cells actually simulated)
//	-cpuprofile f  write a CPU profile of the sweep to f (pprof format)
//	-memprofile f  write a heap profile taken after the sweep to f
//
// Every invocation builds one tooleval.Session from the flags and runs
// the experiments through it; Ctrl-C cancels the session's context and
// aborts the sweep between simulation cells.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"

	"tooleval"
	"tooleval/internal/core"
	"tooleval/internal/paperdata"
	"tooleval/internal/usability"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toolbench:", err)
		os.Exit(1)
	}
}

type config struct {
	scale      float64
	outDir     string
	profile    string
	chart      bool
	format     string
	jobs       int
	shards     int
	workers    string
	progress   bool
	store      string
	stats      bool
	cpuprofile string
	memprofile string
}

// experiments lists the experiment ids in paper order.
func experiments() []string { return tooleval.Experiments() }

func run(ctx context.Context, args []string, w io.Writer) error {
	return runIO(ctx, args, w, os.Stderr)
}

// runIO is run with the progress stream explicit, so tests can capture
// it. Experiment output goes to w; -progress lines go to errw only —
// w stays byte-identical whether progress is on or off.
func runIO(ctx context.Context, args []string, w, errw io.Writer) (err error) {
	fs := flag.NewFlagSet("toolbench", flag.ContinueOnError)
	cfg := config{}
	fs.Float64Var(&cfg.scale, "scale", 1.0, "workload scale for APL figures (1.0 = paper scale)")
	fs.StringVar(&cfg.outDir, "out", "", "directory for .txt/.dat artifacts (optional)")
	fs.StringVar(&cfg.profile, "profile", "end-user", "weight profile: end-user, developer, system-manager")
	fs.BoolVar(&cfg.chart, "chart", false, "render figures as ASCII charts instead of tables")
	fs.StringVar(&cfg.format, "format", "text", `report rendering for report/all: "text" or "json"`)
	fs.IntVar(&cfg.jobs, "j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	fs.IntVar(&cfg.shards, "shards", 0, "partition the workers into n hash-sharded pools (0 = single pool)")
	fs.StringVar(&cfg.workers, "workers", "", "comma-separated toolbench-worker addresses to distribute the sweep across (host:port,host:port)")
	fs.BoolVar(&cfg.progress, "progress", false, "stream live figure/phase progress to stderr")
	fs.StringVar(&cfg.store, "store", "", "directory for the durable result store (a second run over an intact store re-simulates nothing)")
	fs.BoolVar(&cfg.stats, "stats", false, "print cache hit/miss counters to stderr after the run")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the sweep to this file")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a post-sweep heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.jobs < 1 {
		return fmt.Errorf("-j %d: need at least one worker", cfg.jobs)
	}
	if cfg.shards < 0 {
		return fmt.Errorf("-shards %d: need a non-negative shard count", cfg.shards)
	}
	nodes := splitNodes(cfg.workers)
	if len(nodes) > 0 && cfg.shards > 0 {
		return fmt.Errorf("-workers conflicts with -shards: the remote executor routes cells across daemons, sharding routes them across local pools — pick one")
	}
	if cfg.format != "text" && cfg.format != "json" {
		return fmt.Errorf("-format %q: want text or json", cfg.format)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment (one of %v, trace, report, all, list)", experiments())
	}
	exp := fs.Arg(0)
	if cfg.format == "json" && exp != "report" && exp != "all" {
		return fmt.Errorf("-format json only applies to report and all (got %q)", exp)
	}
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
	}
	// Profiling hooks: perf work on the simulation core needs the real
	// sweeps profileable, not just the Go test harness.
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memprofile != "" {
		defer func() {
			if werr := writeHeapProfile(cfg.memprofile); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	opts := []tooleval.Option{tooleval.WithParallelism(cfg.jobs)}
	if cfg.shards > 0 {
		opts = append(opts, tooleval.WithShardedExecutor(cfg.shards))
	}
	if len(nodes) > 0 {
		opts = append(opts, tooleval.WithRemoteExecutor(nodes...))
	}
	if cfg.progress {
		opts = append(opts, tooleval.WithEvents(progressSink(errw)))
	}
	if cfg.store != "" {
		// Pre-flight the store so real IO problems (permissions, the path
		// is a file) surface as ordinary CLI errors — NewSession panics on
		// them. This also runs crash recovery up front; the session then
		// opens the already-intact segment.
		st, err := tooleval.OpenResultStore(cfg.store)
		if err != nil {
			return fmt.Errorf("-store %s: %w", cfg.store, err)
		}
		if err := st.Close(); err != nil {
			return fmt.Errorf("-store %s: %w", cfg.store, err)
		}
		opts = append(opts, tooleval.WithResultStore(cfg.store))
	}
	sess := tooleval.NewSession(opts...)
	defer func() {
		// Close syncs the durable store; a latched write error means some
		// results were not persisted and must fail the run.
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if cfg.stats {
		defer func() {
			hits, misses := sess.Stats()
			fmt.Fprintf(errw, "toolbench: cache stats: hits=%d misses=%d\n", hits, misses)
			if ns := sess.NodeStats(); len(ns) > 0 {
				fmt.Fprintf(errw, "toolbench: workers:\n")
				fmt.Fprintf(errw, "  %-28s %8s %10s %8s %8s  %s\n", "node", "sent", "completed", "retried", "ejected", "state")
				for _, n := range ns {
					fmt.Fprintf(errw, "  %-28s %8d %10d %8d %8d  %s\n", n.Node, n.Sent, n.Completed, n.Retried, n.Ejected, n.State)
				}
			}
		}()
	}
	switch exp {
	case "list":
		fmt.Fprintln(w, "experiments:", experiments())
		fmt.Fprintln(w, "tools:", sess.Tools())
		fmt.Fprintln(w, "suite (Table 2):")
		classes := make([]string, 0, len(paperdata.SuiteTable2))
		for class := range paperdata.SuiteTable2 {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(w, "  %-24s %v\n", class, paperdata.SuiteTable2[class])
		}
		return nil
	case "all":
		// With -format json the stream must stay machine-readable:
		// experiments still run (and still write -out artifacts) but
		// only the closing JSON report reaches w.
		expOut := w
		if cfg.format == "json" {
			expOut = io.Discard
		}
		for _, e := range experiments() {
			if err := runExperiment(ctx, sess, e, cfg, expOut); err != nil {
				return err
			}
		}
		return runReport(ctx, sess, cfg, w)
	case "report":
		return runReport(ctx, sess, cfg, w)
	default:
		return runExperiment(ctx, sess, exp, cfg, w)
	}
}

// splitNodes parses the -workers flag: comma-separated addresses,
// blanks dropped.
func splitNodes(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// progressSink renders the session's typed event stream as live
// phase-level progress lines: long `all` sweeps show which table or
// figure is simulating instead of going silent for the whole run.
// Events arrive from concurrent worker goroutines, so the sink
// serializes its writes.
func progressSink(errw io.Writer) func(tooleval.Event) {
	var mu sync.Mutex
	return func(ev tooleval.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case tooleval.PhaseStart:
			fmt.Fprintf(errw, "toolbench: %s ...\n", e.Phase)
		case tooleval.PhaseDone:
			if e.Err != nil {
				fmt.Fprintf(errw, "toolbench: %s failed: %v\n", e.Phase, e.Err)
			} else {
				fmt.Fprintf(errw, "toolbench: %s done\n", e.Phase)
			}
		}
	}
}

// writeHeapProfile snapshots the live heap (after a GC, so the profile
// reflects retained memory rather than collectable garbage) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runExperiment(ctx context.Context, sess *tooleval.Session, exp string, cfg config, w io.Writer) error {
	emit := func(name, text string) error {
		fmt.Fprintln(w, text)
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(text), 0o644)
	}
	emitDat := func(name string, fig *tooleval.FigureResult) error {
		if cfg.outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(cfg.outDir, name), []byte(fig.DatFile()), 0o644)
	}
	render := func(fig *tooleval.FigureResult) string {
		if cfg.chart {
			return fig.ASCIIChart(72, 22)
		}
		return fig.Render()
	}
	emitFig := func(fig *tooleval.FigureResult, id string) error {
		if err := emitDat(id+".dat", fig); err != nil {
			return err
		}
		return emit(id+".txt", render(fig))
	}
	switch exp {
	case "table3":
		t3, err := sess.Table3(ctx)
		if err != nil {
			return err
		}
		return emit("table3.txt", t3.Render())
	case "table4":
		rankings, err := sess.Table4(ctx, 4)
		if err != nil {
			return err
		}
		text := core.RenderTable4(rankings, "sun-ethernet") + "\n" + core.RenderTable4(rankings, "sun-atm-wan")
		return emit("table4.txt", text)
	case "fig2":
		fig, err := sess.Fig2(ctx, 4)
		if err != nil {
			return err
		}
		return emitFig(fig, exp)
	case "fig3":
		fig, err := sess.Fig3(ctx, 4)
		if err != nil {
			return err
		}
		return emitFig(fig, exp)
	case "fig4":
		fig, err := sess.Fig4(ctx, 4)
		if err != nil {
			return err
		}
		return emitFig(fig, exp)
	case "fig5", "fig6", "fig7", "fig8":
		fig, _, err := sess.APLFigure(ctx, exp, cfg.scale)
		if err != nil {
			return err
		}
		return emitFig(fig, exp)
	case "trace":
		// Execution-trace demo: the ADL debugging-support criterion.
		pf, err := tooleval.GetPlatform("sun-ethernet")
		if err != nil {
			return err
		}
		for _, tool := range tooleval.ToolNames() {
			events, err := sess.TraceRun(ctx, pf.Key, tool, 2048, 28)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "--- %s: 2 KB ping-pong on %s (first %d events) ---\n", tool, pf.Name, len(events))
			for _, e := range events {
				fmt.Fprintln(w, e)
			}
			fmt.Fprintln(w)
		}
		return nil
	case "adl":
		text, err := usability.Render()
		if err != nil {
			return err
		}
		names := tooleval.PrimitiveNames()
		prims := "Table 1: primitive name map\n"
		// Map iteration order is random per process; sort so repeated
		// runs (and -j variations) emit byte-identical output.
		order := make([]string, 0, len(names))
		for prim := range names {
			order = append(order, prim)
		}
		sort.Strings(order)
		for _, prim := range order {
			byTool := names[prim]
			prims += fmt.Sprintf("  %-14s express=%-22s p4=%-22s pvm=%s\n",
				prim, byTool["express"], byTool["p4"], byTool["pvm"])
		}
		return emit("adl.txt", prims+"\n"+text)
	default:
		return fmt.Errorf("unknown experiment %q (want one of %v, trace, report, all, list)", exp, experiments())
	}
}

func runReport(ctx context.Context, sess *tooleval.Session, cfg config, w io.Writer) error {
	profile, err := tooleval.ProfileByName(cfg.profile)
	if err != nil {
		return err
	}
	ev, err := sess.Evaluate(ctx, profile, cfg.scale)
	if err != nil {
		return err
	}
	text := core.RenderEvaluation(ev)
	marshal := func() ([]byte, error) { return core.MarshalReport(ev) }
	if cfg.format == "json" {
		blob, err := marshal()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(blob))
	} else {
		fmt.Fprintln(w, text)
	}
	if cfg.outDir != "" {
		if err := os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		blob, err := marshal()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(cfg.outDir, "report-"+profile.Name+".json"), blob, 0o644)
	}
	return nil
}
