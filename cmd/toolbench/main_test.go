package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExperiments(t *testing.T) {
	outDir := t.TempDir()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, exp := range []string{"list", "table3", "table4", "fig2", "fig3", "adl", "trace"} {
		if err := run([]string{"-out", outDir, exp}, null); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run([]string{"-chart", "fig2"}, null); err != nil {
		t.Fatalf("chart mode: %v", err)
	}
	// Artifacts written?
	for _, f := range []string{"table3.txt", "table4.txt", "fig2.txt", "fig2.dat", "adl.txt"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	t4, err := os.ReadFile(filepath.Join(outDir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(t4), "send/receive") {
		t.Fatalf("table4 artifact malformed:\n%s", t4)
	}
}

func TestRunAPLFigureSmallScale(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "fig7"}, null); err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "-profile", "developer", "report"}, null); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "nonexistent", "report"}, null); err == nil {
		t.Fatal("unknown profile should error")
	}
}

func TestRunValidation(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{}, null); err == nil {
		t.Fatal("no experiment should error")
	}
	if err := run([]string{"fig99"}, null); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestReportWritesJSON(t *testing.T) {
	outDir := t.TempDir()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "-out", outDir, "report"}, null); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(outDir, "report-end-user.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"ranking"`) {
		t.Fatalf("json report malformed:\n%s", blob)
	}
}
