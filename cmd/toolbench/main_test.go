package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tooleval"
	"tooleval/internal/bench"
	"tooleval/internal/remote"
	"tooleval/internal/runner"
)

// -update regenerates the golden files instead of comparing against
// them: go test ./cmd/toolbench -run TestReportJSONGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

var bg = context.Background()

func TestRunExperiments(t *testing.T) {
	outDir := t.TempDir()
	for _, exp := range []string{"list", "table3", "table4", "fig2", "fig3", "adl", "trace"} {
		if err := run(bg, []string{"-out", outDir, exp}, io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run(bg, []string{"-chart", "fig2"}, io.Discard); err != nil {
		t.Fatalf("chart mode: %v", err)
	}
	// Artifacts written?
	for _, f := range []string{"table3.txt", "table4.txt", "fig2.txt", "fig2.dat", "adl.txt"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	t4, err := os.ReadFile(filepath.Join(outDir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(t4), "send/receive") {
		t.Fatalf("table4 artifact malformed:\n%s", t4)
	}
}

func TestRunAPLFigureSmallScale(t *testing.T) {
	if err := run(bg, []string{"-scale", "0.1", "fig7"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	if err := run(bg, []string{"-scale", "0.1", "-profile", "developer", "report"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(bg, []string{"-profile", "nonexistent", "report"}, io.Discard); err == nil {
		t.Fatal("unknown profile should error")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	err := run(ctx, []string{"-scale", "0.05", "fig2"}, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run under cancelled ctx = %v, want context.Canceled", err)
	}
}

// runArgsTable drives TestRunArgs; TestExperimentIDsCovered checks it
// stays exhaustive over tooleval.Experiments().
var runArgsTable = []struct {
	name    string
	args    []string
	wantErr bool
}{
	// Every experiment id dispatches (small scale keeps APL cheap).
	{"table3", []string{"-scale", "0.05", "table3"}, false},
	{"table4", []string{"-scale", "0.05", "table4"}, false},
	{"fig2", []string{"-scale", "0.05", "fig2"}, false},
	{"fig3", []string{"-scale", "0.05", "fig3"}, false},
	{"fig4", []string{"-scale", "0.05", "fig4"}, false},
	{"fig5", []string{"-scale", "0.05", "fig5"}, false},
	{"fig6", []string{"-scale", "0.05", "fig6"}, false},
	{"fig7", []string{"-scale", "0.05", "fig7"}, false},
	{"fig8", []string{"-scale", "0.05", "fig8"}, false},
	{"adl", []string{"adl"}, false},
	{"trace", []string{"trace"}, false},
	{"list", []string{"list"}, false},
	{"report", []string{"-scale", "0.05", "report"}, false},
	{"all", []string{"-scale", "0.05", "all"}, false},
	// Parallelism flags.
	{"explicit -j", []string{"-j", "4", "-scale", "0.05", "fig2"}, false},
	{"serial -j", []string{"-j", "1", "fig3"}, false},
	{"zero -j", []string{"-j", "0", "fig2"}, true},
	{"negative -j", []string{"-j", "-2", "fig2"}, true},
	{"non-numeric -j", []string{"-j", "many", "fig2"}, true},
	// Sharded backend flag.
	{"sharded", []string{"-shards", "4", "-j", "8", "-scale", "0.05", "fig2"}, false},
	{"single shard", []string{"-shards", "1", "-scale", "0.05", "fig3"}, false},
	{"zero shards is single pool", []string{"-shards", "0", "-scale", "0.05", "fig4"}, false},
	{"negative shards", []string{"-shards", "-2", "fig2"}, true},
	{"non-numeric shards", []string{"-shards", "many", "fig2"}, true},
	// Remote backend flag.
	{"workers conflict with shards", []string{"-workers", "localhost:1", "-shards", "2", "fig2"}, true},
	{"workers unreachable", []string{"-workers", "127.0.0.1:1", "-scale", "0.05", "fig2"}, true},
	// Report format flag.
	{"json report", []string{"-scale", "0.05", "-format", "json", "report"}, false},
	{"json all", []string{"-scale", "0.05", "-format", "json", "all"}, false},
	{"json non-report", []string{"-format", "json", "fig2"}, true},
	{"unknown format", []string{"-format", "xml", "report"}, true},
	// Invalid invocations.
	{"no experiment", []string{}, true},
	{"two experiments", []string{"fig2", "fig3"}, true},
	{"unknown experiment", []string{"fig99"}, true},
	{"unknown profile", []string{"-profile", "operator", "report"}, true},
	{"non-numeric scale", []string{"-scale", "big", "fig2"}, true},
}

func TestRunArgs(t *testing.T) {
	for _, tt := range runArgsTable {
		t.Run(tt.name, func(t *testing.T) {
			err := run(bg, tt.args, io.Discard)
			if (err != nil) != tt.wantErr {
				t.Errorf("run(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			}
		})
	}
}

func TestExperimentIDsCovered(t *testing.T) {
	// Guards runArgsTable against a new experiment id silently going
	// untested: every id tooleval.Experiments reports must appear as a
	// passing entry. Coverage is asserted statically — TestRunArgs
	// already performs the actual dispatch.
	covered := map[string]bool{}
	for _, tt := range runArgsTable {
		if !tt.wantErr && len(tt.args) > 0 {
			covered[tt.args[len(tt.args)-1]] = true
		}
	}
	for _, exp := range tooleval.Experiments() {
		if !covered[exp] {
			t.Errorf("experiment %q missing from runArgsTable", exp)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(bg, []string{}, io.Discard); err == nil {
		t.Fatal("no experiment should error")
	}
	if err := run(bg, []string{"fig99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestReportWritesJSON(t *testing.T) {
	outDir := t.TempDir()
	if err := run(bg, []string{"-scale", "0.1", "-out", outDir, "report"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(outDir, "report-end-user.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"ranking"`) {
		t.Fatalf("json report malformed:\n%s", blob)
	}
}

// TestJSONAllIsMachineReadable: `-format json all` must emit nothing
// but the closing JSON report on the output stream (the experiments
// still run and still write their -out artifacts).
func TestJSONAllIsMachineReadable(t *testing.T) {
	outDir := t.TempDir()
	var buf bytes.Buffer
	if err := run(bg, []string{"-scale", "0.05", "-format", "json", "-out", outDir, "all"}, &buf); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Profile string   `json:"profile"`
		Ranking []string `json:"ranking"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("json all output is not pure JSON: %v\n%s", err, buf.Bytes())
	}
	if report.Profile != "end-user" || len(report.Ranking) == 0 {
		t.Fatalf("report payload malformed: %+v", report)
	}
	for _, f := range []string{"table3.txt", "fig2.dat", "report-end-user.json"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("json mode must still write artifact %s: %v", f, err)
		}
	}
}

// TestReportJSONGolden pins the exact bytes `-format json report`
// emits: virtual time makes the whole evaluation deterministic, so the
// machine-readable report must never drift without a reviewed golden
// update (-update regenerates it).
func TestReportJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(bg, []string{"-scale", "0.1", "-format", "json", "report"}, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report-end-user.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("json report drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestProfilingFlags: -cpuprofile/-memprofile must produce non-empty
// pprof files without disturbing the experiment run.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run(bg, []string{"-cpuprofile", cpu, "-memprofile", mem, "fig2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
	// An unwritable profile path must surface as an error.
	if err := run(bg, []string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "p"), "fig2"}, io.Discard); err == nil {
		t.Fatal("unwritable -cpuprofile should error")
	}
}

// TestProgressStreamsToStderrOnly: -progress must narrate phase
// lifecycle on the error stream while leaving the experiment stream
// byte-identical to a run without the flag.
func TestProgressStreamsToStderrOnly(t *testing.T) {
	var plain, progressed, progress bytes.Buffer
	if err := runIO(bg, []string{"-j", "2", "table4"}, &plain, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := runIO(bg, []string{"-j", "2", "-progress", "table4"}, &progressed, &progress); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), progressed.Bytes()) {
		t.Fatalf("-progress changed stdout:\n--- without ---\n%s\n--- with ---\n%s", plain.Bytes(), progressed.Bytes())
	}
	lines := progress.String()
	// table4 regenerates Table 3 and Figures 2-4 inside its own phase.
	for _, want := range []string{
		"toolbench: table4 ...", "toolbench: table4 done",
		"toolbench: table3 done", "toolbench: fig2 done",
		"toolbench: fig3 done", "toolbench: fig4 done",
	} {
		if !strings.Contains(lines, want) {
			t.Fatalf("progress stream missing %q:\n%s", want, lines)
		}
	}
}

// startTestWorker serves real simulation cells — the same handler
// cmd/toolbench-worker runs — from an httptest server, optionally
// behind mw (the chaos variant wraps a kill switch around it).
func startTestWorker(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	h := remote.NewWorker(runner.New(4), bench.ComputeCell).Handler()
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// killAfter returns middleware that lets n cell RPCs through, then
// refuses every later one — a worker daemon dying mid-sweep.
func killAfter(n int64) func(http.Handler) http.Handler {
	var served atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" && served.Add(1) > n {
				http.Error(rw, "worker killed by test", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(rw, r)
		})
	}
}

// TestAllOutputIdenticalAcrossParallelism is the CLI-level determinism
// acceptance: a full `all` sweep must emit byte-identical stdout and
// byte-identical .dat artifacts serially, at -j 8, through the sharded
// backend (-shards 4 -j 8), distributed across remote workers
// (-workers), and distributed with one worker dying mid-sweep.
func TestAllOutputIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("five full small-scale sweeps")
	}
	w1 := startTestWorker(t, nil)
	w2 := startTestWorker(t, nil)
	doomed := startTestWorker(t, killAfter(5))
	modes := []struct {
		name string
		args []string
	}{
		{"serial", []string{"-j", "1"}},
		{"j8", []string{"-j", "8"}},
		{"sharded", []string{"-shards", "4", "-j", "8"}},
		{"remote", []string{"-j", "8", "-workers", w1.URL + "," + w2.URL}},
		{"remote-chaos", []string{"-j", "8", "-workers", doomed.URL + "," + w1.URL + "," + w2.URL}},
	}
	outs := map[string]*bytes.Buffer{}
	dirs := map[string]string{}
	for _, m := range modes {
		var buf bytes.Buffer
		dir := t.TempDir()
		args := append(append([]string{}, m.args...), "-scale", "0.05", "-out", dir, "all")
		if err := run(bg, args, &buf); err != nil {
			t.Fatalf("%s all: %v", m.name, err)
		}
		outs[m.name], dirs[m.name] = &buf, dir
	}
	serialFiles, err := os.ReadDir(dirs["serial"])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range modes[1:] {
		if !bytes.Equal(outs["serial"].Bytes(), outs[m.name].Bytes()) {
			t.Fatalf("`all` stdout differs between serial and %s", m.name)
		}
		var datSeen int
		for _, f := range serialFiles {
			a, err := os.ReadFile(filepath.Join(dirs["serial"], f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dirs[m.name], f.Name()))
			if err != nil {
				t.Fatalf("artifact %s missing under %s: %v", f.Name(), m.name, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("artifact %s differs between serial and %s", f.Name(), m.name)
			}
			if strings.HasSuffix(f.Name(), ".dat") {
				datSeen++
			}
		}
		if datSeen == 0 {
			t.Fatal("no .dat artifacts compared")
		}
	}
}

// readDir returns name -> contents for every regular file in dir.
func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

func TestStoreMakesAllIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("three full (scaled) sweeps")
	}
	store := t.TempDir()
	base := []string{"-scale", "0.05", "-stats"}

	// Storeless reference run.
	var ref bytes.Buffer
	refOut := t.TempDir()
	if err := runIO(bg, append(append([]string{}, base...), "-out", refOut, "all"), &ref, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Cold run populates the store.
	var cold, coldStats bytes.Buffer
	coldOut := t.TempDir()
	if err := runIO(bg, append(append([]string{}, base...), "-store", store, "-out", coldOut, "all"), &cold, &coldStats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldStats.String(), "hits=") {
		t.Fatalf("-stats wrote nothing to stderr: %q", coldStats.String())
	}
	if strings.Contains(coldStats.String(), "misses=0\n") {
		t.Fatalf("cold run claims zero misses: %q", coldStats.String())
	}
	if _, err := os.Stat(filepath.Join(store, "cells.seg")); err != nil {
		t.Fatalf("segment file not written: %v", err)
	}

	// Warm run replays every cell: zero misses, byte-identical artifacts.
	var warm, warmStats bytes.Buffer
	warmOut := t.TempDir()
	if err := runIO(bg, append(append([]string{}, base...), "-store", store, "-out", warmOut, "all"), &warm, &warmStats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmStats.String(), "misses=0") {
		t.Fatalf("warm run still simulated cells: %q", warmStats.String())
	}
	if cold.String() != ref.String() || warm.String() != ref.String() {
		t.Fatal("stdout differs between storeless, cold-store, and warm-store runs")
	}
	refFiles := readDir(t, refOut)
	for name, dir := range map[string]string{"cold": coldOut, "warm": warmOut} {
		files := readDir(t, dir)
		if len(files) != len(refFiles) {
			t.Fatalf("%s run wrote %d artifacts, reference %d", name, len(files), len(refFiles))
		}
		for f, want := range refFiles {
			if files[f] != want {
				t.Fatalf("%s run artifact %s differs from the storeless reference", name, f)
			}
		}
	}
}

func TestStoreRecoversFromCorruption(t *testing.T) {
	store := t.TempDir()
	args := []string{"-scale", "0.05", "-store", store, "table3"}

	var first bytes.Buffer
	if err := runIO(bg, args, &first, io.Discard); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(store, "cells.seg")
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 200 {
		t.Fatalf("segment suspiciously small: %d bytes", len(blob))
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// The damaged store must not crash the run or change its numbers:
	// the corrupt suffix is dropped and re-simulated.
	var second, secondStats bytes.Buffer
	if err := runIO(bg, append([]string{"-stats"}, args...), &second, &secondStats); err != nil {
		t.Fatalf("run over a corrupted store failed: %v", err)
	}
	if second.String() != first.String() {
		t.Fatal("output changed after segment corruption")
	}
	if !strings.Contains(secondStats.String(), "misses=") || strings.Contains(secondStats.String(), "misses=0\n") {
		t.Fatalf("corruption recovery should re-simulate some cells: %q", secondStats.String())
	}

	// And the store heals: the next run is fully warm again.
	var third, thirdStats bytes.Buffer
	if err := runIO(bg, append([]string{"-stats"}, args...), &third, &thirdStats); err != nil {
		t.Fatal(err)
	}
	if third.String() != first.String() {
		t.Fatal("output changed after recovery")
	}
	if !strings.Contains(thirdStats.String(), "misses=0") {
		t.Fatalf("store did not heal after recovery: %q", thirdStats.String())
	}
}

func TestStoreFlagRejectsBadDir(t *testing.T) {
	// A path whose parent is a file cannot become a store directory; the
	// IO error must surface as a normal CLI error, not a panic.
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(bg, []string{"-store", filepath.Join(file, "sub"), "table4"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("run error = %v, want a -store IO error", err)
	}
}
