package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tooleval/internal/bench"
)

func TestRunExperiments(t *testing.T) {
	outDir := t.TempDir()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, exp := range []string{"list", "table3", "table4", "fig2", "fig3", "adl", "trace"} {
		if err := run([]string{"-out", outDir, exp}, null); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run([]string{"-chart", "fig2"}, null); err != nil {
		t.Fatalf("chart mode: %v", err)
	}
	// Artifacts written?
	for _, f := range []string{"table3.txt", "table4.txt", "fig2.txt", "fig2.dat", "adl.txt"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	t4, err := os.ReadFile(filepath.Join(outDir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(t4), "send/receive") {
		t.Fatalf("table4 artifact malformed:\n%s", t4)
	}
}

func TestRunAPLFigureSmallScale(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "fig7"}, null); err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "-profile", "developer", "report"}, null); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "nonexistent", "report"}, null); err == nil {
		t.Fatal("unknown profile should error")
	}
}

// runArgsTable drives TestRunArgs; TestExperimentIDsCovered checks it
// stays exhaustive over bench.Experiments().
var runArgsTable = []struct {
	name    string
	args    []string
	wantErr bool
}{
	// Every experiment id dispatches (small scale keeps APL cheap).
	{"table3", []string{"-scale", "0.05", "table3"}, false},
	{"table4", []string{"-scale", "0.05", "table4"}, false},
	{"fig2", []string{"-scale", "0.05", "fig2"}, false},
	{"fig3", []string{"-scale", "0.05", "fig3"}, false},
	{"fig4", []string{"-scale", "0.05", "fig4"}, false},
	{"fig5", []string{"-scale", "0.05", "fig5"}, false},
	{"fig6", []string{"-scale", "0.05", "fig6"}, false},
	{"fig7", []string{"-scale", "0.05", "fig7"}, false},
	{"fig8", []string{"-scale", "0.05", "fig8"}, false},
	{"adl", []string{"adl"}, false},
	{"trace", []string{"trace"}, false},
	{"list", []string{"list"}, false},
	{"report", []string{"-scale", "0.05", "report"}, false},
	{"all", []string{"-scale", "0.05", "all"}, false},
	// Parallelism flag.
	{"explicit -j", []string{"-j", "4", "-scale", "0.05", "fig2"}, false},
	{"serial -j", []string{"-j", "1", "fig3"}, false},
	{"zero -j", []string{"-j", "0", "fig2"}, true},
	{"negative -j", []string{"-j", "-2", "fig2"}, true},
	{"non-numeric -j", []string{"-j", "many", "fig2"}, true},
	// Invalid invocations.
	{"no experiment", []string{}, true},
	{"two experiments", []string{"fig2", "fig3"}, true},
	{"unknown experiment", []string{"fig99"}, true},
	{"unknown profile", []string{"-profile", "operator", "report"}, true},
	{"non-numeric scale", []string{"-scale", "big", "fig2"}, true},
}

func TestRunArgs(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, tt := range runArgsTable {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, null)
			if (err != nil) != tt.wantErr {
				t.Errorf("run(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			}
		})
	}
}

func TestExperimentIDsCovered(t *testing.T) {
	// Guards runArgsTable against a new experiment id silently going
	// untested: every id bench.Experiments reports must appear as a
	// passing entry. Coverage is asserted statically — TestRunArgs
	// already performs the actual dispatch.
	covered := map[string]bool{}
	for _, tt := range runArgsTable {
		if !tt.wantErr && len(tt.args) > 0 {
			covered[tt.args[len(tt.args)-1]] = true
		}
	}
	for _, exp := range bench.Experiments() {
		if !covered[exp] {
			t.Errorf("experiment %q missing from runArgsTable", exp)
		}
	}
}

func TestRunValidation(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{}, null); err == nil {
		t.Fatal("no experiment should error")
	}
	if err := run([]string{"fig99"}, null); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestReportWritesJSON(t *testing.T) {
	outDir := t.TempDir()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-scale", "0.1", "-out", outDir, "report"}, null); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(outDir, "report-end-user.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"ranking"`) {
		t.Fatalf("json report malformed:\n%s", blob)
	}
}
