// Toolvet machine-checks the repository's determinism and
// error-contract invariants: no wall-clock in simulation paths, no map
// iteration feeding output, errors.As/Is over bare assertions, bounded
// goroutine fan-out. Run `go run ./cmd/toolvet ./...` (or `make lint`);
// CI gates merges on a clean exit.
package main

import (
	"os"

	"tooleval/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr, lint.Analyzers()))
}
