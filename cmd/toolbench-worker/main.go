// Command toolbench-worker is the daemon side of the distributed
// sweep: it serves simulation cells over the small JSON-over-HTTP cell
// protocol (POST /v1/cells) to a `toolbench -workers ...` coordinator.
// Every cell is a pure function of its content key, so the worker
// recomputes exactly what the coordinator would have computed locally
// — results are byte-identical by construction — and memoizes by the
// same key through a local pooled or sharded executor, optionally
// backed by its own durable -store tier.
//
// A coordinator running a different simulation-engine or wire-protocol
// version is refused with a typed 409 — never answered with a result
// computed under the wrong engine. GET /healthz reports liveness; GET
// /statsz reports the engine version, uptime, and cache counters.
//
// SIGTERM or SIGINT drains gracefully: in-flight cells finish, the
// store is flushed, and the daemon exits 0. A second signal kills it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tooleval/internal/bench"
	"tooleval/internal/remote"
	"tooleval/internal/runner"
	"tooleval/internal/sim"
	"tooleval/internal/store"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("toolbench-worker: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("toolbench-worker", flag.ExitOnError)
	addr := fs.String("addr", ":8701", "listen address")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations")
	shards := fs.Int("shards", 0, "partition the workers into n hash-sharded pools (0 = single pool)")
	storeDir := fs.String("store", "", "durable result store directory (empty = memory only; each worker needs its own)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight cells")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: toolbench-worker [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Serve simulation cells to a `toolbench -workers ...` coordinator.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *jobs < 1 {
		return fmt.Errorf("-j %d: need at least one worker", *jobs)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d: need a non-negative shard count", *shards)
	}

	var x runner.Executor
	if *shards > 0 {
		per := (*jobs + *shards - 1) / *shards
		x = runner.NewSharded(*shards, per)
	} else {
		x = runner.New(*jobs)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, sim.EngineVersion)
		if err != nil {
			return fmt.Errorf("-store %s: %w", *storeDir, err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("toolbench-worker: closing store: %v", err)
			}
		}()
		x.Cache().SetTier(st)
	}

	w := remote.NewWorker(x, bench.ComputeCell)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: w.Handler()}
	log.Printf("toolbench-worker: listening on %s (engine v%d, protocol v%d, -j %d)",
		ln.Addr(), sim.EngineVersion, remote.ProtocolVersion, *jobs)

	// First SIGTERM/SIGINT starts the drain; a second one restores
	// default handling, so it kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			srv.Close()
		}
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("toolbench-worker: drained, exiting")
	return nil
}
