package tooleval

import (
	"strings"
	"testing"
)

// TestValidateErrorPaths pins every rejection ExperimentSpec.validate
// can produce: each Kind's missing-field message, the unknown Kind, and
// the empty Kind. The messages are part of the batch API's contract —
// Submit/Stream/SubmitAll surface them verbatim (prefixed with the spec
// index), so a drift here is user-visible.
func TestValidateErrorPaths(t *testing.T) {
	valid := map[string]ExperimentSpec{
		KindPingPong:  {Kind: KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0}},
		KindBroadcast: {Kind: KindBroadcast, Platform: "sun-ethernet", Tool: "p4", Procs: 2, Sizes: []int{0}},
		KindRing:      {Kind: KindRing, Platform: "sun-ethernet", Tool: "p4", Procs: 2, Sizes: []int{0}},
		KindGlobalSum: {Kind: KindGlobalSum, Platform: "sun-ethernet", Tool: "p4", Procs: 2, Sizes: []int{10}},
		KindApp:       {Kind: KindApp, Platform: "sun-ethernet", Tool: "p4", App: "jpeg", ProcsList: []int{1}, Scale: 0.1},
		KindEvaluate:  {Kind: KindEvaluate, Scale: 0.1},
	}
	for kind, spec := range valid {
		if err := spec.validate(); err != nil {
			t.Fatalf("valid %s spec rejected: %v", kind, err)
		}
	}

	tests := []struct {
		name    string
		mutate  func(ExperimentSpec) ExperimentSpec
		base    string
		wantMsg string
	}{
		{"pingpong no sizes", clearSizes, KindPingPong, "pingpong: Sizes required"},
		{"broadcast no sizes", clearSizes, KindBroadcast, "broadcast: Sizes required"},
		{"broadcast procs 0", clearProcs, KindBroadcast, "broadcast: Procs = 0, need >= 2"},
		{"broadcast procs 1", setProcs(1), KindBroadcast, "broadcast: Procs = 1, need >= 2"},
		{"ring no sizes", clearSizes, KindRing, "ring: Sizes required"},
		{"ring procs 0", clearProcs, KindRing, "ring: Procs = 0, need >= 2"},
		{"globalsum no sizes", clearSizes, KindGlobalSum, "globalsum: Sizes required"},
		{"globalsum procs 0", clearProcs, KindGlobalSum, "globalsum: Procs = 0, need >= 2"},
		{"app no app", func(s ExperimentSpec) ExperimentSpec { s.App = ""; return s }, KindApp, "app: App required"},
		{"app no procslist", func(s ExperimentSpec) ExperimentSpec { s.ProcsList = nil; return s }, KindApp, "app: ProcsList required"},
		{"app zero scale", func(s ExperimentSpec) ExperimentSpec { s.Scale = 0; return s }, KindApp, "app: Scale = 0, need > 0"},
		{"app negative scale", func(s ExperimentSpec) ExperimentSpec { s.Scale = -1; return s }, KindApp, "app: Scale = -1, need > 0"},
		{"evaluate zero scale", func(s ExperimentSpec) ExperimentSpec { s.Scale = 0; return s }, KindEvaluate, "evaluate: Scale = 0, need > 0"},
		{"evaluate unknown profile", func(s ExperimentSpec) ExperimentSpec { s.Profile = "operator"; return s }, KindEvaluate, `unknown profile "operator"`},
		{"unknown kind", func(s ExperimentSpec) ExperimentSpec { s.Kind = "frobnicate"; return s }, KindPingPong, `unknown Kind "frobnicate"`},
		{"empty kind", func(s ExperimentSpec) ExperimentSpec { s.Kind = ""; return s }, KindPingPong, "missing Kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := tt.mutate(valid[tt.base])
			err := spec.validate()
			if err == nil {
				t.Fatalf("spec %+v accepted, want %q", spec, tt.wantMsg)
			}
			if !strings.Contains(err.Error(), tt.wantMsg) {
				t.Fatalf("validate error = %q, want it to contain %q", err, tt.wantMsg)
			}
		})
	}
}

func clearSizes(s ExperimentSpec) ExperimentSpec { s.Sizes = nil; return s }
func clearProcs(s ExperimentSpec) ExperimentSpec { s.Procs = 0; return s }
func setProcs(n int) func(ExperimentSpec) ExperimentSpec {
	return func(s ExperimentSpec) ExperimentSpec { s.Procs = n; return s }
}

// TestValidateAcceptsDefaultProfile: an empty Profile selects end-user
// rather than failing.
func TestValidateAcceptsDefaultProfile(t *testing.T) {
	if err := (ExperimentSpec{Kind: KindEvaluate, Scale: 0.1}).validate(); err != nil {
		t.Fatalf("empty profile must default, got %v", err)
	}
}
