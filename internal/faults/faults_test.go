package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"tooleval/internal/runner"
)

// memFile is an in-memory File for decorator tests.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Read(p []byte) (int, error)     { return m.buf.Read(p) }
func (m *memFile) Write(p []byte) (int, error)    { return m.buf.Write(p) }
func (m *memFile) Seek(int64, int) (int64, error) { return 0, nil }
func (m *memFile) Truncate(size int64) error      { m.buf.Truncate(int(size)); return nil }
func (m *memFile) Sync() error                    { m.syncs++; return nil }
func (m *memFile) Close() error                   { m.closed = true; return nil }

// memTier is a map-backed runner.Tier.
type memTier struct {
	m map[runner.Key]runner.CellResult
}

func newMemTier() *memTier { return &memTier{m: make(map[runner.Key]runner.CellResult)} }

func (t *memTier) Lookup(key runner.Key) (runner.CellResult, bool) {
	res, ok := t.m[key]
	return res, ok
}
func (t *memTier) Fill(key runner.Key, res runner.CellResult) { t.m[key] = res }

func TestScheduleIsDeterministic(t *testing.T) {
	plan := Plan{WriteError: 0.2, ShortWrite: 0.2, SyncError: 0.3, LookupMiss: 0.5, FillDrop: 0.5}
	a, b := NewSchedule(42, plan), NewSchedule(42, plan)
	ops := []Op{OpWrite, OpSync, OpLookup, OpFill, OpWrite, OpTruncate, OpWrite, OpLookup}
	for round := 0; round < 200; round++ {
		op := ops[round%len(ops)]
		da, db := a.Decide(op, 64), b.Decide(op, 64)
		if da != db {
			t.Fatalf("round %d op %v: %+v vs %+v — same seed must give same stream", round, op, da, db)
		}
	}
	if a.Injected() == 0 {
		t.Fatal("schedule with these rates injected nothing in 200 ops")
	}
	if c := NewSchedule(43, plan); func() bool {
		for i := 0; i < 50; i++ {
			if c.Decide(OpWrite, 64) != NewSchedule(42, plan).Decide(OpWrite, 64) {
				return true
			}
		}
		return false
	}() == false {
		t.Log("seeds 42/43 happened to agree on 50 writes (unlikely but legal)")
	}
}

func TestShortWriteTearsDeterministically(t *testing.T) {
	plan := Plan{ShortWrite: 1}
	payload := bytes.Repeat([]byte{0xAB}, 100)

	run := func(seed uint64) (int, error) {
		m := &memFile{}
		ff := NewFile(m, NewSchedule(seed, plan))
		n, err := ff.Write(payload)
		if m.buf.Len() != n {
			t.Fatalf("file holds %d bytes, write reported %d", m.buf.Len(), n)
		}
		return n, err
	}

	n1, err1 := run(7)
	n2, err2 := run(7)
	if n1 != n2 {
		t.Fatalf("same seed tore at %d then %d", n1, n2)
	}
	if err1 == nil || !errors.Is(err1, ErrInjected) || !errors.Is(err2, ErrInjected) {
		t.Fatalf("short write must fail with ErrInjected, got %v / %v", err1, err2)
	}
	if n1 < 0 || n1 >= len(payload) {
		t.Fatalf("tear point %d out of range [0,%d)", n1, len(payload))
	}
}

func TestSwitchTogglesAllOps(t *testing.T) {
	sw := NewSwitch()
	m := &memFile{}
	ff := NewFile(m, sw)

	if _, err := ff.Write([]byte("ok")); err != nil {
		t.Fatalf("switch off: write failed: %v", err)
	}
	sw.Set(true)
	if _, err := ff.Write([]byte("no")); !errors.Is(err, ErrInjected) {
		t.Fatalf("switch on: want ErrInjected, got %v", err)
	}
	if err := ff.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("switch on: sync want ErrInjected, got %v", err)
	}
	sw.Set(false)
	if err := ff.Sync(); err != nil {
		t.Fatalf("switch off again: sync failed: %v", err)
	}
	if m.buf.String() != "ok" {
		t.Fatalf("file holds %q, want only the un-faulted write", m.buf.String())
	}
	if sw.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", sw.Injected())
	}
}

func TestTierFaultsDegradeToMisses(t *testing.T) {
	inner := newMemTier()
	key := runner.Key{Platform: "p", Tool: "t", Bench: "b", Procs: 4}
	res := runner.CellResult{Value: 1.5, Virtual: time.Second}

	sw := NewSwitch()
	ft := NewTier(inner, sw)

	ft.Fill(key, res)
	if got, ok := ft.Lookup(key); !ok || got != res {
		t.Fatalf("un-faulted roundtrip: %+v %v", got, ok)
	}

	sw.Set(true)
	if _, ok := ft.Lookup(key); ok {
		t.Fatal("faulted lookup must report a miss")
	}
	key2 := runner.Key{Platform: "p2"}
	ft.Fill(key2, res)
	sw.Set(false)
	if _, ok := ft.Lookup(key2); ok {
		t.Fatal("faulted fill must drop the write")
	}

	st := ft.Stats()
	if st.Lookups != 3 || st.LookupFaults != 1 || st.Fills != 2 || st.FillFaults != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPickSeed(t *testing.T) {
	if seed, fixed := PickSeed("TOOLEVAL_NO_SUCH_ENV", true); seed != 1 || !fixed {
		t.Fatalf("short mode: seed=%d fixed=%v, want 1/true", seed, fixed)
	}
	t.Setenv("TOOLEVAL_CHAOS_SEED_TEST", "12345")
	if seed, fixed := PickSeed("TOOLEVAL_CHAOS_SEED_TEST", false); seed != 12345 || !fixed {
		t.Fatalf("env seed: seed=%d fixed=%v, want 12345/true", seed, fixed)
	}
}
