// Package faults is the deterministic fault-injection seam behind the
// resilience suite: seeded, repeatable decisions about when an IO or
// tier operation should fail, tear, or stall, and decorators that
// apply those decisions to the two seams the result pipeline already
// exposes — the store's file operations (store.Open's WithFile wrapper)
// and the runner.Tier interface (Cache.SetTier).
//
// Everything here is deterministic given a seed and a call sequence:
// the chaos tests inject a seeded schedule mid-sweep and assert the
// served reports are byte-identical to a fault-free run. That property
// belongs to the layers under test (a tier miss re-simulates, a store
// write error degrades to non-persistence — neither may change a
// result); this package only makes the degraded paths reachable on
// demand and repeatable under -race.
package faults

import (
	crand "crypto/rand"
	"errors"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every injected failure wraps; match it with
// errors.Is to tell an injected fault from a real one in tests.
var ErrInjected = errors.New("faults: injected fault")

// Op names one interceptable operation.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpTruncate
	OpSeek
	OpRead
	OpClose
	OpLookup
	OpFill
	numOps
)

var opNames = [numOps]string{"write", "sync", "truncate", "seek", "read", "close", "lookup", "fill"}

func (o Op) String() string {
	if o < 0 || o >= numOps {
		return "op(" + strconv.Itoa(int(o)) + ")"
	}
	return opNames[o]
}

// Decision is one injector verdict for one operation.
type Decision struct {
	// Fail makes the operation return an injected error.
	Fail bool
	// Short makes a write persist only a prefix of its payload before
	// failing — the torn-tail case a crash mid-append produces. Only
	// meaningful for OpWrite, and implies Fail.
	Short bool
	// Latency is added before the operation (injected slowness). It
	// never changes the operation's outcome, only its wall-clock.
	Latency time.Duration
}

// Injector decides the fate of each operation. Implementations must be
// safe for concurrent use; n is the payload size for writes (0
// otherwise), so a short-write decision can pick a tear point.
type Injector interface {
	Decide(op Op, n int) Decision
}

// rng is splitmix64: tiny, well-mixed, and stable across Go releases —
// the seeds logged by a failing chaos run reproduce forever.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Plan parameterizes a seeded Schedule: per-operation fault rates, all
// probabilities in [0, 1]. The zero value injects nothing.
type Plan struct {
	// WriteError is the probability a write fails without persisting
	// anything.
	WriteError float64
	// ShortWrite is the probability a write persists only a seeded
	// prefix of its payload and then fails (a torn record).
	ShortWrite float64
	// SyncError is the probability an fsync fails.
	SyncError float64
	// TruncateError is the probability a truncate fails.
	TruncateError float64
	// LookupMiss is the probability a tier lookup is forced to report a
	// miss (error injection on the read path: the cell re-simulates).
	LookupMiss float64
	// FillDrop is the probability a tier fill is silently dropped
	// (error injection on the write path: the cell is not persisted).
	FillDrop float64
	// Latency, when non-zero, is added to an operation with probability
	// LatencyRate.
	Latency     time.Duration
	LatencyRate float64
}

// Schedule is a seeded, concurrency-safe Injector drawing every
// decision from one deterministic stream. Decisions depend on the seed
// and on the order Decide is called in — concurrent callers interleave
// nondeterministically, which is exactly the point: the layers under
// test must hold their contracts for every interleaving, and the seed
// still pins the total number and kind of faults closely enough to
// reproduce failures.
type Schedule struct {
	mu   sync.Mutex
	rng  rng
	plan Plan

	ops      atomic.Int64
	injected atomic.Int64
}

// NewSchedule returns a Schedule drawing from plan under seed.
func NewSchedule(seed uint64, plan Plan) *Schedule {
	return &Schedule{rng: rng{state: seed}, plan: plan}
}

// Decide implements Injector.
func (s *Schedule) Decide(op Op, n int) Decision {
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	var d Decision
	p := &s.plan
	if p.Latency > 0 && p.LatencyRate > 0 && s.rng.float() < p.LatencyRate {
		d.Latency = p.Latency
	}
	switch op {
	case OpWrite:
		if p.ShortWrite > 0 && s.rng.float() < p.ShortWrite {
			d.Fail, d.Short = true, true
		} else if p.WriteError > 0 && s.rng.float() < p.WriteError {
			d.Fail = true
		}
	case OpSync:
		d.Fail = p.SyncError > 0 && s.rng.float() < p.SyncError
	case OpTruncate:
		d.Fail = p.TruncateError > 0 && s.rng.float() < p.TruncateError
	case OpLookup:
		d.Fail = p.LookupMiss > 0 && s.rng.float() < p.LookupMiss
	case OpFill:
		d.Fail = p.FillDrop > 0 && s.rng.float() < p.FillDrop
	}
	if d.Fail {
		s.injected.Add(1)
	}
	return d
}

// TearPoint picks a deterministic prefix length in [0, n) for a short
// write of n bytes.
func (s *Schedule) TearPoint(n int) int {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.rng.next() % uint64(n))
}

// Ops reports how many decisions were drawn; Injected how many of them
// were faults. Chaos tests assert Injected > 0 so a mis-wired seam
// cannot silently pass by never faulting.
func (s *Schedule) Ops() int64      { return s.ops.Load() }
func (s *Schedule) Injected() int64 { return s.injected.Load() }

// Switch is the manual Injector: while On, every operation in its
// scope fails outright; while off, everything passes. It is the tool
// for scripted drills — latch a circuit open, watch it probe closed —
// where a probabilistic schedule would be noise.
type Switch struct {
	on       atomic.Bool
	injected atomic.Int64
}

// NewSwitch returns a Switch, initially off.
func NewSwitch() *Switch { return &Switch{} }

// Set turns fault injection on or off.
func (s *Switch) Set(on bool) { s.on.Store(on) }

// Injected reports how many operations were failed.
func (s *Switch) Injected() int64 { return s.injected.Load() }

// Decide implements Injector.
func (s *Switch) Decide(Op, int) Decision {
	if !s.on.Load() {
		return Decision{}
	}
	s.injected.Add(1)
	return Decision{Fail: true}
}

// PickSeed resolves the seed a chaos test should run under: a fixed
// seed in -short mode (CI determinism), else the named environment
// variable if set (reproducing a logged failure), else a value drawn
// from the OS entropy the caller must log. The second return reports
// whether the seed was fixed/reproduced (true) or fresh (false).
func PickSeed(envVar string, short bool) (uint64, bool) {
	if short {
		return 1, true
	}
	if v := os.Getenv(envVar); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n, true
		}
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()), false
	}
	var n uint64
	for _, x := range b {
		n = n<<8 | uint64(x)
	}
	return n, false
}
