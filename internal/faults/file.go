package faults

import (
	"fmt"
	"io"
	"time"
)

// File is the file-operation surface the result store drives (a subset
// of *os.File). It is declared here structurally — identical to
// store.File — so the two packages need not import each other.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FaultyFile wraps a File, consulting an Injector before every
// operation. Injected failures return errors wrapping ErrInjected;
// short writes persist a deterministic prefix of the payload to the
// underlying file before failing, reproducing exactly the torn tail a
// crash mid-append leaves behind.
//
// Reads, seeks, and closes are passed through un-faulted by default:
// the store reads only at Open (fault it there and nothing opens) and
// closes once. The injector still sees OpRead/OpSeek/OpClose decisions
// so a dedicated schedule can fault them deliberately.
type FaultyFile struct {
	f   File
	inj Injector

	// tear resolves the prefix length for a short write of n bytes;
	// nil halves the payload. Schedules install their seeded source.
	tear func(n int) int
}

// NewFile wraps f with fault injection from inj. When inj is a
// *Schedule, short-write tear points come from the same seeded stream.
func NewFile(f File, inj Injector) *FaultyFile {
	ff := &FaultyFile{f: f, inj: inj}
	if s, ok := inj.(*Schedule); ok {
		ff.tear = s.TearPoint
	}
	return ff
}

// SetTear overrides how short writes pick their prefix length: fn maps
// a payload size n to a tear point in [0, n). Property tests use this
// to sweep every possible prefix of a record instead of sampling.
func (ff *FaultyFile) SetTear(fn func(n int) int) { ff.tear = fn }

func (ff *FaultyFile) apply(op Op, n int) Decision {
	d := ff.inj.Decide(op, n)
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	return d
}

func injected(op Op) error { return fmt.Errorf("%s: %w", op, ErrInjected) }

func (ff *FaultyFile) Write(p []byte) (int, error) {
	d := ff.apply(OpWrite, len(p))
	if !d.Fail {
		return ff.f.Write(p)
	}
	if !d.Short || len(p) == 0 {
		return 0, injected(OpWrite)
	}
	k := len(p) / 2
	if ff.tear != nil {
		k = ff.tear(len(p))
	}
	n, err := ff.f.Write(p[:k])
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("short write (%d of %d bytes): %w", n, len(p), ErrInjected)
}

func (ff *FaultyFile) Sync() error {
	if ff.apply(OpSync, 0).Fail {
		return injected(OpSync)
	}
	return ff.f.Sync()
}

func (ff *FaultyFile) Truncate(size int64) error {
	if ff.apply(OpTruncate, 0).Fail {
		return injected(OpTruncate)
	}
	return ff.f.Truncate(size)
}

func (ff *FaultyFile) Read(p []byte) (int, error) {
	if ff.apply(OpRead, len(p)).Fail {
		return 0, injected(OpRead)
	}
	return ff.f.Read(p)
}

func (ff *FaultyFile) Seek(offset int64, whence int) (int64, error) {
	if ff.apply(OpSeek, 0).Fail {
		return 0, injected(OpSeek)
	}
	return ff.f.Seek(offset, whence)
}

func (ff *FaultyFile) Close() error {
	if ff.apply(OpClose, 0).Fail {
		return injected(OpClose)
	}
	return ff.f.Close()
}
