package faults

import (
	"sync/atomic"
	"time"

	"tooleval/internal/runner"
)

// Tier decorates a runner.Tier with fault injection: injected lookup
// faults report a miss (the cell re-simulates — a tier that cannot
// answer must degrade, never invent), injected fill faults drop the
// write (the cell is simply not persisted), and injected latency
// stalls the call. The Tier contract guarantees none of this can
// change a result, only cost — which is exactly what the chaos suite
// pins by comparing faulted and fault-free sweeps byte for byte.
type Tier struct {
	inner runner.Tier
	inj   Injector

	lookups      atomic.Int64
	lookupFaults atomic.Int64
	fills        atomic.Int64
	fillFaults   atomic.Int64
}

var _ runner.Tier = (*Tier)(nil)

// NewTier wraps inner with fault injection from inj.
func NewTier(inner runner.Tier, inj Injector) *Tier {
	return &Tier{inner: inner, inj: inj}
}

// Lookup implements runner.Tier. An injected fault is a forced miss.
func (t *Tier) Lookup(key runner.Key) (runner.CellResult, bool) {
	t.lookups.Add(1)
	d := t.inj.Decide(OpLookup, 0)
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.Fail {
		t.lookupFaults.Add(1)
		return runner.CellResult{}, false
	}
	return t.inner.Lookup(key)
}

// Fill implements runner.Tier. An injected fault drops the write.
func (t *Tier) Fill(key runner.Key, res runner.CellResult) {
	t.fills.Add(1)
	d := t.inj.Decide(OpFill, 0)
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.Fail {
		t.fillFaults.Add(1)
		return
	}
	t.inner.Fill(key, res)
}

// TierStats snapshots the decorator's traffic counters.
type TierStats struct {
	Lookups, LookupFaults int64
	Fills, FillFaults     int64
}

// Stats reports how many calls passed through and how many were
// faulted.
func (t *Tier) Stats() TierStats {
	return TierStats{
		Lookups:      t.lookups.Load(),
		LookupFaults: t.lookupFaults.Load(),
		Fills:        t.fills.Load(),
		FillFaults:   t.fillFaults.Load(),
	}
}
