package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tooleval/internal/runner"
	"tooleval/internal/sim"
)

var bg = context.Background()

// fakeCompute is a deterministic pure function of the key — the same
// role bench.ComputeCell plays in the daemon, cheap enough for tests.
func fakeCompute(key runner.Key) (runner.CellResult, error) {
	if key.Bench == "explode" {
		return runner.CellResult{}, fmt.Errorf("cell %s: deterministic failure", key)
	}
	v := float64(key.Hash()%1000)/7.0 + float64(key.Procs)*0.5 + key.Scale
	return runner.CellResult{Value: v, Virtual: time.Duration(key.Hash()%5000) * time.Microsecond}, nil
}

// countingCompute wraps fakeCompute recording how many times each key
// was computed, across however many workers share it.
type countingCompute struct {
	mu     sync.Mutex
	counts map[runner.Key]int
}

func newCountingCompute() *countingCompute {
	return &countingCompute{counts: make(map[runner.Key]int)}
}

func (c *countingCompute) compute(key runner.Key) (runner.CellResult, error) {
	c.mu.Lock()
	c.counts[key]++
	c.mu.Unlock()
	return fakeCompute(key)
}

// startWorker spins up an httptest worker daemon; the cleanup closes
// it. Extra WorkerOptions pass through (version-skew tests).
func startWorker(t *testing.T, compute ComputeFunc, opts ...WorkerOption) *httptest.Server {
	t.Helper()
	w := NewWorker(runner.New(4), compute, opts...)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func testKeys(n int) []runner.Key {
	keys := make([]runner.Key, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, runner.Key{
			Platform: "ncube2",
			Tool:     "tool" + string(rune('a'+i%3)),
			Bench:    "pingpong",
			Procs:    1 + i%8,
			Size:     64 << (i % 5),
			Scale:    1.0,
		})
	}
	return keys
}

// TestRemoteMatchesLocal is the location-transparency contract: a
// sweep dispatched through Remote over live workers returns exactly
// the values the compute function returns locally, and the
// coordinator-side cache/observer/single-flight behave as if the
// compute had run in-process.
func TestRemoteMatchesLocal(t *testing.T) {
	ws := []*httptest.Server{
		startWorker(t, fakeCompute),
		startWorker(t, fakeCompute),
		startWorker(t, fakeCompute),
	}
	nodes := make([]string, len(ws))
	for i, ts := range ws {
		nodes[i] = ts.URL
	}
	r, err := New(nodes, runner.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var observed atomic.Int64
	r.Observe(func(_ context.Context, _ runner.Key, cached bool, _ error) {
		if !cached {
			observed.Add(1)
		}
	})

	keys := testKeys(40)
	for _, key := range keys {
		want, _ := fakeCompute(key)
		got, err := r.Memo(bg, key, nil)
		if err != nil {
			t.Fatalf("Memo(%s): %v", key, err)
		}
		if got != want.Value {
			t.Fatalf("Memo(%s) = %v, want %v (remote result differs from local)", key, got, want.Value)
		}
	}
	// Second pass: all warm, no extra RPCs.
	sentBefore := totalSent(r)
	for _, key := range keys {
		if _, err := r.Memo(bg, key, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := totalSent(r); got != sentBefore {
		t.Fatalf("warm pass issued %d extra RPCs, want 0", got-sentBefore)
	}
	st := r.Stats()
	if st.Misses != int64(len(keys)) || st.Hits != int64(len(keys)) {
		t.Fatalf("cache stats = %+v, want %d misses and %d hits", st, len(keys), len(keys))
	}
	if observed.Load() != int64(len(keys)) {
		t.Fatalf("observer fired %d times, want %d (once per computed cell)", observed.Load(), len(keys))
	}
}

func totalSent(r *Remote) int64 {
	var n int64
	for _, ns := range r.NodeStats() {
		n += ns.Sent
	}
	return n
}

// A deterministic cell error comes back as an error, is memoized, and
// does not fail over: exactly one RPC, exactly one compute.
func TestRemoteDeterministicCellError(t *testing.T) {
	cc := newCountingCompute()
	ws := []*httptest.Server{startWorker(t, cc.compute), startWorker(t, cc.compute)}
	r, err := New([]string{ws[0].URL, ws[1].URL}, runner.New(4))
	if err != nil {
		t.Fatal(err)
	}
	key := runner.Key{Platform: "ncube2", Tool: "toola", Bench: "explode", Procs: 2, Size: 64}
	for i := 0; i < 3; i++ {
		_, err := r.Memo(bg, key, nil)
		if err == nil || !strings.Contains(err.Error(), "deterministic failure") {
			t.Fatalf("Memo #%d error = %v, want the cell's own failure", i, err)
		}
	}
	if got := cc.counts[key]; got != 1 {
		t.Fatalf("cell computed %d times, want 1 (error must memoize, not fail over)", got)
	}
	if got := totalSent(r); got != 1 {
		t.Fatalf("sent %d RPCs, want 1", got)
	}
}

// TestRemoteVirtualTime checks the virtual-time cost rides the wire —
// including on a warm worker cache hit, where the worker reconstructs
// it from its cache rather than from a fresh compute.
func TestRemoteVirtualTime(t *testing.T) {
	ts := startWorker(t, fakeCompute)
	key := testKeys(1)[0]
	want, _ := fakeCompute(key)
	for i := 0; i < 2; i++ {
		// A fresh coordinator each round: round 2 hits only the worker's
		// cache, not the coordinator's.
		r, err := New([]string{ts.URL}, runner.New(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Memo(bg, key, nil); err != nil {
			t.Fatal(err)
		}
		// The coordinator cache must have absorbed the wire-reported cost.
		res, ok := r.Cache().Lookup(key)
		if !ok {
			t.Fatalf("round %d: coordinator cache has no completed entry", i)
		}
		if res.Virtual != want.Virtual {
			t.Fatalf("round %d: virtual = %v, want %v", i, res.Virtual, want.Virtual)
		}
	}
}

// TestVersionMismatchRefusal pins the hard typed refusal: a worker on
// a different engine version answers with a 409 the coordinator turns
// into a *VersionError — no result, no failover, no breaker penalty.
func TestVersionMismatchRefusal(t *testing.T) {
	cc := newCountingCompute()
	skewed := startWorker(t, cc.compute, WithWorkerEngine(sim.EngineVersion+1))
	r, err := New([]string{skewed.URL}, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	key := testKeys(1)[0]
	_, err = r.Memo(bg, key, nil)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Memo error = %v, want *VersionError", err)
	}
	if ve.WorkerEngine != sim.EngineVersion+1 || ve.CoordinatorEngine != sim.EngineVersion {
		t.Fatalf("VersionError stamps = %+v", ve)
	}
	if ve.Node != skewed.URL {
		t.Fatalf("VersionError.Node = %q, want %q", ve.Node, skewed.URL)
	}
	if len(cc.counts) != 0 {
		t.Fatal("skewed worker computed a cell; refusal must precede compute")
	}
	if st := r.NodeStats()[0]; st.State != "ok" || st.Ejected != 0 {
		t.Fatalf("node state after refusal = %+v, want ok/unejected (refusing is not failing)", st)
	}
	// The refusal is a deterministic outcome: memoized, not retried.
	if _, err2 := r.Memo(bg, key, nil); !errors.As(err2, &ve) {
		t.Fatalf("second Memo error = %v, want memoized *VersionError", err2)
	}
	if got := totalSent(r); got != 1 {
		t.Fatalf("sent %d RPCs, want 1 (refusal memoizes)", got)
	}
}

// TestWorkerRejectsBadRequests covers the worker's non-compute paths.
func TestWorkerRejectsBadRequests(t *testing.T) {
	ts := startWorker(t, fakeCompute)
	// GET on the cells path.
	resp, err := http.Get(ts.URL + CellsPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET %s = %d, want 405", CellsPath, resp.StatusCode)
	}
	// Garbage body.
	resp, err = http.Post(ts.URL+CellsPath, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST = %d, want 400", resp.StatusCode)
	}
	// Health.
	resp, err = http.Get(ts.URL + HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", HealthPath, resp.StatusCode)
	}
}

// TestNewValidation pins constructor errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(nil, runner.New(1)); err == nil {
		t.Fatal("New with no nodes succeeded")
	}
	if _, err := New([]string{"a:1", "a:1"}, runner.New(1)); err == nil {
		t.Fatal("New with duplicate nodes succeeded")
	}
	if _, err := New([]string{"a:1", "  "}, runner.New(1)); err == nil {
		t.Fatal("New with a blank node succeeded")
	}
	r, err := New([]string{"a:1", "http://b:2/"}, runner.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); got[0] != "a:1" || got[1] != "http://b:2/" {
		t.Fatalf("Nodes() = %v", got)
	}
}

// owners maps every key to its top-ranked node name under r.
func owners(r *Remote, keys []runner.Key) map[runner.Key]string {
	out := make(map[runner.Key]string, len(keys))
	for _, k := range keys {
		out[k] = r.rank(k)[0].name
	}
	return out
}

// TestRendezvousMinimalMovement pins the consistent-hash property the
// failover design rests on: removing a node moves only that node's
// keys (each to its runner-up), and adding a node steals only the keys
// the new node wins — every other assignment is untouched.
func TestRendezvousMinimalMovement(t *testing.T) {
	inner := func() runner.Executor { return runner.New(1) }
	all := []string{"worker-a:1", "worker-b:2", "worker-c:3", "worker-d:4"}
	rAll, err := New(all, inner())
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(400)
	before := owners(rAll, keys)

	// Sanity: the load spreads — no node owns everything or nothing.
	byNode := map[string]int{}
	for _, n := range before {
		byNode[n]++
	}
	for _, n := range all {
		if byNode[n] == 0 || byNode[n] == len(keys) {
			t.Fatalf("degenerate spread %v", byNode)
		}
	}

	// Leave: drop worker-c. Only its keys may move.
	without := []string{"worker-a:1", "worker-b:2", "worker-d:4"}
	rLess, err := New(without, inner())
	if err != nil {
		t.Fatal(err)
	}
	after := owners(rLess, keys)
	for _, k := range keys {
		if before[k] != "worker-c:3" {
			if after[k] != before[k] {
				t.Fatalf("key %s moved %s -> %s though its node survived", k, before[k], after[k])
			}
			continue
		}
		// Orphaned keys land on their rendezvous runner-up.
		if want := rAll.rank(k)[1].name; after[k] != want {
			t.Fatalf("orphaned key %s landed on %s, want runner-up %s", k, after[k], want)
		}
	}

	// Join: re-adding worker-c must exactly restore the original map —
	// the keys it steals back are precisely the ones it owned.
	rBack, err := New(all, inner())
	if err != nil {
		t.Fatal(err)
	}
	restored := owners(rBack, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s: %s after re-join, want %s", k, restored[k], before[k])
		}
	}
}

// flakyProxy fronts a worker and, once killed, refuses every cell RPC
// with a 503 — the shape of a daemon dying mid-sweep (from the
// coordinator's view a connection error and a 5xx classify the same:
// node fault, retryable).
type flakyProxy struct {
	backend http.Handler
	killed  atomic.Bool
	after   atomic.Int64 // kill switch: die after this many cell RPCs (0 = only explicit kill)
	served  atomic.Int64
}

func (p *flakyProxy) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == CellsPath {
		n := p.served.Add(1)
		if a := p.after.Load(); a > 0 && n > a {
			p.killed.Store(true)
		}
		if p.killed.Load() {
			http.Error(rw, "worker killed by test", http.StatusServiceUnavailable)
			return
		}
	}
	p.backend.ServeHTTP(rw, r)
}

// TestChaosWorkerLoss is the worker-loss property test: a seeded kill
// switch takes one worker down mid-sweep, and every cell must still be
// computed exactly once on a surviving worker, with values identical
// to a no-failure run.
func TestChaosWorkerLoss(t *testing.T) {
	keys := testKeys(60)
	for _, seed := range []int64{1, 3, 7, 13} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cc := newCountingCompute()
			// Three workers; the one behind the proxy dies after `seed`
			// cell RPCs.
			proxy := &flakyProxy{backend: NewWorker(runner.New(4), cc.compute).Handler()}
			proxy.after.Store(seed)
			doomed := httptest.NewServer(proxy)
			defer doomed.Close()
			s1 := startWorker(t, cc.compute)
			s2 := startWorker(t, cc.compute)

			r, err := New([]string{doomed.URL, s1.URL, s2.URL}, runner.New(8),
				WithNodeBreaker(2, time.Hour, time.Hour)) // ejected stays ejected for the test's lifetime
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, len(keys))
			vals := make([]float64, len(keys))
			for i, key := range keys {
				wg.Add(1)
				go func(i int, key runner.Key) {
					defer wg.Done()
					vals[i], errs[i] = r.Memo(bg, key, nil)
				}(i, key)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("cell %s failed despite survivors: %v", keys[i], err)
				}
			}
			for i, key := range keys {
				want, _ := fakeCompute(key)
				if vals[i] != want.Value {
					t.Fatalf("cell %s = %v, want %v", key, vals[i], want.Value)
				}
				if got := cc.counts[key]; got != 1 {
					t.Fatalf("cell %s computed %d times, want exactly once", key, got)
				}
			}
			if !proxy.killed.Load() {
				t.Fatal("kill switch never fired; the chaos run degenerated to a clean one")
			}
			// The doomed node's ejection is visible in the stats.
			var sawEjected bool
			for _, ns := range r.NodeStats() {
				if ns.Node == doomed.URL {
					sawEjected = ns.Ejected >= 1
				}
			}
			if !sawEjected {
				t.Fatalf("doomed node never ejected: %+v", r.NodeStats())
			}
		})
	}
}

// TestAllWorkersDown: when every node is dead the sweep fails with a
// wrapped node error instead of hanging, and nothing is memoized as a
// value.
func TestAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	r, err := New([]string{dead.URL}, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	key := testKeys(1)[0]
	if _, err := r.Memo(bg, key, nil); err == nil || !strings.Contains(err.Error(), "every worker") {
		t.Fatalf("Memo with all nodes down = %v, want every-worker failure", err)
	}
}

// TestBreakerEjectionAndProbe drives the per-node breaker through its
// cycle with a fake clock: consecutive failures eject, RPCs are
// refused during the backoff window, the window's end admits a single
// probe, and a successful probe re-admits the node.
func TestBreakerEjectionAndProbe(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	cc := newCountingCompute()
	backend := NewWorker(runner.New(2), cc.compute).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if failing.Load() && r.URL.Path == CellsPath {
			http.Error(rw, "injected fault", http.StatusInternalServerError)
			return
		}
		backend.ServeHTTP(rw, r)
	}))
	defer ts.Close()

	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	r, err := New([]string{ts.URL}, runner.New(2),
		WithClock(now), WithNodeBreaker(3, 100*time.Millisecond, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	keys := testKeys(5)
	// Three failing cells trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := r.Memo(bg, keys[i], nil); err == nil {
			t.Fatalf("cell %d against failing node succeeded", i)
		}
	}
	if st := r.NodeStats()[0]; st.State != "ejected" || st.Ejected != 1 {
		t.Fatalf("after threshold failures: %+v, want ejected once", st)
	}

	// Inside the backoff window nothing is admitted — not even an RPC.
	sent := totalSent(r)
	if _, err := r.Memo(bg, keys[3], nil); err == nil {
		t.Fatal("cell against ejected node succeeded")
	}
	if got := totalSent(r); got != sent {
		t.Fatalf("ejected node received %d RPCs, want 0", got-sent)
	}

	// Past the window the node heals; the probe succeeds and re-admits.
	failing.Store(false)
	clock = clock.Add(150 * time.Millisecond)
	if st := r.NodeStats()[0]; st.State != "probing" {
		t.Fatalf("after backoff elapsed: state %q, want probing", st.State)
	}
	if _, err := r.Memo(bg, keys[4], nil); err != nil {
		t.Fatalf("probe cell failed after node healed: %v", err)
	}
	if st := r.NodeStats()[0]; st.State != "ok" {
		t.Fatalf("after successful probe: %+v, want ok", st)
	}
	// Healed node serves normally again.
	if _, err := r.Memo(bg, testKeys(9)[8], nil); err != nil {
		t.Fatalf("post-recovery cell: %v", err)
	}
}

// A failed probe doubles the backoff instead of resetting it.
func TestBreakerProbeFailureBacksOff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "still down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	clock := time.Unix(1000, 0)
	r, err := New([]string{ts.URL}, runner.New(1),
		WithClock(func() time.Time { return clock }),
		WithNodeBreaker(1, 100*time.Millisecond, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(3)
	if _, err := r.Memo(bg, keys[0], nil); err == nil {
		t.Fatal("dead node succeeded")
	}
	// First probe at +100ms fails -> backoff doubles to 200ms.
	clock = clock.Add(100 * time.Millisecond)
	if _, err := r.Memo(bg, keys[1], nil); err == nil {
		t.Fatal("probe against dead node succeeded")
	}
	clock = clock.Add(150 * time.Millisecond) // 150 < 200: still closed to RPCs
	sent := totalSent(r)
	if _, err := r.Memo(bg, keys[2], nil); err == nil {
		t.Fatal("cell inside doubled backoff succeeded")
	}
	if got := totalSent(r); got != sent {
		t.Fatalf("node inside doubled backoff received %d RPCs, want 0", got-sent)
	}
}

// Context cancellation surfaces the caller's error and is never
// memoized: a later call with a live context computes normally.
func TestRemoteContextCancellation(t *testing.T) {
	ts := startWorker(t, fakeCompute)
	r, err := New([]string{ts.URL}, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	key := testKeys(1)[0]
	if _, err := r.Memo(ctx, key, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Memo under cancelled ctx = %v, want context.Canceled", err)
	}
	if st := r.NodeStats()[0]; st.Ejected != 0 {
		t.Fatalf("cancellation penalized the node: %+v", st)
	}
	want, _ := fakeCompute(key)
	got, err := r.Memo(bg, key, nil)
	if err != nil || got != want.Value {
		t.Fatalf("Memo after cancellation = %v, %v; want %v, nil (ctx errors must not cache)", got, err, want.Value)
	}
}

// TestWorkerStatsz pins the daemon's observability surface: engine and
// protocol versions, uptime under the injected clock, worker count,
// and cache counters that move with traffic.
func TestWorkerStatsz(t *testing.T) {
	clock := time.Unix(5000, 0)
	w := NewWorker(runner.New(3), fakeCompute, WithWorkerClock(func() time.Time { return clock }))
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()
	clock = clock.Add(90 * time.Second)

	r, err := New([]string{ts.URL}, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	key := testKeys(1)[0]
	for i := 0; i < 2; i++ {
		// Fresh coordinator per round so round 2 re-asks the worker.
		r2, _ := New([]string{ts.URL}, runner.New(2))
		if _, err := r2.Memo(bg, key, nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = r

	resp, err := http.Get(ts.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st workerStats
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.EngineVersion != sim.EngineVersion || st.ProtocolVersion != ProtocolVersion {
		t.Fatalf("statsz versions = %+v", st)
	}
	if st.UptimeSeconds != 90 {
		t.Fatalf("statsz uptime = %v, want 90", st.UptimeSeconds)
	}
	if st.Workers != 3 {
		t.Fatalf("statsz workers = %d, want 3", st.Workers)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Fatalf("statsz cache = %+v, want 1 miss + 1 hit", st.Cache)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
