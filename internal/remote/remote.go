package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"tooleval/internal/runner"
	"tooleval/internal/sim"
)

// Per-node breaker defaults: eject after 3 consecutive RPC failures,
// first half-open probe after 100ms, backoff doubling up to 10s — the
// same shape as the store's write-path breaker.
const (
	defaultFailureThreshold = 3
	defaultProbeBackoff     = 100 * time.Millisecond
	defaultMaxBackoff       = 10 * time.Second
)

// Remote is the coordinator-side distributed Executor. It layers the
// wire dispatch over an inner local executor (usually the session's
// quota-wrapped pool): Memo runs through the inner executor's
// memoization — single-flight, cache, optional durable tier, observer,
// quota charging all stay coordinator-side — and only the compute step
// is replaced by an RPC to the worker that rendezvous hashing assigns
// the key.
//
// Remote.Memo therefore IGNORES the compute closure the caller passes:
// the cell is recomputed on the worker from its key alone (cells are
// pure functions of their keys), which is the whole point — and why
// custom WithTool factories, which exist only in the coordinator's
// registry, cannot be evaluated remotely.
//
// Node failure reuses the breaker vocabulary: an RPC failure counts
// against the node, threshold consecutive failures eject it (timed
// half-open probe re-admits), and the failed cell fails over to the
// next node in its rendezvous order — mid-sweep loss of a worker moves
// exactly that worker's cells to survivors, with identical results.
type Remote struct {
	local  runner.Executor
	client *http.Client
	engine uint64
	now    func() time.Time

	threshold int
	base, max time.Duration

	nodes []*node
}

var _ runner.Executor = (*Remote)(nil)

// Option configures a Remote under construction.
type Option func(*Remote)

// WithHTTPClient substitutes the coordinator's HTTP client (tests use
// httptest server clients; deployments may want timeouts/transport
// tuning). Per-call cancellation always rides the Memo context.
func WithHTTPClient(c *http.Client) Option {
	return func(r *Remote) {
		if c != nil {
			r.client = c
		}
	}
}

// WithNodeBreaker tunes the per-node ejection breaker: threshold
// consecutive failures eject, first probe after base, backoff doubling
// up to max. Non-positive values keep the defaults.
func WithNodeBreaker(threshold int, base, max time.Duration) Option {
	return func(r *Remote) {
		if threshold > 0 {
			r.threshold = threshold
		}
		if base > 0 {
			r.base = base
		}
		if max > 0 {
			r.max = max
		}
	}
}

// WithClock substitutes the breaker clock (tests).
func WithClock(now func() time.Time) Option {
	return func(r *Remote) { r.now = now }
}

// New builds the coordinator executor over the given worker addresses
// ("host:port" or full http:// URLs) and inner local executor. The
// inner executor supplies the memoization cache, concurrency bound
// (which doubles as the in-flight RPC bound), observer, and — when the
// session wraps it in a quota — budget charging; Remote adds routing,
// failover, and the wire protocol on top.
func New(nodes []string, inner runner.Executor, opts ...Option) (*Remote, error) {
	if len(nodes) == 0 {
		return nil, errors.New("remote: no worker nodes given")
	}
	r := &Remote{
		local:     inner,
		client:    http.DefaultClient,
		engine:    sim.EngineVersion,
		now:       time.Now,
		threshold: defaultFailureThreshold,
		base:      defaultProbeBackoff,
		max:       defaultMaxBackoff,
	}
	for _, opt := range opts {
		opt(r)
	}
	seen := make(map[string]bool, len(nodes))
	for _, raw := range nodes {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, errors.New("remote: empty worker address")
		}
		if seen[name] {
			return nil, fmt.Errorf("remote: duplicate worker address %q", name)
		}
		seen[name] = true
		base := name
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimRight(base, "/")
		r.nodes = append(r.nodes, &node{
			name:      name,
			base:      base,
			hash:      fnv64(name),
			threshold: r.threshold,
			backoff0:  r.base,
			backoffMx: r.max,
		})
	}
	return r, nil
}

// Nodes reports the configured worker addresses, in the given order.
func (r *Remote) Nodes() []string {
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Memo resolves the cell through the inner executor's memoization with
// the compute step replaced by remote dispatch. The caller's compute
// closure is deliberately ignored — see the type comment.
func (r *Remote) Memo(ctx context.Context, key runner.Key, _ func() (runner.CellResult, error)) (float64, error) {
	return r.local.Memo(ctx, key, func() (runner.CellResult, error) {
		return r.dispatch(ctx, key)
	})
}

// Do runs fn locally under the inner executor's slot — direct
// (non-memoized) runs have no content key to route by, so they stay on
// the coordinator.
func (r *Remote) Do(ctx context.Context, fn func() error) error {
	return r.local.Do(ctx, fn)
}

// Map delegates the ordered fan-out to the inner executor; the cells
// inside fn dispatch remotely through Memo.
func (r *Remote) Map(ctx context.Context, n int, fn func(i int) error) error {
	return r.local.Map(ctx, n, fn)
}

func (r *Remote) Workers() int               { return r.local.Workers() }
func (r *Remote) Stats() runner.Stats        { return r.local.Stats() }
func (r *Remote) Cache() *runner.Cache       { return r.local.Cache() }
func (r *Remote) Observe(fn runner.Observer) { r.local.Observe(fn) }

// dispatch sends the cell to the workers in rendezvous order: the
// top-ranked admitted node first, failing over down the order on
// transport faults. Deterministic outcomes — a 200 (with or without a
// cell error) or a version refusal — never fail over.
func (r *Remote) dispatch(ctx context.Context, key runner.Key) (runner.CellResult, error) {
	var lastErr error
	retry := false
	for _, nd := range r.rank(key) {
		if err := ctx.Err(); err != nil {
			return runner.CellResult{}, err
		}
		if !nd.admit(r.now()) {
			continue
		}
		res, retryable, err := r.call(ctx, nd, key, retry)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return runner.CellResult{}, err
		}
		lastErr = err
		retry = true
	}
	if lastErr != nil {
		return runner.CellResult{}, fmt.Errorf("remote: cell %s: every worker failed or is ejected: %w", key, lastErr)
	}
	return runner.CellResult{}, fmt.Errorf("remote: cell %s: every worker is ejected", key)
}

// call performs one cell RPC against nd. retryable reports whether the
// failure is a node fault worth failing over (transport error, 5xx,
// garbled response) as opposed to a deterministic outcome.
func (r *Remote) call(ctx context.Context, nd *node, key runner.Key, isRetry bool) (runner.CellResult, bool, error) {
	nd.record(isRetry)
	body, err := json.Marshal(requestFor(key, r.engine))
	if err != nil {
		return runner.CellResult{}, false, fmt.Errorf("remote: encode cell %s: %w", key, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nd.base+CellsPath, bytes.NewReader(body))
	if err != nil {
		return runner.CellResult{}, false, fmt.Errorf("remote: %s: %w", nd.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The sweep was cancelled, not the node broken: return the
			// bare context error (never cached, no breaker penalty).
			return runner.CellResult{}, false, ctx.Err()
		}
		nd.fail(r.now(), err)
		return runner.CellResult{}, true, fmt.Errorf("remote: %s: %w", nd.name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		if ctx.Err() != nil {
			return runner.CellResult{}, false, ctx.Err()
		}
		nd.fail(r.now(), err)
		return runner.CellResult{}, true, fmt.Errorf("remote: %s: reading response: %w", nd.name, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var cr CellResponse
		if err := json.Unmarshal(data, &cr); err != nil {
			nd.fail(r.now(), err)
			return runner.CellResult{}, true, fmt.Errorf("remote: %s: garbled response: %w", nd.name, err)
		}
		nd.ok()
		if cr.Err != "" {
			// A deterministic cell error: memoized upstream like a local
			// failure, never failed over (every worker computes it).
			return runner.CellResult{}, false, errors.New(cr.Err)
		}
		return runner.CellResult{Value: cr.Value, Virtual: time.Duration(cr.VirtualNS)}, false, nil
	case resp.StatusCode == http.StatusConflict:
		var ref refusal
		if jerr := json.Unmarshal(data, &ref); jerr == nil && ref.Kind == kindVersionMismatch {
			// The node is alive and answering — it is refusing, not
			// failing. No breaker penalty, no failover: a version skew is
			// a deployment bug to surface, not to route around.
			nd.ok()
			return runner.CellResult{}, false, &VersionError{
				Node:                nd.name,
				CoordinatorEngine:   r.engine,
				WorkerEngine:        ref.Engine,
				CoordinatorProtocol: ProtocolVersion,
				WorkerProtocol:      ref.Protocol,
			}
		}
		return runner.CellResult{}, false, fmt.Errorf("remote: %s: HTTP %d: %s", nd.name, resp.StatusCode, strings.TrimSpace(string(data)))
	case resp.StatusCode >= 500:
		err := fmt.Errorf("remote: %s: HTTP %d: %s", nd.name, resp.StatusCode, strings.TrimSpace(string(data)))
		nd.fail(r.now(), err)
		return runner.CellResult{}, true, err
	default:
		// A 4xx other than the version refusal means the coordinator sent
		// a request every worker would reject the same way.
		return runner.CellResult{}, false, fmt.Errorf("remote: %s: HTTP %d: %s", nd.name, resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// rank orders the nodes for key by rendezvous (highest-random-weight)
// hashing over the key's content hash: every coordinator computes the
// same order, each key has an independent pseudo-random permutation,
// and removing a node moves only that node's keys (to their runner-up)
// while adding one steals only the keys it now wins — the minimal
// movement property the consistent-hash test pins.
func (r *Remote) rank(key runner.Key) []*node {
	h := key.Hash()
	type scored struct {
		n *node
		s uint64
	}
	sc := make([]scored, len(r.nodes))
	for i, n := range r.nodes {
		sc[i] = scored{n, mix(n.hash, h)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].n.name < sc[j].n.name
	})
	out := make([]*node, len(sc))
	for i, s := range sc {
		out[i] = s.n
	}
	return out
}

// mix combines a node identity hash with a key hash into a rendezvous
// score (splitmix64 finalizer — full avalanche, so one key flipping
// one bit reshuffles its node order independently of every other key).
func mix(nodeHash, keyHash uint64) uint64 {
	x := nodeHash ^ (keyHash * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a over a node name (the runner's key hash covers key
// fields; node identities need their own).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// node is one worker endpoint plus its coordinator-side health state:
// RPC counters and the ejection breaker, guarded by mu (dispatches for
// different cells touch the same node concurrently).
type node struct {
	name string
	base string
	hash uint64

	threshold int
	backoff0  time.Duration
	backoffMx time.Duration

	mu       sync.Mutex
	open     bool
	failures int
	backoff  time.Duration
	retryAt  time.Time
	trips    int64

	sent      int64
	completed int64
	retried   int64
}

// record counts an outgoing RPC (and whether it is a failover retry of
// a cell another node already failed).
func (n *node) record(isRetry bool) {
	n.mu.Lock()
	n.sent++
	if isRetry {
		n.retried++
	}
	n.mu.Unlock()
}

// admit reports whether the node may receive an RPC now: ejected nodes
// admit nothing until their backoff elapses, then admit one half-open
// probe (pushing the window forward so concurrent dispatches do not
// pile onto a node that is still down).
func (n *node) admit(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.open {
		return true
	}
	if now.Before(n.retryAt) {
		return false
	}
	n.retryAt = now.Add(n.backoff)
	return true
}

// fail records an RPC failure, ejecting the node at threshold
// consecutive failures (or doubling the backoff if a probe failed).
func (n *node) fail(now time.Time, _ error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.open {
		n.backoff *= 2
		if n.backoff > n.backoffMx {
			n.backoff = n.backoffMx
		}
		n.retryAt = now.Add(n.backoff)
		return
	}
	n.failures++
	if n.failures >= n.threshold {
		n.open = true
		n.trips++
		n.backoff = n.backoff0
		n.retryAt = now.Add(n.backoff)
	}
}

// ok records a successful RPC: consecutive-failure state clears and an
// ejected node (whose probe just succeeded) is re-admitted.
func (n *node) ok() {
	n.mu.Lock()
	n.open = false
	n.failures = 0
	n.backoff = 0
	n.retryAt = time.Time{}
	n.completed++
	n.mu.Unlock()
}

// NodeStats is one worker's coordinator-side counters, for
// `toolbench -stats` and /statsz.
type NodeStats struct {
	// Node is the worker address as configured.
	Node string `json:"node"`
	// Sent counts cell RPCs issued to this node (including probes and
	// retries).
	Sent int64 `json:"sent"`
	// Completed counts RPCs the node answered with a 200.
	Completed int64 `json:"completed"`
	// Retried counts RPCs to this node that were failovers of a cell
	// another node had just failed.
	Retried int64 `json:"retried"`
	// Ejected counts how many times the breaker ejected this node.
	Ejected int64 `json:"ejected"`
	// State is the node's current admission state: "ok", "ejected"
	// (waiting out the backoff), or "probing" (backoff elapsed; next
	// RPC is the re-admission probe).
	State string `json:"state"`
}

// NodeStats snapshots every node's counters, in configuration order.
func (r *Remote) NodeStats() []NodeStats {
	now := r.now()
	out := make([]NodeStats, len(r.nodes))
	for i, n := range r.nodes {
		n.mu.Lock()
		st := "ok"
		if n.open {
			if now.Before(n.retryAt) {
				st = "ejected"
			} else {
				st = "probing"
			}
		}
		out[i] = NodeStats{
			Node:      n.name,
			Sent:      n.sent,
			Completed: n.completed,
			Retried:   n.retried,
			Ejected:   n.trips,
			State:     st,
		}
		n.mu.Unlock()
	}
	return out
}
