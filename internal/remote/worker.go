package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"tooleval/internal/runner"
	"tooleval/internal/sim"
)

// ComputeFunc recomputes one cell from its content key alone. The
// worker daemon passes bench.ComputeCell; tests substitute fakes.
type ComputeFunc func(runner.Key) (runner.CellResult, error)

// Worker is the daemon-side half of the remote executor: an HTTP
// handler that resolves cell RPCs through a local Executor (pooled or
// sharded, optionally store-backed), so a worker deduplicates repeated
// keys through the same memoization every local sweep uses.
type Worker struct {
	x       runner.Executor
	compute ComputeFunc
	engine  uint64
	now     func() time.Time
	started time.Time
}

// WorkerOption configures a Worker under construction.
type WorkerOption func(*Worker)

// WithWorkerEngine overrides the engine version the worker stamps and
// enforces — a test seam for exercising the version-mismatch refusal
// without building a second binary.
func WithWorkerEngine(v uint64) WorkerOption {
	return func(w *Worker) { w.engine = v }
}

// WithWorkerClock substitutes the uptime clock (tests).
func WithWorkerClock(now func() time.Time) WorkerOption {
	return func(w *Worker) { w.now = now }
}

// NewWorker wraps the local executor and compute dispatcher into a
// worker. The executor bounds concurrent simulations and memoizes by
// content key exactly as it would locally; compute is only invoked on
// a cache (and store-tier) miss.
func NewWorker(x runner.Executor, compute ComputeFunc, opts ...WorkerOption) *Worker {
	w := &Worker{x: x, compute: compute, engine: sim.EngineVersion, now: time.Now}
	for _, opt := range opts {
		opt(w)
	}
	w.started = w.now()
	return w
}

// Handler returns the worker's HTTP surface: POST /v1/cells, GET
// /healthz, GET /statsz.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(CellsPath, w.handleCells)
	mux.HandleFunc(HealthPath, w.handleHealth)
	mux.HandleFunc(StatsPath, w.handleStats)
	return mux
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}

func (w *Worker) handleCells(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeJSON(rw, http.StatusMethodNotAllowed, refusal{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, refusal{Error: err.Error()})
		return
	}
	var req CellRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(rw, http.StatusBadRequest, refusal{Error: fmt.Sprintf("bad cell request: %v", err)})
		return
	}
	// The version gate. A mismatched coordinator gets a refusal carrying
	// this worker's stamps so the typed error names both sides — never a
	// result computed under the wrong engine.
	if req.Engine != w.engine || req.Protocol != ProtocolVersion {
		writeJSON(rw, http.StatusConflict, refusal{
			Error:    fmt.Sprintf("version mismatch: worker engine=%d protocol=%d, request engine=%d protocol=%d", w.engine, ProtocolVersion, req.Engine, req.Protocol),
			Kind:     kindVersionMismatch,
			Engine:   w.engine,
			Protocol: ProtocolVersion,
		})
		return
	}
	key := req.key()

	// The executor re-raises memoized panics (a cell that panicked once
	// is cached as panicking); surface those as a 500 instead of killing
	// the daemon's connection goroutine.
	defer func() {
		if p := recover(); p != nil {
			writeJSON(rw, http.StatusInternalServerError, refusal{Error: fmt.Sprintf("cell %s panicked: %v", key, p)})
		}
	}()

	// computed captures the full CellResult when THIS request ran the
	// simulation; on a warm or coalesced hit the cache peek below
	// reconstructs it (the cache retains virtual cost for exactly this).
	var computed *runner.CellResult
	val, err := w.x.Memo(r.Context(), key, func() (runner.CellResult, error) {
		res, cerr := w.compute(key)
		if cerr == nil {
			computed = &res
		}
		return res, cerr
	})
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			// The coordinator hung up; nobody reads this response.
			writeJSON(rw, http.StatusServiceUnavailable, refusal{Error: err.Error()})
			return
		}
		// A deterministic cell error is a successful RPC: every worker of
		// this engine version computes the same failure, so the
		// coordinator memoizes it rather than failing over.
		writeJSON(rw, http.StatusOK, CellResponse{Err: err.Error()})
		return
	}
	resp := CellResponse{Value: val}
	if computed != nil {
		resp.VirtualNS = computed.Virtual.Nanoseconds()
	} else if res, ok := w.x.Cache().Lookup(key); ok {
		resp.VirtualNS = res.Virtual.Nanoseconds()
	}
	writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// workerStats is the /statsz wire shape.
type workerStats struct {
	EngineVersion   uint64  `json:"engine_version"`
	ProtocolVersion int     `json:"protocol_version"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Workers         int     `json:"workers"`
	Cache           struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	st := w.x.Stats()
	out := workerStats{
		EngineVersion:   w.engine,
		ProtocolVersion: ProtocolVersion,
		UptimeSeconds:   w.now().Sub(w.started).Seconds(),
		Workers:         w.x.Workers(),
	}
	out.Cache.Hits, out.Cache.Misses = st.Hits, st.Misses
	writeJSON(rw, http.StatusOK, out)
}
