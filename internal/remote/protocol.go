// Package remote distributes the evaluation sweep across worker
// daemons. It is the third execution backend behind the
// runner.Executor seam (after the bounded pool and the sharded
// executor): the coordinator-side Remote routes each cell to a worker
// by rendezvous-hashing the same FNV content hash that already picks
// cache stripes and shards, and the worker recomputes the cell from
// its key alone — cells are pure functions of their content key, so
// results are location-transparent and a distributed sweep is
// byte-identical to a serial one.
//
// The wire protocol is deliberately small JSON-over-HTTP: one POST per
// cell carrying the canonical key fields plus the coordinator's
// engine/protocol version stamp, one response carrying the CellResult
// (value + virtual-time cost). A version mismatch between coordinator
// and worker is a hard typed refusal (*VersionError) — two engine
// versions may simulate the same key to different numbers, and the
// contract is "never a wrong answer", so the sweep aborts instead of
// mixing them.
package remote

import (
	"fmt"

	"tooleval/internal/runner"
)

// Endpoint paths served by a worker daemon.
const (
	// CellsPath accepts a CellRequest per POST and answers with a
	// CellResponse.
	CellsPath = "/v1/cells"
	// HealthPath answers 200 while the worker is serving.
	HealthPath = "/healthz"
	// StatsPath reports the worker's engine version, uptime, and cache
	// counters as JSON.
	StatsPath = "/statsz"
)

// ProtocolVersion stamps the wire schema itself, separately from the
// simulation engine version: an engine bump invalidates results, a
// protocol bump invalidates the conversation.
const ProtocolVersion = 1

// CellRequest is the body of POST /v1/cells: the canonical content-key
// fields of one cell plus the coordinator's version stamps. The worker
// refuses (409, kind "version_mismatch") unless both stamps match its
// own — equal keys only guarantee equal results within one engine
// version.
type CellRequest struct {
	Engine   uint64 `json:"engine_version"`
	Protocol int    `json:"protocol_version"`

	Platform string  `json:"platform"`
	Tool     string  `json:"tool"`
	Bench    string  `json:"bench"`
	Procs    int     `json:"procs"`
	Size     int     `json:"size"`
	Scale    float64 `json:"scale"`
}

// requestFor builds the wire form of key under the given engine stamp.
// Scale rides as a plain JSON number: Go's encoder emits the shortest
// round-trip form of a float64, so the decoded key hashes identically.
func requestFor(key runner.Key, engine uint64) CellRequest {
	return CellRequest{
		Engine:   engine,
		Protocol: ProtocolVersion,
		Platform: key.Platform,
		Tool:     key.Tool,
		Bench:    key.Bench,
		Procs:    key.Procs,
		Size:     key.Size,
		Scale:    key.Scale,
	}
}

// key reassembles the content key the request names.
func (q CellRequest) key() runner.Key {
	return runner.Key{
		Platform: q.Platform,
		Tool:     q.Tool,
		Bench:    q.Bench,
		Procs:    q.Procs,
		Size:     q.Size,
		Scale:    q.Scale,
	}
}

// CellResponse is the 200 body of POST /v1/cells. Err carries a
// deterministic cell error (the cell computed, to a failure — the same
// failure every engine of this version computes); it is a successful
// RPC, not a worker fault, and the coordinator memoizes it like a
// local cell error instead of failing over.
type CellResponse struct {
	Value     float64 `json:"value"`
	VirtualNS int64   `json:"virtual_ns"`
	Err       string  `json:"err,omitempty"`
}

// refusal is the JSON body of every non-200 the worker writes.
type refusal struct {
	Error    string `json:"error"`
	Kind     string `json:"kind,omitempty"`
	Engine   uint64 `json:"engine_version,omitempty"`
	Protocol int    `json:"protocol_version,omitempty"`
}

const kindVersionMismatch = "version_mismatch"

// VersionError is the typed refusal for a coordinator/worker version
// disagreement: the worker would compute (or has cached) cells under a
// different simulation engine or wire schema, and mixing those results
// into one sweep could be silently wrong. Match with errors.As; there
// is no failover and no retry — fix the deployment.
type VersionError struct {
	// Node is the worker that refused, as configured on the coordinator.
	Node string
	// CoordinatorEngine/WorkerEngine are the sim.EngineVersion stamps on
	// each side.
	CoordinatorEngine, WorkerEngine uint64
	// CoordinatorProtocol/WorkerProtocol are the wire-schema stamps.
	CoordinatorProtocol, WorkerProtocol int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("remote: worker %s refused: version mismatch (coordinator engine=%d protocol=%d, worker engine=%d protocol=%d)",
		e.Node, e.CoordinatorEngine, e.CoordinatorProtocol, e.WorkerEngine, e.WorkerProtocol)
}
