package core

import (
	"fmt"
	"sort"
)

// Evaluation is the outcome of applying the methodology: per-level
// normalized scores in [0,1] per tool, the weighted overall score, and
// the resulting ranking.
type Evaluation struct {
	Profile WeightProfile
	Tools   []string
	// Levels[level][tool] is the normalized level score.
	Levels map[Level]map[string]float64
	// Overall[tool] is the weighted combination.
	Overall map[string]float64
	// Ranking lists tools best-first by overall score (ties broken by
	// name for determinism).
	Ranking []string
	// Notes records normalization decisions (unsupported primitives,
	// missing ports) so a reader can audit the numbers.
	Notes []string
}

// Methodology applies the multi-level evaluation.
type Methodology struct {
	Profile WeightProfile
}

// New builds a methodology with the given profile.
func New(profile WeightProfile) (*Methodology, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Methodology{Profile: profile}, nil
}

// Evaluate combines the three levels. Any level may be absent (nil/empty
// inputs); its weight is redistributed proportionally over the present
// levels, mirroring the paper's "a criterion can be added or deleted
// according to the user requirements".
func (m *Methodology) Evaluate(tpl []PrimitiveMeasurement, apl []AppMeasurement, adl UsabilityMatrix) (*Evaluation, error) {
	ev := &Evaluation{
		Profile: m.Profile,
		Levels:  make(map[Level]map[string]float64),
		Overall: make(map[string]float64),
	}
	toolSet := map[string]bool{}
	for _, t := range toolsOfTPL(tpl) {
		toolSet[t] = true
	}
	for _, t := range toolsOfAPL(apl) {
		toolSet[t] = true
	}
	for _, per := range adl {
		for t := range per {
			toolSet[t] = true
		}
	}
	if len(toolSet) == 0 {
		return nil, fmt.Errorf("core: nothing to evaluate")
	}
	for t := range toolSet {
		ev.Tools = append(ev.Tools, t)
	}
	sort.Strings(ev.Tools)

	present := map[Level]bool{}
	if len(tpl) > 0 {
		scores, notes, err := m.scoreTPL(tpl, ev.Tools)
		if err != nil {
			return nil, err
		}
		ev.Levels[TPL] = scores
		ev.Notes = append(ev.Notes, notes...)
		present[TPL] = true
	}
	if len(apl) > 0 {
		scores, notes, err := m.scoreAPL(apl, ev.Tools)
		if err != nil {
			return nil, err
		}
		ev.Levels[APL] = scores
		ev.Notes = append(ev.Notes, notes...)
		present[APL] = true
	}
	if len(adl) > 0 {
		scores, err := m.scoreADL(adl, ev.Tools)
		if err != nil {
			return nil, err
		}
		ev.Levels[ADL] = scores
		present[ADL] = true
	}
	if len(present) == 0 {
		return nil, fmt.Errorf("core: no level has measurements")
	}

	// Redistribute weights of absent levels. Iterate the levels in
	// sorted order: float addition is order-sensitive in the last ulp,
	// and map iteration order would make the overall scores drift
	// between otherwise identical runs.
	levels := make([]Level, 0, len(m.Profile.Levels))
	for l := range m.Profile.Levels {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	totalW := 0.0
	for _, l := range levels {
		if present[l] {
			totalW += m.Profile.Levels[l]
		}
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("core: profile %q gives zero weight to every measured level", m.Profile.Name)
	}
	for _, t := range ev.Tools {
		var s float64
		for _, l := range levels {
			if present[l] {
				s += (m.Profile.Levels[l] / totalW) * ev.Levels[l][t]
			}
		}
		ev.Overall[t] = s
	}
	ev.Ranking = append([]string(nil), ev.Tools...)
	sort.SliceStable(ev.Ranking, func(i, j int) bool {
		a, b := ev.Ranking[i], ev.Ranking[j]
		if ev.Overall[a] != ev.Overall[b] {
			return ev.Overall[a] > ev.Overall[b]
		}
		return a < b
	})
	return ev, nil
}

func toolsOfTPL(ms []PrimitiveMeasurement) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		if !seen[m.Tool] {
			seen[m.Tool] = true
			out = append(out, m.Tool)
		}
	}
	return out
}

func toolsOfAPL(ms []AppMeasurement) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		if !seen[m.Tool] {
			seen[m.Tool] = true
			out = append(out, m.Tool)
		}
	}
	return out
}

// scoreTPL normalizes primitive curves: for each (platform, primitive)
// cell, a tool's score is the mean over sizes of best-time/tool-time; a
// tool without a measurement for a cell (primitive not available — PVM's
// global sum; no port — Express on NYNET) scores 0 for that cell.
func (m *Methodology) scoreTPL(ms []PrimitiveMeasurement, tools []string) (map[string]float64, []string, error) {
	type cellKey struct{ platform, primitive string }
	cells := map[cellKey]map[string][]float64{}
	for _, meas := range ms {
		if len(meas.TimesMs) == 0 {
			return nil, nil, fmt.Errorf("core: empty TPL measurement %s/%s/%s", meas.Platform, meas.Primitive, meas.Tool)
		}
		k := cellKey{meas.Platform, meas.Primitive}
		if cells[k] == nil {
			cells[k] = map[string][]float64{}
		}
		cells[k][meas.Tool] = meas.TimesMs
	}
	var notes []string
	sums := map[string]float64{}
	weights := map[string]float64{}
	keys := make([]cellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].platform != keys[j].platform {
			return keys[i].platform < keys[j].platform
		}
		return keys[i].primitive < keys[j].primitive
	})
	for _, k := range keys {
		byTool := cells[k]
		n := 0
		for _, times := range byTool {
			if n == 0 || len(times) < n {
				n = len(times)
			}
		}
		w := m.weightOf(m.Profile.Primitives, k.primitive)
		for _, tool := range tools {
			times, ok := byTool[tool]
			weights[tool] += w
			if !ok {
				notes = append(notes, fmt.Sprintf("TPL: %s has no %s measurement on %s (scored 0)", tool, k.primitive, k.platform))
				continue
			}
			var cellScore float64
			for i := 0; i < n; i++ {
				best := times[i]
				for _, other := range byTool {
					if other[i] < best {
						best = other[i]
					}
				}
				if times[i] > 0 {
					cellScore += best / times[i]
				}
			}
			sums[tool] += w * cellScore / float64(n)
		}
	}
	return finish(sums, weights, tools), notes, nil
}

// scoreAPL normalizes application curves the same way, per (platform,
// app) cell over the processor sweep.
func (m *Methodology) scoreAPL(ms []AppMeasurement, tools []string) (map[string]float64, []string, error) {
	type cellKey struct{ platform, app string }
	cells := map[cellKey]map[string][]float64{}
	for _, meas := range ms {
		if len(meas.Seconds) == 0 {
			return nil, nil, fmt.Errorf("core: empty APL measurement %s/%s/%s", meas.Platform, meas.App, meas.Tool)
		}
		k := cellKey{meas.Platform, meas.App}
		if cells[k] == nil {
			cells[k] = map[string][]float64{}
		}
		cells[k][meas.Tool] = meas.Seconds
	}
	var notes []string
	sums := map[string]float64{}
	weights := map[string]float64{}
	keys := make([]cellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].platform != keys[j].platform {
			return keys[i].platform < keys[j].platform
		}
		return keys[i].app < keys[j].app
	})
	for _, k := range keys {
		byTool := cells[k]
		n := 0
		for _, s := range byTool {
			if n == 0 || len(s) < n {
				n = len(s)
			}
		}
		w := m.weightOf(m.Profile.Apps, k.app)
		for _, tool := range tools {
			secs, ok := byTool[tool]
			weights[tool] += w
			if !ok {
				notes = append(notes, fmt.Sprintf("APL: %s has no %s measurement on %s (scored 0)", tool, k.app, k.platform))
				continue
			}
			var cellScore float64
			for i := 0; i < n; i++ {
				best := secs[i]
				for _, other := range byTool {
					if other[i] < best {
						best = other[i]
					}
				}
				if secs[i] > 0 {
					cellScore += best / secs[i]
				}
			}
			sums[tool] += w * cellScore / float64(n)
		}
	}
	return finish(sums, weights, tools), notes, nil
}

// scoreADL averages the usability ratings under the criterion weights.
func (m *Methodology) scoreADL(matrix UsabilityMatrix, tools []string) (map[string]float64, error) {
	sums := map[string]float64{}
	weights := map[string]float64{}
	crits := make([]string, 0, len(matrix))
	for c := range matrix {
		crits = append(crits, c)
	}
	sort.Strings(crits)
	for _, c := range crits {
		w := m.weightOf(m.Profile.Criteria, c)
		for _, tool := range tools {
			r, ok := matrix[c][tool]
			if !ok {
				continue // tool not assessed on this criterion
			}
			sums[tool] += w * r.Score()
			weights[tool] += w
		}
	}
	return finish(sums, weights, tools), nil
}

func (m *Methodology) weightOf(table map[string]float64, key string) float64 {
	if table == nil {
		return 1
	}
	if w, ok := table[key]; ok {
		return w
	}
	return 1
}

func finish(sums, weights map[string]float64, tools []string) map[string]float64 {
	out := make(map[string]float64, len(tools))
	for _, t := range tools {
		if weights[t] > 0 {
			out[t] = sums[t] / weights[t]
		}
	}
	return out
}
