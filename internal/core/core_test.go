package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func tplFixture() []PrimitiveMeasurement {
	return []PrimitiveMeasurement{
		{Platform: "eth", Primitive: "send/receive", Tool: "p4", Sizes: []int{0, 1024}, TimesMs: []float64{3, 4}},
		{Platform: "eth", Primitive: "send/receive", Tool: "pvm", Sizes: []int{0, 1024}, TimesMs: []float64{9, 12}},
		{Platform: "eth", Primitive: "send/receive", Tool: "express", Sizes: []int{0, 1024}, TimesMs: []float64{5, 10}},
		{Platform: "eth", Primitive: "global sum", Tool: "p4", Sizes: []int{1000}, TimesMs: []float64{100}},
		{Platform: "eth", Primitive: "global sum", Tool: "express", Sizes: []int{1000}, TimesMs: []float64{200}},
		// PVM has no global sum — Table 1's "Not Available".
	}
}

func aplFixture() []AppMeasurement {
	return []AppMeasurement{
		{Platform: "eth", App: "jpeg", Tool: "p4", Procs: []int{1, 2}, Seconds: []float64{10, 5}},
		{Platform: "eth", App: "jpeg", Tool: "pvm", Procs: []int{1, 2}, Seconds: []float64{11, 6}},
		{Platform: "eth", App: "jpeg", Tool: "express", Procs: []int{1, 2}, Seconds: []float64{12, 8}},
	}
}

func adlFixture() UsabilityMatrix {
	return UsabilityMatrix{
		"Ease of Programming": {"p4": PartiallySupported, "pvm": WellSupported, "express": PartiallySupported},
		"Customization":       {"p4": PartiallySupported, "pvm": NotSupported, "express": PartiallySupported},
	}
}

func TestRatingParseAndScore(t *testing.T) {
	for _, tc := range []struct {
		s    string
		r    Rating
		want float64
	}{{"NS", NotSupported, 0}, {"PS", PartiallySupported, 0.5}, {"WS", WellSupported, 1}} {
		r, err := ParseRating(tc.s)
		if err != nil {
			t.Fatal(err)
		}
		if r != tc.r || r.Score() != tc.want || r.String() != tc.s {
			t.Fatalf("%s: got %v score %f", tc.s, r, r.Score())
		}
	}
	if _, err := ParseRating("XX"); err == nil {
		t.Fatal("bad rating should error")
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	bad := WeightProfile{Name: "bad", Levels: map[Level]float64{TPL: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-normalized profile should fail validation")
	}
	neg := WeightProfile{Name: "neg", Levels: map[Level]float64{TPL: 1.5, APL: -0.5}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative weight should fail validation")
	}
}

func TestEvaluateFullStack(t *testing.T) {
	m, err := New(EndUserProfile())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(tplFixture(), aplFixture(), adlFixture())
	if err != nil {
		t.Fatal(err)
	}
	// p4 is fastest everywhere, so it must rank first for the end-user
	// profile (APL-weighted).
	if ev.Ranking[0] != "p4" {
		t.Fatalf("ranking = %v, want p4 first", ev.Ranking)
	}
	for _, tool := range ev.Tools {
		for l, scores := range ev.Levels {
			s := scores[tool]
			if s < 0 || s > 1 {
				t.Fatalf("%s %s score %f out of [0,1]", tool, l, s)
			}
		}
		if ev.Overall[tool] < 0 || ev.Overall[tool] > 1 {
			t.Fatalf("%s overall %f out of [0,1]", tool, ev.Overall[tool])
		}
	}
	// The best tool in every cell scores exactly 1 at TPL? p4 is best at
	// both cells, so its TPL score must be 1.
	if math.Abs(ev.Levels[TPL]["p4"]-1) > 1e-9 {
		t.Fatalf("p4 TPL score = %f, want 1.0", ev.Levels[TPL]["p4"])
	}
	// PVM must be penalized for the missing global sum.
	foundNote := false
	for _, n := range ev.Notes {
		if strings.Contains(n, "pvm has no global sum") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatalf("expected a note about PVM's missing global sum, got %v", ev.Notes)
	}
}

func TestEvaluateADLOrdering(t *testing.T) {
	// With the paper's full matrix, PVM has the most WS cells and should
	// win ADL; p4, with no WS outside the commodity rows, should trail.
	matrix := UsabilityMatrix{
		"Programming Models Supported":            {"p4": WellSupported, "pvm": WellSupported, "express": WellSupported},
		"Language Interface":                      {"p4": WellSupported, "pvm": WellSupported, "express": WellSupported},
		"Ease of Programming":                     {"p4": PartiallySupported, "pvm": WellSupported, "express": PartiallySupported},
		"Debugging Support":                       {"p4": PartiallySupported, "pvm": PartiallySupported, "express": WellSupported},
		"Customization":                           {"p4": PartiallySupported, "pvm": NotSupported, "express": PartiallySupported},
		"Error Handling":                          {"p4": PartiallySupported, "pvm": PartiallySupported, "express": PartiallySupported},
		"Run-Time Interface":                      {"p4": PartiallySupported, "pvm": WellSupported, "express": WellSupported},
		"Integration with other Software Systems": {"p4": PartiallySupported, "pvm": WellSupported, "express": NotSupported},
		"Portability":                             {"p4": WellSupported, "pvm": WellSupported, "express": WellSupported},
	}
	m, err := New(DeveloperProfile())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(nil, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	adl := ev.Levels[ADL]
	if !(adl["pvm"] > adl["p4"]) {
		t.Fatalf("ADL: pvm (%f) should outscore p4 (%f)", adl["pvm"], adl["p4"])
	}
	if !(adl["express"] > adl["p4"]) {
		t.Fatalf("ADL: express (%f) should outscore p4 (%f)", adl["express"], adl["p4"])
	}
}

func TestEvaluateMissingLevelRedistributesWeight(t *testing.T) {
	m, err := New(EndUserProfile())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(tplFixture(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only TPL present: overall == TPL score.
	for _, tool := range ev.Tools {
		if math.Abs(ev.Overall[tool]-ev.Levels[TPL][tool]) > 1e-9 {
			t.Fatalf("%s: overall %f != TPL %f with single level", tool, ev.Overall[tool], ev.Levels[TPL][tool])
		}
	}
}

func TestEvaluateEmptyFails(t *testing.T) {
	m, err := New(EndUserProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(nil, nil, nil); err == nil {
		t.Fatal("empty evaluation should error")
	}
}

func TestPropertyFasterNeverScoresLower(t *testing.T) {
	// Improving one tool's time can never lower its own score.
	prop := func(base uint16, improvement uint16) bool {
		t1 := float64(base%1000) + 10
		t2 := t1 - float64(improvement%1000)*0.005*t1/10
		if t2 <= 0 {
			t2 = 0.1
		}
		mk := func(pvmTime float64) float64 {
			m, _ := New(SystemManagerProfile())
			ev, err := m.Evaluate([]PrimitiveMeasurement{
				{Platform: "x", Primitive: "send/receive", Tool: "a", TimesMs: []float64{pvmTime}},
				{Platform: "x", Primitive: "send/receive", Tool: "b", TimesMs: []float64{50}},
			}, nil, nil)
			if err != nil {
				return -1
			}
			return ev.Overall["a"]
		}
		return mk(t2) >= mk(t1)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScoreScaleInvariant(t *testing.T) {
	// Scaling every time by the same constant leaves scores unchanged
	// (the methodology normalizes within cells).
	prop := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%50) + 1
		mk := func(s float64) map[string]float64 {
			m, _ := New(SystemManagerProfile())
			ev, err := m.Evaluate([]PrimitiveMeasurement{
				{Platform: "x", Primitive: "ring", Tool: "a", TimesMs: []float64{10 * s, 20 * s}},
				{Platform: "x", Primitive: "ring", Tool: "b", TimesMs: []float64{15 * s, 18 * s}},
			}, nil, nil)
			if err != nil {
				return nil
			}
			return ev.Overall
		}
		a, b := mk(1), mk(scale)
		if a == nil || b == nil {
			return false
		}
		for k := range a {
			if math.Abs(a[k]-b[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRankPrimitives(t *testing.T) {
	rankings := RankPrimitives(tplFixture())
	if len(rankings) != 2 {
		t.Fatalf("got %d rankings, want 2", len(rankings))
	}
	var sr, gs PrimitiveRanking
	for _, r := range rankings {
		switch r.Primitive {
		case "send/receive":
			sr = r
		case "global sum":
			gs = r
		}
	}
	if len(sr.Tools) != 3 || sr.Tools[0] != "p4" || sr.Tools[1] != "express" || sr.Tools[2] != "pvm" {
		t.Fatalf("send/receive ranking = %v", sr.Tools)
	}
	if len(gs.Tools) != 2 || gs.Tools[0] != "p4" || gs.Tools[1] != "express" {
		t.Fatalf("global sum ranking = %v (PVM must be absent)", gs.Tools)
	}
}

func TestRenderEvaluationAndTable4(t *testing.T) {
	m, err := New(EndUserProfile())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(tplFixture(), aplFixture(), adlFixture())
	if err != nil {
		t.Fatal(err)
	}
	text := RenderEvaluation(ev)
	for _, want := range []string{"p4", "pvm", "express", "overall", "end-user"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	t4 := RenderTable4(RankPrimitives(tplFixture()), "eth")
	if !strings.Contains(t4, "send/receive") || !strings.Contains(t4, "global sum") {
		t.Fatalf("table 4 missing columns:\n%s", t4)
	}
	if RenderTable4(nil, "nowhere") == "" {
		t.Fatal("empty table should still render a message")
	}
}

func TestPerPrimitiveWeighting(t *testing.T) {
	// Weighting ring to zero must make a ring-only-loser win.
	tpl := []PrimitiveMeasurement{
		{Platform: "x", Primitive: "send/receive", Tool: "a", TimesMs: []float64{10}},
		{Platform: "x", Primitive: "send/receive", Tool: "b", TimesMs: []float64{20}},
		{Platform: "x", Primitive: "ring", Tool: "a", TimesMs: []float64{100}},
		{Platform: "x", Primitive: "ring", Tool: "b", TimesMs: []float64{10}},
	}
	profile := SystemManagerProfile()
	profile.Primitives = map[string]float64{"ring": 0}
	m, err := New(profile)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(tpl, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Ranking[0] != "a" {
		t.Fatalf("with ring weight 0, a should win: %v (%v)", ev.Ranking, ev.Overall)
	}
}
