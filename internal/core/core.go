// Package core implements the paper's primary contribution: the
// multi-level evaluation methodology for parallel/distributed computing
// tools (§2). Tools are evaluated from three perspectives — Tool
// Performance Level (TPL, primitive micro-benchmarks), Application
// Performance Level (APL, whole-application timings) and Application
// Development Level (ADL, the usability matrix) — and weight factors
// combine the per-level scores into an overall, user-profile-specific
// evaluation ("By using weight factors, an overall tool evaluation can be
// tailored to take into account the most relevant factors associated with
// certain types of users").
package core

import (
	"fmt"
	"sort"
)

// Level identifies one evaluation perspective.
type Level string

// The three levels of §2. Additional levels "can be added if necessary"
// (§2); Methodology.ExtraLevels supports that.
const (
	TPL Level = "TPL" // Tool Performance Level
	APL Level = "APL" // Application Performance Level
	ADL Level = "ADL" // Application Development Level
)

// Rating is an ADL usability rating (§3.3.1).
type Rating int

// Ratings start at one so the zero value is detectably unset.
const (
	NotSupported       Rating = iota + 1 // NS
	PartiallySupported                   // PS
	WellSupported                        // WS
)

// ParseRating converts the paper's table abbreviations.
func ParseRating(s string) (Rating, error) {
	switch s {
	case "NS":
		return NotSupported, nil
	case "PS":
		return PartiallySupported, nil
	case "WS":
		return WellSupported, nil
	default:
		return 0, fmt.Errorf("core: unknown rating %q (want NS, PS or WS)", s)
	}
}

// String renders the paper's abbreviation.
func (r Rating) String() string {
	switch r {
	case NotSupported:
		return "NS"
	case PartiallySupported:
		return "PS"
	case WellSupported:
		return "WS"
	default:
		return fmt.Sprintf("Rating(%d)", int(r))
	}
}

// Score maps a rating onto [0,1].
func (r Rating) Score() float64 {
	switch r {
	case NotSupported:
		return 0
	case PartiallySupported:
		return 0.5
	case WellSupported:
		return 1
	default:
		return 0
	}
}

// PrimitiveMeasurement is one TPL curve: one tool's times for one
// primitive on one platform over a size sweep.
type PrimitiveMeasurement struct {
	Platform  string
	Primitive string
	Tool      string
	// Sizes are message sizes in bytes (or vector lengths for global
	// operations); TimesMs the measured times.
	Sizes   []int
	TimesMs []float64
}

// AppMeasurement is one APL curve: one tool's execution times for one
// application on one platform over a processor sweep.
type AppMeasurement struct {
	Platform string
	App      string
	Tool     string
	Procs    []int
	Seconds  []float64
}

// UsabilityMatrix is the ADL assessment: criterion -> tool -> rating.
type UsabilityMatrix map[string]map[string]Rating

// WeightProfile tailors the evaluation to a user type (§2: an end user
// cares about response time, a system manager about utilization, a
// developer about the development interface).
type WeightProfile struct {
	Name string
	// Levels weights the three perspectives; it must sum to 1 (±1e-9).
	Levels map[Level]float64
	// Primitives, Apps and Criteria optionally weight items within a
	// level; unlisted items default to weight 1.
	Primitives map[string]float64
	Apps       map[string]float64
	Criteria   map[string]float64
}

// Validate checks the profile is usable.
func (w WeightProfile) Validate() error {
	if len(w.Levels) == 0 {
		return fmt.Errorf("core: profile %q has no level weights", w.Name)
	}
	// Sum in sorted-key order: float addition is not associative, so
	// summing in (randomized) map order would let the ±1e-9 acceptance
	// band flip between runs for profiles near the boundary.
	levels := make([]Level, 0, len(w.Levels))
	for l := range w.Levels {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	sum := 0.0
	for _, l := range levels {
		v := w.Levels[l]
		if v < 0 {
			return fmt.Errorf("core: profile %q: negative weight %f for %s", w.Name, v, l)
		}
		sum += v
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("core: profile %q: level weights sum to %f, want 1", w.Name, sum)
	}
	return nil
}

// EndUserProfile emphasizes application performance — the paper's "user
// would give the response time as the most important performance metric".
func EndUserProfile() WeightProfile {
	return WeightProfile{
		Name:   "end-user",
		Levels: map[Level]float64{TPL: 0.2, APL: 0.6, ADL: 0.2},
	}
}

// DeveloperProfile emphasizes the development interface.
func DeveloperProfile() WeightProfile {
	return WeightProfile{
		Name:   "developer",
		Levels: map[Level]float64{TPL: 0.2, APL: 0.3, ADL: 0.5},
	}
}

// SystemManagerProfile emphasizes raw primitive efficiency (wire and CPU
// utilization — the system manager's throughput view in §2).
func SystemManagerProfile() WeightProfile {
	return WeightProfile{
		Name:   "system-manager",
		Levels: map[Level]float64{TPL: 0.6, APL: 0.3, ADL: 0.1},
	}
}

// Profiles returns the built-in weight profiles.
func Profiles() []WeightProfile {
	return []WeightProfile{EndUserProfile(), DeveloperProfile(), SystemManagerProfile()}
}
