package core

import (
	"fmt"
	"sort"
	"strings"
)

// PrimitiveRanking orders tools fastest-first for one primitive on one
// platform — one cell of the paper's Table 4.
type PrimitiveRanking struct {
	Platform  string
	Primitive string
	// Tools fastest first; tools without a measurement are omitted
	// (Table 4 leaves PVM out of the global-sum column).
	Tools []string
	// MeanMs carries the per-tool mean time behind the ranking.
	MeanMs map[string]float64
}

// RankPrimitives derives Table 4 from TPL measurements: for every
// (platform, primitive) cell, tools ordered by mean time over the size
// sweep.
func RankPrimitives(ms []PrimitiveMeasurement) []PrimitiveRanking {
	type key struct{ platform, primitive string }
	cells := map[key]map[string]float64{}
	for _, m := range ms {
		if len(m.TimesMs) == 0 {
			continue
		}
		var sum float64
		for _, t := range m.TimesMs {
			sum += t
		}
		k := key{m.Platform, m.Primitive}
		if cells[k] == nil {
			cells[k] = map[string]float64{}
		}
		cells[k][m.Tool] = sum / float64(len(m.TimesMs))
	}
	keys := make([]key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].platform != keys[j].platform {
			return keys[i].platform < keys[j].platform
		}
		return keys[i].primitive < keys[j].primitive
	})
	out := make([]PrimitiveRanking, 0, len(keys))
	for _, k := range keys {
		r := PrimitiveRanking{Platform: k.platform, Primitive: k.primitive, MeanMs: cells[k]}
		for t := range cells[k] {
			r.Tools = append(r.Tools, t)
		}
		sort.SliceStable(r.Tools, func(i, j int) bool {
			a, b := r.Tools[i], r.Tools[j]
			if r.MeanMs[a] != r.MeanMs[b] {
				return r.MeanMs[a] < r.MeanMs[b]
			}
			return a < b
		})
		out = append(out, r)
	}
	return out
}

// RenderEvaluation formats an Evaluation as a fixed-width text report.
func RenderEvaluation(ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-level tool evaluation — profile %q\n", ev.Profile.Name)
	fmt.Fprintf(&b, "%-10s", "tool")
	levels := []Level{TPL, APL, ADL}
	for _, l := range levels {
		if _, ok := ev.Levels[l]; ok {
			fmt.Fprintf(&b, " %8s", string(l))
		}
	}
	fmt.Fprintf(&b, " %8s\n", "overall")
	for _, t := range ev.Ranking {
		fmt.Fprintf(&b, "%-10s", t)
		for _, l := range levels {
			if scores, ok := ev.Levels[l]; ok {
				fmt.Fprintf(&b, " %8.3f", scores[t])
			}
		}
		fmt.Fprintf(&b, " %8.3f\n", ev.Overall[t])
	}
	if len(ev.Notes) > 0 {
		b.WriteString("notes:\n")
		for _, n := range ev.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// RenderTable4 formats primitive rankings in the layout of the paper's
// Table 4 (one row per rank position, one column per primitive).
func RenderTable4(rankings []PrimitiveRanking, platform string) string {
	var prims []string
	byPrim := map[string]PrimitiveRanking{}
	for _, r := range rankings {
		if r.Platform != platform {
			continue
		}
		prims = append(prims, r.Primitive)
		byPrim[r.Primitive] = r
	}
	if len(prims) == 0 {
		return fmt.Sprintf("no rankings for platform %s\n", platform)
	}
	// Keep the paper's column order where applicable.
	order := []string{"send/receive", "broadcast", "ring", "global sum"}
	var cols []string
	for _, p := range order {
		if _, ok := byPrim[p]; ok {
			cols = append(cols, p)
		}
	}
	for _, p := range prims {
		found := false
		for _, c := range cols {
			if c == p {
				found = true
				break
			}
		}
		if !found {
			cols = append(cols, p)
		}
	}
	depth := 0
	for _, p := range cols {
		if n := len(byPrim[p].Tools); n > depth {
			depth = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tool ranking on %s (fastest first)\n", platform)
	for _, p := range cols {
		fmt.Fprintf(&b, "%-14s", p)
	}
	b.WriteString("\n")
	for i := 0; i < depth; i++ {
		for _, p := range cols {
			cell := ""
			if i < len(byPrim[p].Tools) {
				cell = byPrim[p].Tools[i]
			}
			fmt.Fprintf(&b, "%-14s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
