package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	m, err := New(EndUserProfile())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := m.Evaluate(tplFixture(), aplFixture(), adlFixture())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalReport(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Fatal("invalid JSON")
	}
	back, err := UnmarshalReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Profile.Name != ev.Profile.Name {
		t.Fatalf("profile %q != %q", back.Profile.Name, ev.Profile.Name)
	}
	if !reflect.DeepEqual(back.Ranking, ev.Ranking) {
		t.Fatalf("ranking %v != %v", back.Ranking, ev.Ranking)
	}
	if !reflect.DeepEqual(back.Overall, ev.Overall) {
		t.Fatalf("overall %v != %v", back.Overall, ev.Overall)
	}
	for l, scores := range ev.Levels {
		if !reflect.DeepEqual(back.Levels[l], scores) {
			t.Fatalf("level %s: %v != %v", l, back.Levels[l], scores)
		}
	}
}

func TestMarshalReportNil(t *testing.T) {
	if _, err := MarshalReport(nil); err == nil {
		t.Fatal("nil evaluation should error")
	}
}

func TestUnmarshalReportGarbage(t *testing.T) {
	if _, err := UnmarshalReport([]byte("{not json")); err == nil {
		t.Fatal("garbage should error")
	}
}
