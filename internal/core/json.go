package core

import (
	"encoding/json"
	"fmt"
)

// jsonEvaluation is the stable machine-readable form of an Evaluation.
type jsonEvaluation struct {
	Profile string                        `json:"profile"`
	Weights map[string]float64            `json:"level_weights"`
	Tools   []string                      `json:"tools"`
	Levels  map[string]map[string]float64 `json:"level_scores"`
	Overall map[string]float64            `json:"overall"`
	Ranking []string                      `json:"ranking"`
	Notes   []string                      `json:"notes,omitempty"`
}

// MarshalReport renders an Evaluation as indented JSON for downstream
// tooling (dashboards, regression tracking).
func MarshalReport(ev *Evaluation) ([]byte, error) {
	if ev == nil {
		return nil, fmt.Errorf("core: nil evaluation")
	}
	out := jsonEvaluation{
		Profile: ev.Profile.Name,
		Weights: map[string]float64{},
		Tools:   ev.Tools,
		Levels:  map[string]map[string]float64{},
		Overall: ev.Overall,
		Ranking: ev.Ranking,
		Notes:   ev.Notes,
	}
	for l, w := range ev.Profile.Levels {
		out.Weights[string(l)] = w
	}
	for l, scores := range ev.Levels {
		out.Levels[string(l)] = scores
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalReport parses MarshalReport output back into the summary
// fields (profile weights are restored; per-item weights are not carried
// in the JSON form).
func UnmarshalReport(data []byte) (*Evaluation, error) {
	var in jsonEvaluation
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: parsing report: %w", err)
	}
	ev := &Evaluation{
		Profile: WeightProfile{Name: in.Profile, Levels: map[Level]float64{}},
		Tools:   in.Tools,
		Levels:  map[Level]map[string]float64{},
		Overall: in.Overall,
		Ranking: in.Ranking,
		Notes:   in.Notes,
	}
	for l, w := range in.Weights {
		ev.Profile.Levels[Level(l)] = w
	}
	for l, scores := range in.Levels {
		ev.Levels[Level(l)] = scores
	}
	return ev, nil
}
