package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"tooleval/internal/core"
	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// Experiment identifiers, one per table/figure of the paper's evaluation
// section.
const (
	ExpTable3 = "table3"
	ExpTable4 = "table4"
	ExpFig2   = "fig2"
	ExpFig3   = "fig3"
	ExpFig4   = "fig4"
	ExpFig5   = "fig5"
	ExpFig6   = "fig6"
	ExpFig7   = "fig7"
	ExpFig8   = "fig8"
	ExpADL    = "adl"

	// ExpReport is the phase id of the full multi-level evaluation
	// (Harness.Evaluate). It is not a table/figure regeneration, so it
	// is not part of Experiments().
	ExpReport = "report"
)

// Experiments lists all experiment ids in paper order.
func Experiments() []string {
	return []string{ExpTable3, ExpTable4, ExpFig2, ExpFig3, ExpFig4, ExpFig5, ExpFig6, ExpFig7, ExpFig8, ExpADL}
}

// Table3Result holds the regenerated Table 3.
type Table3Result struct {
	SizesBytes []int
	// TimesMs[network][tool][sizeIdx]; networks keyed "ethernet",
	// "atm-lan", "atm-wan" as in paperdata.
	TimesMs map[string]map[string][]float64
}

// Table3 regenerates the snd/recv timing table over the three SUN
// networks. The network×tool columns are independent sweeps, so they
// fan out through the runner; assembly into the result maps happens
// serially afterwards, in the fixed network/tool order.
func (h *Harness) Table3(ctx context.Context) (_ *Table3Result, err error) {
	h.phaseStart(ctx, ExpTable3)
	defer h.phaseDone(ctx, ExpTable3, &err)
	res := &Table3Result{SizesBytes: StandardSizes(), TimesMs: map[string]map[string][]float64{}}
	type job struct {
		net, tool string
		pf        platform.Platform
	}
	var jobs []job
	for _, net := range []string{"ethernet", "atm-lan", "atm-wan"} {
		pf, err := platform.Get(paperdata.Table3PlatformKey[net])
		if err != nil {
			return nil, err
		}
		res.TimesMs[net] = map[string][]float64{}
		for _, tool := range []string{"p4", "pvm", "express"} {
			if !pf.Supports(tool) {
				continue // Express has no NYNET column
			}
			jobs = append(jobs, job{net: net, tool: tool, pf: pf})
		}
	}
	times, err := runner.Collect(ctx, h.x, jobs, func(j job) ([]float64, error) {
		return h.PingPong(ctx, j.pf, j.tool, res.SizesBytes)
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res.TimesMs[j.net][j.tool] = times[i]
	}
	return res, nil
}

// Render formats the regenerated table next to the paper's values.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: snd/recv round-trip timing for SUN SPARCstations (ms)\n")
	b.WriteString("         sim = this reproduction, paper = Hariri et al. 1995\n\n")
	for _, net := range []string{"ethernet", "atm-lan", "atm-wan"} {
		fmt.Fprintf(&b, "--- %s ---\n", net)
		fmt.Fprintf(&b, "%-9s", "KB")
		for _, tool := range []string{"p4", "pvm", "express"} {
			if _, ok := r.TimesMs[net][tool]; ok {
				fmt.Fprintf(&b, " %9s-sim %9s-ppr", tool, tool)
			}
		}
		b.WriteString("\n")
		for i, size := range r.SizesBytes {
			fmt.Fprintf(&b, "%-9d", size/1024)
			for _, tool := range []string{"p4", "pvm", "express"} {
				sim, ok := r.TimesMs[net][tool]
				if !ok {
					continue
				}
				paper := 0.0
				if pp, ok := paperdata.Table3[tool][net]; ok && i < len(pp) {
					paper = pp[i]
				}
				fmt.Fprintf(&b, " %13.2f %13.2f", sim[i], paper)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Measurements converts Table 3 output into methodology input.
func (r *Table3Result) Measurements() []core.PrimitiveMeasurement {
	var out []core.PrimitiveMeasurement
	nets := make([]string, 0, len(r.TimesMs))
	for net := range r.TimesMs {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		tools := make([]string, 0, len(r.TimesMs[net]))
		for t := range r.TimesMs[net] {
			tools = append(tools, t)
		}
		sort.Strings(tools)
		for _, tool := range tools {
			out = append(out, core.PrimitiveMeasurement{
				Platform:  paperdata.Table3PlatformKey[net],
				Primitive: "send/receive",
				Tool:      tool,
				Sizes:     r.SizesBytes,
				TimesMs:   r.TimesMs[net][tool],
			})
		}
	}
	return out
}

// FigureResult is a regenerated TPL figure: one or more series per
// platform.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Fig2 regenerates the broadcast figure (4 SUNs, Ethernet and ATM WAN).
func (h *Harness) Fig2(ctx context.Context, procs int) (*FigureResult, error) {
	return h.tplFigure(ctx, ExpFig2, "Broadcast timing", procs, StandardSizes(), h.Broadcast)
}

// Fig3 regenerates the ring figure.
func (h *Harness) Fig3(ctx context.Context, procs int) (*FigureResult, error) {
	return h.tplFigure(ctx, ExpFig3, "Ring (loop) timing", procs, StandardSizes(), h.Ring)
}

func (h *Harness) tplFigure(ctx context.Context, id, title string, procs int, sizes []int, run func(context.Context, platform.Platform, string, int, []int) ([]float64, error)) (_ *FigureResult, err error) {
	h.phaseStart(ctx, id)
	defer h.phaseDone(ctx, id, &err)
	fig := &FigureResult{ID: id, Title: title + " on SUN stations", XLabel: "Message Size (Kbytes)", YLabel: "Execution Time (msec)"}
	type job struct {
		key  string
		tool string
		pf   platform.Platform
	}
	var jobs []job
	for _, key := range []string{"sun-ethernet", "sun-atm-wan"} {
		pf, err := platform.Get(key)
		if err != nil {
			return nil, err
		}
		for _, tool := range []string{"p4", "pvm", "express"} {
			if !pf.Supports(tool) {
				continue
			}
			jobs = append(jobs, job{key: key, tool: tool, pf: pf})
		}
	}
	curves, err := runner.Collect(ctx, h.x, jobs, func(j job) (Series, error) {
		times, err := run(ctx, j.pf, j.tool, procs, sizes)
		if err != nil {
			return Series{}, err
		}
		s := Series{Tool: j.tool, Platform: j.key}
		for k, sz := range sizes {
			s.Points = append(s.Points, Point{X: float64(sz) / 1024, Y: times[k]})
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = curves
	return fig, nil
}

// Fig4 regenerates the global summation figure (p4 and Express on
// Ethernet, p4 on NYNET; PVM has no global operation).
func (h *Harness) Fig4(ctx context.Context, procs int) (_ *FigureResult, err error) {
	h.phaseStart(ctx, ExpFig4)
	defer h.phaseDone(ctx, ExpFig4, &err)
	fig := &FigureResult{
		ID: ExpFig4, Title: "Vector global-sum timing on SUN stations",
		XLabel: "Vector Size (# of integers)", YLabel: "Execution Time (msec)",
	}
	lens := VectorSizes()
	eth, err := platform.Get("sun-ethernet")
	if err != nil {
		return nil, err
	}
	wan, err := platform.Get("sun-atm-wan")
	if err != nil {
		return nil, err
	}
	type job struct {
		label string
		tool  string
		pf    platform.Platform
	}
	jobs := []job{
		{label: "p4", tool: "p4", pf: eth},
		{label: "express", tool: "express", pf: eth},
		{label: "p4-NYNET", tool: "p4", pf: wan},
	}
	curves, err := runner.Collect(ctx, h.x, jobs, func(j job) (Series, error) {
		times, err := h.GlobalSum(ctx, j.pf, j.tool, procs, lens)
		if err != nil {
			return Series{}, err
		}
		s := Series{Tool: j.label, Platform: j.pf.Key}
		for k, n := range lens {
			s.Points = append(s.Points, Point{X: float64(n), Y: times[k]})
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = curves
	return fig, nil
}

// APLFigure regenerates one of Figures 5-8: the four applications on one
// platform across the tool set and processor sweep.
func (h *Harness) APLFigure(ctx context.Context, figID string, scale float64) (_ *FigureResult, _ []core.AppMeasurement, err error) {
	h.phaseStart(ctx, figID)
	defer h.phaseDone(ctx, figID, &err)
	var spec *struct {
		Figure   string
		Platform string
		MaxProcs int
		Tools    []string
	}
	for i := range paperdata.APLPlatforms {
		if paperdata.APLPlatforms[i].Figure == figID {
			spec = &paperdata.APLPlatforms[i]
			break
		}
	}
	if spec == nil {
		return nil, nil, fmt.Errorf("bench: unknown APL figure %q", figID)
	}
	pf, err := platform.Get(spec.Platform)
	if err != nil {
		return nil, nil, err
	}
	fig := &FigureResult{
		ID: figID, Title: "Application performances on " + pf.Name,
		XLabel: "Number of Processors", YLabel: "Execution Time (seconds)",
	}
	procs := make([]int, 0, spec.MaxProcs)
	for p := 1; p <= spec.MaxProcs; p++ {
		procs = append(procs, p)
	}
	type job struct{ app, tool string }
	var jobs []job
	for _, app := range paperdata.APLApps {
		for _, tool := range spec.Tools {
			jobs = append(jobs, job{app: app, tool: tool})
		}
	}
	sweeps, err := runner.Collect(ctx, h.x, jobs, func(j job) (APLSeries, error) {
		return h.RunAPL(ctx, pf, j.tool, j.app, procs, scale)
	})
	if err != nil {
		return nil, nil, err
	}
	var measurements []core.AppMeasurement
	for i, j := range jobs {
		series := sweeps[i]
		s := Series{Tool: j.tool + "/" + j.app, Platform: pf.Key}
		for k := range series.Procs {
			s.Points = append(s.Points, Point{X: float64(series.Procs[k]), Y: series.Seconds[k]})
		}
		fig.Series = append(fig.Series, s)
		measurements = append(measurements, core.AppMeasurement{
			Platform: pf.Key, App: j.app, Tool: j.tool,
			Procs: series.Procs, Seconds: series.Seconds,
		})
	}
	return fig, measurements, nil
}

// Render formats a figure's series as aligned text columns.
func (f *FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n%s vs %s\n\n", f.Title, f.ID, f.YLabel, f.XLabel)
	byPlatform := map[string][]Series{}
	var order []string
	for _, s := range f.Series {
		if _, ok := byPlatform[s.Platform]; !ok {
			order = append(order, s.Platform)
		}
		byPlatform[s.Platform] = append(byPlatform[s.Platform], s)
	}
	for _, pfKey := range order {
		group := byPlatform[pfKey]
		fmt.Fprintf(&b, "--- %s ---\n", pfKey)
		fmt.Fprintf(&b, "%-12s", "x")
		for _, s := range group {
			fmt.Fprintf(&b, " %14s", s.Tool)
		}
		b.WriteString("\n")
		if len(group) == 0 || len(group[0].Points) == 0 {
			continue
		}
		for i := range group[0].Points {
			fmt.Fprintf(&b, "%-12.0f", group[0].Points[i].X)
			for _, s := range group {
				if i < len(s.Points) {
					fmt.Fprintf(&b, " %14.3f", s.Points[i].Y)
				} else {
					fmt.Fprintf(&b, " %14s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// DatFile renders the figure as a gnuplot-style whitespace-separated data
// file (one block per platform, column per series).
func (f *FigureResult) DatFile() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n# x: %s, y: %s\n", f.ID, f.Title, f.XLabel, f.YLabel)
	fmt.Fprintf(&b, "# columns: x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s@%s", s.Tool, s.Platform)
	}
	b.WriteString("\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	maxLen := 0
	for _, s := range f.Series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		x := 0.0
		for _, s := range f.Series {
			if i < len(s.Points) {
				x = s.Points[i].X
				break
			}
		}
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %g", s.Points[i].Y)
			} else {
				b.WriteString(" nan")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// tplSteps returns the regeneration closures for Table 3 and Figures
// 2-4, writing into the caller's result slots. Callers compose them
// (plus any extra steps) into one Map fan-out — Table4 and Evaluate
// share this list so the step set cannot drift between them.
func (h *Harness) tplSteps(ctx context.Context, procs int, t3 **Table3Result, fig2, fig3, fig4 **FigureResult) []func() error {
	return []func() error{
		func() (err error) { *t3, err = h.Table3(ctx); return },
		func() (err error) { *fig2, err = h.Fig2(ctx, procs); return },
		func() (err error) { *fig3, err = h.Fig3(ctx, procs); return },
		func() (err error) { *fig4, err = h.Fig4(ctx, procs); return },
	}
}

// Table4 regenerates the primitive rankings end to end: Table 3 and
// Figures 2-4 fan out through one Map (each internally fanning out its
// own cells), then fold through Table4FromMeasurements.
func (h *Harness) Table4(ctx context.Context, procs int) (_ []core.PrimitiveRanking, err error) {
	h.phaseStart(ctx, ExpTable4)
	defer h.phaseDone(ctx, ExpTable4, &err)
	var (
		t3               *Table3Result
		fig2, fig3, fig4 *FigureResult
	)
	steps := h.tplSteps(ctx, procs, &t3, &fig2, &fig3, &fig4)
	if err := h.x.Map(ctx, len(steps), func(i int) error { return steps[i]() }); err != nil {
		return nil, err
	}
	return Table4FromMeasurements(t3, fig2, fig3, fig4), nil
}

// Table4FromMeasurements derives the Table 4 rankings from regenerated
// TPL data (send/receive from Table 3; broadcast, ring and global sum
// from Figures 2-4).
func Table4FromMeasurements(t3 *Table3Result, fig2, fig3, fig4 *FigureResult) []core.PrimitiveRanking {
	var ms []core.PrimitiveMeasurement
	ms = append(ms, t3.Measurements()...)
	add := func(fig *FigureResult, primitive string) {
		for _, s := range fig.Series {
			tool := s.Tool
			if tool == "p4-NYNET" {
				continue // separate curve, not a ranking entry
			}
			m := core.PrimitiveMeasurement{Platform: s.Platform, Primitive: primitive, Tool: tool}
			for _, p := range s.Points {
				m.Sizes = append(m.Sizes, int(p.X*1024))
				m.TimesMs = append(m.TimesMs, p.Y)
			}
			ms = append(ms, m)
		}
	}
	add(fig2, "broadcast")
	add(fig3, "ring")
	add(fig4, "global sum")
	return core.RankPrimitives(ms)
}
