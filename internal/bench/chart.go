package bench

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIChart renders a figure's series as a terminal plot — the
// reproduction's stand-in for the paper's gnuplot figures. Markers are
// assigned per series; overlapping points show the later series' marker.
func (f *FigureResult) ASCIIChart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var xMin, xMax, yMax float64
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				xMin, xMax = p.X, p.X
				first = false
			}
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMax = math.Max(yMax, p.Y)
		}
	}
	if first || yMax == 0 || xMax == xMin {
		return "(no data)\n"
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int((p.X - xMin) / (xMax - xMin) * float64(width-1))
			row := height - 1 - int(p.Y/yMax*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Title, f.YLabel)
	for i, row := range grid {
		yVal := yMax * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s|\n", yVal, row)
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.5g%*.5g   (%s)\n", "", width/2, xMin, width-width/2, xMax, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s (%s)\n", markers[si%len(markers)], s.Tool, s.Platform)
	}
	return b.String()
}
