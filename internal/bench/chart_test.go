package bench

import (
	"strings"
	"testing"
)

func chartFixture() *FigureResult {
	return &FigureResult{
		ID: "test", Title: "Test figure", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Tool: "p4", Platform: "sun-ethernet", Points: []Point{{X: 0, Y: 1}, {X: 32, Y: 50}, {X: 64, Y: 100}}},
			{Tool: "pvm", Platform: "sun-ethernet", Points: []Point{{X: 0, Y: 5}, {X: 32, Y: 80}, {X: 64, Y: 200}}},
		},
	}
}

func TestASCIIChartStructure(t *testing.T) {
	text := chartFixture().ASCIIChart(60, 15)
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// Title + 15 plot rows + axis + labels + 2 legend lines.
	if len(lines) != 1+15+2+2 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), text)
	}
	if !strings.Contains(text, "* = p4") || !strings.Contains(text, "+ = pvm") {
		t.Fatalf("legend missing:\n%s", text)
	}
	// Top row should carry the max marker (pvm's 200 point).
	if !strings.Contains(lines[1], "+") {
		t.Fatalf("max point not on top row: %q", lines[1])
	}
}

func TestASCIIChartEmpty(t *testing.T) {
	fig := &FigureResult{ID: "empty", Title: "Empty"}
	if got := fig.ASCIIChart(40, 10); got != "(no data)\n" {
		t.Fatalf("empty chart = %q", got)
	}
}

func TestASCIIChartMinimumDimensions(t *testing.T) {
	text := chartFixture().ASCIIChart(1, 1)
	if len(text) == 0 || !strings.Contains(text, "p4") {
		t.Fatal("degenerate dimensions should be clamped, not crash")
	}
}

func TestASCIIChartRealFigure(t *testing.T) {
	fig, err := sharedH.Fig3(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := fig.ASCIIChart(70, 20)
	if !strings.Contains(text, "Ring") {
		t.Fatalf("chart missing title:\n%s", text)
	}
}
