package bench

import (
	"fmt"
	"strings"
	"time"

	"tooleval/internal/apps"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// This file is the single home of every cell computation: one function
// per benchmark kind, each a pure function of the cell's content-key
// fields. The Harness sweep methods call them inside their Memo
// closures, and ComputeCell dispatches to the same functions from a
// bare runner.Key — which is what makes a cell location-transparent: a
// remote worker daemon handed only the key runs exactly the code the
// local sweep would have run, so local and distributed results are
// byte-identical by construction, not by testing alone.

// computePingPong is Table 3's cell: the round-trip send/receive time
// for one message size, in milliseconds.
func computePingPong(pf platform.Platform, toolName string, factory mpt.Factory, size int) (runner.CellResult, error) {
	payload := testPayload(size)
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
		const tag = 1
		if c.Rank() == 0 {
			t0 := c.Now()
			if err := c.Comm.Send(1, tag, payload); err != nil {
				return nil, err
			}
			msg, err := c.Comm.Recv(1, tag)
			if err != nil {
				return nil, err
			}
			if len(msg.Data) != size {
				return nil, fmt.Errorf("echo returned %d bytes, want %d", len(msg.Data), size)
			}
			return (c.Now() - t0).Milliseconds(), nil
		}
		msg, err := c.Comm.Recv(0, tag)
		if err != nil {
			return nil, err
		}
		return nil, c.Comm.Send(0, tag, msg.Data)
	})
	if err != nil {
		return runner.CellResult{}, fmt.Errorf("ping-pong %s/%s size %d: %w", pf.Key, toolName, size, err)
	}
	ms, ok := res.Value.(float64)
	if !ok {
		return runner.CellResult{}, fmt.Errorf("ping-pong %s/%s: no timing value", pf.Key, toolName)
	}
	return runner.CellResult{Value: ms, Virtual: res.Elapsed}, nil
}

// computeBroadcast is Figure 2's cell: rank 0's data reaching all
// procs ranks, timed until the slowest rank holds it.
func computeBroadcast(pf platform.Platform, toolName string, factory mpt.Factory, procs, size int) (runner.CellResult, error) {
	payload := testPayload(size)
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
		var in []byte
		if c.Rank() == 0 {
			in = payload
		}
		got, err := c.Comm.Bcast(0, 2, in)
		if err != nil {
			return nil, err
		}
		if len(got) != size {
			return nil, fmt.Errorf("bcast delivered %d bytes, want %d", len(got), size)
		}
		return nil, nil
	})
	if err != nil {
		return runner.CellResult{}, fmt.Errorf("broadcast %s/%s size %d: %w", pf.Key, toolName, size, err)
	}
	return runner.CellResult{Value: float64(res.Elapsed) / float64(time.Millisecond), Virtual: res.Elapsed}, nil
}

// computeRing is Figure 3's cell: every rank passes size bytes to its
// successor and receives from its predecessor, timed until the slowest
// rank holds its incoming message.
func computeRing(pf platform.Platform, toolName string, factory mpt.Factory, procs, size int) (runner.CellResult, error) {
	payload := testPayload(size)
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
		const tag = 3
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		if err := c.Comm.Send(next, tag, payload); err != nil {
			return nil, err
		}
		msg, err := c.Comm.Recv(prev, tag)
		if err != nil {
			return nil, err
		}
		if len(msg.Data) != size {
			return nil, fmt.Errorf("ring returned %d bytes, want %d", len(msg.Data), size)
		}
		return nil, nil
	})
	if err != nil {
		return runner.CellResult{}, fmt.Errorf("ring %s/%s size %d: %w", pf.Key, toolName, size, err)
	}
	return runner.CellResult{Value: float64(res.Elapsed) / float64(time.Millisecond), Virtual: res.Elapsed}, nil
}

// computeGlobalSum is Figure 4's cell: the element-wise global sum of
// an n-element integer vector across procs ranks.
func computeGlobalSum(pf platform.Platform, toolName string, factory mpt.Factory, procs, n int) (runner.CellResult, error) {
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
		vec := make([]int64, n)
		for i := range vec {
			vec[i] = int64(c.Rank() + i)
		}
		sum, err := c.Comm.GlobalSumInt64(vec)
		if err != nil {
			return nil, err
		}
		if len(sum) != n {
			return nil, fmt.Errorf("global sum returned %d elements, want %d", len(sum), n)
		}
		return nil, nil
	})
	if err != nil {
		return runner.CellResult{}, fmt.Errorf("global sum %s/%s n=%d: %w", pf.Key, toolName, n, err)
	}
	return runner.CellResult{Value: float64(res.Elapsed) / float64(time.Millisecond), Virtual: res.Elapsed}, nil
}

// computeApp is one APL sweep point: the application's execution time
// at one processor count, verified against the sequential reference.
func computeApp(pf platform.Platform, toolName string, factory mpt.Factory, appName string, app apps.App, procs int, scale float64) (runner.CellResult, error) {
	res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
		return app.Run(c, scale)
	})
	if err != nil {
		return runner.CellResult{}, fmt.Errorf("bench: %s/%s/%s procs=%d: %w", pf.Key, toolName, appName, procs, err)
	}
	if err := app.Verify(res.Value, procs, scale); err != nil {
		return runner.CellResult{}, fmt.Errorf("bench: %s/%s/%s procs=%d verification: %w", pf.Key, toolName, appName, procs, err)
	}
	secs := res.Elapsed.Seconds()
	// Applications that time an inner phase (the FFT excludes its
	// verification-only scatter/gather) report it themselves.
	if t, ok := res.Value.(interface{ InnerSeconds() (float64, bool) }); ok {
		if inner, valid := t.InnerSeconds(); valid {
			secs = inner
		}
	}
	return runner.CellResult{Value: secs, Virtual: res.Elapsed}, nil
}

// APLBenchPrefix prefixes the Bench field of every APL cell key; the
// rest of the field is the application name.
const APLBenchPrefix = "apl/"

// ComputeCell recomputes one evaluation cell from its content key
// alone, dispatching on the Bench field to the same compute functions
// the Harness sweep methods run. It resolves tools from the built-in
// catalog only — a custom WithTool factory exists in one session's
// registry and cannot be reconstructed from a name, so keys naming one
// are an error here (the remote executor documents that restriction).
//
// A cell is a pure function of its key, so ComputeCell is the whole
// location-transparency contract of the distributed executor: any
// process with the same engine version computes the same bytes.
func ComputeCell(key runner.Key) (runner.CellResult, error) {
	pf, err := platform.Get(key.Platform)
	if err != nil {
		return runner.CellResult{}, err
	}
	factory, err := tools.Factory(key.Tool)
	if err != nil {
		return runner.CellResult{}, err
	}
	switch {
	case key.Bench == "pingpong":
		return computePingPong(pf, key.Tool, factory, key.Size)
	case key.Bench == "broadcast":
		return computeBroadcast(pf, key.Tool, factory, key.Procs, key.Size)
	case key.Bench == "ring":
		return computeRing(pf, key.Tool, factory, key.Procs, key.Size)
	case key.Bench == "globalsum":
		return computeGlobalSum(pf, key.Tool, factory, key.Procs, key.Size)
	case strings.HasPrefix(key.Bench, APLBenchPrefix):
		appName := strings.TrimPrefix(key.Bench, APLBenchPrefix)
		app, err := apps.Get(appName)
		if err != nil {
			return runner.CellResult{}, err
		}
		return computeApp(pf, key.Tool, factory, appName, app, key.Procs, key.Scale)
	default:
		return runner.CellResult{}, fmt.Errorf("bench: unknown benchmark %q in cell key %s", key.Bench, key)
	}
}
