package bench

import (
	"errors"
	"fmt"
	"testing"

	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// freshShardedHarness builds an isolated harness over the sharded
// executor (its own striped cache), for pinning the second backend
// against the serial sweep.
func freshShardedHarness(shards, workersPerShard int) *Harness {
	return NewHarness(runner.NewSharded(shards, workersPerShard))
}

// TestTPLDeterministicUnderParallelism is the core determinism
// guarantee of the scheduler: for every tool on every platform that
// ports it, each TPL benchmark produces bit-identical curves whether
// the cells run strictly serially (-j 1), fanned out over four
// workers, or hash-partitioned over four shards of two workers each.
// Virtual time makes each cell a pure function of its key; this test
// proves neither fan-out topology perturbs the simulations or reorders
// their assembly. Each harness starts from an empty cache (a shared
// cache would let the later sweeps trivially replay the first).
func TestTPLDeterministicUnderParallelism(t *testing.T) {
	sizes := []int{0, 1 << 10, 4 << 10}
	vecs := []int{100, 1000}
	benches := []struct {
		name string
		run  func(h *Harness, pf platform.Platform, tool string, procs int) ([]float64, error)
	}{
		{"PingPong", func(h *Harness, pf platform.Platform, tool string, _ int) ([]float64, error) {
			return h.PingPong(bgCtx, pf, tool, sizes)
		}},
		{"Broadcast", func(h *Harness, pf platform.Platform, tool string, procs int) ([]float64, error) {
			return h.Broadcast(bgCtx, pf, tool, procs, sizes)
		}},
		{"Ring", func(h *Harness, pf platform.Platform, tool string, procs int) ([]float64, error) {
			return h.Ring(bgCtx, pf, tool, procs, sizes)
		}},
		{"GlobalSum", func(h *Harness, pf platform.Platform, tool string, procs int) ([]float64, error) {
			return h.GlobalSum(bgCtx, pf, tool, procs, vecs)
		}},
	}
	for _, pf := range platform.All() {
		for _, tool := range tools.Names() {
			if !pf.Supports(tool) {
				continue
			}
			procs := 4
			if pf.MaxProcs < procs {
				procs = pf.MaxProcs
			}
			for _, bm := range benches {
				bm := bm
				pf := pf
				tool := tool
				t.Run(fmt.Sprintf("%s/%s/%s", bm.name, pf.Key, tool), func(t *testing.T) {
					serial, serialErr := bm.run(freshHarness(1), pf, tool, procs)
					for mode, h := range map[string]*Harness{
						"parallel": freshHarness(4),
						"sharded":  freshShardedHarness(4, 2),
					} {
						par, parErr := bm.run(h, pf, tool, procs)
						if (serialErr == nil) != (parErr == nil) {
							t.Fatalf("error mismatch: serial=%v %s=%v", serialErr, mode, parErr)
						}
						if serialErr != nil {
							// PVM has no global operation (Table 1): all modes
							// must agree on the failure too.
							if !errors.Is(serialErr, mpt.ErrNotSupported) {
								t.Fatalf("unexpected error: %v", serialErr)
							}
							continue
						}
						if len(serial) != len(par) {
							t.Fatalf("length mismatch: serial %d, %s %d", len(serial), mode, len(par))
						}
						for i := range serial {
							if serial[i] != par[i] {
								t.Fatalf("point %d differs: serial %v, %s %v (curves %v vs %v)",
									i, serial[i], mode, par[i], serial, par)
							}
						}
					}
				})
			}
		}
	}
}

// TestAPLDeterministicUnderParallelism extends the bit-identical
// guarantee to the application sweeps (one curve per figure line),
// across both fan-out topologies.
func TestAPLDeterministicUnderParallelism(t *testing.T) {
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	procs := []int{1, 2, 4}
	const scale = 0.05
	for _, tool := range tools.Names() {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			serial, serialErr := freshHarness(1).RunAPL(bgCtx, pf, tool, "montecarlo", procs, scale)
			for mode, h := range map[string]*Harness{
				"parallel": freshHarness(4),
				"sharded":  freshShardedHarness(4, 1),
			} {
				par, parErr := h.RunAPL(bgCtx, pf, tool, "montecarlo", procs, scale)
				if serialErr != nil || parErr != nil {
					t.Fatalf("errors: serial=%v %s=%v", serialErr, mode, parErr)
				}
				if len(serial.Seconds) != len(par.Seconds) {
					t.Fatalf("length mismatch: %d vs %d", len(serial.Seconds), len(par.Seconds))
				}
				for i := range serial.Seconds {
					if serial.Seconds[i] != par.Seconds[i] || serial.Procs[i] != par.Procs[i] {
						t.Fatalf("point %d differs: serial (%d, %v), %s (%d, %v)",
							i, serial.Procs[i], serial.Seconds[i], mode, par.Procs[i], par.Seconds[i])
					}
				}
			}
		})
	}
}

// TestShardedEvaluateMemoizesAcrossSweeps repeats the `toolbench all`
// → report cache property through the sharded backend: the striped
// cache must coalesce the report's cells onto the sweep's exactly like
// the single-stripe cache does.
func TestShardedEvaluateMemoizesAcrossSweeps(t *testing.T) {
	const scale = 0.05
	h := freshShardedHarness(4, 2)
	if _, err := h.Table3(bgCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig2(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig3(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig4(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.APLFigure(bgCtx, ExpFig8, scale); err != nil {
		t.Fatal(err)
	}
	after := h.Executor().Stats()
	if after.Misses == 0 {
		t.Fatal("sharded sweep simulated nothing — stats wiring broken")
	}
	if _, err := h.Evaluate(bgCtx, core.EndUserProfile(), scale); err != nil {
		t.Fatal(err)
	}
	final := h.Executor().Stats()
	if final.Misses != after.Misses {
		t.Fatalf("Evaluate re-simulated %d cells that were already in the striped cache", final.Misses-after.Misses)
	}
}

// TestEvaluateMemoizesAcrossSweeps asserts the `toolbench all` →
// report property end to end: after the experiments have run once, a
// full Evaluate must be served entirely from the memoization cache —
// zero additional simulations (cache misses).
func TestEvaluateMemoizesAcrossSweeps(t *testing.T) {
	const scale = 0.05
	h := freshHarness(4)
	// The sweep `toolbench all` performs: the TPL tables/figures and
	// the APL figure the report consumes.
	if _, err := h.Table3(bgCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig2(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig3(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig4(bgCtx, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.APLFigure(bgCtx, ExpFig8, scale); err != nil {
		t.Fatal(err)
	}
	after := h.Executor().Stats()
	if after.Misses == 0 {
		t.Fatal("sweep simulated nothing — stats wiring broken")
	}

	// The closing report re-derives every curve; each cell must hit.
	if _, err := h.Evaluate(bgCtx, core.EndUserProfile(), scale); err != nil {
		t.Fatal(err)
	}
	final := h.Executor().Stats()
	if final.Misses != after.Misses {
		t.Fatalf("Evaluate re-simulated %d cells that were already cached", final.Misses-after.Misses)
	}
	if final.Hits <= after.Hits {
		t.Fatalf("Evaluate hit no cached cells (hits %d -> %d)", after.Hits, final.Hits)
	}
}

// TestRepeatedFigureSimulatesOnce is the narrow version of the same
// property: regenerating one figure twice must not add a single miss.
func TestRepeatedFigureSimulatesOnce(t *testing.T) {
	h := freshHarness(4)
	first, err := h.Fig2(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	misses := h.Executor().Stats().Misses
	second, err := h.Fig2(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Executor().Stats().Misses; got != misses {
		t.Fatalf("second Fig2 simulated %d new cells, want 0", got-misses)
	}
	if len(first.Series) != len(second.Series) {
		t.Fatalf("series count changed: %d vs %d", len(first.Series), len(second.Series))
	}
	for i := range first.Series {
		for k := range first.Series[i].Points {
			if first.Series[i].Points[k] != second.Series[i].Points[k] {
				t.Fatalf("cached replay differs at series %d point %d", i, k)
			}
		}
	}
}
