package bench

import (
	"errors"
	"fmt"
	"testing"

	"tooleval/internal/core"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// withRunner runs fn with a fresh default runner of the given width, so
// each invocation starts from an empty memoization cache (a shared
// cache would let the second sweep trivially replay the first).
func withRunner(t *testing.T, workers int, fn func()) {
	t.Helper()
	old := runner.Default()
	runner.SetDefault(runner.New(workers))
	defer runner.SetDefault(old)
	fn()
}

// TestTPLDeterministicUnderParallelism is the core determinism
// guarantee of the scheduler: for every tool on every platform that
// ports it, each TPL benchmark produces bit-identical curves whether
// the cells run strictly serially (-j 1) or fanned out over four
// workers. Virtual time makes each cell a pure function of its key;
// this test proves the fan-out neither perturbs the simulations nor
// reorders their assembly.
func TestTPLDeterministicUnderParallelism(t *testing.T) {
	sizes := []int{0, 1 << 10, 4 << 10}
	vecs := []int{100, 1000}
	benches := []struct {
		name string
		run  func(pf platform.Platform, tool string, procs int) ([]float64, error)
	}{
		{"PingPong", func(pf platform.Platform, tool string, _ int) ([]float64, error) {
			return PingPong(pf, tool, sizes)
		}},
		{"Broadcast", func(pf platform.Platform, tool string, procs int) ([]float64, error) {
			return Broadcast(pf, tool, procs, sizes)
		}},
		{"Ring", func(pf platform.Platform, tool string, procs int) ([]float64, error) {
			return Ring(pf, tool, procs, sizes)
		}},
		{"GlobalSum", func(pf platform.Platform, tool string, procs int) ([]float64, error) {
			return GlobalSum(pf, tool, procs, vecs)
		}},
	}
	for _, pf := range platform.All() {
		for _, tool := range tools.Names() {
			if !pf.Supports(tool) {
				continue
			}
			procs := 4
			if pf.MaxProcs < procs {
				procs = pf.MaxProcs
			}
			for _, bm := range benches {
				bm := bm
				pf := pf
				tool := tool
				t.Run(fmt.Sprintf("%s/%s/%s", bm.name, pf.Key, tool), func(t *testing.T) {
					var serial, par []float64
					var serialErr, parErr error
					withRunner(t, 1, func() { serial, serialErr = bm.run(pf, tool, procs) })
					withRunner(t, 4, func() { par, parErr = bm.run(pf, tool, procs) })
					if (serialErr == nil) != (parErr == nil) {
						t.Fatalf("error mismatch: serial=%v parallel=%v", serialErr, parErr)
					}
					if serialErr != nil {
						// PVM has no global operation (Table 1): both modes
						// must agree on the failure too.
						if !errors.Is(serialErr, mpt.ErrNotSupported) {
							t.Fatalf("unexpected error: %v", serialErr)
						}
						return
					}
					if len(serial) != len(par) {
						t.Fatalf("length mismatch: serial %d, parallel %d", len(serial), len(par))
					}
					for i := range serial {
						if serial[i] != par[i] {
							t.Fatalf("point %d differs: serial %v, parallel %v (curves %v vs %v)",
								i, serial[i], par[i], serial, par)
						}
					}
				})
			}
		}
	}
}

// TestAPLDeterministicUnderParallelism extends the bit-identical
// guarantee to the application sweeps (one curve per figure line).
func TestAPLDeterministicUnderParallelism(t *testing.T) {
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	procs := []int{1, 2, 4}
	const scale = 0.05
	for _, tool := range tools.Names() {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			var serial, par APLSeries
			var serialErr, parErr error
			withRunner(t, 1, func() { serial, serialErr = RunAPL(pf, tool, "montecarlo", procs, scale) })
			withRunner(t, 4, func() { par, parErr = RunAPL(pf, tool, "montecarlo", procs, scale) })
			if serialErr != nil || parErr != nil {
				t.Fatalf("errors: serial=%v parallel=%v", serialErr, parErr)
			}
			if len(serial.Seconds) != len(par.Seconds) {
				t.Fatalf("length mismatch: %d vs %d", len(serial.Seconds), len(par.Seconds))
			}
			for i := range serial.Seconds {
				if serial.Seconds[i] != par.Seconds[i] || serial.Procs[i] != par.Procs[i] {
					t.Fatalf("point %d differs: serial (%d, %v), parallel (%d, %v)",
						i, serial.Procs[i], serial.Seconds[i], par.Procs[i], par.Seconds[i])
				}
			}
		})
	}
}

// TestEvaluateMemoizesAcrossSweeps asserts the `toolbench all` →
// report property end to end: after the experiments have run once, a
// full Evaluate must be served entirely from the memoization cache —
// zero additional simulations (cache misses).
func TestEvaluateMemoizesAcrossSweeps(t *testing.T) {
	const scale = 0.05
	withRunner(t, 4, func() {
		// The sweep `toolbench all` performs: the TPL tables/figures and
		// the APL figure the report consumes.
		if _, err := Table3(); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig2(4); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig3(4); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig4(4); err != nil {
			t.Fatal(err)
		}
		if _, _, err := APLFigure(ExpFig8, scale); err != nil {
			t.Fatal(err)
		}
		after := runner.Default().Stats()
		if after.Misses == 0 {
			t.Fatal("sweep simulated nothing — stats wiring broken")
		}

		// The closing report re-derives every curve; each cell must hit.
		if _, err := Evaluate(core.EndUserProfile(), scale); err != nil {
			t.Fatal(err)
		}
		final := runner.Default().Stats()
		if final.Misses != after.Misses {
			t.Fatalf("Evaluate re-simulated %d cells that were already cached", final.Misses-after.Misses)
		}
		if final.Hits <= after.Hits {
			t.Fatalf("Evaluate hit no cached cells (hits %d -> %d)", after.Hits, final.Hits)
		}
	})
}

// TestRepeatedFigureSimulatesOnce is the narrow version of the same
// property: regenerating one figure twice must not add a single miss.
func TestRepeatedFigureSimulatesOnce(t *testing.T) {
	withRunner(t, 4, func() {
		first, err := Fig2(4)
		if err != nil {
			t.Fatal(err)
		}
		misses := runner.Default().Stats().Misses
		second, err := Fig2(4)
		if err != nil {
			t.Fatal(err)
		}
		if got := runner.Default().Stats().Misses; got != misses {
			t.Fatalf("second Fig2 simulated %d new cells, want 0", got-misses)
		}
		if len(first.Series) != len(second.Series) {
			t.Fatalf("series count changed: %d vs %d", len(first.Series), len(second.Series))
		}
		for i := range first.Series {
			for k := range first.Series[i].Points {
				if first.Series[i].Points[k] != second.Series[i].Points[k] {
					t.Fatalf("cached replay differs at series %d point %d", i, k)
				}
			}
		}
	})
}
