// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation section: the Tool Performance Level
// micro-benchmarks (send/receive, broadcast, ring, global sum — Table 3,
// Figures 2-4), the Application Performance Level sweeps (Figures 5-8),
// and the derived rankings (Table 4).
//
// Every measured point is one independent virtual-time simulation (one
// mpt.Run), so the Harness routes each through its internal/runner
// scheduler: points fan out across a bounded worker pool and are
// memoized by content key, while result assembly stays in input order so
// the emitted tables and figures are bit-identical to a serial sweep.
package bench

import (
	"context"

	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// StandardSizes are the message sizes of Table 3 and Figures 2-3, in
// bytes: 0 through 64 Kbytes.
func StandardSizes() []int {
	return []int{0, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
}

// VectorSizes are the global-sum vector lengths of Figure 4 (number of
// 4-byte integers, 0..100K).
func VectorSizes() []int {
	return []int{1000, 10_000, 25_000, 50_000, 75_000, 100_000}
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 // message size in KB, vector length, or processor count
	Y float64 // milliseconds (TPL) or seconds (APL)
}

// Series is one tool's curve on one figure.
type Series struct {
	Tool     string
	Platform string
	Points   []Point
}

// PingPong measures the round-trip send/receive time (Table 3's
// benchmark): rank 0 sends size bytes to rank 1 and waits for the echo.
// The result is the round-trip time in milliseconds for each size.
func (h *Harness) PingPong(ctx context.Context, pf platform.Platform, toolName string, sizes []int) ([]float64, error) {
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return nil, err
	}
	return runner.Collect(ctx, h.x, sizes, func(size int) (float64, error) {
		key := runner.Key{Platform: pf.Key, Tool: toolName, Bench: "pingpong", Procs: 2, Size: size}
		return h.x.Memo(ctx, key, func() (runner.CellResult, error) {
			return computePingPong(pf, toolName, factory, size)
		})
	})
}

// Broadcast measures the collective broadcast of Figure 2: rank 0's data
// reaching all procs ranks. The reported time is until the slowest rank
// holds the data.
func (h *Harness) Broadcast(ctx context.Context, pf platform.Platform, toolName string, procs int, sizes []int) ([]float64, error) {
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return nil, err
	}
	return runner.Collect(ctx, h.x, sizes, func(size int) (float64, error) {
		key := runner.Key{Platform: pf.Key, Tool: toolName, Bench: "broadcast", Procs: procs, Size: size}
		return h.x.Memo(ctx, key, func() (runner.CellResult, error) {
			return computeBroadcast(pf, toolName, factory, procs, size)
		})
	})
}

// Ring measures the loop benchmark of Figure 3 ("all nodes send and
// receive", §1): every rank simultaneously passes a size-byte message to
// its successor and receives one from its predecessor. The reported time
// is until the slowest rank holds its incoming message — continuous
// bidirectional flow, which is where the paper observes Express
// overtaking PVM despite losing the isolated send/receive race.
func (h *Harness) Ring(ctx context.Context, pf platform.Platform, toolName string, procs int, sizes []int) ([]float64, error) {
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return nil, err
	}
	return runner.Collect(ctx, h.x, sizes, func(size int) (float64, error) {
		key := runner.Key{Platform: pf.Key, Tool: toolName, Bench: "ring", Procs: procs, Size: size}
		return h.x.Memo(ctx, key, func() (runner.CellResult, error) {
			return computeRing(pf, toolName, factory, procs, size)
		})
	})
}

// GlobalSum measures Figure 4's benchmark: the element-wise global sum of
// an integer vector across procs ranks (p4_global_op / excombine; PVM
// reports mpt.ErrNotSupported as in Table 1).
func (h *Harness) GlobalSum(ctx context.Context, pf platform.Platform, toolName string, procs int, vectorLens []int) ([]float64, error) {
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return nil, err
	}
	return runner.Collect(ctx, h.x, vectorLens, func(n int) (float64, error) {
		key := runner.Key{Platform: pf.Key, Tool: toolName, Bench: "globalsum", Procs: procs, Size: n}
		return h.x.Memo(ctx, key, func() (runner.CellResult, error) {
			return computeGlobalSum(pf, toolName, factory, procs, n)
		})
	})
}

// testPayload builds a deterministic payload of the given size.
func testPayload(size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i*131 + 7)
	}
	return b
}
