package bench

import (
	"fmt"
	"testing"

	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
)

// TestAPLCalibrationReport prints simulated single-processor application
// times next to the values read off Figures 5-8, plus the full sweep for
// p4. Run with -v while tuning cost models.
func TestAPLCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	for _, fig := range paperdata.APLPlatforms {
		pf, err := platform.Get(fig.Platform)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("=== %s (%s) ===", fig.Figure, pf.Name)
		for _, app := range paperdata.APLApps {
			s, err := sharedH.RunAPL(bgCtx, pf, "p4", app, []int{1, 2, 4, 8}, 1.0)
			if err != nil {
				t.Fatalf("%s/%s: %v", fig.Platform, app, err)
			}
			paper := paperdata.APLSingleProcSeconds[fig.Figure][app]
			t.Logf("%-11s 1p sim=%8.3fs paper~%8.3fs | p4 sweep %v -> %v", app, s.Seconds[0], paper, s.Procs, fmtSecs(s.Seconds))
		}
	}
}

func fmtSecs(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.3f", x)
	}
	return out
}
