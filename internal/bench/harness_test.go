package bench

import (
	"context"

	"tooleval/internal/runner"
)

// bgCtx and sharedH serve the ordering/calibration/figure tests: one
// package-wide harness gives repeated sweeps across tests the same
// memoization a long-lived session enjoys, exactly like the old
// process-global runner did — but as an explicit object.
var (
	bgCtx   = context.Background()
	sharedH = NewHarness(runner.New(0))
)

// freshHarness builds an isolated harness with an empty cache (the
// determinism tests must not replay another harness's cells).
func freshHarness(workers int) *Harness {
	return NewHarness(runner.New(workers))
}
