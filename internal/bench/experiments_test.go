package bench

import (
	"strings"
	"testing"

	"tooleval/internal/core"
	"tooleval/internal/paperdata"
)

func TestTable3AgainstPaper(t *testing.T) {
	t3, err := sharedH.Table3(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Every simulated curve must stay within a factor band of the
	// paper's published value at every size — the reproduction's
	// headline calibration guarantee.
	const maxRatio = 2.0
	for _, net := range []string{"ethernet", "atm-lan", "atm-wan"} {
		for tool, sim := range t3.TimesMs[net] {
			paper, ok := paperdata.Table3[tool][net]
			if !ok {
				t.Fatalf("unexpected simulated column %s/%s", tool, net)
			}
			for i := range sim {
				ratio := sim[i] / paper[i]
				if ratio > maxRatio || ratio < 1/maxRatio {
					t.Errorf("%s/%s @%dKB: sim %.2f vs paper %.2f (ratio %.2f)",
						net, tool, t3.SizesBytes[i]/1024, sim[i], paper[i], ratio)
				}
			}
		}
	}
}

func TestTable3OrderingsMatchTable4(t *testing.T) {
	t3, err := sharedH.Table3(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	rankings := core.RankPrimitives(t3.Measurements())
	for _, r := range rankings {
		want, ok := paperdata.Table4[r.Platform]["send/receive"]
		if !ok {
			continue
		}
		if len(r.Tools) < len(want) {
			t.Fatalf("%s: ranked %v, paper has %v", r.Platform, r.Tools, want)
		}
		for i := range want {
			if r.Tools[i] != want[i] {
				t.Fatalf("%s send/receive rank %d = %s, paper says %s (full: %v)",
					r.Platform, i, r.Tools[i], want[i], r.Tools)
			}
		}
	}
}

func TestFullTable4MatchesPaper(t *testing.T) {
	t3, err := sharedH.Table3(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := sharedH.Fig2(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := sharedH.Fig3(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := sharedH.Fig4(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	rankings := Table4FromMeasurements(t3, fig2, fig3, fig4)
	byKey := map[string][]string{}
	for _, r := range rankings {
		byKey[r.Platform+"/"+r.Primitive] = r.Tools
	}
	for platformKey, prims := range paperdata.Table4 {
		for prim, want := range prims {
			got, ok := byKey[platformKey+"/"+prim]
			if !ok {
				// Table 3 only carries send/receive for atm-lan.
				if platformKey == "sun-atm-lan" && prim != "send/receive" {
					continue
				}
				t.Fatalf("no regenerated ranking for %s/%s", platformKey, prim)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: got %v, paper %v", platformKey, prim, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s rank %d: got %s, paper %s (full: got %v, paper %v)",
						platformKey, prim, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

func TestFigureRenderAndDat(t *testing.T) {
	fig, err := sharedH.Fig2(bgCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := fig.Render()
	for _, want := range []string{"Broadcast", "sun-ethernet", "sun-atm-wan", "p4", "pvm"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	dat := fig.DatFile()
	if !strings.HasPrefix(dat, "# fig2") {
		t.Fatalf("dat header wrong: %q", dat[:40])
	}
	lines := strings.Split(strings.TrimSpace(dat), "\n")
	dataLines := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			dataLines++
		}
	}
	if dataLines != len(StandardSizes()) {
		t.Fatalf("dat has %d data rows, want %d", dataLines, len(StandardSizes()))
	}
}

func TestTable3RenderSideBySide(t *testing.T) {
	t3, err := sharedH.Table3(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	text := t3.Render()
	for _, want := range []string{"Table 3", "ethernet", "atm-lan", "atm-wan", "p4-sim", "p4-ppr"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table 3 render missing %q", want)
		}
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 10 {
		t.Fatalf("got %d experiments, want 10 (T3, T4, F2-F8, ADL)", len(exps))
	}
}
