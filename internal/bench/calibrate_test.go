package bench

import (
	"fmt"
	"testing"

	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
)

// TestCalibrationReport prints the simulated Table 3 next to the paper's
// numbers. Run with -v to inspect the fit while tuning tool parameters.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	sizes := StandardSizes()
	for _, net := range []string{"ethernet", "atm-lan", "atm-wan"} {
		pf, err := platform.Get(paperdata.Table3PlatformKey[net])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("=== %s (%s) ===", net, pf.Name)
		for _, tool := range []string{"p4", "pvm", "express"} {
			paper, ok := paperdata.Table3[tool][net]
			if !ok {
				continue
			}
			got, err := sharedH.PingPong(bgCtx, pf, tool, sizes)
			if err != nil {
				t.Fatalf("%s/%s: %v", net, tool, err)
			}
			line := fmt.Sprintf("%-8s", tool)
			for i := range sizes {
				line += fmt.Sprintf("  %7.1f/%-7.1f", got[i], paper[i])
			}
			t.Log(line + "   (sim/paper ms)")
		}
	}
}
