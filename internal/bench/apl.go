package bench

import (
	"context"

	"tooleval/internal/apps"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// APLSeries is one application's execution-time curve for one tool on
// one platform — one line on Figures 5-8.
type APLSeries struct {
	App      string
	Platform string
	Tool     string
	Procs    []int
	Seconds  []float64
}

// ProcSweep returns the processor counts the paper sweeps on a platform
// (1..MaxProcs, restricted to counts the application accepts).
func ProcSweep(pf platform.Platform, app apps.App) []int {
	var out []int
	for p := 1; p <= pf.MaxProcs; p++ {
		if app.ValidProcs(p) {
			out = append(out, p)
		}
	}
	return out
}

// RunAPL executes one application across the processor sweep and returns
// its curve. Results are verified against the sequential reference at
// every point — a benchmark data point that computed the wrong answer is
// an error, not a number. Each sweep point is an independent cell: the
// runner fans them out and memoizes them by (platform, tool, app,
// procs, scale).
func (h *Harness) RunAPL(ctx context.Context, pf platform.Platform, toolName, appName string, procsList []int, scale float64) (APLSeries, error) {
	s := APLSeries{App: appName, Platform: pf.Key, Tool: toolName}
	if err := h.requirePort(pf, toolName); err != nil {
		return s, err
	}
	app, err := apps.Get(appName)
	if err != nil {
		return s, err
	}
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return s, err
	}
	sweep := make([]int, 0, len(procsList))
	for _, procs := range procsList {
		if app.ValidProcs(procs) {
			sweep = append(sweep, procs)
		}
	}
	times, err := runner.Collect(ctx, h.x, sweep, func(procs int) (float64, error) {
		key := runner.Key{Platform: pf.Key, Tool: toolName, Bench: APLBenchPrefix + appName, Procs: procs, Scale: scale}
		return h.x.Memo(ctx, key, func() (runner.CellResult, error) {
			return computeApp(pf, toolName, factory, appName, app, procs, scale)
		})
	})
	if err != nil {
		return s, err
	}
	s.Procs = sweep
	s.Seconds = times
	return s, nil
}
