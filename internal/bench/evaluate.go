package bench

import (
	"context"

	"tooleval/internal/core"
	"tooleval/internal/usability"
)

// Evaluate runs the complete multi-level methodology: it regenerates the
// TPL measurements (Table 3 and Figures 2-4), the APL measurements on
// the SUN/Ethernet platform at the given workload scale, combines them
// with the paper's ADL matrix, and returns the weighted evaluation.
//
// The five regeneration steps are independent, so they fan out through
// the runner like any other cells; every simulation they need is
// memoized, so an Evaluate following a `toolbench all` sweep re-uses
// the sweep's results and simulates nothing.
func (h *Harness) Evaluate(ctx context.Context, profile core.WeightProfile, scale float64) (_ *core.Evaluation, err error) {
	h.phaseStart(ctx, ExpReport)
	defer h.phaseDone(ctx, ExpReport, &err)
	var (
		t3               *Table3Result
		fig2, fig3, fig4 *FigureResult
		apl              []core.AppMeasurement
	)
	steps := append(h.tplSteps(ctx, 4, &t3, &fig2, &fig3, &fig4),
		func() (err error) { _, apl, err = h.APLFigure(ctx, ExpFig8, scale); return })
	if err := h.x.Map(ctx, len(steps), func(i int) error { return steps[i]() }); err != nil {
		return nil, err
	}
	tpl := t3.Measurements()
	addSeries := func(fig *FigureResult, primitive string) {
		for _, s := range fig.Series {
			if s.Tool == "p4-NYNET" {
				continue
			}
			m := core.PrimitiveMeasurement{Platform: s.Platform, Primitive: primitive, Tool: s.Tool}
			for _, p := range s.Points {
				m.Sizes = append(m.Sizes, int(p.X*1024))
				m.TimesMs = append(m.TimesMs, p.Y)
			}
			tpl = append(tpl, m)
		}
	}
	addSeries(fig2, "broadcast")
	addSeries(fig3, "ring")
	addSeries(fig4, "global sum")

	adl, err := usability.Matrix()
	if err != nil {
		return nil, err
	}
	m, err := core.New(profile)
	if err != nil {
		return nil, err
	}
	return m.Evaluate(tpl, apl, adl)
}
