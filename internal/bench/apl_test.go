package bench

import (
	"testing"

	"tooleval/internal/paperdata"
	"tooleval/internal/platform"
)

const aplTestScale = 0.25

func runSeries(t *testing.T, pfKey, tool, app string, procs []int) APLSeries {
	t.Helper()
	pf := getPlatform(t, pfKey)
	s, err := sharedH.RunAPL(bgCtx, pf, tool, app, procs, aplTestScale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFig5ComputeAppsScaleOnFDDI asserts the paper's ALPHA/FDDI shapes:
// JPEG and Monte Carlo drop steadily with processors.
func TestFig5ComputeAppsScaleOnFDDI(t *testing.T) {
	for _, app := range []string{"jpeg", "montecarlo"} {
		s := runSeries(t, "alpha-fddi", "p4", app, []int{1, 2, 4, 8})
		if !(s.Seconds[3] < s.Seconds[0]/3) {
			t.Fatalf("%s on FDDI: 8 procs (%f) should be well under a third of 1 proc (%f)",
				app, s.Seconds[3], s.Seconds[0])
		}
	}
}

// TestFig5FFTScalesOnSwitchedFDDI: the FFT's all-to-all scales on the
// switched fabric (Fig 5 decreases), unlike on Ethernet. This shape only
// emerges at the paper's grid size — a shrunken grid has too little
// compute to amortize the exchange — so the test runs at full scale.
func TestFig5FFTScalesOnSwitchedFDDI(t *testing.T) {
	pf := getPlatform(t, "alpha-fddi")
	s, err := sharedH.RunAPL(bgCtx, pf, "p4", "fft2d", []int{1, 8}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Seconds[1] < s.Seconds[0]) {
		t.Fatalf("fft2d on switched FDDI should speed up: 1p=%f 8p=%f", s.Seconds[0], s.Seconds[1])
	}
}

// TestFig8FFTDegradesOnEthernet: the same FFT slows down with processors
// on the shared 10 Mbit/s segment (Fig 8's flat-to-rising curves).
func TestFig8FFTDegradesOnEthernet(t *testing.T) {
	s := runSeries(t, "sun-ethernet", "p4", "fft2d", []int{1, 8})
	if !(s.Seconds[1] > s.Seconds[0]) {
		t.Fatalf("fft2d on Ethernet should slow down with procs: 1p=%f 8p=%f", s.Seconds[0], s.Seconds[1])
	}
}

// TestFig8SortInversionOnEthernet: PSRS gets slower with more processors
// on Ethernet — the record exchange swamps the sort savings (Fig 8).
func TestFig8SortInversionOnEthernet(t *testing.T) {
	s := runSeries(t, "sun-ethernet", "p4", "psrs", []int{1, 8})
	if !(s.Seconds[1] > s.Seconds[0]) {
		t.Fatalf("psrs on Ethernet should invert: 1p=%f 8p=%f", s.Seconds[0], s.Seconds[1])
	}
}

// TestPlatformOrdering: Alpha/FDDI is the fastest platform, the SP-1
// about half its speed, the SUN stations far behind (§3.3: "execution
// times are significantly higher on IBM-SP1 compared to ALPHA cluster").
func TestPlatformOrdering(t *testing.T) {
	jpegOn := func(pfKey string) float64 {
		s := runSeries(t, pfKey, "p4", "jpeg", []int{1})
		return s.Seconds[0]
	}
	alpha := jpegOn("alpha-fddi")
	sp1 := jpegOn("sp1-switch")
	eth := jpegOn("sun-ethernet")
	if !(alpha < sp1 && sp1 < eth) {
		t.Fatalf("platform ordering broken: alpha=%f sp1=%f ethernet=%f", alpha, sp1, eth)
	}
	ratio := sp1 / alpha
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("SP1/Alpha ratio = %.2f, paper shows roughly 2x", ratio)
	}
}

// TestFig7WANOutperformsEthernet: the paper's WAN-feasibility claim —
// the NYNET configuration beats the local Ethernet for the compute-bound
// applications.
func TestFig7WANOutperformsEthernet(t *testing.T) {
	for _, app := range []string{"jpeg", "montecarlo"} {
		wan := runSeries(t, "sun-atm-wan", "p4", app, []int{4})
		eth := runSeries(t, "sun-ethernet", "p4", app, []int{4})
		if !(wan.Seconds[0] < eth.Seconds[0]) {
			t.Fatalf("%s at 4 procs: NYNET (%f) should beat Ethernet (%f)", app, wan.Seconds[0], eth.Seconds[0])
		}
	}
}

// TestAPLToolOrderingCommHeavy: for the communication-heavy JPEG on
// Ethernet, p4's lean transport keeps it ahead of PVM and Express at 8
// processors (§3.3: "p4 implementation of JPEG compression ...
// understandably performs best").
func TestAPLToolOrderingCommHeavy(t *testing.T) {
	times := map[string]float64{}
	for _, tool := range []string{"p4", "pvm", "express"} {
		s := runSeries(t, "sun-ethernet", tool, "jpeg", []int{8})
		times[tool] = s.Seconds[0]
	}
	if !(times["p4"] <= times["pvm"] && times["p4"] <= times["express"]) {
		t.Fatalf("p4 should lead JPEG on Ethernet at 8 procs: %v", times)
	}
}

// TestAPLRejectsUnsupportedTool: Express has no NYNET port.
func TestAPLRejectsUnsupportedTool(t *testing.T) {
	pf := getPlatform(t, "sun-atm-wan")
	if _, err := sharedH.RunAPL(bgCtx, pf, "express", "jpeg", []int{1}, aplTestScale); err == nil {
		t.Fatal("express on NYNET should be rejected")
	}
}

// TestAPLFigureSpecsMatchPaper: each figure uses the paper's platform,
// sweep and tool set.
func TestAPLFigureSpecsMatchPaper(t *testing.T) {
	for _, spec := range paperdata.APLPlatforms {
		if _, err := platform.Get(spec.Platform); err != nil {
			t.Fatalf("%s: %v", spec.Figure, err)
		}
		if spec.Figure == "fig7" {
			if spec.MaxProcs != 4 || len(spec.Tools) != 2 {
				t.Fatalf("fig7 must sweep 1-4 procs with p4+pvm, got %+v", spec)
			}
		} else if spec.MaxProcs != 8 || len(spec.Tools) != 3 {
			t.Fatalf("%s must sweep 1-8 procs with all three tools, got %+v", spec.Figure, spec)
		}
	}
}

// TestProcSweepRespectsValidity: FFT skips processor counts that do not
// divide the grid.
func TestProcSweepRespectsValidity(t *testing.T) {
	pf := getPlatform(t, "alpha-fddi")
	s, err := sharedH.RunAPL(bgCtx, pf, "p4", "fft2d", []int{1, 2, 3, 4, 5, 6, 7, 8}, aplTestScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Procs {
		if 32%p != 0 { // scale 0.25 of 128 = 32
			t.Fatalf("fft2d ran on %d procs which does not divide 32", p)
		}
	}
}
