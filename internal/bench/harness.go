package bench

import (
	"context"
	"fmt"
	"sort"

	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// Harness is one evaluation session's benchmark engine: an execution
// backend (the parallelism bound plus memoization cache) and a tool
// registry. Every table/figure regeneration and every micro-benchmark
// is a Harness method, so concurrent harnesses are fully isolated — no
// shared mutable state exists anywhere in this package.
//
// All methods take a context first; cancellation and deadlines are
// observed between simulation cells (an individual cell always runs to
// completion — it is milliseconds of virtual-time simulation).
type Harness struct {
	x      runner.Executor
	custom map[string]mpt.Factory
	hooks  Hooks
}

// Hooks receives the harness's phase-level notifications: one
// PhaseStart/PhaseDone pair per table/figure regeneration (the Exp*
// ids, plus "report" for the full multi-level evaluation). Phases nest
// — Table4 reports its own phase and the Table 3 / Figure 2-4 phases it
// regenerates inside. Callbacks run on whichever goroutine drives the
// regeneration and must be safe for concurrent use; nil fields are
// skipped. ctx is the context of the regeneration call, so
// request-scoped carriers survive into the callback; hooks must not
// retain it.
type Hooks struct {
	PhaseStart func(ctx context.Context, id string)
	PhaseDone  func(ctx context.Context, id string, err error)
}

// NewHarness returns a Harness scheduling through x and resolving tool
// names from the built-in registry (p4, pvm, express).
func NewHarness(x runner.Executor) *Harness {
	return NewHarnessWithTools(x, nil)
}

// NewHarnessWithTools additionally resolves the given custom factories
// by name, ahead of the built-ins. Custom tools are considered ported
// to every platform: they are hypothetical designs under evaluation,
// not 1995 artifacts with a fixed port matrix.
func NewHarnessWithTools(x runner.Executor, custom map[string]mpt.Factory) *Harness {
	if x == nil {
		panic("bench: NewHarness(nil executor)")
	}
	return &Harness{x: x, custom: custom}
}

// SetHooks installs the phase observation callbacks. Call it before
// submitting work; the harness reads the hooks without locking.
func (h *Harness) SetHooks(hooks Hooks) { h.hooks = hooks }

// Executor exposes the harness's execution backend (for stats and
// direct Do/Map use by the session layer).
func (h *Harness) Executor() runner.Executor { return h.x }

// phaseStart reports a table/figure regeneration beginning.
func (h *Harness) phaseStart(ctx context.Context, id string) {
	if h.hooks.PhaseStart != nil {
		h.hooks.PhaseStart(ctx, id)
	}
}

// phaseDone reports a regeneration finishing; defer it with a pointer
// to the method's named error so the outcome travels with the event.
func (h *Harness) phaseDone(ctx context.Context, id string, errp *error) {
	if h.hooks.PhaseDone != nil {
		h.hooks.PhaseDone(ctx, id, *errp)
	}
}

// FactoryFor resolves a tool name: custom registrations first, then the
// built-in catalog.
func (h *Harness) FactoryFor(name string) (mpt.Factory, error) {
	if f, ok := h.custom[name]; ok {
		return f, nil
	}
	return tools.Factory(name)
}

// Supports reports whether the named tool can run on pf under this
// harness: custom tools run everywhere, built-ins follow the paper's
// port matrix (§3.1).
func (h *Harness) Supports(pf platform.Platform, name string) bool {
	if _, ok := h.custom[name]; ok {
		return true
	}
	return pf.Supports(name)
}

// ToolNames lists every tool this harness can resolve: the built-ins in
// catalog order, then custom registrations sorted by name.
func (h *Harness) ToolNames() []string {
	names := tools.Names()
	if len(h.custom) == 0 {
		return names
	}
	extra := make([]string, 0, len(h.custom))
	for name := range h.custom {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// requirePort is the shared "tool must be ported" gate for APL runs.
func (h *Harness) requirePort(pf platform.Platform, tool string) error {
	if !h.Supports(pf, tool) {
		return fmt.Errorf("bench: %s has no %s port (paper §3.1)", pf.Name, tool)
	}
	return nil
}
