package bench

import (
	"fmt"
	"sort"

	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
	"tooleval/internal/runner"
)

// Harness is one evaluation session's benchmark engine: a runner (the
// parallelism bound plus memoization cache) and a tool registry. Every
// table/figure regeneration and every micro-benchmark is a Harness
// method, so concurrent harnesses are fully isolated — no shared
// mutable state exists anywhere in this package.
//
// All methods take a context first; cancellation and deadlines are
// observed between simulation cells (an individual cell always runs to
// completion — it is milliseconds of virtual-time simulation).
type Harness struct {
	r      *runner.Runner
	custom map[string]mpt.Factory
}

// NewHarness returns a Harness scheduling through r and resolving tool
// names from the built-in registry (p4, pvm, express).
func NewHarness(r *runner.Runner) *Harness {
	return NewHarnessWithTools(r, nil)
}

// NewHarnessWithTools additionally resolves the given custom factories
// by name, ahead of the built-ins. Custom tools are considered ported
// to every platform: they are hypothetical designs under evaluation,
// not 1995 artifacts with a fixed port matrix.
func NewHarnessWithTools(r *runner.Runner, custom map[string]mpt.Factory) *Harness {
	if r == nil {
		panic("bench: NewHarness(nil runner)")
	}
	return &Harness{r: r, custom: custom}
}

// Runner exposes the harness scheduler (for stats and direct Do/Map
// use by the session layer).
func (h *Harness) Runner() *runner.Runner { return h.r }

// FactoryFor resolves a tool name: custom registrations first, then the
// built-in catalog.
func (h *Harness) FactoryFor(name string) (mpt.Factory, error) {
	if f, ok := h.custom[name]; ok {
		return f, nil
	}
	return tools.Factory(name)
}

// Supports reports whether the named tool can run on pf under this
// harness: custom tools run everywhere, built-ins follow the paper's
// port matrix (§3.1).
func (h *Harness) Supports(pf platform.Platform, name string) bool {
	if _, ok := h.custom[name]; ok {
		return true
	}
	return pf.Supports(name)
}

// ToolNames lists every tool this harness can resolve: the built-ins in
// catalog order, then custom registrations sorted by name.
func (h *Harness) ToolNames() []string {
	names := tools.Names()
	if len(h.custom) == 0 {
		return names
	}
	extra := make([]string, 0, len(h.custom))
	for name := range h.custom {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// requirePort is the shared "tool must be ported" gate for APL runs.
func (h *Harness) requirePort(pf platform.Platform, tool string) error {
	if !h.Supports(pf, tool) {
		return fmt.Errorf("bench: %s has no %s port (paper §3.1)", pf.Name, tool)
	}
	return nil
}
