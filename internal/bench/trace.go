package bench

import (
	"fmt"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

// TraceRun executes a small ping-pong under the named tool with the
// engine's execution trace enabled and returns the formatted event log —
// the reproduction's answer to the ADL debugging-support criterion ("the
// ability to trace the execution of the parallel application", §2.3).
// maxEvents caps the log (0 = everything).
func (h *Harness) TraceRun(pf platform.Platform, toolName string, size, maxEvents int) ([]string, error) {
	factory, err := h.FactoryFor(toolName)
	if err != nil {
		return nil, err
	}
	var events []string
	trace := func(ev sim.TraceEvent) {
		if maxEvents > 0 && len(events) >= maxEvents {
			return
		}
		line := fmt.Sprintf("%12.3fms  %-6s", ev.T.Milliseconds(), ev.Kind)
		if ev.Proc != "" {
			line += " " + ev.Proc
		}
		if ev.Detail != "" {
			line += "  (" + ev.Detail + ")"
		}
		events = append(events, line)
	}
	payload := testPayload(size)
	_, err = mpt.Run(pf, factory, mpt.RunConfig{Procs: 2, Trace: trace}, func(c *mpt.Ctx) (any, error) {
		const tag = 1
		if c.Rank() == 0 {
			if err := c.Comm.Send(1, tag, payload); err != nil {
				return nil, err
			}
			_, err := c.Comm.Recv(1, tag)
			return nil, err
		}
		msg, err := c.Comm.Recv(0, tag)
		if err != nil {
			return nil, err
		}
		return nil, c.Comm.Send(0, tag, msg.Data)
	})
	if err != nil {
		return events, err
	}
	return events, nil
}
