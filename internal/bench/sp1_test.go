package bench

import (
	"testing"
)

// The SP-1 appears twice in §3.1: "the evaluation ... is performed on
// the Allnode switch and the dedicated Ethernet". These tests cover the
// second configuration, which none of the published figures show.

func TestSP1SwitchBeatsItsEthernet(t *testing.T) {
	sw := getPlatform(t, "sp1-switch")
	eth := getPlatform(t, "sp1-ethernet")
	for _, tool := range []string{"p4", "pvm", "express"} {
		s, err := sharedH.PingPong(bgCtx, sw, tool, []int{64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		e, err := sharedH.PingPong(bgCtx, eth, tool, []int{64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if !(s[0] < e[0]/2) {
			t.Fatalf("%s: Allnode (%f ms) should crush the dedicated Ethernet (%f ms) at 64KB", tool, s[0], e[0])
		}
	}
}

func TestSP1DedicatedEthernetBeatsSharedForRings(t *testing.T) {
	// Dedicated (switched) segments avoid the shared-medium serialization:
	// the 4-station ring should be faster than on the shared SUN segment,
	// even net of the CPU difference, for the wire-bound p4 case.
	ded := getPlatform(t, "sp1-ethernet")
	shared := getPlatform(t, "sun-ethernet")
	d, err := sharedH.Ring(bgCtx, ded, "p4", 4, []int{32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sharedH.Ring(bgCtx, shared, "p4", 4, []int{32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !(d[0] < s[0]) {
		t.Fatalf("dedicated ring (%f ms) should beat shared ring (%f ms)", d[0], s[0])
	}
}

func TestSP1AppsRunOnBothFabrics(t *testing.T) {
	for _, pfKey := range []string{"sp1-switch", "sp1-ethernet"} {
		pf := getPlatform(t, pfKey)
		s, err := sharedH.RunAPL(bgCtx, pf, "pvm", "jpeg", []int{1, 4}, 0.15)
		if err != nil {
			t.Fatalf("%s: %v", pfKey, err)
		}
		if !(s.Seconds[1] < s.Seconds[0]) {
			t.Fatalf("%s: jpeg should speed up 1->4 procs: %v", pfKey, s.Seconds)
		}
	}
}
