package bench

import (
	"testing"

	"tooleval/internal/platform"
)

func getPlatform(t *testing.T, key string) platform.Platform {
	t.Helper()
	pf, err := platform.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// mean of a slice, for ranking comparisons.
func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestPingPongOrderingEthernet(t *testing.T) {
	pf := getPlatform(t, "sun-ethernet")
	sizes := []int{16 << 10, 64 << 10}
	res := map[string]float64{}
	for _, tool := range []string{"p4", "pvm", "express"} {
		ms, err := sharedH.PingPong(bgCtx, pf, tool, sizes)
		if err != nil {
			t.Fatal(err)
		}
		res[tool] = mean(ms)
	}
	// Table 4, SUN/Ethernet snd/rcv: p4 < PVM < Express.
	if !(res["p4"] < res["pvm"] && res["pvm"] < res["express"]) {
		t.Fatalf("snd/rcv ordering wrong: %v", res)
	}
}

func TestPingPongCrossoverOnATM(t *testing.T) {
	// The paper: "Express performs a little better than PVM for small
	// message sizes (upto 1 Kbytes) but PVM outperforms Express for large
	// messages" (ATM).
	pf := getPlatform(t, "sun-atm-lan")
	small, err := sharedH.PingPong(bgCtx, pf, "express", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	smallPVM, err := sharedH.PingPong(bgCtx, pf, "pvm", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !(small[0] < smallPVM[0]) {
		t.Fatalf("at 0KB Express (%f) should beat PVM (%f)", small[0], smallPVM[0])
	}
	large, err := sharedH.PingPong(bgCtx, pf, "express", []int{64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	largePVM, err := sharedH.PingPong(bgCtx, pf, "pvm", []int{64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !(large[0] > largePVM[0]) {
		t.Fatalf("at 64KB PVM (%f) should beat Express (%f)", largePVM[0], large[0])
	}
}

func TestBroadcastOrderingEthernet(t *testing.T) {
	// Table 4, SUN/Ethernet broadcast: p4 < PVM < Express ("p4 has the
	// best performance while Express has the worst", Fig 2).
	pf := getPlatform(t, "sun-ethernet")
	sizes := []int{16 << 10, 64 << 10}
	res := map[string]float64{}
	for _, tool := range []string{"p4", "pvm", "express"} {
		ms, err := sharedH.Broadcast(bgCtx, pf, tool, 4, sizes)
		if err != nil {
			t.Fatal(err)
		}
		res[tool] = mean(ms)
	}
	if !(res["p4"] < res["pvm"] && res["pvm"] < res["express"]) {
		t.Fatalf("broadcast ordering wrong: %v", res)
	}
}

func TestRingOrderingEthernet(t *testing.T) {
	// Table 4, SUN/Ethernet ring: p4 < Express < PVM — the inversion the
	// paper highlights ("Express outperforms PVM for ring communication").
	pf := getPlatform(t, "sun-ethernet")
	sizes := []int{32 << 10, 64 << 10}
	res := map[string]float64{}
	for _, tool := range []string{"p4", "pvm", "express"} {
		ms, err := sharedH.Ring(bgCtx, pf, tool, 4, sizes)
		if err != nil {
			t.Fatal(err)
		}
		res[tool] = mean(ms)
	}
	t.Logf("ring Ethernet 4 procs: %v", res)
	if !(res["p4"] < res["express"]) {
		t.Fatalf("ring: p4 (%f) should beat Express (%f)", res["p4"], res["express"])
	}
	if !(res["express"] < res["pvm"]) {
		t.Fatalf("ring: Express (%f) should beat PVM (%f): %v", res["express"], res["pvm"], res)
	}
}

func TestRingOrderingATMWAN(t *testing.T) {
	// Table 4, SUN/ATM ring: p4 < PVM.
	pf := getPlatform(t, "sun-atm-wan")
	sizes := []int{32 << 10, 64 << 10}
	p4ms, err := sharedH.Ring(bgCtx, pf, "p4", 4, sizes)
	if err != nil {
		t.Fatal(err)
	}
	pvmms, err := sharedH.Ring(bgCtx, pf, "pvm", 4, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !(mean(p4ms) < mean(pvmms)) {
		t.Fatalf("ring ATM: p4 (%f) should beat PVM (%f)", mean(p4ms), mean(pvmms))
	}
}

func TestGlobalSumOrderingEthernet(t *testing.T) {
	// Fig 4 / Table 4: p4 < Express; PVM not available.
	pf := getPlatform(t, "sun-ethernet")
	lens := []int{25_000, 100_000}
	p4ms, err := sharedH.GlobalSum(bgCtx, pf, "p4", 4, lens)
	if err != nil {
		t.Fatal(err)
	}
	exms, err := sharedH.GlobalSum(bgCtx, pf, "express", 4, lens)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("global sum p4=%v express=%v", p4ms, exms)
	if !(mean(p4ms) < mean(exms)) {
		t.Fatalf("global sum: p4 (%f) should beat Express (%f)", mean(p4ms), mean(exms))
	}
	if _, err := sharedH.GlobalSum(bgCtx, pf, "pvm", 4, []int{100}); err == nil {
		t.Fatal("PVM global sum should fail (Not Available in Table 1)")
	}
}

func TestATMBeatsEthernetLargeMessages(t *testing.T) {
	// "significant improvement in throughput when ATM networks are used".
	eth := getPlatform(t, "sun-ethernet")
	atm := getPlatform(t, "sun-atm-lan")
	for _, tool := range []string{"p4", "pvm", "express"} {
		e, err := sharedH.PingPong(bgCtx, eth, tool, []int{64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		a, err := sharedH.PingPong(bgCtx, atm, tool, []int{64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if !(a[0] < e[0]/1.5) {
			t.Fatalf("%s: ATM (%f ms) should be well under Ethernet (%f ms) at 64KB", tool, a[0], e[0])
		}
	}
}

func TestWANComparableToLAN(t *testing.T) {
	// "ATM WAN performance of send/receive primitives is similar to those
	// of ATM LAN" — the paper's WAN-feasibility claim.
	lan := getPlatform(t, "sun-atm-lan")
	wan := getPlatform(t, "sun-atm-wan")
	for _, tool := range []string{"p4", "pvm"} {
		l, err := sharedH.PingPong(bgCtx, lan, tool, []int{16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		w, err := sharedH.PingPong(bgCtx, wan, tool, []int{16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		ratio := w[0] / l[0]
		if ratio < 0.9 || ratio > 1.35 {
			t.Fatalf("%s: WAN/LAN ratio = %.2f, want ~1 (paper: similar)", tool, ratio)
		}
	}
}

func TestPingPongMonotonicInSize(t *testing.T) {
	for _, key := range []string{"sun-ethernet", "sun-atm-lan"} {
		pf := getPlatform(t, key)
		for _, tool := range []string{"p4", "pvm", "express"} {
			ms, err := sharedH.PingPong(bgCtx, pf, tool, StandardSizes())
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(ms); i++ {
				if ms[i] < ms[i-1] {
					t.Fatalf("%s/%s: time decreased from %f to %f at size index %d", key, tool, ms[i-1], ms[i], i)
				}
			}
		}
	}
}
