package bench

import (
	"strings"
	"testing"
)

func TestTraceRunProducesTimeline(t *testing.T) {
	pf := getPlatform(t, "sun-ethernet")
	events, err := sharedH.TraceRun(pf, "pvm", 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 20 {
		t.Fatalf("only %d trace events for a daemon-routed ping-pong", len(events))
	}
	joined := strings.Join(events, "\n")
	for _, want := range []string{"rank0", "rank1", "pvmd0", "park", "wake"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined[:min(len(joined), 800)])
		}
	}
}

func TestTraceRunCap(t *testing.T) {
	pf := getPlatform(t, "sun-ethernet")
	events, err := sharedH.TraceRun(pf, "p4", 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("cap ignored: %d events", len(events))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
