// Package knapsack implements the Branch and Bound application of the SU
// PDABS suite (Table 2, Simulation/Optimization): exact 0/1 knapsack by
// depth-first branch and bound with the fractional (greedy) upper bound.
// The top two decision levels are partitioned across processors — four
// subtrees dealt cyclically — and rank 0 reduces the incumbents.
package knapsack

import (
	"fmt"
	"sort"

	"tooleval/internal/mpt"
)

// OpsPerNode is the cost per search-tree node (bound evaluation).
const OpsPerNode = 25.0

// Config sizes the benchmark.
type Config struct {
	Items    int
	Capacity int
	Seed     int64
}

// DefaultConfig packs 40 items.
func DefaultConfig() Config { return Config{Items: 40, Capacity: 0, Seed: 97} }

// Scaled shrinks the item count.
func (c Config) Scaled(factor float64) Config {
	c.Items = int(float64(c.Items) * factor)
	if c.Items < 10 {
		c.Items = 10
	}
	return c
}

type item struct {
	value, weight int
}

// instance generates items (sorted by value density, as B&B requires)
// and a capacity at ~40% of total weight.
func instance(cfg Config) ([]item, int) {
	items := make([]item, cfg.Items)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 43
	next := func(mod uint64) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % mod)
	}
	totalW := 0
	for i := range items {
		items[i] = item{value: next(900) + 100, weight: next(90) + 10}
		totalW += items[i].weight
	}
	sort.SliceStable(items, func(a, b int) bool {
		return items[a].value*items[b].weight > items[b].value*items[a].weight
	})
	cap_ := cfg.Capacity
	if cap_ <= 0 {
		cap_ = totalW * 2 / 5
	}
	return items, cap_
}

// Result is the optimum.
type Result struct {
	Items     int
	BestValue int
	Weight    int
	Nodes     int64
}

type solver struct {
	items []item
	cap   int
	best  int
	nodes int64
}

// upperBound is the fractional relaxation from item k with remaining
// capacity.
func (s *solver) upperBound(k, value, room int) float64 {
	ub := float64(value)
	for ; k < len(s.items) && room > 0; k++ {
		it := s.items[k]
		if it.weight <= room {
			room -= it.weight
			ub += float64(it.value)
			continue
		}
		ub += float64(it.value) * float64(room) / float64(it.weight)
		break
	}
	return ub
}

func (s *solver) dfs(k, value, room int) {
	s.nodes++
	if value > s.best {
		s.best = value
	}
	if k == len(s.items) || room == 0 {
		return
	}
	if s.upperBound(k, value, room) <= float64(s.best) {
		return
	}
	if s.items[k].weight <= room {
		s.dfs(k+1, value+s.items[k].value, room-s.items[k].weight)
	}
	s.dfs(k+1, value, room)
}

// subtree fixes the first two take/leave decisions: subtree id b in
// 0..3 encodes (take item 0, take item 1) bits. It returns false if the
// subtree is infeasible.
func (s *solver) subtree(b int) bool {
	value, room := 0, s.cap
	for bit := 0; bit < 2 && bit < len(s.items); bit++ {
		if b&(1<<bit) != 0 {
			if s.items[bit].weight > room {
				return false
			}
			value += s.items[bit].value
			room -= s.items[bit].weight
		}
	}
	start := 2
	if len(s.items) < 2 {
		start = len(s.items)
	}
	s.dfs(start, value, room)
	return true
}

// Sequential solves the reference instance.
func Sequential(cfg Config) (*Result, error) {
	items, cap_ := instance(cfg)
	s := &solver{items: items, cap: cap_}
	for b := 0; b < 4; b++ {
		s.subtree(b)
	}
	return &Result{Items: cfg.Items, BestValue: s.best, Nodes: s.nodes}, nil
}

// Parallel partitions the four top-level subtrees cyclically and reduces
// the incumbents at rank 0. Tag: 160.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const tagRes = 160
	p, me := ctx.Size(), ctx.Rank()
	items, cap_ := instance(cfg)
	s := &solver{items: items, cap: cap_}
	for b := me; b < 4; b += p {
		s.subtree(b)
	}
	ctx.Charge(OpsPerNode * float64(s.nodes))

	enc := mpt.EncodeInt64s([]int64{int64(s.best), s.nodes})
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagRes, enc)
	}
	best, nodes := s.best, s.nodes
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagRes)
		if err != nil {
			return nil, fmt.Errorf("knapsack reduce from %d: %w", r, err)
		}
		v, err := mpt.DecodeInt64s(msg.Data)
		if err != nil {
			return nil, err
		}
		if int(v[0]) > best {
			best = int(v[0])
		}
		nodes += v[1]
	}
	return &Result{Items: cfg.Items, BestValue: best, Nodes: nodes}, nil
}

// VerifyAgainstSequential checks the partitioned search found the same
// optimum, and audits it against dynamic programming for small
// instances.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("knapsack: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.BestValue != seq.BestValue {
		return fmt.Errorf("knapsack: optimum %d != %d", par.BestValue, seq.BestValue)
	}
	items, cap_ := instance(cfg)
	if cfg.Items <= 48 {
		if dp := dpSolve(items, cap_); dp != par.BestValue {
			return fmt.Errorf("knapsack: B&B optimum %d != DP optimum %d", par.BestValue, dp)
		}
	}
	return nil
}

// dpSolve is the O(n·cap) dynamic program used as an independent oracle.
func dpSolve(items []item, cap_ int) int {
	dp := make([]int, cap_+1)
	for _, it := range items {
		for w := cap_; w >= it.weight; w-- {
			if v := dp[w-it.weight] + it.value; v > dp[w] {
				dp[w] = v
			}
		}
	}
	return dp[cap_]
}
