package knapsack

import (
	"testing"
	"testing/quick"
)

func TestSequentialMatchesDP(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{Items: 24, Seed: seed}
		res, err := Sequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		items, cap_ := instance(cfg)
		if dp := dpSolve(items, cap_); dp != res.BestValue {
			t.Fatalf("seed %d: B&B %d != DP %d", seed, res.BestValue, dp)
		}
	}
}

func TestUpperBoundAdmissible(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := Config{Items: 16, Seed: seed}
		items, cap_ := instance(cfg)
		s := &solver{items: items, cap: cap_}
		opt := dpSolve(items, cap_)
		// Root bound must dominate the optimum.
		return s.upperBound(0, 0, cap_) >= float64(opt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestItemsSortedByDensity(t *testing.T) {
	items, _ := instance(Config{Items: 30, Seed: 3})
	for i := 1; i < len(items); i++ {
		// v[i-1]/w[i-1] >= v[i]/w[i], cross-multiplied.
		if items[i-1].value*items[i].weight < items[i].value*items[i-1].weight {
			t.Fatalf("density order broken at %d", i)
		}
	}
}

func TestSubtreePartitionCoversSearch(t *testing.T) {
	cfg := Config{Items: 18, Seed: 5}
	items, cap_ := instance(cfg)
	whole := &solver{items: items, cap: cap_}
	for b := 0; b < 4; b++ {
		whole.subtree(b)
	}
	// Solving the four subtrees independently finds the same optimum.
	best := 0
	for b := 0; b < 4; b++ {
		s := &solver{items: items, cap: cap_}
		s.subtree(b)
		if s.best > best {
			best = s.best
		}
	}
	if best != whole.best {
		t.Fatalf("partitioned best %d != whole %d", best, whole.best)
	}
}

func TestBoundPrunes(t *testing.T) {
	cfg := Config{Items: 26, Seed: 7}
	items, cap_ := instance(cfg)
	s := &solver{items: items, cap: cap_}
	for b := 0; b < 4; b++ {
		s.subtree(b)
	}
	// Exhaustive tree would have ~2^26 nodes; pruning must slash that.
	if s.nodes > 1<<20 {
		t.Fatalf("B&B expanded %d nodes — bound not pruning", s.nodes)
	}
}
