package matmul

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultiplyIdentity(t *testing.T) {
	n := 8
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	b := synth(n, 3, 'B')
	c := multiplyRows(id, b, n, n)
	for i := range b {
		if math.Abs(c[i]-b[i]) > 1e-12 {
			t.Fatalf("I*B != B at %d: %g vs %g", i, c[i], b[i])
		}
	}
}

func TestMultiplyKnown(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := multiplyRows(a, b, 2, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestRowShareCoversAll(t *testing.T) {
	prop := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw)%200 + 1
		p := int(pRaw)%16 + 1
		covered := 0
		prevHi := 0
		for r := 0; r < p; r++ {
			lo, hi := rowShare(n, p, r)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	a, err := Sequential(Config{N: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(Config{N: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Trace != b.Trace {
		t.Fatal("sequential matmul not deterministic")
	}
	c, err := Sequential(Config{N: 32, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum == c.Checksum {
		t.Fatal("different seeds gave identical checksums")
	}
}

func TestSummarizeBandMatchesWhole(t *testing.T) {
	n := 16
	a := synth(n, 7, 'A')
	b := synth(n, 7, 'B')
	c := multiplyRows(a, b, n, n)
	whole := summarize(c, n)
	// Sum band summaries.
	var cs, tr, ma float64
	for lo := 0; lo < n; lo += 4 {
		band := summarizeBand(c[lo*n:(lo+4)*n], n, lo)
		cs += band.Checksum
		tr += band.Trace
		if band.MaxAbs > ma {
			ma = band.MaxAbs
		}
	}
	if math.Abs(cs-whole.Checksum) > 1e-9 || math.Abs(tr-whole.Trace) > 1e-9 || ma != whole.MaxAbs {
		t.Fatalf("band summaries (%g,%g,%g) != whole (%g,%g,%g)", cs, tr, ma, whole.Checksum, whole.Trace, whole.MaxAbs)
	}
}

func TestScaledFloor(t *testing.T) {
	if DefaultConfig().Scaled(0.0001).N < 16 {
		t.Fatal("scaled N below floor")
	}
}
