// Package matmul implements the Matrix Multiplication application of the
// SU PDABS suite (Table 2, Numerical Algorithms): C = A·B with A
// distributed in row bands and B broadcast, the standard 1995 host-node
// decomposition.
package matmul

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// OpsPerMAC is the cost of one multiply-accumulate in the inner loop
// (including index arithmetic on 1995 compilers).
const OpsPerMAC = 2.2

// Config sizes the benchmark.
type Config struct {
	N    int
	Seed int64
}

// DefaultConfig multiplies 256x256 matrices.
func DefaultConfig() Config { return Config{N: 256, Seed: 41} }

// Scaled shrinks the matrix edge.
func (c Config) Scaled(factor float64) Config {
	c.N = int(float64(c.N) * factor)
	if c.N < 16 {
		c.N = 16
	}
	return c
}

// Result carries the product's fingerprint for verification.
type Result struct {
	N        int
	Checksum float64 // sum of all elements
	Trace    float64 // sum of diagonal
	MaxAbs   float64
}

func synth(n int, seed int64, which byte) []float64 {
	out := make([]float64, n*n)
	s := uint64(seed)*0x9E3779B97F4A7C15 + uint64(which)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = float64(int64(s>>40))/float64(1<<23) - 0.5
	}
	return out
}

func multiplyRows(a []float64, b []float64, n, rows int) []float64 {
	c := make([]float64, rows*n)
	for i := 0; i < rows; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	return c
}

func summarize(c []float64, n int) *Result {
	r := &Result{N: n}
	for i, v := range c {
		r.Checksum += v
		if a := math.Abs(v); a > r.MaxAbs {
			r.MaxAbs = a
		}
		if i/n == i%n {
			r.Trace += v
		}
	}
	return r
}

// Sequential computes the reference product.
func Sequential(cfg Config) (*Result, error) {
	a := synth(cfg.N, cfg.Seed, 'A')
	b := synth(cfg.N, cfg.Seed, 'B')
	return summarize(multiplyRows(a, b, cfg.N, cfg.N), cfg.N), nil
}

// rowShare gives rank r's row range [lo, hi).
func rowShare(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel distributes A's row bands from rank 0, broadcasts B, and
// gathers partial checksums. Tags: 40 = A band, 41 = partial result.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagBand = 40
		tagPart = 41
	)
	n, p, me := cfg.N, ctx.Size(), ctx.Rank()
	lo, hi := rowShare(n, p, me)

	var myA []float64
	if me == 0 {
		a := synth(n, cfg.Seed, 'A')
		for r := 1; r < p; r++ {
			rlo, rhi := rowShare(n, p, r)
			if err := ctx.Comm.Send(r, tagBand, mpt.EncodeFloat64s(a[rlo*n:rhi*n])); err != nil {
				return nil, fmt.Errorf("matmul scatter to %d: %w", r, err)
			}
		}
		myA = a[lo*n : hi*n]
	} else {
		msg, err := ctx.Comm.Recv(0, tagBand)
		if err != nil {
			return nil, fmt.Errorf("matmul band recv: %w", err)
		}
		myA, err = mpt.DecodeFloat64s(msg.Data)
		if err != nil {
			return nil, err
		}
	}

	// Broadcast B to everyone (rank 0 generates it).
	var bEnc []byte
	if me == 0 {
		bEnc = mpt.EncodeFloat64s(synth(n, cfg.Seed, 'B'))
	}
	bEnc, err := ctx.Comm.Bcast(0, tagBand, bEnc)
	if err != nil {
		return nil, fmt.Errorf("matmul B bcast: %w", err)
	}
	b, err := mpt.DecodeFloat64s(bEnc)
	if err != nil {
		return nil, err
	}

	rows := hi - lo
	c := multiplyRows(myA, b, n, rows)
	ctx.Charge(OpsPerMAC * float64(rows) * float64(n) * float64(n))

	// Reduce the fingerprint: [checksum, trace, maxabs] per rank.
	part := summarizeBand(c, n, lo)
	enc := mpt.EncodeFloat64s([]float64{part.Checksum, part.Trace, part.MaxAbs})
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagPart, enc)
	}
	total := &Result{N: n, Checksum: part.Checksum, Trace: part.Trace, MaxAbs: part.MaxAbs}
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagPart)
		if err != nil {
			return nil, fmt.Errorf("matmul partial recv from %d: %w", r, err)
		}
		v, err := mpt.DecodeFloat64s(msg.Data)
		if err != nil {
			return nil, err
		}
		if len(v) != 3 {
			return nil, fmt.Errorf("matmul: bad partial from %d", r)
		}
		total.Checksum += v[0]
		total.Trace += v[1]
		if v[2] > total.MaxAbs {
			total.MaxAbs = v[2]
		}
	}
	return total, nil
}

// summarizeBand fingerprints rows [lo, lo+rows) of the global matrix.
func summarizeBand(c []float64, n, lo int) *Result {
	r := &Result{N: n}
	rows := len(c) / n
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			v := c[i*n+j]
			r.Checksum += v
			if a := math.Abs(v); a > r.MaxAbs {
				r.MaxAbs = a
			}
			if lo+i == j {
				r.Trace += v
			}
		}
	}
	return r
}

// VerifyAgainstSequential compares fingerprints within floating-point
// reassociation tolerance.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("matmul: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	tol := 1e-9 * float64(cfg.N*cfg.N)
	if math.Abs(par.Checksum-seq.Checksum) > tol {
		return fmt.Errorf("matmul: checksum %g != %g", par.Checksum, seq.Checksum)
	}
	if math.Abs(par.Trace-seq.Trace) > tol {
		return fmt.Errorf("matmul: trace %g != %g", par.Trace, seq.Trace)
	}
	if math.Abs(par.MaxAbs-seq.MaxAbs) > tol {
		return fmt.Errorf("matmul: maxabs %g != %g", par.MaxAbs, seq.MaxAbs)
	}
	return nil
}
