package spellcheck

import (
	"sort"
	"testing"
)

func TestDictionarySorted(t *testing.T) {
	d := Dictionary()
	if !sort.StringsAreSorted(d) {
		t.Fatal("dictionary must be sorted")
	}
	if len(d) < 40 {
		t.Fatalf("dictionary has %d words", len(d))
	}
}

func TestCheckFindsTypos(t *testing.T) {
	dict := dictSet()
	miss, typos := check([]string{"the", "teh", "tool", "tol"}, dict)
	if miss != 2 {
		t.Fatalf("miss = %d, want 2", miss)
	}
	if !typosHas(typos, "teh") || !typosHas(typos, "tol") {
		t.Fatalf("typos = %v", typos)
	}
}

func typosHas(m map[string]int, w string) bool { _, ok := m[w]; return ok }

func TestDocumentTypoRate(t *testing.T) {
	cfg := Config{Words: 50_000, Seed: 71}
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Misspelled) / float64(res.Checked)
	if rate < 0.005 || rate > 0.08 {
		t.Fatalf("typo rate %.3f outside plausible band", rate)
	}
	if len(res.UniqueTypos) == 0 {
		t.Fatal("no unique typos reported")
	}
	for _, typo := range res.UniqueTypos {
		if dictSet()[typo] {
			t.Fatalf("%q reported as typo but is in the dictionary", typo)
		}
	}
}

func TestSequentialDeterministic(t *testing.T) {
	a, err := Sequential(Config{Words: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(Config{Words: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Misspelled != b.Misspelled || len(a.UniqueTypos) != len(b.UniqueTypos) {
		t.Fatal("sequential spellcheck not deterministic")
	}
}
