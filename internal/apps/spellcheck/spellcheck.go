// Package spellcheck implements the Distributed Spell Checker application
// of the SU PDABS suite (Table 2, Utilities): the host broadcasts the
// dictionary, scatters document chunks on word boundaries, nodes check
// their chunk against a hash set, and the misspelled words are gathered —
// the §1 "system utilities" class.
package spellcheck

import (
	"fmt"
	"sort"
	"strings"

	"tooleval/internal/mpt"
)

// Cost model: per-word hash + probe, per-dictionary-byte table build.
const (
	OpsPerWord     = 12.0
	OpsPerDictByte = 2.0
)

// Config sizes the benchmark.
type Config struct {
	Words int
	Seed  int64
}

// DefaultConfig checks a 200K-word document.
func DefaultConfig() Config { return Config{Words: 200_000, Seed: 71} }

// Scaled shrinks the document.
func (c Config) Scaled(factor float64) Config {
	c.Words = int(float64(c.Words) * factor)
	if c.Words < 256 {
		c.Words = 256
	}
	return c
}

// Dictionary returns the known-word list (sorted).
func Dictionary() []string {
	return []string{
		"a", "algorithm", "all", "and", "application", "architecture",
		"benchmark", "broadcast", "cluster", "communication", "computing",
		"criteria", "data", "development", "distributed", "environment",
		"evaluation", "express", "fast", "for", "fourier", "heterogeneous",
		"high", "image", "in", "interface", "is", "jpeg", "level", "message",
		"methodology", "model", "network", "node", "of", "on", "parallel",
		"passing", "performance", "platform", "primitive", "processing",
		"processor", "pvm", "receive", "ring", "send", "software", "sorting",
		"sun", "synchronization", "syracuse", "system", "the", "to", "tool",
		"transform", "workstation",
	}
}

// Document generates a word stream with deterministic typos sprinkled in.
func Document(cfg Config) []string {
	dict := Dictionary()
	words := make([]string, cfg.Words)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 23
	for i := range words {
		s = s*6364136223846793005 + 1442695040888963407
		w := dict[s%uint64(len(dict))]
		if s%41 == 0 && len(w) > 2 {
			// Typo: swap two letters.
			b := []byte(w)
			b[0], b[1] = b[1], b[0]
			w = string(b)
		}
		words[i] = w
	}
	return words
}

// Result summarizes a check.
type Result struct {
	Checked     int
	Misspelled  int
	UniqueTypos []string // sorted unique misspellings
}

func check(words []string, dict map[string]bool) (miss int, typos map[string]int) {
	typos = map[string]int{}
	for _, w := range words {
		if !dict[w] {
			miss++
			typos[w]++
		}
	}
	return miss, typos
}

func dictSet() map[string]bool {
	m := make(map[string]bool, len(Dictionary()))
	for _, w := range Dictionary() {
		m[w] = true
	}
	return m
}

// Sequential checks the whole document.
func Sequential(cfg Config) (*Result, error) {
	words := Document(cfg)
	miss, typos := check(words, dictSet())
	return &Result{Checked: len(words), Misspelled: miss, UniqueTypos: sortedKeys(typos)}, nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func wordShare(total, p, r int) (lo, hi int) {
	base, rem := total/p, total%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel broadcasts the dictionary, scatters word chunks, and gathers
// per-chunk misspelling reports. Tags: 100 = dictionary, 101 = chunk,
// 102 = report.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagDict  = 100
		tagChunk = 101
		tagRep   = 102
	)
	p, me := ctx.Size(), ctx.Rank()

	// Dictionary broadcast (host loads it).
	var dictBlob []byte
	if me == 0 {
		dictBlob = []byte(strings.Join(Dictionary(), "\n"))
	}
	dictBlob, err := ctx.Comm.Bcast(0, tagDict, dictBlob)
	if err != nil {
		return nil, fmt.Errorf("spellcheck dict bcast: %w", err)
	}
	dict := map[string]bool{}
	for _, w := range strings.Split(string(dictBlob), "\n") {
		if w != "" {
			dict[w] = true
		}
	}
	ctx.Charge(OpsPerDictByte * float64(len(dictBlob)))

	// Scatter document chunks.
	var myWords []string
	if me == 0 {
		words := Document(cfg)
		for r := 1; r < p; r++ {
			lo, hi := wordShare(len(words), p, r)
			if err := ctx.Comm.Send(r, tagChunk, []byte(strings.Join(words[lo:hi], " "))); err != nil {
				return nil, fmt.Errorf("spellcheck scatter to %d: %w", r, err)
			}
		}
		lo, hi := wordShare(len(words), p, 0)
		myWords = words[lo:hi]
	} else {
		msg, err := ctx.Comm.Recv(0, tagChunk)
		if err != nil {
			return nil, fmt.Errorf("spellcheck chunk recv: %w", err)
		}
		if len(msg.Data) > 0 {
			myWords = strings.Split(string(msg.Data), " ")
		}
	}

	miss, typos := check(myWords, dict)
	ctx.Charge(OpsPerWord * float64(len(myWords)))

	report := fmt.Sprintf("%d %d %s", len(myWords), miss, strings.Join(sortedKeys(typos), " "))
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagRep, []byte(report))
	}
	total := &Result{Checked: len(myWords), Misspelled: miss}
	uniq := map[string]bool{}
	for t := range typos {
		uniq[t] = true
	}
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagRep)
		if err != nil {
			return nil, fmt.Errorf("spellcheck report from %d: %w", r, err)
		}
		parts := strings.Fields(string(msg.Data))
		if len(parts) < 2 {
			return nil, fmt.Errorf("spellcheck: malformed report from %d", r)
		}
		var checked, missed int
		if _, err := fmt.Sscan(parts[0], &checked); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscan(parts[1], &missed); err != nil {
			return nil, err
		}
		total.Checked += checked
		total.Misspelled += missed
		for _, t := range parts[2:] {
			uniq[t] = true
		}
	}
	for t := range uniq {
		total.UniqueTypos = append(total.UniqueTypos, t)
	}
	sort.Strings(total.UniqueTypos)
	return total, nil
}

// VerifyAgainstSequential checks the distributed check found exactly the
// sequential result.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("spellcheck: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Checked != seq.Checked {
		return fmt.Errorf("spellcheck: checked %d != %d", par.Checked, seq.Checked)
	}
	if par.Misspelled != seq.Misspelled {
		return fmt.Errorf("spellcheck: misspelled %d != %d", par.Misspelled, seq.Misspelled)
	}
	if len(par.UniqueTypos) != len(seq.UniqueTypos) {
		return fmt.Errorf("spellcheck: %d unique typos != %d", len(par.UniqueTypos), len(seq.UniqueTypos))
	}
	for i := range par.UniqueTypos {
		if par.UniqueTypos[i] != seq.UniqueTypos[i] {
			return fmt.Errorf("spellcheck: typo list diverges at %d: %q vs %q", i, par.UniqueTypos[i], seq.UniqueTypos[i])
		}
	}
	if seq.Misspelled == 0 {
		return fmt.Errorf("spellcheck: document contained no typos — workload degenerate")
	}
	return nil
}
