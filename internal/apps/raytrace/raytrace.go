// Package raytrace implements the Ray Tracing application of the SU
// PDABS suite (Table 2, Signal/Image Processing): a small but real
// recursive ray tracer (spheres + checkered ground plane, point light,
// hard shadows, one reflection bounce) rendered in scan-line bands — the
// embarrassingly parallel, compute-dominant end of the suite.
package raytrace

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// OpsPerRay is the cost per primary ray (intersections, shading, one
// bounce) on 1995 floating-point hardware.
const OpsPerRay = 900.0

type vec struct{ x, y, z float64 }

func (a vec) add(b vec) vec     { return vec{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec) sub(b vec) vec     { return vec{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec) mul(s float64) vec { return vec{a.x * s, a.y * s, a.z * s} }
func (a vec) dot(b vec) float64 { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec) norm() vec         { return a.mul(1 / math.Sqrt(a.dot(a))) }

type sphere struct {
	center vec
	radius float64
	color  vec
	refl   float64
}

type scene struct {
	spheres []sphere
	light   vec
}

func defaultScene() scene {
	return scene{
		spheres: []sphere{
			{center: vec{0, 1, 3}, radius: 1, color: vec{0.9, 0.2, 0.2}, refl: 0.4},
			{center: vec{-1.8, 0.6, 2.2}, radius: 0.6, color: vec{0.2, 0.9, 0.2}, refl: 0.2},
			{center: vec{1.6, 0.8, 4.2}, radius: 0.8, color: vec{0.2, 0.3, 0.9}, refl: 0.5},
		},
		light: vec{-3, 5, -2},
	}
}

func (s scene) hitSphere(orig, dir vec) (t float64, idx int) {
	t, idx = math.Inf(1), -1
	for i, sp := range s.spheres {
		oc := orig.sub(sp.center)
		b := oc.dot(dir)
		c := oc.dot(oc) - sp.radius*sp.radius
		disc := b*b - c
		if disc < 0 {
			continue
		}
		root := -b - math.Sqrt(disc)
		if root > 1e-4 && root < t {
			t, idx = root, i
		}
	}
	return t, idx
}

// trace returns the color of a ray with up to depth reflection bounces.
func (s scene) trace(orig, dir vec, depth int) vec {
	tSphere, idx := s.hitSphere(orig, dir)
	// Ground plane y = 0.
	tPlane := math.Inf(1)
	if dir.y < -1e-6 {
		tPlane = -orig.y / dir.y
	}
	if math.IsInf(tSphere, 1) && math.IsInf(tPlane, 1) {
		// Sky gradient.
		f := 0.5 * (dir.y + 1)
		return vec{0.6 + 0.2*f, 0.7 + 0.2*f, 1.0}
	}
	var point, normal, base vec
	var refl float64
	if tSphere < tPlane {
		sp := s.spheres[idx]
		point = orig.add(dir.mul(tSphere))
		normal = point.sub(sp.center).norm()
		base, refl = sp.color, sp.refl
	} else {
		point = orig.add(dir.mul(tPlane))
		normal = vec{0, 1, 0}
		// Checkerboard.
		if (int(math.Floor(point.x))+int(math.Floor(point.z)))%2 == 0 {
			base = vec{0.85, 0.85, 0.85}
		} else {
			base = vec{0.2, 0.2, 0.2}
		}
		refl = 0.1
	}
	// Hard shadow.
	toLight := s.light.sub(point).norm()
	lit := 1.0
	if t, _ := s.hitSphere(point.add(normal.mul(1e-4)), toLight); !math.IsInf(t, 1) {
		lit = 0.25
	}
	diffuse := math.Max(0, normal.dot(toLight)) * lit
	col := base.mul(0.15 + 0.85*diffuse)
	if depth > 0 && refl > 0 {
		rd := dir.sub(normal.mul(2 * dir.dot(normal)))
		rc := s.trace(point.add(normal.mul(1e-4)), rd, depth-1)
		col = col.mul(1 - refl).add(rc.mul(refl))
	}
	return col
}

// Config sizes the benchmark.
type Config struct {
	W, H int
}

// DefaultConfig renders 320x240.
func DefaultConfig() Config { return Config{W: 320, H: 240} }

// Scaled shrinks the frame.
func (c Config) Scaled(factor float64) Config {
	c.W = int(float64(c.W) * factor)
	c.H = int(float64(c.H) * factor)
	if c.W < 32 {
		c.W = 32
	}
	if c.H < 24 {
		c.H = 24
	}
	return c
}

// renderRows renders scan lines [y0, y1) into an RGB byte buffer.
func renderRows(cfg Config, y0, y1 int) []byte {
	sc := defaultScene()
	cam := vec{0, 1.2, -4}
	out := make([]byte, 0, (y1-y0)*cfg.W*3)
	for y := y0; y < y1; y++ {
		for x := 0; x < cfg.W; x++ {
			u := (float64(x)/float64(cfg.W)*2 - 1) * float64(cfg.W) / float64(cfg.H)
			v := 1 - float64(y)/float64(cfg.H)*2
			dir := vec{u, v, 2}.norm()
			c := sc.trace(cam, dir, 2)
			out = append(out, clampByte(c.x), clampByte(c.y), clampByte(c.z))
		}
	}
	return out
}

func clampByte(v float64) byte {
	v *= 255
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Result fingerprints a frame.
type Result struct {
	W, H     int
	Hash     uint64
	MeanLuma float64
}

func summarize(cfg Config, frame []byte) *Result {
	r := &Result{W: cfg.W, H: cfg.H}
	hash := uint64(14695981039346656037)
	var luma float64
	for _, b := range frame {
		hash ^= uint64(b)
		hash *= 1099511628211
		luma += float64(b)
	}
	r.Hash = hash
	r.MeanLuma = luma / float64(len(frame))
	return r
}

// Sequential renders the reference frame.
func Sequential(cfg Config) (*Result, error) {
	return summarize(cfg, renderRows(cfg, 0, cfg.H)), nil
}

func rowShare(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel renders scan-line bands per rank and gathers them on rank 0
// (no scatter needed: the scene is procedural). Tag: 130 = band.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const tagBand = 130
	p, me := ctx.Size(), ctx.Rank()
	lo, hi := rowShare(cfg.H, p, me)
	band := renderRows(cfg, lo, hi)
	ctx.Charge(OpsPerRay * float64(cfg.W) * float64(hi-lo))

	if me != 0 {
		return nil, ctx.Comm.Send(0, tagBand, band)
	}
	frame := make([]byte, cfg.W*cfg.H*3)
	copy(frame[lo*cfg.W*3:], band)
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagBand)
		if err != nil {
			return nil, fmt.Errorf("raytrace gather from %d: %w", r, err)
		}
		rlo, rhi := rowShare(cfg.H, p, r)
		if len(msg.Data) != (rhi-rlo)*cfg.W*3 {
			return nil, fmt.Errorf("raytrace: band %d has %d bytes, want %d", r, len(msg.Data), (rhi-rlo)*cfg.W*3)
		}
		copy(frame[rlo*cfg.W*3:], msg.Data)
	}
	return summarize(cfg, frame), nil
}

// VerifyAgainstSequential demands a bit-identical frame.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("raytrace: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Hash != seq.Hash {
		return fmt.Errorf("raytrace: frame hash mismatch (parallel luma %.2f, sequential %.2f)", par.MeanLuma, seq.MeanLuma)
	}
	if par.MeanLuma < 10 {
		return fmt.Errorf("raytrace: frame suspiciously dark (luma %.2f)", par.MeanLuma)
	}
	return nil
}
