package raytrace

import (
	"math"
	"testing"
)

func TestVecOps(t *testing.T) {
	a := vec{1, 2, 3}
	b := vec{4, 5, 6}
	if got := a.dot(b); got != 32 {
		t.Fatalf("dot = %g, want 32", got)
	}
	n := vec{3, 4, 0}.norm()
	if math.Abs(n.dot(n)-1) > 1e-12 {
		t.Fatalf("norm not unit: %v", n)
	}
}

func TestSphereIntersection(t *testing.T) {
	sc := scene{spheres: []sphere{{center: vec{0, 0, 5}, radius: 1}}}
	tHit, idx := sc.hitSphere(vec{0, 0, 0}, vec{0, 0, 1})
	if idx != 0 {
		t.Fatal("ray through center must hit")
	}
	if math.Abs(tHit-4) > 1e-9 {
		t.Fatalf("t = %g, want 4", tHit)
	}
	// Miss.
	if _, idx := sc.hitSphere(vec{0, 0, 0}, vec{0, 1, 0}); idx != -1 {
		t.Fatal("perpendicular ray must miss")
	}
}

func TestSkyVsGround(t *testing.T) {
	sc := defaultScene()
	sky := sc.trace(vec{0, 1, -4}, vec{0, 1, 0}.norm(), 0)
	if sky.z < 0.8 {
		t.Fatalf("upward ray should be sky blue, got %+v", sky)
	}
	ground := sc.trace(vec{10, 1, 10}, vec{0, -1, 0}, 0)
	if math.IsNaN(ground.x) {
		t.Fatal("ground shading produced NaN")
	}
}

func TestRenderRowsAdditive(t *testing.T) {
	cfg := Config{W: 40, H: 32}
	whole := renderRows(cfg, 0, cfg.H)
	var parts []byte
	for y := 0; y < cfg.H; y += 8 {
		parts = append(parts, renderRows(cfg, y, y+8)...)
	}
	if len(whole) != len(parts) {
		t.Fatalf("lengths differ: %d vs %d", len(whole), len(parts))
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("band rendering differs at byte %d", i)
		}
	}
}

func TestFrameHasContrast(t *testing.T) {
	cfg := Config{W: 64, H: 48}
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLuma < 40 || res.MeanLuma > 230 {
		t.Fatalf("mean luma %.1f implausible", res.MeanLuma)
	}
}

func TestReflectionChangesImage(t *testing.T) {
	cfg := Config{W: 48, H: 36}
	sc := defaultScene()
	cam := vec{0, 1.2, -4}
	dir := vec{0.05, -0.02, 2}.norm()
	noBounce := sc.trace(cam, dir, 0)
	bounce := sc.trace(cam, dir, 2)
	_ = cfg
	if noBounce == bounce {
		t.Skip("ray missed all reflective surfaces; geometry changed?")
	}
}
