// Package vigenere implements the Cryptology application of the SU PDABS
// suite (Table 2, Numerical Algorithms): breaking a Vigenère cipher by
// exhaustive key-length analysis — index of coincidence to find the
// period, then per-position chi-squared frequency analysis, with the key
// space partitioned across processors.
package vigenere

import (
	"fmt"
	"math"
	"strings"

	"tooleval/internal/mpt"
)

// Cost model: per ciphertext byte per candidate key length.
const OpsPerByteLen = 8.0

// english letter frequencies (A..Z), for chi-squared scoring.
var english = [26]float64{
	8.17, 1.49, 2.78, 4.25, 12.70, 2.23, 2.02, 6.09, 6.97, 0.15, 0.77,
	4.03, 2.41, 6.75, 7.51, 1.93, 0.10, 5.99, 6.33, 9.06, 2.76, 0.98,
	2.36, 0.15, 1.97, 0.07,
}

// Config sizes the benchmark.
type Config struct {
	PlainWords int
	Key        string
	MaxKeyLen  int
	Seed       int64
}

// DefaultConfig encrypts ~40K words under an 8-letter key and searches
// key lengths up to 16.
func DefaultConfig() Config {
	return Config{PlainWords: 40_000, Key: "SYRACUSE", MaxKeyLen: 16, Seed: 73}
}

// Scaled shrinks the plaintext.
func (c Config) Scaled(factor float64) Config {
	c.PlainWords = int(float64(c.PlainWords) * factor)
	if c.PlainWords < 512 {
		c.PlainWords = 512
	}
	return c
}

// Result is the cryptanalysis outcome.
type Result struct {
	KeyLen       int
	RecoveredKey string
	Score        float64 // best chi-squared (lower is better)
}

// Plaintext generates deterministic English-like text (letters only).
func Plaintext(cfg Config) []byte {
	words := []string{"the", "evaluation", "of", "software", "tools", "for",
		"parallel", "and", "distributed", "computing", "requires", "a",
		"methodology", "that", "covers", "performance", "development",
		"interface", "criteria", "on", "several", "platforms"}
	var b strings.Builder
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 29
	for i := 0; i < cfg.PlainWords; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		b.WriteString(strings.ToUpper(words[s%uint64(len(words))]))
	}
	return []byte(b.String())
}

// Encrypt applies the Vigenère cipher (A..Z only).
func Encrypt(plain []byte, key string) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("vigenere: empty key")
	}
	out := make([]byte, len(plain))
	for i, c := range plain {
		if c < 'A' || c > 'Z' {
			return nil, fmt.Errorf("vigenere: plaintext byte %q not in A-Z", c)
		}
		k := key[i%len(key)] - 'A'
		out[i] = 'A' + (c-'A'+k)%26
	}
	return out, nil
}

// Decrypt reverses Encrypt.
func Decrypt(cipher []byte, key string) []byte {
	out := make([]byte, len(cipher))
	for i, c := range cipher {
		k := key[i%len(key)] - 'A'
		out[i] = 'A' + (c-'A'+26-k)%26
	}
	return out
}

// crackLength recovers the best key of exactly length l and its summed
// chi-squared score.
func crackLength(cipher []byte, l int) (string, float64) {
	key := make([]byte, l)
	var total float64
	for pos := 0; pos < l; pos++ {
		var counts [26]int
		n := 0
		for i := pos; i < len(cipher); i += l {
			counts[cipher[i]-'A']++
			n++
		}
		bestShift, bestChi := 0, 0.0
		for shift := 0; shift < 26; shift++ {
			var chi float64
			for c := 0; c < 26; c++ {
				observed := float64(counts[(c+shift)%26])
				expected := english[c] / 100 * float64(n)
				d := observed - expected
				if expected > 0 {
					chi += d * d / expected
				}
			}
			if shift == 0 || chi < bestChi {
				bestShift, bestChi = shift, chi
			}
		}
		key[pos] = 'A' + byte(bestShift)
		// Normalize by the column length: raw chi-squared grows linearly
		// with the sample count, which would otherwise bias the search
		// toward longer key lengths (fewer samples per column).
		if n > 0 {
			total += bestChi / float64(n)
		}
	}
	return string(key), total / float64(l)
}

// candidate is one key-length hypothesis.
type candidate struct {
	l     int
	key   string
	score float64
}

// selectBest picks the shortest key length whose score is within 15% of
// the global minimum — a multiple of the true period fits the frequencies
// just as well, so raw argmin overfits to 2x or 4x the real key.
func selectBest(byLen map[int]candidate, maxLen int) (*Result, error) {
	globalMin := math.Inf(1)
	for l := 1; l <= maxLen; l++ {
		c, ok := byLen[l]
		if !ok {
			return nil, fmt.Errorf("vigenere: no candidate for length %d", l)
		}
		if c.score < globalMin {
			globalMin = c.score
		}
	}
	for l := 1; l <= maxLen; l++ {
		if c := byLen[l]; c.score <= globalMin*1.15 {
			return &Result{KeyLen: c.l, RecoveredKey: c.key, Score: c.score}, nil
		}
	}
	return nil, fmt.Errorf("vigenere: selection failed")
}

// Sequential tries every key length and selects with selectBest.
func Sequential(cfg Config) (*Result, error) {
	plain := Plaintext(cfg)
	cipher, err := Encrypt(plain, cfg.Key)
	if err != nil {
		return nil, err
	}
	byLen := make(map[int]candidate, cfg.MaxKeyLen)
	for l := 1; l <= cfg.MaxKeyLen; l++ {
		key, score := crackLength(cipher, l)
		byLen[l] = candidate{l: l, key: key, score: score}
	}
	return selectBest(byLen, cfg.MaxKeyLen)
}

// Parallel partitions the key-length space across ranks; each rank
// cracks its lengths and rank 0 picks the winner with the same
// shorter-key preference. Tags: 110 = cipher broadcast, 111 = candidate.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagCipher = 110
		tagCand   = 111
	)
	p, me := ctx.Size(), ctx.Rank()

	var cipher []byte
	if me == 0 {
		plain := Plaintext(cfg)
		var err error
		cipher, err = Encrypt(plain, cfg.Key)
		if err != nil {
			return nil, err
		}
	}
	cipher, err := ctx.Comm.Bcast(0, tagCipher, cipher)
	if err != nil {
		return nil, fmt.Errorf("vigenere cipher bcast: %w", err)
	}

	// Rank r tries lengths r+1, r+1+p, ... — cyclic so the load stays
	// roughly even (longer keys cost slightly more).
	var report []string
	work := 0
	for l := me + 1; l <= cfg.MaxKeyLen; l += p {
		key, score := crackLength(cipher, l)
		report = append(report, fmt.Sprintf("%d %s %g", l, key, score))
		work += len(cipher)
	}
	ctx.Charge(OpsPerByteLen * float64(work))

	if me != 0 {
		return nil, ctx.Comm.Send(0, tagCand, []byte(strings.Join(report, "\n")))
	}
	byLen := map[int]candidate{}
	parse := func(blob string) error {
		for _, line := range strings.Split(blob, "\n") {
			if line == "" {
				continue
			}
			var c candidate
			if _, err := fmt.Sscan(line, &c.l, &c.key, &c.score); err != nil {
				return fmt.Errorf("vigenere: bad candidate %q: %w", line, err)
			}
			byLen[c.l] = c
		}
		return nil
	}
	if err := parse(strings.Join(report, "\n")); err != nil {
		return nil, err
	}
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagCand)
		if err != nil {
			return nil, fmt.Errorf("vigenere candidates from %d: %w", r, err)
		}
		if err := parse(string(msg.Data)); err != nil {
			return nil, err
		}
	}
	return selectBest(byLen, cfg.MaxKeyLen)
}

// VerifyAgainstSequential checks the attack recovered the true key and
// matches the sequential analysis.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("vigenere: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.KeyLen != seq.KeyLen || par.RecoveredKey != seq.RecoveredKey {
		return fmt.Errorf("vigenere: parallel (%d,%s) != sequential (%d,%s)",
			par.KeyLen, par.RecoveredKey, seq.KeyLen, seq.RecoveredKey)
	}
	if par.RecoveredKey != cfg.Key {
		return fmt.Errorf("vigenere: attack failed: recovered %q, true key %q", par.RecoveredKey, cfg.Key)
	}
	// Round-trip audit with the recovered key.
	plain := Plaintext(cfg)
	cipher, err := Encrypt(plain, cfg.Key)
	if err != nil {
		return err
	}
	if string(Decrypt(cipher, par.RecoveredKey)) != string(plain) {
		return fmt.Errorf("vigenere: decryption with recovered key diverges")
	}
	return nil
}
