package vigenere

import (
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	plain := []byte("ATTACKATDAWN")
	cipher, err := Encrypt(plain, "LEMON")
	if err != nil {
		t.Fatal(err)
	}
	// Classic test vector: ATTACKATDAWN + LEMON = LXFOPVEFRNHR.
	if string(cipher) != "LXFOPVEFRNHR" {
		t.Fatalf("cipher = %s, want LXFOPVEFRNHR", cipher)
	}
	if string(Decrypt(cipher, "LEMON")) != string(plain) {
		t.Fatal("decrypt failed")
	}
}

func TestEncryptValidation(t *testing.T) {
	if _, err := Encrypt([]byte("HELLO"), ""); err == nil {
		t.Fatal("empty key should error")
	}
	if _, err := Encrypt([]byte("hello"), "KEY"); err == nil {
		t.Fatal("lowercase plaintext should error")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	prop := func(raw []byte, keyRaw []byte) bool {
		if len(keyRaw) == 0 {
			keyRaw = []byte{3}
		}
		plain := make([]byte, len(raw))
		for i, b := range raw {
			plain[i] = 'A' + b%26
		}
		key := make([]byte, len(keyRaw)%12+1)
		for i := range key {
			key[i] = 'A' + keyRaw[i%len(keyRaw)]%26
		}
		cipher, err := Encrypt(plain, string(key))
		if err != nil {
			return false
		}
		return string(Decrypt(cipher, string(key))) == string(plain)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrackRecoversKey(t *testing.T) {
	cfg := Config{PlainWords: 5000, Key: "NPAC", MaxKeyLen: 10, Seed: 2}
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredKey != "NPAC" {
		t.Fatalf("recovered %q, want NPAC (len %d, score %g)", res.RecoveredKey, res.KeyLen, res.Score)
	}
}

func TestCrackPrefersShortestPeriod(t *testing.T) {
	cfg := Config{PlainWords: 8000, Key: "AB", MaxKeyLen: 12, Seed: 5}
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyLen != 2 {
		t.Fatalf("key length %d, want 2 (multiples must not win)", res.KeyLen)
	}
}

func TestCrackLengthExactShift(t *testing.T) {
	// Single-letter key = Caesar cipher; crackLength(1) must find it.
	cfg := Config{PlainWords: 3000, Key: "Q", MaxKeyLen: 4, Seed: 7}
	plain := Plaintext(cfg)
	cipher, err := Encrypt(plain, "Q")
	if err != nil {
		t.Fatal(err)
	}
	key, _ := crackLength(cipher, 1)
	if key != "Q" {
		t.Fatalf("Caesar crack got %q, want Q", key)
	}
}
