package tsp

import (
	"math"
	"testing"
)

func TestNearestNeighbourValid(t *testing.T) {
	d := instance(Config{Cities: 10, Seed: 1})
	cost, tour := nearestNeighbour(d)
	if len(tour) != 10 {
		t.Fatalf("tour length %d", len(tour))
	}
	seen := map[int]bool{}
	for _, c := range tour {
		if seen[c] {
			t.Fatalf("city %d visited twice", c)
		}
		seen[c] = true
	}
	if cost <= 0 {
		t.Fatalf("cost %g", cost)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Cities: 9, Seed: seed}
		d := instance(cfg)
		greedy, _ := nearestNeighbour(d)
		res, err := Sequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost > greedy+1e-9 {
			t.Fatalf("seed %d: optimal %g worse than greedy %g", seed, res.BestCost, greedy)
		}
	}
}

func TestBruteForceAgreementSmall(t *testing.T) {
	cfg := Config{Cities: 7, Seed: 11}
	d := instance(cfg)
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check over all permutations of 6 remaining cities.
	perm := []int{1, 2, 3, 4, 5, 6}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			cost := d[0][perm[0]]
			for i := 0; i+1 < len(perm); i++ {
				cost += d[perm[i]][perm[i+1]]
			}
			cost += d[perm[len(perm)-1]][0]
			if cost < best {
				best = cost
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if math.Abs(res.BestCost-best) > 1e-9 {
		t.Fatalf("B&B %g != brute force %g", res.BestCost, best)
	}
}

func TestBoundIsAdmissible(t *testing.T) {
	cfg := Config{Cities: 8, Seed: 3}
	d := instance(cfg)
	s := newSolver(d, math.Inf(1))
	s.visited[0] = true
	s.path = append(s.path, 0)
	// The bound from the start must not exceed the optimal cost.
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b := s.bound(0, 0); b > res.BestCost+1e-9 {
		t.Fatalf("root bound %g exceeds optimum %g — inadmissible", b, res.BestCost)
	}
}

func TestCanonicalOrientation(t *testing.T) {
	a := canonical([]int{0, 3, 1, 2})
	b := canonical([]int{0, 2, 1, 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reversed tours not canonicalized: %v vs %v", a, b)
		}
	}
}

func TestScaledBounds(t *testing.T) {
	if DefaultConfig().Scaled(0.01).Cities < 6 {
		t.Fatal("scaled below floor")
	}
	if DefaultConfig().Scaled(10).Cities > DefaultConfig().Cities {
		t.Fatal("scale must not grow past the default (exact solver)")
	}
}
