// Package tsp implements the Traveling Salesman / Branch and Bound
// applications of the SU PDABS suite (Table 2, Simulation/Optimization):
// exact TSP by depth-first branch and bound with a nearest-neighbour
// initial incumbent. The first-level branches are partitioned cyclically
// across processors and incumbents are exchanged at the end — the static
// work-distribution scheme 1995 codes used, whose "data dependent"
// balance the paper calls out for this application class.
package tsp

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// OpsPerNode is the cost per branch-and-bound tree node expansion.
const OpsPerNode = 40.0

// Config sizes the benchmark.
type Config struct {
	Cities int
	Seed   int64
}

// DefaultConfig solves a 13-city instance exactly.
func DefaultConfig() Config { return Config{Cities: 13, Seed: 83} }

// Scaled shrinks the instance.
func (c Config) Scaled(factor float64) Config {
	n := int(float64(c.Cities) * factor)
	if n < 6 {
		n = 6
	}
	if n > c.Cities {
		n = c.Cities
	}
	c.Cities = n
	return c
}

// Result is the optimal tour.
type Result struct {
	Cities    int
	BestCost  float64
	Tour      []int
	NodesOpen int64 // tree nodes expanded (work measure)
}

// instance generates city coordinates and the distance matrix.
func instance(cfg Config) [][]float64 {
	n := cfg.Cities
	xs := make([]float64, n)
	ys := make([]float64, n)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 37
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		xs[i] = float64(s>>11) / float64(1<<53) * 100
		s = s*6364136223846793005 + 1442695040888963407
		ys[i] = float64(s>>11) / float64(1<<53) * 100
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		}
	}
	return d
}

// nearestNeighbour builds the initial incumbent.
func nearestNeighbour(d [][]float64) (float64, []int) {
	n := len(d)
	visited := make([]bool, n)
	tour := make([]int, 0, n)
	cur := 0
	visited[0] = true
	tour = append(tour, 0)
	cost := 0.0
	for len(tour) < n {
		best, bd := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !visited[j] && d[cur][j] < bd {
				best, bd = j, d[cur][j]
			}
		}
		visited[best] = true
		tour = append(tour, best)
		cost += bd
		cur = best
	}
	cost += d[cur][0]
	return cost, tour
}

type solver struct {
	d        [][]float64
	n        int
	best     float64
	bestTour []int
	visited  []bool
	path     []int
	nodes    int64
	// minEdge[i] is the cheapest edge out of i, for the lower bound.
	minEdge []float64
}

func newSolver(d [][]float64, incumbent float64) *solver {
	n := len(d)
	s := &solver{d: d, n: n, best: incumbent, visited: make([]bool, n), minEdge: make([]float64, n)}
	for i := 0; i < n; i++ {
		m := math.Inf(1)
		for j := 0; j < n; j++ {
			if i != j && d[i][j] < m {
				m = d[i][j]
			}
		}
		s.minEdge[i] = m
	}
	return s
}

// bound is a lower bound on completing the current path: cost so far plus
// the cheapest outgoing edge of every unvisited city and of the current
// city.
func (s *solver) bound(cost float64, cur int) float64 {
	b := cost + s.minEdge[cur]
	for j := 0; j < s.n; j++ {
		if !s.visited[j] {
			b += s.minEdge[j]
		}
	}
	return b
}

func (s *solver) dfs(cur int, cost float64) {
	s.nodes++
	if len(s.path) == s.n {
		total := cost + s.d[cur][0]
		if total < s.best {
			s.best = total
			s.bestTour = append(s.bestTour[:0], s.path...)
		}
		return
	}
	if s.bound(cost, cur) >= s.best {
		return
	}
	for j := 1; j < s.n; j++ {
		if s.visited[j] {
			continue
		}
		s.visited[j] = true
		s.path = append(s.path, j)
		s.dfs(j, cost+s.d[cur][j])
		s.path = s.path[:len(s.path)-1]
		s.visited[j] = false
	}
}

// solveBranch explores only tours whose first hop is 0 -> first.
func (s *solver) solveBranch(first int) {
	s.visited[0] = true
	s.visited[first] = true
	s.path = append(s.path[:0], 0, first)
	s.dfs(first, s.d[0][first])
	s.visited[first] = false
	s.path = s.path[:1]
}

// Sequential solves the instance exactly.
func Sequential(cfg Config) (*Result, error) {
	d := instance(cfg)
	inc, incTour := nearestNeighbour(d)
	s := newSolver(d, inc)
	s.bestTour = append([]int(nil), incTour...)
	s.visited[0] = true
	s.path = append(s.path, 0)
	for first := 1; first < s.n; first++ {
		s.solveBranch(first)
	}
	return &Result{Cities: cfg.Cities, BestCost: s.best, Tour: canonical(s.bestTour), NodesOpen: s.nodes}, nil
}

// canonical orients a tour so comparisons are direction-independent.
func canonical(tour []int) []int {
	if len(tour) < 3 {
		return append([]int(nil), tour...)
	}
	out := append([]int(nil), tour...)
	if out[1] > out[len(out)-1] {
		for i, j := 1, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// Parallel partitions first-hop branches cyclically; every rank solves
// its branches against the shared nearest-neighbour incumbent and rank 0
// reduces the winners. Tags: 140 = result.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const tagRes = 140
	p, me := ctx.Size(), ctx.Rank()
	d := instance(cfg) // deterministic on every rank
	inc, incTour := nearestNeighbour(d)

	s := newSolver(d, inc)
	s.bestTour = append([]int(nil), incTour...)
	s.visited[0] = true
	s.path = append(s.path, 0)
	for first := 1 + me; first < s.n; first += p {
		s.solveBranch(first)
	}
	ctx.Charge(OpsPerNode * float64(s.nodes))

	// Encode [cost, nodes, tour...].
	enc := make([]float64, 0, 2+len(s.bestTour))
	enc = append(enc, s.best, float64(s.nodes))
	for _, c := range s.bestTour {
		enc = append(enc, float64(c))
	}
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagRes, mpt.EncodeFloat64s(enc))
	}
	best, bestTour, nodes := s.best, s.bestTour, s.nodes
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagRes)
		if err != nil {
			return nil, fmt.Errorf("tsp reduce from %d: %w", r, err)
		}
		v, err := mpt.DecodeFloat64s(msg.Data)
		if err != nil {
			return nil, err
		}
		if len(v) < 2 {
			return nil, fmt.Errorf("tsp: malformed result from %d", r)
		}
		nodes += int64(v[1])
		if v[0] < best {
			best = v[0]
			bestTour = bestTour[:0]
			for _, c := range v[2:] {
				bestTour = append(bestTour, int(c))
			}
		}
	}
	return &Result{Cities: cfg.Cities, BestCost: best, Tour: canonical(bestTour), NodesOpen: nodes}, nil
}

// VerifyAgainstSequential checks optimality: identical cost (the branch
// partition cannot change the optimum) and a valid tour of that cost.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("tsp: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if math.Abs(par.BestCost-seq.BestCost) > 1e-9 {
		return fmt.Errorf("tsp: cost %f != %f", par.BestCost, seq.BestCost)
	}
	// Audit the tour: a permutation visiting every city with the claimed
	// cost.
	d := instance(cfg)
	if len(par.Tour) != cfg.Cities {
		return fmt.Errorf("tsp: tour has %d cities, want %d", len(par.Tour), cfg.Cities)
	}
	seen := make([]bool, cfg.Cities)
	cost := 0.0
	for i, c := range par.Tour {
		if c < 0 || c >= cfg.Cities || seen[c] {
			return fmt.Errorf("tsp: invalid tour %v", par.Tour)
		}
		seen[c] = true
		cost += d[c][par.Tour[(i+1)%len(par.Tour)]]
	}
	if math.Abs(cost-par.BestCost) > 1e-9 {
		return fmt.Errorf("tsp: tour cost %f != claimed %f", cost, par.BestCost)
	}
	return nil
}
