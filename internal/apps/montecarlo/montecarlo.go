// Package montecarlo implements the Monte Carlo integration application
// of the paper's benchmark suite (§3.3: "compute intensive and
// communicates only short messages ... benchmarks the computing capacity
// of the platform and the latency impact of the tool").
//
// The integral evaluated is ∫₀¹ 4/(1+x²) dx = π, the classic
// embarrassingly parallel estimator: every rank draws its share of
// samples from its own deterministic stream and a single global
// summation combines the partial means.
package montecarlo

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// OpsPerSample is the cost of one sample: RNG advance, the function
// evaluation (divide), and the accumulation — calibrated against the
// single-processor Monte Carlo times of Figures 5-8.
const OpsPerSample = 45.0

// Config sizes the benchmark.
type Config struct {
	Samples int
	Seed    int64
}

// DefaultConfig is the paper-scale workload (~1.7 s on the Alpha at one
// processor).
func DefaultConfig() Config { return Config{Samples: 2_000_000, Seed: 23} }

// Scaled shrinks the sample count.
func (c Config) Scaled(factor float64) Config {
	c.Samples = int(float64(c.Samples) * factor)
	if c.Samples < 1000 {
		c.Samples = 1000
	}
	return c
}

// Result is the integral estimate.
type Result struct {
	Estimate float64
	Samples  int
}

// f is the integrand: ∫₀¹ f = π.
func f(x float64) float64 { return 4 / (1 + x*x) }

// stream is a small deterministic linear congruential generator. Each
// rank owns an independent stream; the sequential reference reproduces
// the union of all rank streams so the parallel estimate is bit-equal.
type stream struct{ s uint64 }

func newStream(seed int64, rank int) *stream {
	return &stream{s: uint64(seed)*0x9E3779B97F4A7C15 + uint64(rank+1)*0xBF58476D1CE4E5B9}
}

func (r *stream) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}

// shares splits samples across p ranks (first ranks absorb remainders).
func shares(samples, p int) []int {
	out := make([]int, p)
	base, rem := samples/p, samples%p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// partial computes one rank's sum of f over its share.
func partial(cfg Config, rank, p int) (sum float64, n int) {
	n = shares(cfg.Samples, p)[rank]
	rng := newStream(cfg.Seed, rank)
	for i := 0; i < n; i++ {
		sum += f(rng.next())
	}
	return sum, n
}

// SequentialP computes the reference estimate with the same stream
// partitioning a p-rank run uses, so parallel results can be compared
// exactly.
func SequentialP(cfg Config, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("montecarlo: p must be >= 1, got %d", p)
	}
	var sum float64
	for r := 0; r < p; r++ {
		s, _ := partial(cfg, r, p)
		sum += s
	}
	return &Result{Estimate: sum / float64(cfg.Samples), Samples: cfg.Samples}, nil
}

// Sequential is the single-stream reference (the 1-processor APL point).
func Sequential(cfg Config) (*Result, error) { return SequentialP(cfg, 1) }

// Parallel computes the estimate across all ranks: local sampling, then
// one global summation (the tool's global operation where available, the
// manual gather fallback for PVM — exactly the paper's situation).
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	sum, n := partial(cfg, ctx.Rank(), ctx.Size())
	ctx.Charge(OpsPerSample * float64(n))
	total, err := mpt.SumFloat64(ctx.Comm, []float64{sum})
	if err != nil {
		return nil, fmt.Errorf("montecarlo reduce: %w", err)
	}
	if ctx.Rank() != 0 {
		return nil, nil
	}
	return &Result{Estimate: total[0] / float64(cfg.Samples), Samples: cfg.Samples}, nil
}

// VerifyAgainstSequential checks the estimate: bit-equal to the
// like-partitioned reference and statistically consistent with π.
func VerifyAgainstSequential(cfg Config, p int, par *Result) error {
	if par == nil {
		return fmt.Errorf("montecarlo: nil parallel result")
	}
	seq, err := SequentialP(cfg, p)
	if err != nil {
		return err
	}
	if math.Abs(par.Estimate-seq.Estimate) > 1e-9 {
		return fmt.Errorf("montecarlo: parallel %v != sequential %v", par.Estimate, seq.Estimate)
	}
	// 4/(1+x²) on [0,1] has variance ≈ 0.413; allow 6 sigma.
	sigma := math.Sqrt(0.413 / float64(cfg.Samples))
	if math.Abs(par.Estimate-math.Pi) > 6*sigma+1e-6 {
		return fmt.Errorf("montecarlo: estimate %v implausibly far from π (σ=%g)", par.Estimate, sigma)
	}
	return nil
}
