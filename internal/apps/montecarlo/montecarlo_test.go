package montecarlo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSequentialEstimatesPi(t *testing.T) {
	res, err := Sequential(Config{Samples: 500_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-math.Pi) > 0.01 {
		t.Fatalf("estimate %f too far from pi", res.Estimate)
	}
}

func TestSequentialPPartitionInvariance(t *testing.T) {
	// The p-partitioned reference must use all the samples and stay near
	// pi for any p.
	cfg := Config{Samples: 200_000, Seed: 2}
	for p := 1; p <= 8; p++ {
		res, err := SequentialP(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Estimate-math.Pi) > 0.02 {
			t.Fatalf("p=%d: estimate %f too far from pi", p, res.Estimate)
		}
	}
}

func TestSharesSumToTotal(t *testing.T) {
	prop := func(samplesRaw uint32, pRaw uint8) bool {
		samples := int(samplesRaw%1_000_000) + 1
		p := int(pRaw%16) + 1
		sh := shares(samples, p)
		sum := 0
		for _, s := range sh {
			sum += s
			if s < 0 {
				return false
			}
		}
		// Shares differ by at most one.
		for i := 1; i < len(sh); i++ {
			d := sh[0] - sh[i]
			if d < 0 || d > 1 {
				return false
			}
		}
		return sum == samples
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterministicAndRankIndependent(t *testing.T) {
	a := newStream(7, 0)
	b := newStream(7, 0)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same stream diverged")
		}
	}
	c := newStream(7, 1)
	same := 0
	d := newStream(7, 0)
	for i := 0; i < 100; i++ {
		if c.next() == d.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("rank streams overlap: %d/100 identical draws", same)
	}
}

func TestStreamInUnitInterval(t *testing.T) {
	r := newStream(3, 2)
	for i := 0; i < 10_000; i++ {
		v := r.next()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %f outside [0,1)", v)
		}
	}
}

func TestScaledFloor(t *testing.T) {
	c := DefaultConfig().Scaled(0.0000001)
	if c.Samples < 1000 {
		t.Fatalf("scaled samples %d below floor", c.Samples)
	}
}

func TestVerifyCatchesDivergence(t *testing.T) {
	cfg := Config{Samples: 100_000, Seed: 4}
	seq, err := SequentialP(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Result{Estimate: seq.Estimate + 0.5, Samples: cfg.Samples}
	if err := VerifyAgainstSequential(cfg, 2, bad); err == nil {
		t.Fatal("verification should reject a diverged estimate")
	}
	good := &Result{Estimate: seq.Estimate, Samples: cfg.Samples}
	if err := VerifyAgainstSequential(cfg, 2, good); err != nil {
		t.Fatalf("verification rejected the correct estimate: %v", err)
	}
}
