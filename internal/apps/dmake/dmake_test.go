package dmake

import (
	"testing"
)

func TestProjectIsDAG(t *testing.T) {
	ts := Project(Config{Targets: 100, Seed: 1})
	for _, tgt := range ts {
		for _, d := range tgt.Deps {
			if d >= tgt.ID {
				t.Fatalf("target %d depends on %d (not earlier) — cycle risk", tgt.ID, d)
			}
		}
		if tgt.Size < 1 {
			t.Fatalf("target %d has size %d", tgt.ID, tgt.Size)
		}
	}
}

func TestProjectHasParallelism(t *testing.T) {
	ts := Project(Config{Targets: 100, Seed: 1})
	roots := 0
	for _, tgt := range ts {
		if len(tgt.Deps) == 0 {
			roots++
		}
	}
	if roots < 2 {
		t.Fatalf("only %d roots — no parallelism to exploit", roots)
	}
}

func TestArtifactDependsOnDeps(t *testing.T) {
	t1 := Target{ID: 5, Deps: []int{1}, Size: 3}
	a := artifact(t1, map[int]uint64{1: 111}, 7)
	b := artifact(t1, map[int]uint64{1: 222}, 7)
	if a == b {
		t.Fatal("artifact must change when a dependency's artifact changes")
	}
	c := artifact(t1, map[int]uint64{1: 111}, 7)
	if a != c {
		t.Fatal("artifact not deterministic")
	}
}

func TestSequentialDeterministic(t *testing.T) {
	a, err := Sequential(Config{Targets: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(Config{Targets: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalHash != b.FinalHash || a.Built != 50 {
		t.Fatalf("sequential build unstable: %+v vs %+v", a, b)
	}
}

func TestDifferentSeedsDifferentBuilds(t *testing.T) {
	a, err := Sequential(Config{Targets: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(Config{Targets: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalHash == b.FinalHash {
		t.Fatal("different projects hashed identically")
	}
}
