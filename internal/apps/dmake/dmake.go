// Package dmake implements the Distributed Make application of the SU
// PDABS suite (Table 2, Utilities): a master schedules a dependency DAG
// of build tasks over worker processors, dispatching targets as their
// prerequisites finish — the suite's dynamic load-balancing
// representative (§2.3 calls dynamic balancing "critical for applications
// with widely varying run-time load distributions").
package dmake

import (
	"fmt"
	"sort"

	"tooleval/internal/mpt"
)

// OpsPerSizeUnit is the build cost per unit of target size ("compiling").
const OpsPerSizeUnit = 120.0

// Config sizes the benchmark.
type Config struct {
	Targets int
	Seed    int64
}

// DefaultConfig builds a 160-target project.
func DefaultConfig() Config { return Config{Targets: 160, Seed: 89} }

// Scaled shrinks the project.
func (c Config) Scaled(factor float64) Config {
	c.Targets = int(float64(c.Targets) * factor)
	if c.Targets < 12 {
		c.Targets = 12
	}
	return c
}

// Target is one node of the build graph.
type Target struct {
	ID   int
	Deps []int
	Size int // work units; varies widely (the load-balancing stressor)
}

// Project generates a deterministic DAG: target i may depend on up to 3
// earlier targets; sizes follow a heavy-ish tail.
func Project(cfg Config) []Target {
	ts := make([]Target, cfg.Targets)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 41
	next := func(mod uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % mod
	}
	for i := range ts {
		ts[i].ID = i
		if i > 0 {
			nd := int(next(4)) // 0..3 deps
			seen := map[int]bool{}
			for k := 0; k < nd; k++ {
				d := int(next(uint64(i)))
				if !seen[d] {
					seen[d] = true
					ts[i].Deps = append(ts[i].Deps, d)
				}
			}
			sort.Ints(ts[i].Deps)
		}
		size := int(next(20)) + 1
		if next(10) == 0 {
			size *= 8 // occasional heavyweight target
		}
		ts[i].Size = size
	}
	return ts
}

// artifact computes the deterministic build product of a target given
// its dependencies' artifacts — real work the checker re-derives.
func artifact(t Target, deps map[int]uint64, seed int64) uint64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(t.ID)*0xBF58476D1CE4E5B9
	for _, d := range t.Deps {
		h ^= deps[d]
		h *= 1099511628211
	}
	for k := 0; k < t.Size; k++ {
		h = h*6364136223846793005 + 1442695040888963407
	}
	return h
}

// Result summarizes a build.
type Result struct {
	Built     int
	FinalHash uint64 // combined artifact hash
	MaxQueue  int    // peak ready-queue depth at the master (diagnostic)
}

func combine(artifacts map[int]uint64, n int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < n; i++ {
		h ^= artifacts[i]
		h *= 1099511628211
	}
	return h
}

// Sequential builds in topological (index) order.
func Sequential(cfg Config) (*Result, error) {
	ts := Project(cfg)
	arts := make(map[int]uint64, len(ts))
	for _, t := range ts {
		arts[t.ID] = artifact(t, arts, cfg.Seed)
	}
	return &Result{Built: len(ts), FinalHash: combine(arts, len(ts))}, nil
}

// Protocol tags and opcodes.
const (
	tagCtl = 150 // master -> worker: task assignment or stop
	tagRes = 151 // worker -> master: artifact
	tagBs  = 152 // master -> worker: dependency artifacts

	opStop = -1
)

// Parallel runs the master/worker build. Rank 0 is the master and also
// builds when all workers are busy (p == 1 degenerates to sequential).
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	if ctx.Size() == 1 {
		res, err := Sequential(cfg)
		if err != nil {
			return nil, err
		}
		for _, t := range Project(cfg) {
			ctx.Charge(OpsPerSizeUnit * float64(t.Size))
		}
		return res, nil
	}
	if ctx.Rank() == 0 {
		return master(ctx, cfg)
	}
	return nil, worker(ctx, cfg)
}

func master(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	ts := Project(cfg)
	n := len(ts)
	arts := make(map[int]uint64, n)
	pending := make(map[int]int, n) // unmet dep count
	dependents := make(map[int][]int)
	var ready []int
	for _, t := range ts {
		pending[t.ID] = len(t.Deps)
		for _, d := range t.Deps {
			dependents[d] = append(dependents[d], t.ID)
		}
		if len(t.Deps) == 0 {
			ready = append(ready, t.ID)
		}
	}
	idle := make([]int, 0, ctx.Size()-1)
	for w := 1; w < ctx.Size(); w++ {
		idle = append(idle, w)
	}
	busy := 0
	built := 0
	maxQueue := len(ready)

	assign := func(w, id int) error {
		t := ts[id]
		// Ship the task id plus the artifacts of its dependencies.
		payload := make([]int64, 0, 2+2*len(t.Deps))
		payload = append(payload, int64(id), int64(len(t.Deps)))
		for _, d := range t.Deps {
			payload = append(payload, int64(d), int64(arts[d]))
		}
		return ctx.Comm.Send(w, tagCtl, mpt.EncodeInt64s(payload))
	}
	for built < n {
		if len(ready) > maxQueue {
			maxQueue = len(ready)
		}
		// Hand out work while both queues are non-empty.
		for len(ready) > 0 && len(idle) > 0 {
			id := ready[0]
			ready = ready[1:]
			w := idle[0]
			idle = idle[1:]
			if err := assign(w, id); err != nil {
				return nil, fmt.Errorf("dmake assign %d to %d: %w", id, w, err)
			}
			busy++
		}
		var id int
		var art uint64
		switch {
		case busy > 0:
			// Wait for a completion.
			msg, err := ctx.Comm.Recv(mpt.AnySource, tagRes)
			if err != nil {
				return nil, fmt.Errorf("dmake result: %w", err)
			}
			v, err := mpt.DecodeInt64s(msg.Data)
			if err != nil {
				return nil, err
			}
			id, art = int(v[0]), uint64(v[1])
			idle = append(idle, msg.Src)
			busy--
		case len(ready) > 0:
			// No workers busy and none idle (p==1 handled earlier); the
			// master builds one itself.
			id = ready[0]
			ready = ready[1:]
			t := ts[id]
			art = artifact(t, arts, cfg.Seed)
			ctx.Charge(OpsPerSizeUnit * float64(t.Size))
		default:
			return nil, fmt.Errorf("dmake: stalled with %d/%d built — dependency cycle?", built, n)
		}
		arts[id] = art
		built++
		for _, dep := range dependents[id] {
			pending[dep]--
			if pending[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	// Stop the workers.
	for w := 1; w < ctx.Size(); w++ {
		if err := ctx.Comm.Send(w, tagCtl, mpt.EncodeInt64s([]int64{opStop})); err != nil {
			return nil, fmt.Errorf("dmake stop %d: %w", w, err)
		}
	}
	return &Result{Built: built, FinalHash: combine(arts, n), MaxQueue: maxQueue}, nil
}

func worker(ctx *mpt.Ctx, cfg Config) error {
	ts := Project(cfg)
	for {
		msg, err := ctx.Comm.Recv(0, tagCtl)
		if err != nil {
			return fmt.Errorf("dmake worker recv: %w", err)
		}
		v, err := mpt.DecodeInt64s(msg.Data)
		if err != nil {
			return err
		}
		if v[0] == opStop {
			return nil
		}
		id := int(v[0])
		nd := int(v[1])
		deps := make(map[int]uint64, nd)
		for k := 0; k < nd; k++ {
			deps[int(v[2+2*k])] = uint64(v[3+2*k])
		}
		t := ts[id]
		art := artifact(t, deps, cfg.Seed)
		ctx.Charge(OpsPerSizeUnit * float64(t.Size))
		if err := ctx.Comm.Send(0, tagRes, mpt.EncodeInt64s([]int64{int64(id), int64(art)})); err != nil {
			return fmt.Errorf("dmake worker send: %w", err)
		}
	}
}

// VerifyAgainstSequential checks the distributed build produced exactly
// the sequential artifacts.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("dmake: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Built != seq.Built {
		return fmt.Errorf("dmake: built %d != %d", par.Built, seq.Built)
	}
	if par.FinalHash != seq.FinalHash {
		return fmt.Errorf("dmake: artifact hash mismatch — a target built with wrong inputs")
	}
	return nil
}
