// Package apps is the registry of the SU PDABS benchmark applications
// (Table 2 of the paper). The four applications benchmarked in §3.3 —
// JPEG compression, 2D-FFT, Monte Carlo integration, and Parallel
// Sorting by Regular Sampling — are first-class: each has a sequential
// reference, a parallel SPMD implementation over the mpt.Comm interface,
// and a verifier that checks the distributed run against the reference.
package apps

import (
	"fmt"

	"tooleval/internal/apps/dmake"
	"tooleval/internal/apps/fft"
	"tooleval/internal/apps/hough"
	"tooleval/internal/apps/jpeg"
	"tooleval/internal/apps/knapsack"
	"tooleval/internal/apps/linsolve"
	"tooleval/internal/apps/lu"
	"tooleval/internal/apps/lzw"
	"tooleval/internal/apps/matmul"
	"tooleval/internal/apps/montecarlo"
	"tooleval/internal/apps/nbody"
	"tooleval/internal/apps/psearch"
	"tooleval/internal/apps/psrs"
	"tooleval/internal/apps/raytrace"
	"tooleval/internal/apps/spellcheck"
	"tooleval/internal/apps/tsp"
	"tooleval/internal/apps/vigenere"
	"tooleval/internal/mpt"
)

// App is one runnable benchmark application.
type App struct {
	// Name is the registry key ("jpeg", "fft2d", ...); Class is the
	// Table 2 category.
	Name  string
	Class string
	// Description is the one-line summary used in reports.
	Description string
	// Run executes the parallel implementation on one rank; rank 0
	// returns the result value. scale shrinks the default workload
	// (1.0 = paper scale).
	Run func(ctx *mpt.Ctx, scale float64) (any, error)
	// Verify checks a rank-0 result (for procs ranks at the given scale)
	// against the sequential reference.
	Verify func(value any, procs int, scale float64) error
	// MinProcsDivisor constrains processor counts (FFT needs N%p == 0).
	ValidProcs func(p int) bool
}

// Registry returns the benchmarked applications in the paper's order.
func Registry() []App {
	return []App{
		{
			Name:        "jpeg",
			Class:       "Signal/Image Processing",
			Description: "JPEG compression of a 512x512 image (DCT + quantization + Huffman), host-node model",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				res, err := jpeg.Parallel(ctx, jpeg.DefaultConfig().Scaled(scale))
				return res, err
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*jpeg.Result)
				if !ok {
					return fmt.Errorf("jpeg: unexpected result type %T", v)
				}
				return jpeg.VerifyAgainstSequential(jpeg.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: func(p int) bool { return p >= 1 },
		},
		{
			Name:        "fft2d",
			Class:       "Numerical Algorithms",
			Description: "2D complex FFT (rows, transpose, columns) with all-to-all exchange",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				res, err := fft.Parallel(ctx, fft.DefaultConfig().Scaled(scale))
				return res, err
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*fft.Result)
				if !ok {
					return fmt.Errorf("fft2d: unexpected result type %T", v)
				}
				return fft.VerifyAgainstSequential(fft.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: func(p int) bool {
				n := fft.DefaultConfig().N
				return p >= 1 && p <= n && n%p == 0
			},
		},
		{
			Name:        "montecarlo",
			Class:       "Simulation/Optimization",
			Description: "Monte Carlo integration of 4/(1+x^2) over [0,1] (estimates pi)",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				res, err := montecarlo.Parallel(ctx, montecarlo.DefaultConfig().Scaled(scale))
				return res, err
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*montecarlo.Result)
				if !ok {
					return fmt.Errorf("montecarlo: unexpected result type %T", v)
				}
				return montecarlo.VerifyAgainstSequential(montecarlo.DefaultConfig().Scaled(scale), procs, res)
			},
			ValidProcs: func(p int) bool { return p >= 1 },
		},
		{
			Name:        "psrs",
			Class:       "Utilities",
			Description: "Parallel Sorting by Regular Sampling over 400K keys",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				res, err := psrs.Parallel(ctx, psrs.DefaultConfig().Scaled(scale))
				return res, err
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*psrs.Result)
				if !ok {
					return fmt.Errorf("psrs: unexpected result type %T", v)
				}
				return psrs.VerifyAgainstSequential(psrs.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: func(p int) bool { return p >= 1 },
		},
	}
}

// anyProcs accepts any processor count.
func anyProcs(p int) bool { return p >= 1 }

// ExtendedRegistry returns the full SU PDABS suite: the four benchmarked
// applications plus the rest of Table 2 (matrix multiplication, LU
// decomposition, linear equation solver, N-body, traveling salesman /
// branch and bound, Hough transform, ray tracing, data compression,
// cryptology, parallel search, distributed spell checker, distributed
// make). The paper's ADA-compiler entry is the one member not built: a
// compiler front-end adds no message-passing behaviour the distributed
// make does not already exercise (see DESIGN.md).
func ExtendedRegistry() []App {
	ext := []App{
		{
			Name:        "matmul",
			Class:       "Numerical Algorithms",
			Description: "Dense matrix multiplication, row bands + broadcast B",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return matmul.Parallel(ctx, matmul.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*matmul.Result)
				if !ok {
					return fmt.Errorf("matmul: unexpected result type %T", v)
				}
				return matmul.VerifyAgainstSequential(matmul.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "lu",
			Class:       "Numerical Algorithms",
			Description: "LU decomposition, cyclic rows + pivot-row broadcast",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return lu.Parallel(ctx, lu.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*lu.Result)
				if !ok {
					return fmt.Errorf("lu: unexpected result type %T", v)
				}
				return lu.VerifyAgainstSequential(lu.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "linsolve",
			Class:       "Numerical Algorithms",
			Description: "Jacobi linear equation solver, iterate re-broadcast per sweep",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return linsolve.Parallel(ctx, linsolve.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*linsolve.Result)
				if !ok {
					return fmt.Errorf("linsolve: unexpected result type %T", v)
				}
				return linsolve.VerifyAgainstSequential(linsolve.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "nbody",
			Class:       "Simulation/Optimization",
			Description: "Direct O(n²) N-body with systolic ring circulation",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return nbody.Parallel(ctx, nbody.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*nbody.Result)
				if !ok {
					return fmt.Errorf("nbody: unexpected result type %T", v)
				}
				return nbody.VerifyAgainstSequential(nbody.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "tsp",
			Class:       "Simulation/Optimization",
			Description: "Exact TSP by branch and bound, first-hop branches partitioned",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return tsp.Parallel(ctx, tsp.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*tsp.Result)
				if !ok {
					return fmt.Errorf("tsp: unexpected result type %T", v)
				}
				return tsp.VerifyAgainstSequential(tsp.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "knapsack",
			Class:       "Simulation/Optimization",
			Description: "0/1 knapsack by branch and bound, top subtrees partitioned",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return knapsack.Parallel(ctx, knapsack.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*knapsack.Result)
				if !ok {
					return fmt.Errorf("knapsack: unexpected result type %T", v)
				}
				return knapsack.VerifyAgainstSequential(knapsack.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "hough",
			Class:       "Signal/Image Processing",
			Description: "Hough line transform, row bands + accumulator reduction",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return hough.Parallel(ctx, hough.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*hough.Result)
				if !ok {
					return fmt.Errorf("hough: unexpected result type %T", v)
				}
				return hough.VerifyAgainstSequential(hough.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "raytrace",
			Class:       "Signal/Image Processing",
			Description: "Recursive ray tracer, scan-line bands",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return raytrace.Parallel(ctx, raytrace.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*raytrace.Result)
				if !ok {
					return fmt.Errorf("raytrace: unexpected result type %T", v)
				}
				return raytrace.VerifyAgainstSequential(raytrace.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "lzw",
			Class:       "Signal/Image Processing",
			Description: "LZW data compression, block-parallel",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return lzw.Parallel(ctx, lzw.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*lzw.Result)
				if !ok {
					return fmt.Errorf("lzw: unexpected result type %T", v)
				}
				return lzw.VerifyAgainstSequential(lzw.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "vigenere",
			Class:       "Numerical Algorithms",
			Description: "Vigenère cryptanalysis, key-length space partitioned",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return vigenere.Parallel(ctx, vigenere.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*vigenere.Result)
				if !ok {
					return fmt.Errorf("vigenere: unexpected result type %T", v)
				}
				return vigenere.VerifyAgainstSequential(vigenere.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "psearch",
			Class:       "Utilities",
			Description: "Boyer-Moore-Horspool parallel text search with overlap chunks",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return psearch.Parallel(ctx, psearch.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*psearch.Result)
				if !ok {
					return fmt.Errorf("psearch: unexpected result type %T", v)
				}
				return psearch.VerifyAgainstSequential(psearch.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "spellcheck",
			Class:       "Utilities",
			Description: "Distributed spell checker: dictionary broadcast + chunk check",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return spellcheck.Parallel(ctx, spellcheck.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*spellcheck.Result)
				if !ok {
					return fmt.Errorf("spellcheck: unexpected result type %T", v)
				}
				return spellcheck.VerifyAgainstSequential(spellcheck.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
		{
			Name:        "dmake",
			Class:       "Utilities",
			Description: "Distributed make: master/worker DAG build with dynamic dispatch",
			Run: func(ctx *mpt.Ctx, scale float64) (any, error) {
				return dmake.Parallel(ctx, dmake.DefaultConfig().Scaled(scale))
			},
			Verify: func(v any, procs int, scale float64) error {
				res, ok := v.(*dmake.Result)
				if !ok {
					return fmt.Errorf("dmake: unexpected result type %T", v)
				}
				return dmake.VerifyAgainstSequential(dmake.DefaultConfig().Scaled(scale), res)
			},
			ValidProcs: anyProcs,
		},
	}
	return append(Registry(), ext...)
}

// Get returns the named application from the extended registry.
func Get(name string) (App, error) {
	for _, a := range ExtendedRegistry() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// Names lists the benchmarked (paper §3.3) application keys in order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, a := range reg {
		out[i] = a.Name
	}
	return out
}

// ExtendedNames lists every suite application key.
func ExtendedNames() []string {
	reg := ExtendedRegistry()
	out := make([]string, len(reg))
	for i, a := range reg {
		out[i] = a.Name
	}
	return out
}
