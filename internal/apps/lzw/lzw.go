// Package lzw implements the Data Compression application of the SU
// PDABS suite (Table 2, Signal/Image Processing): a real LZW codec
// (12-bit codes, dictionary reset on overflow) applied block-parallel —
// the host scatters input blocks, nodes compress independently, the host
// collects the streams, exactly like 1995 "compress farm" utilities.
package lzw

import (
	"encoding/binary"
	"fmt"

	"tooleval/internal/mpt"
)

// Cost model: operations per input byte for compression (hash-table
// probe + emit) and per output byte for collection.
const (
	OpsPerInputByte  = 30.0
	OpsPerOutputByte = 4.0
)

const (
	maxCodeBits = 12
	maxCodes    = 1 << maxCodeBits
	clearCode   = 256
	firstCode   = 257
)

// Compress encodes src with LZW (12-bit codes, MSB-first packing).
func Compress(src []byte) []byte {
	dict := make(map[string]int, maxCodes)
	for i := 0; i < 256; i++ {
		dict[string([]byte{byte(i)})] = i
	}
	reset := func() {
		for k := range dict {
			if len(k) > 1 {
				delete(dict, k)
			}
		}
	}
	nextCode := firstCode
	var out bitPacker
	var w []byte
	for _, c := range src {
		trial := append(w, c)
		if _, ok := dict[string(trial)]; ok {
			w = trial
			continue
		}
		out.emit(dict[string(w)])
		if nextCode < maxCodes {
			dict[string(trial)] = nextCode
			nextCode++
		} else {
			out.emit(clearCode)
			reset()
			nextCode = firstCode
		}
		w = []byte{c}
	}
	if len(w) > 0 {
		out.emit(dict[string(w)])
	}
	return out.finish()
}

// Decompress reverses Compress.
func Decompress(enc []byte) ([]byte, error) {
	codes, err := unpackCodes(enc)
	if err != nil {
		return nil, err
	}
	table := make([][]byte, 256, maxCodes)
	for i := range table {
		table[i] = []byte{byte(i)}
	}
	table = append(table, nil) // clearCode placeholder
	var out []byte
	var prev []byte
	for _, code := range codes {
		if code == clearCode {
			table = table[:firstCode]
			prev = nil
			continue
		}
		var entry []byte
		switch {
		case code < len(table) && table[code] != nil:
			entry = table[code]
		case code == len(table) && prev != nil:
			entry = append(append([]byte(nil), prev...), prev[0])
		default:
			return nil, fmt.Errorf("lzw: invalid code %d (table %d)", code, len(table))
		}
		out = append(out, entry...)
		if prev != nil && len(table) < maxCodes {
			table = append(table, append(append([]byte(nil), prev...), entry[0]))
		}
		prev = entry
	}
	return out, nil
}

// bitPacker packs 12-bit codes MSB-first.
type bitPacker struct {
	buf  []byte
	acc  uint32
	bits int
}

func (p *bitPacker) emit(code int) {
	p.acc = p.acc<<maxCodeBits | uint32(code&(maxCodes-1))
	p.bits += maxCodeBits
	for p.bits >= 8 {
		p.bits -= 8
		p.buf = append(p.buf, byte(p.acc>>uint(p.bits)))
	}
}

func (p *bitPacker) finish() []byte {
	if p.bits > 0 {
		p.buf = append(p.buf, byte(p.acc<<uint(8-p.bits)))
	}
	return p.buf
}

func unpackCodes(enc []byte) ([]int, error) {
	var codes []int
	acc, bits := uint32(0), 0
	for _, b := range enc {
		acc = acc<<8 | uint32(b)
		bits += 8
		if bits >= maxCodeBits {
			bits -= maxCodeBits
			codes = append(codes, int(acc>>uint(bits))&(maxCodes-1))
		}
	}
	return codes, nil
}

// Config sizes the benchmark.
type Config struct {
	Bytes int
	Seed  int64
}

// DefaultConfig compresses 512 KB of synthetic text.
func DefaultConfig() Config { return Config{Bytes: 512 << 10, Seed: 61} }

// Scaled shrinks the input.
func (c Config) Scaled(factor float64) Config {
	c.Bytes = int(float64(c.Bytes) * factor)
	if c.Bytes < 1024 {
		c.Bytes = 1024
	}
	return c
}

// SyntheticText generates compressible pseudo-prose.
func SyntheticText(n int, seed int64) []byte {
	words := []string{"the", "tool", "evaluation", "methodology", "parallel",
		"distributed", "network", "message", "passing", "performance",
		"application", "primitive", "broadcast", "system", "benchmark"}
	out := make([]byte, 0, n)
	s := uint64(seed)*0x9E3779B97F4A7C15 + 17
	for len(out) < n {
		s = s*6364136223846793005 + 1442695040888963407
		out = append(out, words[s%uint64(len(words))]...)
		if s%11 == 0 {
			out = append(out, '.', ' ')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// Result summarizes a compression run.
type Result struct {
	InputBytes  int
	OutputBytes int
	Blocks      [][]byte
}

// Ratio reports input/output.
func (r *Result) Ratio() float64 {
	if r.OutputBytes == 0 {
		return 0
	}
	return float64(r.InputBytes) / float64(r.OutputBytes)
}

// Sequential compresses the whole input and verifies the round trip.
func Sequential(cfg Config) (*Result, error) {
	src := SyntheticText(cfg.Bytes, cfg.Seed)
	enc := Compress(src)
	dec, err := Decompress(enc)
	if err != nil {
		return nil, err
	}
	if string(dec) != string(src) {
		return nil, fmt.Errorf("lzw: sequential round trip failed")
	}
	return &Result{InputBytes: len(src), OutputBytes: len(enc), Blocks: [][]byte{enc}}, nil
}

func blockShare(total, p, r int) (lo, hi int) {
	base, rem := total/p, total%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel scatters input blocks, compresses independently, and collects
// framed streams on rank 0 (which round-trips each block as the audit).
// Tags: 80 = input block, 81 = compressed block.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagIn  = 80
		tagOut = 81
	)
	p, me := ctx.Size(), ctx.Rank()

	var myBlock []byte
	if me == 0 {
		src := SyntheticText(cfg.Bytes, cfg.Seed)
		for r := 1; r < p; r++ {
			lo, hi := blockShare(len(src), p, r)
			if err := ctx.Comm.Send(r, tagIn, src[lo:hi]); err != nil {
				return nil, fmt.Errorf("lzw scatter to %d: %w", r, err)
			}
		}
		lo, hi := blockShare(len(src), p, 0)
		myBlock = src[lo:hi]
	} else {
		msg, err := ctx.Comm.Recv(0, tagIn)
		if err != nil {
			return nil, fmt.Errorf("lzw block recv: %w", err)
		}
		myBlock = msg.Data
	}

	enc := Compress(myBlock)
	ctx.Charge(OpsPerInputByte*float64(len(myBlock)) + OpsPerOutputByte*float64(len(enc)))
	framed := make([]byte, 4+len(enc))
	binary.BigEndian.PutUint32(framed, uint32(len(myBlock)))
	copy(framed[4:], enc)

	if me != 0 {
		return nil, ctx.Comm.Send(0, tagOut, framed)
	}
	blocks := make([][]byte, p)
	blocks[0] = framed
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagOut)
		if err != nil {
			return nil, fmt.Errorf("lzw collect from %d: %w", r, err)
		}
		blocks[r] = msg.Data
	}
	res := &Result{Blocks: blocks}
	src := SyntheticText(cfg.Bytes, cfg.Seed)
	var rebuilt []byte
	for r, blk := range blocks {
		if len(blk) < 4 {
			return nil, fmt.Errorf("lzw: block %d truncated", r)
		}
		dec, err := Decompress(blk[4:])
		if err != nil {
			return nil, fmt.Errorf("lzw: block %d: %w", r, err)
		}
		if len(dec) != int(binary.BigEndian.Uint32(blk)) {
			return nil, fmt.Errorf("lzw: block %d length header mismatch", r)
		}
		rebuilt = append(rebuilt, dec...)
		res.InputBytes += len(dec)
		res.OutputBytes += len(blk) - 4
	}
	if string(rebuilt) != string(src) {
		return nil, fmt.Errorf("lzw: parallel reassembly differs from input")
	}
	return res, nil
}

// VerifyAgainstSequential checks block-parallel compression round-trips
// and achieves a comparable ratio to whole-input compression.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("lzw: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.InputBytes != seq.InputBytes {
		return fmt.Errorf("lzw: input bytes %d != %d", par.InputBytes, seq.InputBytes)
	}
	if par.Ratio() < seq.Ratio()*0.7 {
		return fmt.Errorf("lzw: block-parallel ratio %.2f collapsed vs sequential %.2f", par.Ratio(), seq.Ratio())
	}
	return nil
}
