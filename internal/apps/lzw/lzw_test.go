package lzw

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCompressKnown(t *testing.T) {
	// "ABABAB": codes A, B, AB(257), AB... classic LZW behaviour.
	src := []byte("ABABABABAB")
	enc := Compress(src)
	dec, err := Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip: %q -> %q", src, dec)
	}
	if len(enc) >= len(src) {
		t.Fatalf("repetitive input should compress: %d -> %d", len(src), len(enc))
	}
}

func TestKwKwKCase(t *testing.T) {
	// The cScSc pattern triggers the code == len(table) special case.
	src := []byte("aaaaaaaaaaaaaaaa")
	dec, err := Decompress(Compress(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("KwKwK round trip failed: %q", dec)
	}
}

func TestAllByteValues(t *testing.T) {
	src := make([]byte, 512)
	for i := range src {
		src[i] = byte(i)
	}
	dec, err := Decompress(Compress(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("full byte range round trip failed")
	}
}

func TestDictionaryOverflowReset(t *testing.T) {
	// Enough distinct digrams to overflow the 12-bit dictionary.
	src := make([]byte, 300_000)
	s := uint64(12345)
	for i := range src {
		s = s*6364136223846793005 + 1442695040888963407
		src[i] = byte(s >> 56)
	}
	dec, err := Decompress(Compress(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("overflow/reset round trip failed")
	}
}

func TestEmptyInput(t *testing.T) {
	dec, err := Decompress(Compress(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty round trip produced %d bytes", len(dec))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	prop := func(src []byte) bool {
		dec, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticTextCompresses(t *testing.T) {
	res, err := Sequential(Config{Bytes: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() < 1.8 {
		t.Fatalf("text ratio %.2f, want > 1.8", res.Ratio())
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("invalid code stream should error")
	}
}
