package hough

import (
	"testing"
)

func TestEdgeMapHasStructure(t *testing.T) {
	cfg := Config{W: 64, H: 64, ThetaBins: 90, RhoBins: 128, Seed: 1}
	img := EdgeMap(cfg)
	edges := 0
	for _, v := range img {
		if v != 0 {
			edges++
		}
	}
	if edges < cfg.W { // at least the horizontal line
		t.Fatalf("edge map has only %d edge pixels", edges)
	}
}

func TestSequentialPeakIsALine(t *testing.T) {
	cfg := Config{W: 64, H: 64, ThetaBins: 90, RhoBins: 128, Seed: 1}
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The strongest accumulator cell must collect at least half of one
	// full line's votes (the seeded lines are W or H pixels long).
	if int(res.PeakVal) < cfg.W/2 {
		t.Fatalf("peak %d too weak for a %d-pixel line", res.PeakVal, cfg.W)
	}
	if res.Votes == 0 {
		t.Fatal("no votes cast")
	}
}

func TestAccumulateRowsAdditive(t *testing.T) {
	cfg := Config{W: 32, H: 32, ThetaBins: 45, RhoBins: 64, Seed: 2}
	img := EdgeMap(cfg)
	whole := make([]int32, cfg.RhoBins*cfg.ThetaBins)
	vw := accumulate(cfg, img, 0, cfg.H, whole)
	parts := make([]int32, cfg.RhoBins*cfg.ThetaBins)
	var vp int64
	for y := 0; y < cfg.H; y += 8 {
		vp += accumulate(cfg, img, y, y+8, parts)
	}
	if vw != vp {
		t.Fatalf("votes: whole %d != parts %d", vw, vp)
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("accumulator differs at %d: %d vs %d", i, whole[i], parts[i])
		}
	}
}

func TestSequentialDeterministic(t *testing.T) {
	cfg := Config{W: 48, H: 48, ThetaBins: 60, RhoBins: 96, Seed: 3}
	a, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accum32 != b.Accum32 || a.PeakVal != b.PeakVal {
		t.Fatal("hough not deterministic")
	}
}
