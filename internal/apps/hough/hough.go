// Package hough implements the Hough Transform application of the SU
// PDABS suite (Table 2, Signal/Image Processing): straight-line detection
// via the (ρ, θ) accumulator, image rows scattered across processors and
// the accumulators summed — the classic reduce-heavy vision kernel.
package hough

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// Cost model: per edge pixel per θ bin (sin/cos from a table + bin
// increment).
const OpsPerVote = 6.0

// Config sizes the benchmark.
type Config struct {
	W, H      int
	ThetaBins int
	RhoBins   int
	Seed      int64
}

// DefaultConfig transforms a 256x256 edge map over a 180x362 accumulator.
func DefaultConfig() Config { return Config{W: 256, H: 256, ThetaBins: 180, RhoBins: 362, Seed: 79} }

// Scaled shrinks the image.
func (c Config) Scaled(factor float64) Config {
	c.W = int(float64(c.W) * factor)
	c.H = int(float64(c.H) * factor)
	if c.W < 32 {
		c.W = 32
	}
	if c.H < 32 {
		c.H = 32
	}
	return c
}

// EdgeMap generates a deterministic binary edge image containing known
// lines plus salt noise.
func EdgeMap(cfg Config) []byte {
	img := make([]byte, cfg.W*cfg.H)
	// Three lines: horizontal, vertical, diagonal.
	for x := 0; x < cfg.W; x++ {
		img[(cfg.H/3)*cfg.W+x] = 1
		if x < cfg.H {
			img[x*cfg.W+x*cfg.W/cfg.W] = 1 // diagonal y == x
		}
	}
	for y := 0; y < cfg.H; y++ {
		img[y*cfg.W+cfg.W/4] = 1
	}
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 31
	for i := 0; i < cfg.W*cfg.H/200; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		img[s%uint64(len(img))] = 1
	}
	return img
}

// Result carries the accumulator summary.
type Result struct {
	Votes   int64
	PeakVal int32
	PeakRho int
	PeakTht int
	Accum32 uint64 // FNV of the accumulator for exact comparison
}

// accumulate votes rows [y0, y1) into acc (RhoBins x ThetaBins).
func accumulate(cfg Config, img []byte, y0, y1 int, acc []int32) int64 {
	sinT := make([]float64, cfg.ThetaBins)
	cosT := make([]float64, cfg.ThetaBins)
	for t := 0; t < cfg.ThetaBins; t++ {
		ang := float64(t) * math.Pi / float64(cfg.ThetaBins)
		sinT[t], cosT[t] = math.Sin(ang), math.Cos(ang)
	}
	rhoMax := math.Hypot(float64(cfg.W), float64(cfg.H))
	var votes int64
	for y := y0; y < y1; y++ {
		for x := 0; x < cfg.W; x++ {
			if img[y*cfg.W+x] == 0 {
				continue
			}
			for t := 0; t < cfg.ThetaBins; t++ {
				rho := float64(x)*cosT[t] + float64(y)*sinT[t]
				bin := int((rho + rhoMax) / (2 * rhoMax) * float64(cfg.RhoBins-1))
				acc[bin*cfg.ThetaBins+t]++
				votes++
			}
		}
	}
	return votes
}

func summarize(cfg Config, acc []int32, votes int64) *Result {
	r := &Result{Votes: votes}
	hash := uint64(14695981039346656037)
	for i, v := range acc {
		if v > r.PeakVal {
			r.PeakVal = v
			r.PeakRho = i / cfg.ThetaBins
			r.PeakTht = i % cfg.ThetaBins
		}
		hash ^= uint64(uint32(v))
		hash *= 1099511628211
	}
	r.Accum32 = hash
	return r
}

// Sequential transforms the whole image.
func Sequential(cfg Config) (*Result, error) {
	img := EdgeMap(cfg)
	acc := make([]int32, cfg.RhoBins*cfg.ThetaBins)
	votes := accumulate(cfg, img, 0, cfg.H, acc)
	return summarize(cfg, acc, votes), nil
}

func rowShare(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel scatters row bands from rank 0 and reduces the partial
// accumulators with the tool's global sum (manual fallback for PVM —
// this is the suite app that leans hardest on the reduction primitive).
// Tags: 120 = band.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const tagBand = 120
	p, me := ctx.Size(), ctx.Rank()
	lo, hi := rowShare(cfg.H, p, me)

	var band []byte
	if me == 0 {
		img := EdgeMap(cfg)
		for r := 1; r < p; r++ {
			rlo, rhi := rowShare(cfg.H, p, r)
			if err := ctx.Comm.Send(r, tagBand, img[rlo*cfg.W:rhi*cfg.W]); err != nil {
				return nil, fmt.Errorf("hough scatter to %d: %w", r, err)
			}
		}
		band = img[lo*cfg.W : hi*cfg.W]
	} else {
		msg, err := ctx.Comm.Recv(0, tagBand)
		if err != nil {
			return nil, fmt.Errorf("hough band recv: %w", err)
		}
		band = msg.Data
	}

	acc := make([]int32, cfg.RhoBins*cfg.ThetaBins)
	// accumulate expects global row coordinates; band starts at row lo.
	full := make([]byte, cfg.W*cfg.H)
	copy(full[lo*cfg.W:], band)
	votes := accumulate(cfg, full, lo, hi, acc)
	ctx.Charge(OpsPerVote * float64(votes))

	// Reduce accumulators + vote counts across ranks.
	vec := make([]float64, len(acc)+1)
	for i, v := range acc {
		vec[i] = float64(v)
	}
	vec[len(acc)] = float64(votes)
	sum, err := mpt.SumFloat64(ctx.Comm, vec)
	if err != nil {
		return nil, fmt.Errorf("hough reduce: %w", err)
	}
	if me != 0 {
		return nil, nil
	}
	for i := range acc {
		acc[i] = int32(sum[i])
	}
	return summarize(cfg, acc, int64(sum[len(acc)])), nil
}

// VerifyAgainstSequential demands bit-identical accumulators.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("hough: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Votes != seq.Votes {
		return fmt.Errorf("hough: votes %d != %d", par.Votes, seq.Votes)
	}
	if par.Accum32 != seq.Accum32 {
		return fmt.Errorf("hough: accumulator hash mismatch")
	}
	if par.PeakVal != seq.PeakVal || par.PeakRho != seq.PeakRho || par.PeakTht != seq.PeakTht {
		return fmt.Errorf("hough: peak (%d,%d,%d) != (%d,%d,%d)",
			par.PeakVal, par.PeakRho, par.PeakTht, seq.PeakVal, seq.PeakRho, seq.PeakTht)
	}
	return nil
}
