package psrs

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSequentialSorts(t *testing.T) {
	res, err := Sequential(Config{Records: 10_000, RecordBytes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 10_000 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.Min > res.Max {
		t.Fatalf("min %d > max %d", res.Min, res.Max)
	}
}

func TestGenerateGlobalMultisetInvariantAcrossP(t *testing.T) {
	cfg := Config{Records: 5_000, RecordBytes: 64, Seed: 2}
	base := generate(cfg, 0, 1)
	for p := 2; p <= 8; p++ {
		var union []int64
		for r := 0; r < p; r++ {
			union = append(union, generate(cfg, r, p)...)
		}
		if len(union) != len(base) {
			t.Fatalf("p=%d: %d keys, want %d", p, len(union), len(base))
		}
		a := append([]int64(nil), base...)
		b := append([]int64(nil), union...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("p=%d: multiset differs at %d", p, i)
			}
		}
	}
}

func TestMergeRuns(t *testing.T) {
	runs := [][]int64{{1, 5, 9}, {2, 2, 8}, {}, {0, 10}}
	got := mergeRuns(runs)
	want := []int64{0, 1, 2, 2, 5, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("merge length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPropertyMergeSortedRuns(t *testing.T) {
	prop := func(raw [][]int16) bool {
		runs := make([][]int64, len(raw))
		total := 0
		for i, r := range raw {
			run := make([]int64, len(r))
			for j, v := range r {
				run[j] = int64(v)
			}
			sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
			runs[i] = run
			total += len(run)
		}
		got := mergeRuns(runs)
		if len(got) != total {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintOrderSensitivity(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{3, 2, 1}
	oa, ma := fingerprint(a)
	ob, mb := fingerprint(b)
	if ma != mb {
		t.Fatal("multiset fingerprint should be order-independent")
	}
	if oa == ob {
		t.Fatal("ordered fingerprint should be order-sensitive")
	}
}

func TestSummarizeRejectsUnsorted(t *testing.T) {
	if _, err := summarize([]int64{3, 1, 2}, []int{3}); err == nil {
		t.Fatal("unsorted output should be rejected")
	}
}

func TestLoadImbalance(t *testing.T) {
	r := &Result{Count: 100, PartSizes: []int{25, 25, 25, 25}}
	if got := r.LoadImbalance(); got != 1.0 {
		t.Fatalf("perfect balance = %f, want 1.0", got)
	}
	r2 := &Result{Count: 100, PartSizes: []int{40, 20, 20, 20}}
	if got := r2.LoadImbalance(); got != 1.6 {
		t.Fatalf("imbalance = %f, want 1.6", got)
	}
}

func TestScaledFloor(t *testing.T) {
	if DefaultConfig().Scaled(0.0000001).Records < 64 {
		t.Fatal("scaled keys below floor")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	keys := []int64{0, 1, -5, 1 << 40, 999_999_937}
	for _, rb := range []int{8, 16, 64, 100} {
		enc := encodeRecords(keys, rb)
		if len(enc) != len(keys)*rb {
			t.Fatalf("rb=%d: encoded %d bytes, want %d", rb, len(enc), len(keys)*rb)
		}
		got, err := decodeRecords(enc, rb)
		if err != nil {
			t.Fatalf("rb=%d: %v", rb, err)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("rb=%d: key %d: %d != %d", rb, i, got[i], keys[i])
			}
		}
	}
}

func TestRecordCodecDetectsCorruption(t *testing.T) {
	enc := encodeRecords([]int64{42, 43}, 64)
	enc[70] ^= 0xFF // payload byte of record 1
	if _, err := decodeRecords(enc, 64); err == nil {
		t.Fatal("corrupted payload should be detected")
	}
	if _, err := decodeRecords(enc[:63], 64); err == nil {
		t.Fatal("truncated record should be detected")
	}
}
