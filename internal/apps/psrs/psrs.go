// Package psrs implements Parallel Sorting by Regular Sampling, the
// sorting application of the paper's benchmark suite (§3.3: "PSRS
// partitions the data into ordered subsets of approximately equal size
// ... computation and communication requirements are data dependent").
//
// The algorithm is the real one: local sort, regular sampling, pivot
// selection at rank 0, broadcast of pivots, partition exchange
// (all-to-all), and a final multi-way merge of the received runs.
package psrs

import (
	"fmt"
	"sort"

	"tooleval/internal/mpt"
)

// Cost model: operations per record for the local sort (~c·n·log₂n), the
// partition scan, and the final merge — calibrated against the
// single-processor sorting times of Figures 5-8. Records are key +
// payload (the paper's "huge amount of data"), so the exchange moves
// real bulk through the tools.
const (
	SortOpsPerKeyLog = 12.0
	MergeOpsPerKey   = 16.0
	ScanOpsPerKey    = 3.0
)

// Config sizes the benchmark.
type Config struct {
	// Records is the number of records; each carries an int64 key plus
	// payload padding up to RecordBytes.
	Records     int
	RecordBytes int
	Seed        int64
}

// DefaultConfig is the paper-scale workload (~19 MB of 64-byte records;
// ~0.8-1.2 s local sort on the Alpha).
func DefaultConfig() Config { return Config{Records: 300_000, RecordBytes: 64, Seed: 31} }

// Scaled shrinks the record count.
func (c Config) Scaled(factor float64) Config {
	c.Records = int(float64(c.Records) * factor)
	if c.Records < 64 {
		c.Records = 64
	}
	return c
}

// Result summarizes the sorted output for verification without shipping
// the entire array around: total count, global min/max, a positional
// checksum, and a multiset fingerprint.
type Result struct {
	Count        int
	Min, Max     int64
	OrderedCheck uint64 // depends on the sorted order
	MultisetSum  uint64 // order-independent fingerprint
	PartSizes    []int  // keys per rank after exchange
}

// generate produces the deterministic input keys for rank r of p (the
// same global multiset regardless of p).
func generate(cfg Config, r, p int) []int64 {
	share, rem := cfg.Records/p, cfg.Records%p
	n := share
	if r < rem {
		n++
	}
	start := r*share + min(r, rem)
	keys := make([]int64, n)
	s := uint64(cfg.Seed) * 0x9E3779B97F4A7C15
	// Jump the generator to this rank's region deterministically by
	// hashing the global index.
	for i := 0; i < n; i++ {
		gi := uint64(start + i)
		x := (gi + 1) * (s | 1)
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		keys[i] = int64(x % 1_000_000_007)
	}
	return keys
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// payloadWord derives a record's payload pattern from its key, so the
// receiver can verify the bulk bytes really made it through the tool
// intact.
func payloadWord(key int64) uint64 {
	x := uint64(key) * 0xD6E8FEB86659FD93
	x ^= x >> 32
	return x*0xD6E8FEB86659FD93 + 0x2545F4914F6CDD1D
}

// encodeRecords serializes records as 8-byte big-endian keys each
// followed by recordBytes-8 payload bytes derived from the key.
func encodeRecords(keys []int64, recordBytes int) []byte {
	if recordBytes < 8 {
		recordBytes = 8
	}
	out := make([]byte, 0, len(keys)*recordBytes)
	for _, k := range keys {
		var kb [8]byte
		for i := 0; i < 8; i++ {
			kb[i] = byte(uint64(k) >> (56 - 8*i))
		}
		out = append(out, kb[:]...)
		w := payloadWord(k)
		for j := 0; j < recordBytes-8; j++ {
			out = append(out, byte(w>>(8*(j%8))))
		}
	}
	return out
}

// decodeRecords reverses encodeRecords, verifying every payload byte.
func decodeRecords(data []byte, recordBytes int) ([]int64, error) {
	if recordBytes < 8 {
		recordBytes = 8
	}
	if len(data)%recordBytes != 0 {
		return nil, fmt.Errorf("psrs: record payload length %d not a multiple of %d", len(data), recordBytes)
	}
	keys := make([]int64, len(data)/recordBytes)
	for i := range keys {
		rec := data[i*recordBytes : (i+1)*recordBytes]
		var k uint64
		for j := 0; j < 8; j++ {
			k = k<<8 | uint64(rec[j])
		}
		keys[i] = int64(k)
		w := payloadWord(keys[i])
		for j := 0; j < recordBytes-8; j++ {
			if rec[8+j] != byte(w>>(8*(j%8))) {
				return nil, fmt.Errorf("psrs: record %d payload corrupted at byte %d", i, j)
			}
		}
	}
	return keys, nil
}

func fingerprint(sorted []int64) (ordered, multiset uint64) {
	for i, k := range sorted {
		ordered = ordered*1099511628211 + uint64(k) + uint64(i)
		x := uint64(k) * 0x9E3779B97F4A7C15
		x ^= x >> 29
		multiset += x
	}
	return ordered, multiset
}

// Sequential sorts the whole input on one processor.
func Sequential(cfg Config) (*Result, error) {
	keys := generate(cfg, 0, 1)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return summarize(keys, []int{len(keys)})
}

func summarize(sorted []int64, parts []int) (*Result, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("psrs: empty output")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			return nil, fmt.Errorf("psrs: output not sorted at %d", i)
		}
	}
	o, m := fingerprint(sorted)
	return &Result{
		Count: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1],
		OrderedCheck: o, MultisetSum: m, PartSizes: parts,
	}, nil
}

// Parallel is the PSRS implementation. Tags: 30 = samples, 31 = pivots
// (bcast), 32 = partition exchange, 33 = result summaries.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagSamples  = 30
		tagPivots   = 31
		tagExchange = 32
		tagSummary  = 33
	)
	p, me := ctx.Size(), ctx.Rank()
	keys := generate(cfg, me, p)

	// Phase 1: local sort (real) + charge.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := float64(len(keys))
	if len(keys) > 1 {
		ctx.Charge(SortOpsPerKeyLog * n * log2(n))
	}

	if p == 1 {
		return summarize(keys, []int{len(keys)})
	}

	// Phase 2: regular sampling — p samples per rank.
	samples := make([]int64, p)
	for i := 0; i < p; i++ {
		idx := i * len(keys) / p
		if idx >= len(keys) {
			idx = len(keys) - 1
		}
		samples[i] = keys[idx]
	}
	if me != 0 {
		if err := ctx.Comm.Send(0, tagSamples, mpt.EncodeInt64s(samples)); err != nil {
			return nil, fmt.Errorf("psrs samples send: %w", err)
		}
	}

	// Phase 3: rank 0 sorts all samples, picks p-1 pivots, broadcasts.
	var pivots []int64
	if me == 0 {
		all := append([]int64(nil), samples...)
		for r := 1; r < p; r++ {
			msg, err := ctx.Comm.Recv(r, tagSamples)
			if err != nil {
				return nil, fmt.Errorf("psrs samples recv: %w", err)
			}
			s, err := mpt.DecodeInt64s(msg.Data)
			if err != nil {
				return nil, err
			}
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		ctx.Charge(SortOpsPerKeyLog * float64(len(all)) * log2(float64(len(all))))
		pivots = make([]int64, p-1)
		for i := 1; i < p; i++ {
			pivots[i-1] = all[i*p+p/2-1]
		}
	}
	pb, err := ctx.Comm.Bcast(0, tagPivots, mpt.EncodeInt64s(pivots))
	if err != nil {
		return nil, fmt.Errorf("psrs pivot bcast: %w", err)
	}
	pivots, err = mpt.DecodeInt64s(pb)
	if err != nil {
		return nil, err
	}

	// Phase 4: partition local keys by pivot and exchange.
	bounds := make([]int, p+1)
	bounds[p] = len(keys)
	for i, pv := range pivots {
		bounds[i+1] = sort.Search(len(keys), func(k int) bool { return keys[k] > pv })
	}
	// sort.Search can give non-monotonic bounds only if pivots are
	// unsorted; they are sorted by construction.
	ctx.Charge(ScanOpsPerKey * n)
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		part := keys[bounds[dst]:bounds[dst+1]]
		if err := ctx.Comm.Send(dst, tagExchange, encodeRecords(part, cfg.RecordBytes)); err != nil {
			return nil, fmt.Errorf("psrs exchange send to %d: %w", dst, err)
		}
	}
	runs := [][]int64{append([]int64(nil), keys[bounds[me]:bounds[me+1]]...)}
	for off := 1; off < p; off++ {
		src := (me + p - off) % p
		msg, err := ctx.Comm.Recv(src, tagExchange)
		if err != nil {
			return nil, fmt.Errorf("psrs exchange recv from %d: %w", src, err)
		}
		run, err := decodeRecords(msg.Data, cfg.RecordBytes)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}

	// Phase 5: multi-way merge of the sorted runs (real) + charge.
	merged := mergeRuns(runs)
	ctx.Charge(MergeOpsPerKey * float64(len(merged)))
	for i := 1; i < len(merged); i++ {
		if merged[i-1] > merged[i] {
			return nil, fmt.Errorf("psrs: merge produced unsorted output")
		}
	}

	// Phase 6: rank 0 gathers per-rank summaries and stitches the global
	// fingerprint (partitions are globally ordered by construction).
	o, m := fingerprint(merged)
	summary := []int64{int64(len(merged)), int64(o), int64(m), first(merged), last(merged)}
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagSummary, mpt.EncodeInt64s(summary))
	}
	parts := make([]int, p)
	mins := make([]int64, p)
	maxs := make([]int64, p)
	var multiset uint64
	var ordered uint64
	counts := 0
	perRank := make([][]int64, p)
	perRank[0] = summary
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagSummary)
		if err != nil {
			return nil, fmt.Errorf("psrs summary recv from %d: %w", r, err)
		}
		perRank[r], err = mpt.DecodeInt64s(msg.Data)
		if err != nil {
			return nil, err
		}
	}
	offset := 0
	for r := 0; r < p; r++ {
		s := perRank[r]
		if len(s) != 5 {
			return nil, fmt.Errorf("psrs: bad summary from rank %d", r)
		}
		parts[r] = int(s[0])
		counts += parts[r]
		multiset += uint64(s[2])
		// Re-derive the global ordered fingerprint from per-rank ones is
		// not algebraically possible with this hash; instead combine rank
		// hashes positionally (deterministic and order-sensitive).
		ordered = ordered*0x100000001B3 + uint64(s[1]) + uint64(offset)
		offset += parts[r]
		mins[r], maxs[r] = s[3], s[4]
	}
	// Global order across partitions: max of rank r <= min of rank r+1.
	for r := 0; r+1 < p; r++ {
		if parts[r] > 0 && parts[r+1] > 0 && maxs[r] > mins[r+1] {
			return nil, fmt.Errorf("psrs: partitions overlap between ranks %d and %d", r, r+1)
		}
	}
	gmin, gmax := mins[0], maxs[0]
	for r := 1; r < p; r++ {
		if parts[r] == 0 {
			continue
		}
		if mins[r] < gmin {
			gmin = mins[r]
		}
		if maxs[r] > gmax {
			gmax = maxs[r]
		}
	}
	return &Result{Count: counts, Min: gmin, Max: gmax, OrderedCheck: ordered, MultisetSum: multiset, PartSizes: parts}, nil
}

func first(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

func last(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// mergeRuns performs a k-way merge of sorted runs.
func mergeRuns(runs [][]int64) []int64 {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]int64, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		var bv int64
		for i, r := range runs {
			if idx[i] >= len(r) {
				continue
			}
			if best == -1 || r[idx[i]] < bv {
				best, bv = i, r[idx[i]]
			}
		}
		out = append(out, bv)
		idx[best]++
	}
	return out
}

// VerifyAgainstSequential checks that the distributed sort produced the
// same multiset, in globally sorted order, with the same count and
// extremes as the sequential sort.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("psrs: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Count != seq.Count {
		return fmt.Errorf("psrs: count %d != %d", par.Count, seq.Count)
	}
	if par.Min != seq.Min || par.Max != seq.Max {
		return fmt.Errorf("psrs: extremes (%d,%d) != (%d,%d)", par.Min, par.Max, seq.Min, seq.Max)
	}
	if par.MultisetSum != seq.MultisetSum {
		return fmt.Errorf("psrs: multiset fingerprint mismatch — keys lost or corrupted")
	}
	return nil
}

// LoadImbalance reports max/mean partition size, the PSRS quality metric
// (the algorithm guarantees < 2 for distinct keys).
func (r *Result) LoadImbalance() float64 {
	if len(r.PartSizes) == 0 || r.Count == 0 {
		return 0
	}
	maxP := 0
	for _, s := range r.PartSizes {
		if s > maxP {
			maxP = s
		}
	}
	mean := float64(r.Count) / float64(len(r.PartSizes))
	return float64(maxP) / mean
}
