package lu

import (
	"math"
	"testing"
)

func TestFactorKnown2x2(t *testing.T) {
	// A = [4 3; 6 3]: L = [1 0; 1.5 1], U = [4 3; 0 -1.5].
	a := []float64{4, 3, 6, 3}
	detLog, err := factorInPlace(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[2]-1.5) > 1e-12 {
		t.Fatalf("L[1][0] = %g, want 1.5", a[2])
	}
	if math.Abs(a[3]+1.5) > 1e-12 {
		t.Fatalf("U[1][1] = %g, want -1.5", a[3])
	}
	wantDet := math.Log(4) + math.Log(1.5)
	if math.Abs(detLog-wantDet) > 1e-12 {
		t.Fatalf("log|det| = %g, want %g", detLog, wantDet)
	}
}

func TestFactorReconstruction(t *testing.T) {
	cfg := Config{N: 24, Seed: 3}
	a := synth(cfg)
	orig := append([]float64(nil), a...)
	if _, err := factorInPlace(a, cfg.N); err != nil {
		t.Fatal(err)
	}
	if e := reconError(orig, a, cfg.N); e > 1e-10 {
		t.Fatalf("reconstruction error %g", e)
	}
}

func TestFactorZeroPivot(t *testing.T) {
	a := []float64{0, 1, 1, 0}
	if _, err := factorInPlace(a, 2); err == nil {
		t.Fatal("zero pivot should error")
	}
}

func TestSequentialStable(t *testing.T) {
	a, err := Sequential(Config{N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(Config{N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.DetLog != b.DetLog {
		t.Fatal("sequential LU not deterministic")
	}
	if math.IsNaN(a.DetLog) || math.IsInf(a.DetLog, 0) {
		t.Fatalf("log|det| = %g", a.DetLog)
	}
}

func TestDiagonalDominanceHolds(t *testing.T) {
	cfg := Config{N: 40, Seed: 12}
	a := synth(cfg)
	for i := 0; i < cfg.N; i++ {
		var off float64
		for j := 0; j < cfg.N; j++ {
			if i != j {
				off += math.Abs(a[i*cfg.N+j])
			}
		}
		if a[i*cfg.N+i] <= off {
			t.Fatalf("row %d not diagonally dominant: %g <= %g", i, a[i*cfg.N+i], off)
		}
	}
}
