// Package lu implements the LU Decomposition application of the SU PDABS
// suite (Table 2, Numerical Algorithms): Doolittle factorization without
// pivoting on a diagonally dominant matrix, rows distributed cyclically
// so the shrinking active window stays balanced, with the pivot row
// broadcast every step — the classic 1995 dense-kernel communication
// pattern.
package lu

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// OpsPerElim is the cost per eliminated element (multiply + subtract +
// indexing).
const OpsPerElim = 2.6

// Config sizes the benchmark.
type Config struct {
	N    int
	Seed int64
}

// DefaultConfig factors a 192x192 system.
func DefaultConfig() Config { return Config{N: 192, Seed: 53} }

// Scaled shrinks the matrix.
func (c Config) Scaled(factor float64) Config {
	c.N = int(float64(c.N) * factor)
	if c.N < 16 {
		c.N = 16
	}
	return c
}

// Result summarizes the factorization.
type Result struct {
	N int
	// DetLog is log|det(A)| = Σ log|U[i][i]| — a compact, order-sensitive
	// fingerprint of U's diagonal.
	DetLog float64
	// ReconError is max|A - L·U| computed on rank 0 for small systems
	// (diagnostic; 0 when skipped).
	ReconError float64
}

func synth(cfg Config) []float64 {
	n := cfg.N
	a := make([]float64, n*n)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 11
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(int64(s>>40))/float64(1<<24) - 0.25
			a[i*n+j] = v
			off += math.Abs(v)
		}
		a[i*n+i] = off + 2 // dominance: no pivoting needed
	}
	return a
}

// factorInPlace performs the elimination; returns log|det|.
func factorInPlace(a []float64, n int) (float64, error) {
	detLog := 0.0
	for k := 0; k < n; k++ {
		piv := a[k*n+k]
		if piv == 0 {
			return 0, fmt.Errorf("lu: zero pivot at %d", k)
		}
		detLog += math.Log(math.Abs(piv))
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] / piv
			a[i*n+k] = m
			row := a[i*n:]
			pivRow := a[k*n:]
			for j := k + 1; j < n; j++ {
				row[j] -= m * pivRow[j]
			}
		}
	}
	return detLog, nil
}

// Sequential factors the reference matrix.
func Sequential(cfg Config) (*Result, error) {
	a := synth(cfg)
	orig := append([]float64(nil), a...)
	detLog, err := factorInPlace(a, cfg.N)
	if err != nil {
		return nil, err
	}
	return &Result{N: cfg.N, DetLog: detLog, ReconError: reconError(orig, a, cfg.N)}, nil
}

// reconError computes max|A - L·U| for verification.
func reconError(orig, lu []float64, n int) float64 {
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kMax := min(i, j)
			for k := 0; k <= kMax; k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				sum += l * lu[k*n+j]
			}
			if d := math.Abs(orig[i*n+j] - sum); d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel factors with cyclic row distribution: rank r owns rows i with
// i%p == r; at step k the owner eliminates and broadcasts the pivot row,
// everyone updates their rows below k. Tags: 60 = pivot row broadcast,
// 61 = diagonal gather.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagPivot = 60
		tagDiag  = 61
	)
	n, p, me := cfg.N, ctx.Size(), ctx.Rank()
	// Deterministic generation on every rank (rows not owned are kept for
	// simplicity but only owned rows are updated/charged).
	a := synth(cfg)
	ctx.Charge(2 * float64(n) * float64(n) / float64(p))

	detLogLocal := 0.0
	for k := 0; k < n; k++ {
		owner := k % p
		var pivRow []float64
		if me == owner {
			piv := a[k*n+k]
			if piv == 0 {
				return nil, fmt.Errorf("lu: zero pivot at %d", k)
			}
			detLogLocal += math.Log(math.Abs(piv))
			pivRow = a[k*n+k : (k+1)*n]
		}
		enc, err := ctx.Comm.Bcast(owner, tagPivot, mpt.EncodeFloat64s(pivRow))
		if err != nil {
			return nil, fmt.Errorf("lu pivot bcast step %d: %w", k, err)
		}
		pivRow, err = mpt.DecodeFloat64s(enc)
		if err != nil {
			return nil, err
		}
		piv := pivRow[0]
		// Update my rows below k.
		updated := 0
		for i := k + 1 + ((me - (k+1)%p + p) % p); i < n; i += p {
			m := a[i*n+k] / piv
			a[i*n+k] = m
			row := a[i*n:]
			for j := k + 1; j < n; j++ {
				row[j] -= m * pivRow[j-k]
			}
			updated++
		}
		ctx.Charge(OpsPerElim * float64(updated) * float64(n-k))
	}

	// Gather the per-rank log-det partials.
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagDiag, mpt.EncodeFloat64s([]float64{detLogLocal}))
	}
	detLog := detLogLocal
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagDiag)
		if err != nil {
			return nil, fmt.Errorf("lu diag gather from %d: %w", r, err)
		}
		v, err := mpt.DecodeFloat64s(msg.Data)
		if err != nil {
			return nil, err
		}
		detLog += v[0]
	}
	return &Result{N: n, DetLog: detLog}, nil
}

// VerifyAgainstSequential checks the factorizations agree.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("lu: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if seq.ReconError > 1e-8*float64(cfg.N) {
		return fmt.Errorf("lu: sequential reconstruction error %g too large", seq.ReconError)
	}
	if math.Abs(par.DetLog-seq.DetLog) > 1e-7*(1+math.Abs(seq.DetLog)) {
		return fmt.Errorf("lu: log|det| %g != %g", par.DetLog, seq.DetLog)
	}
	return nil
}
