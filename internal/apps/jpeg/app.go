package jpeg

import (
	"bytes"
	"fmt"

	"tooleval/internal/mpt"
)

// Cost model constants: operations charged to the simulated host per unit
// of real work. OpsPerPixel covers level shift + DCT + quantization +
// entropy coding of one pixel's share of a block — calibrated against the
// single-processor JPEG times of Figures 5-8 (e.g. ~4.3 s for 512x512 on
// the Alpha).
const (
	OpsPerPixel      = 900.0
	OpsPerOutputByte = 6.0
)

// Config sizes the JPEG benchmark. The zero value is not runnable; use
// DefaultConfig.
type Config struct {
	W, H    int
	Quality int
	Seed    int64
}

// DefaultConfig is the paper-scale workload: a 512x512 image ("a vast
// amount of data" by 1995 workstation standards).
func DefaultConfig() Config { return Config{W: 512, H: 512, Quality: 75, Seed: 9} }

// Scaled shrinks the workload for fast tests while keeping block
// alignment.
func (c Config) Scaled(factor float64) Config {
	round8 := func(v int) int {
		if v < 8 {
			return 8
		}
		return v &^ 7
	}
	c.W = round8(int(float64(c.W) * factor))
	c.H = round8(int(float64(c.H) * factor))
	return c
}

// Result summarizes a compression run for verification.
type Result struct {
	CompressedBytes int
	PSNR            float64
	Bands           [][]byte // per-band compressed streams
}

// Sequential compresses the whole image on one processor and reports the
// result; it is both the 1-processor APL data point and the correctness
// reference.
func Sequential(cfg Config) (*Result, error) {
	img := Synthetic(cfg.W, cfg.H, cfg.Seed)
	enc, err := Encode(img, cfg.Quality)
	if err != nil {
		return nil, err
	}
	dec, err := Decode(enc)
	if err != nil {
		return nil, err
	}
	psnr, err := PSNR(img, dec)
	if err != nil {
		return nil, err
	}
	return &Result{CompressedBytes: len(enc.Bits), PSNR: psnr, Bands: [][]byte{enc.Marshal()}}, nil
}

// bandRows splits h rows into n near-equal bands of whole 8-row strips;
// the first band absorbs the remainder ("one portion which can be
// slightly larger than the rest", §3.3).
func bandRows(h, n int) []int {
	strips := h / 8
	base := strips / n
	rem := strips % n
	rows := make([]int, n)
	for i := range rows {
		s := base
		if i < rem {
			s++
		}
		rows[i] = s * 8
	}
	return rows
}

// Parallel is the host-node implementation: rank 0 generates and
// scatters the image bands, all ranks (host included) compress their
// band, rank 0 collects the compressed streams. Tags: 10 = band data,
// 11 = compressed band.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagBand = 10
		tagComp = 11
	)
	n := ctx.Size()
	rows := bandRows(cfg.H, n)

	var myBand *Image
	if ctx.Rank() == 0 {
		img := Synthetic(cfg.W, cfg.H, cfg.Seed)
		// Distribution phase: host sends band i to rank i.
		y := rows[0]
		for r := 1; r < n; r++ {
			band := img.Band(y, y+rows[r])
			y += rows[r]
			if err := ctx.Comm.Send(r, tagBand, band.Pix); err != nil {
				return nil, fmt.Errorf("jpeg scatter to %d: %w", r, err)
			}
		}
		myBand = img.Band(0, rows[0])
	} else {
		msg, err := ctx.Comm.Recv(0, tagBand)
		if err != nil {
			return nil, fmt.Errorf("jpeg band recv: %w", err)
		}
		myBand = &Image{W: cfg.W, H: len(msg.Data) / cfg.W, Pix: msg.Data}
	}

	// Computation phase: real compression, charged to the 1995 host.
	var enc *Encoded
	if myBand.H > 0 {
		var err error
		enc, err = Encode(myBand, cfg.Quality)
		if err != nil {
			return nil, err
		}
		ctx.Charge(OpsPerPixel*float64(myBand.W*myBand.H) + OpsPerOutputByte*float64(len(enc.Bits)))
	}

	// Collection phase.
	if ctx.Rank() != 0 {
		var payload []byte
		if enc != nil {
			payload = enc.Marshal()
		}
		if err := ctx.Comm.Send(0, tagComp, payload); err != nil {
			return nil, fmt.Errorf("jpeg collect send: %w", err)
		}
		return nil, nil
	}
	bands := make([][]byte, n)
	if enc != nil {
		bands[0] = enc.Marshal()
	}
	total := len(bands[0])
	for r := 1; r < n; r++ {
		msg, err := ctx.Comm.Recv(r, tagComp)
		if err != nil {
			return nil, fmt.Errorf("jpeg collect recv from %d: %w", r, err)
		}
		bands[r] = msg.Data
		total += len(msg.Data)
	}
	// Host verifies quality by decoding all bands (not charged: this is
	// harness-side verification, not part of the benchmarked pipeline).
	img := Synthetic(cfg.W, cfg.H, cfg.Seed)
	recon := NewImage(cfg.W, cfg.H)
	y := 0
	for _, b := range bands {
		if len(b) == 0 {
			continue
		}
		e, err := UnmarshalEncoded(b)
		if err != nil {
			return nil, err
		}
		dec, err := Decode(e)
		if err != nil {
			return nil, err
		}
		copy(recon.Pix[y*cfg.W:], dec.Pix)
		y += e.H
	}
	psnr, err := PSNR(img, recon)
	if err != nil {
		return nil, err
	}
	headerBytes := 16 * n
	return &Result{CompressedBytes: total - headerBytes, PSNR: psnr, Bands: bands}, nil
}

// VerifyAgainstSequential checks that the parallel result is equivalent
// to the sequential reference: same reconstruction quality regime and,
// band-for-band, identical bits to compressing those bands directly.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("jpeg: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.PSNR < 28 {
		return fmt.Errorf("jpeg: parallel PSNR %.1f dB too low", par.PSNR)
	}
	if d := par.PSNR - seq.PSNR; d > 1.5 || d < -1.5 {
		return fmt.Errorf("jpeg: PSNR diverged: parallel %.2f vs sequential %.2f", par.PSNR, seq.PSNR)
	}
	// Band-level determinism: each band stream must equal an independent
	// encode of that band.
	img := Synthetic(cfg.W, cfg.H, cfg.Seed)
	rows := bandRows(cfg.H, len(par.Bands))
	y := 0
	for i, b := range par.Bands {
		h := rows[i]
		if h == 0 {
			if len(b) != 0 {
				return fmt.Errorf("jpeg: band %d should be empty", i)
			}
			continue
		}
		want, err := Encode(img.Band(y, y+h), cfg.Quality)
		if err != nil {
			return err
		}
		y += h
		got, err := UnmarshalEncoded(b)
		if err != nil {
			return err
		}
		if !bytes.Equal(got.Bits, want.Bits) {
			return fmt.Errorf("jpeg: band %d bits differ from direct encode", i)
		}
	}
	return nil
}
