package jpeg

import "fmt"

// bitWriter packs MSB-first bit strings into a byte stream.
type bitWriter struct {
	buf  []byte
	acc  uint32
	nacc int
}

func (w *bitWriter) write(code uint32, nbits int) {
	if nbits == 0 {
		return
	}
	w.acc = w.acc<<uint(nbits) | (code & (1<<uint(nbits) - 1))
	w.nacc += nbits
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>uint(w.nacc)))
	}
}

// flush pads the final partial byte with ones (as JPEG does).
func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		pad := 8 - w.nacc
		w.write(1<<uint(pad)-1, pad)
	}
	return w.buf
}

// bitReader consumes MSB-first bit strings.
type bitReader struct {
	buf []byte
	pos int // bit position
}

func (r *bitReader) read(nbits int) (uint32, error) {
	var v uint32
	for i := 0; i < nbits; i++ {
		byteIdx := r.pos >> 3
		if byteIdx >= len(r.buf) {
			return 0, fmt.Errorf("jpeg: bitstream exhausted at bit %d", r.pos)
		}
		bit := (r.buf[byteIdx] >> uint(7-r.pos&7)) & 1
		v = v<<1 | uint32(bit)
		r.pos++
	}
	return v, nil
}

// huffTable is a canonical Huffman code table built from a spec.
type huffTable struct {
	codes map[byte]huffCode // symbol -> code
	// decode lookup: sorted (length, code) -> symbol
	byLen [17]map[uint32]byte
}

type huffCode struct {
	code uint32
	bits int
}

func buildHuffTable(spec huffSpec) *huffTable {
	t := &huffTable{codes: make(map[byte]huffCode, len(spec.values))}
	for i := range t.byLen {
		t.byLen[i] = make(map[uint32]byte)
	}
	code := uint32(0)
	vi := 0
	for length := 1; length <= 16; length++ {
		for k := 0; k < spec.counts[length-1]; k++ {
			sym := spec.values[vi]
			vi++
			t.codes[sym] = huffCode{code: code, bits: length}
			t.byLen[length][code] = sym
			code++
		}
		code <<= 1
	}
	return t
}

func (t *huffTable) encode(w *bitWriter, sym byte) error {
	c, ok := t.codes[sym]
	if !ok {
		return fmt.Errorf("jpeg: symbol %#x not in Huffman table", sym)
	}
	w.write(c.code, c.bits)
	return nil
}

func (t *huffTable) decode(r *bitReader) (byte, error) {
	var code uint32
	for length := 1; length <= 16; length++ {
		b, err := r.read(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if sym, ok := t.byLen[length][code]; ok {
			return sym, nil
		}
	}
	return 0, fmt.Errorf("jpeg: invalid Huffman code")
}

// magnitude category encoding: JPEG represents a signed value as
// (category = bit length of |v|, then the bits; negative values as
// one's-complement).
func magnitude(v int) (cat int, bits uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a > 0 {
		cat++
		a >>= 1
	}
	if v >= 0 {
		bits = uint32(v)
	} else {
		bits = uint32(v-1) & (1<<uint(cat) - 1)
	}
	return cat, bits
}

func demagnitude(cat int, bits uint32) int {
	if cat == 0 {
		return 0
	}
	if bits>>(uint(cat)-1) != 0 {
		return int(bits) // positive
	}
	return int(bits) - (1 << uint(cat)) + 1
}
