package jpeg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var in, freq, back [64]float64
	for i := range in {
		in[i] = float64(rng.Intn(256)) - 128
	}
	forwardDCT(&in, &freq)
	inverseDCT(&freq, &back)
	for i := range in {
		if math.Abs(in[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip diverged at %d: %f vs %f", i, in[i], back[i])
		}
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	// A constant block has all energy in DC: coef[0] = 8*value.
	var in, freq [64]float64
	for i := range in {
		in[i] = 100
	}
	forwardDCT(&in, &freq)
	if math.Abs(freq[0]-800) > 1e-9 {
		t.Fatalf("DC coefficient = %f, want 800", freq[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %f, want 0", i, freq[i])
		}
	}
}

func TestPropertyDCTLinear(t *testing.T) {
	prop := func(seed int64, scaleRaw uint8) bool {
		scale := float64(scaleRaw%7) + 1
		rng := rand.New(rand.NewSource(seed))
		var a, fa, b, fb [64]float64
		for i := range a {
			a[i] = float64(rng.Intn(256)) - 128
			b[i] = a[i] * scale
		}
		forwardDCT(&a, &fa)
		forwardDCT(&b, &fb)
		for i := range fa {
			if math.Abs(fa[i]*scale-fb[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMagnitudeRoundTrip(t *testing.T) {
	for v := -2047; v <= 2047; v++ {
		cat, bits := magnitude(v)
		if got := demagnitude(cat, bits); got != v {
			t.Fatalf("magnitude round trip: %d -> (%d,%b) -> %d", v, cat, bits, got)
		}
	}
}

func TestBitWriterReader(t *testing.T) {
	var w bitWriter
	w.write(0b101, 3)
	w.write(0b0, 1)
	w.write(0b11111111111, 11)
	buf := w.flush()
	r := bitReader{buf: buf}
	if v, _ := r.read(3); v != 0b101 {
		t.Fatalf("read(3) = %b", v)
	}
	if v, _ := r.read(1); v != 0 {
		t.Fatalf("read(1) = %b", v)
	}
	if v, _ := r.read(11); v != 0b11111111111 {
		t.Fatalf("read(11) = %b", v)
	}
}

func TestHuffmanTablesInvertible(t *testing.T) {
	for _, spec := range []huffSpec{dcLuminanceSpec, acLuminanceSpec} {
		tab := buildHuffTable(spec)
		for _, sym := range spec.values {
			var w bitWriter
			if err := tab.encode(&w, sym); err != nil {
				t.Fatal(err)
			}
			r := bitReader{buf: w.flush()}
			got, err := tab.decode(&r)
			if err != nil {
				t.Fatalf("decode of %#x: %v", sym, err)
			}
			if got != sym {
				t.Fatalf("Huffman round trip: %#x -> %#x", sym, got)
			}
		}
	}
}

func TestEncodeDecodeQuality(t *testing.T) {
	img := Synthetic(128, 128, 5)
	for _, q := range []int{50, 75, 90} {
		enc, err := Encode(img, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc.Bits) >= len(img.Pix) {
			t.Fatalf("q=%d: no compression: %d bits bytes for %d pixels", q, len(enc.Bits), len(img.Pix))
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		psnr, err := PSNR(img, dec)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 27 {
			t.Fatalf("q=%d: PSNR %.1f dB too low", q, psnr)
		}
	}
}

func TestHigherQualityHigherPSNRAndSize(t *testing.T) {
	img := Synthetic(64, 64, 6)
	encLo, err := Encode(img, 40)
	if err != nil {
		t.Fatal(err)
	}
	encHi, err := Encode(img, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(encHi.Bits) <= len(encLo.Bits) {
		t.Fatalf("q=95 (%d B) should be larger than q=40 (%d B)", len(encHi.Bits), len(encLo.Bits))
	}
	decLo, _ := Decode(encLo)
	decHi, _ := Decode(encHi)
	pLo, _ := PSNR(img, decLo)
	pHi, _ := PSNR(img, decHi)
	if pHi <= pLo {
		t.Fatalf("q=95 PSNR %.1f should beat q=40 PSNR %.1f", pHi, pLo)
	}
}

func TestCompressionRatioInPaperRange(t *testing.T) {
	// The paper: "Image compression technology can compress images by
	// 1/10-1/50 of their original size without affecting image quality."
	cfg := DefaultConfig()
	res, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cfg.W*cfg.H) / float64(res.CompressedBytes)
	if ratio < 2.5 {
		t.Fatalf("compression ratio %.1f:1 too low for a DCT codec", ratio)
	}
}

func TestEncodedMarshalRoundTrip(t *testing.T) {
	img := Synthetic(64, 32, 7)
	enc, err := Encode(img, 75)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEncoded(enc.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.W != enc.W || got.H != enc.H || got.Quality != enc.Quality || len(got.Bits) != len(enc.Bits) {
		t.Fatalf("marshal round trip mismatch: %+v vs %+v", got, enc)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalEncoded([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header should error")
	}
	enc := &Encoded{W: 8, H: 8, Quality: 75, Bits: []byte{1, 2, 3, 4}}
	raw := enc.Marshal()
	if _, err := UnmarshalEncoded(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated bits should error")
	}
}

func TestBandRowsCoverImage(t *testing.T) {
	for _, h := range []int{64, 128, 512, 520} {
		for n := 1; n <= 8; n++ {
			rows := bandRows(h, n)
			sum := 0
			for _, r := range rows {
				if r%8 != 0 {
					t.Fatalf("h=%d n=%d: band height %d not a strip multiple", h, n, r)
				}
				sum += r
			}
			if sum != h&^7 {
				t.Fatalf("h=%d n=%d: bands cover %d rows, want %d", h, n, sum, h&^7)
			}
			if n > 1 && rows[0] < rows[n-1] {
				t.Fatalf("h=%d n=%d: first band should absorb remainder: %v", h, n, rows)
			}
		}
	}
}

func TestEncodeRejectsUnalignedImage(t *testing.T) {
	if _, err := Encode(&Image{W: 10, H: 8, Pix: make([]byte, 80)}, 75); err == nil {
		t.Fatal("unaligned width should error")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 64, 42)
	b := Synthetic(64, 64, 42)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("synthetic image not deterministic")
		}
	}
	c := Synthetic(64, 64, 43)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}
