package jpeg

import "math"

// Real 8x8 forward and inverse DCT-II, the transform at the heart of the
// JPEG compression application of the paper's benchmark suite (§3.3:
// "JPEG standards are based on DCT").

const blockSize = 8

// dctCos[u][x] = cos((2x+1)uπ/16) precomputed.
var dctCos = func() [blockSize][blockSize]float64 {
	var c [blockSize][blockSize]float64
	for u := 0; u < blockSize; u++ {
		for x := 0; x < blockSize; x++ {
			c[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	return c
}()

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// forwardDCT transforms an 8x8 block of level-shifted samples into DCT
// coefficients.
func forwardDCT(in *[blockSize * blockSize]float64, out *[blockSize * blockSize]float64) {
	// Row-column decomposition: 1D DCT on rows, then on columns.
	var tmp [blockSize * blockSize]float64
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for x := 0; x < blockSize; x++ {
				s += in[y*blockSize+x] * dctCos[u][x]
			}
			tmp[y*blockSize+u] = s * alpha(u) / 2
		}
	}
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += tmp[y*blockSize+u] * dctCos[v][y]
			}
			out[v*blockSize+u] = s * alpha(v) / 2
		}
	}
}

// inverseDCT reverses forwardDCT.
func inverseDCT(in *[blockSize * blockSize]float64, out *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	for v := 0; v < blockSize; v++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += alpha(u) * in[v*blockSize+u] * dctCos[u][x]
			}
			tmp[v*blockSize+x] = s / 2
		}
	}
	for x := 0; x < blockSize; x++ {
		for y := 0; y < blockSize; y++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += alpha(v) * tmp[v*blockSize+x] * dctCos[v][y]
			}
			out[y*blockSize+x] = s / 2
		}
	}
}
