// Package jpeg implements the JPEG compression application of the
// paper's benchmark suite: a real baseline DCT codec (forward/inverse
// 8x8 DCT, Annex-K quantization, zigzag run-length coding, canonical
// Huffman entropy coding) plus the host-node parallel decomposition the
// paper describes — the image is split into N near-equal horizontal
// bands, the host distributes them, every node (including the host)
// compresses its band, and the host collects the compressed streams.
package jpeg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Image is a grayscale image with 8-bit samples.
type Image struct {
	W, H int
	Pix  []byte // row-major, len W*H
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// Synthetic produces a deterministic test image with enough structure
// (gradients, texture, edges) to exercise the codec realistically.
func Synthetic(w, h int, seed int64) *Image {
	img := NewImage(w, h)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96 +
				48*math.Sin(float64(x)/17.3)*math.Cos(float64(y)/23.7) +
				0.25*float64((x+y)%128)
			if (x/64+y/64)%2 == 0 {
				v += 24
			}
			// Small deterministic zero-mean noise.
			s = s*6364136223846793005 + 1442695040888963407
			v += float64(s>>60) - 7.5
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img.Pix[y*w+x] = byte(v)
		}
	}
	return img
}

// Band returns rows [y0, y1) as a sub-image (copy).
func (im *Image) Band(y0, y1 int) *Image {
	out := NewImage(im.W, y1-y0)
	copy(out.Pix, im.Pix[y0*im.W:y1*im.W])
	return out
}

// Encoded is a compressed band.
type Encoded struct {
	W, H    int
	Quality int
	Bits    []byte
}

// Marshal serializes an Encoded for transport through a message-passing
// tool.
func (e *Encoded) Marshal() []byte {
	out := make([]byte, 0, 16+len(e.Bits))
	out = binary.BigEndian.AppendUint32(out, uint32(e.W))
	out = binary.BigEndian.AppendUint32(out, uint32(e.H))
	out = binary.BigEndian.AppendUint32(out, uint32(e.Quality))
	out = binary.BigEndian.AppendUint32(out, uint32(len(e.Bits)))
	return append(out, e.Bits...)
}

// UnmarshalEncoded reverses Marshal.
func UnmarshalEncoded(data []byte) (*Encoded, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("jpeg: encoded band truncated: %d bytes", len(data))
	}
	e := &Encoded{
		W:       int(binary.BigEndian.Uint32(data)),
		H:       int(binary.BigEndian.Uint32(data[4:])),
		Quality: int(binary.BigEndian.Uint32(data[8:])),
	}
	n := int(binary.BigEndian.Uint32(data[12:]))
	if len(data) < 16+n {
		return nil, fmt.Errorf("jpeg: encoded band bits truncated: want %d, have %d", n, len(data)-16)
	}
	e.Bits = append([]byte(nil), data[16:16+n]...)
	return e, nil
}

// Encode compresses a grayscale image at the given quality (1..100).
func Encode(img *Image, quality int) (*Encoded, error) {
	if img.W%blockSize != 0 || img.H%blockSize != 0 {
		return nil, fmt.Errorf("jpeg: dimensions %dx%d not multiples of %d", img.W, img.H, blockSize)
	}
	q := quantTable(quality)
	dcTab := buildHuffTable(dcLuminanceSpec)
	acTab := buildHuffTable(acLuminanceSpec)
	var w bitWriter
	prevDC := 0
	var in, out [blockSize * blockSize]float64
	for by := 0; by < img.H; by += blockSize {
		for bx := 0; bx < img.W; bx += blockSize {
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					in[y*blockSize+x] = float64(img.Pix[(by+y)*img.W+bx+x]) - 128
				}
			}
			forwardDCT(&in, &out)
			var zz [64]int
			for i := 0; i < 64; i++ {
				zz[i] = int(math.Round(out[zigzag[i]] / float64(q[zigzag[i]])))
			}
			if err := encodeBlock(&w, dcTab, acTab, &zz, &prevDC); err != nil {
				return nil, err
			}
		}
	}
	return &Encoded{W: img.W, H: img.H, Quality: quality, Bits: w.flush()}, nil
}

func encodeBlock(w *bitWriter, dcTab, acTab *huffTable, zz *[64]int, prevDC *int) error {
	diff := zz[0] - *prevDC
	*prevDC = zz[0]
	cat, bits := magnitude(diff)
	if err := dcTab.encode(w, byte(cat)); err != nil {
		return err
	}
	w.write(bits, cat)
	run := 0
	for i := 1; i < 64; i++ {
		if zz[i] == 0 {
			run++
			continue
		}
		for run >= 16 {
			if err := acTab.encode(w, 0xF0); err != nil { // ZRL
				return err
			}
			run -= 16
		}
		cat, bits := magnitude(zz[i])
		if err := acTab.encode(w, byte(run<<4|cat)); err != nil {
			return err
		}
		w.write(bits, cat)
		run = 0
	}
	if run > 0 {
		if err := acTab.encode(w, 0x00); err != nil { // EOB
			return err
		}
	}
	return nil
}

// Decode decompresses an Encoded back into an image.
func Decode(enc *Encoded) (*Image, error) {
	q := quantTable(enc.Quality)
	dcTab := buildHuffTable(dcLuminanceSpec)
	acTab := buildHuffTable(acLuminanceSpec)
	r := bitReader{buf: enc.Bits}
	img := NewImage(enc.W, enc.H)
	prevDC := 0
	var coef, pix [blockSize * blockSize]float64
	for by := 0; by < enc.H; by += blockSize {
		for bx := 0; bx < enc.W; bx += blockSize {
			zz, err := decodeBlock(&r, dcTab, acTab, &prevDC)
			if err != nil {
				return nil, err
			}
			for i := 0; i < 64; i++ {
				coef[zigzag[i]] = float64(zz[i] * q[zigzag[i]])
			}
			inverseDCT(&coef, &pix)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					v := math.Round(pix[y*blockSize+x] + 128)
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					img.Pix[(by+y)*enc.W+bx+x] = byte(v)
				}
			}
		}
	}
	return img, nil
}

func decodeBlock(r *bitReader, dcTab, acTab *huffTable, prevDC *int) (*[64]int, error) {
	var zz [64]int
	cat, err := dcTab.decode(r)
	if err != nil {
		return nil, err
	}
	bits, err := r.read(int(cat))
	if err != nil {
		return nil, err
	}
	*prevDC += demagnitude(int(cat), bits)
	zz[0] = *prevDC
	for i := 1; i < 64; {
		sym, err := acTab.decode(r)
		if err != nil {
			return nil, err
		}
		if sym == 0x00 { // EOB
			break
		}
		if sym == 0xF0 { // ZRL
			i += 16
			continue
		}
		run, cat := int(sym>>4), int(sym&0xF)
		i += run
		if i >= 64 {
			return nil, fmt.Errorf("jpeg: AC run overflows block")
		}
		bits, err := r.read(cat)
		if err != nil {
			return nil, err
		}
		zz[i] = demagnitude(cat, bits)
		i++
	}
	return &zz, nil
}

// PSNR computes peak signal-to-noise ratio between two equal-size images.
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("jpeg: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
