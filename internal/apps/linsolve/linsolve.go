// Package linsolve implements the Linear Equation Solver application of
// the SU PDABS suite (Table 2, Numerical Algorithms): Jacobi iteration on
// a diagonally dominant system, with the iterate re-broadcast each sweep
// — a fixed, regular communication pattern per phase, the paper's §2.1
// "computational phases" in their purest form.
package linsolve

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// Cost model constants.
const (
	OpsPerMAC    = 2.2
	OpsPerUpdate = 6.0
)

// Config sizes the benchmark.
type Config struct {
	N         int
	Sweeps    int
	Tolerance float64
	Seed      int64
}

// DefaultConfig solves a 512-unknown system.
func DefaultConfig() Config { return Config{N: 512, Sweeps: 60, Tolerance: 1e-8, Seed: 47} }

// Scaled shrinks the system.
func (c Config) Scaled(factor float64) Config {
	c.N = int(float64(c.N) * factor)
	if c.N < 16 {
		c.N = 16
	}
	return c
}

// Result carries the solution summary.
type Result struct {
	N          int
	Sweeps     int
	Residual   float64
	SolutionL2 float64
}

// system generates a strictly diagonally dominant A and right-hand side
// b (so Jacobi converges).
func system(cfg Config) (a, b []float64) {
	n := cfg.N
	a = make([]float64, n*n)
	b = make([]float64, n)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 5
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(int64(s>>40))/float64(1<<24) - 0.25
			a[i*n+j] = v
			off += math.Abs(v)
		}
		a[i*n+i] = off + 1.5 // strict dominance
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = float64(int64(s>>40)) / float64(1<<22)
	}
	return a, b
}

func sweepRows(a, b, x, xNew []float64, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := b[i]
		row := a[i*n:]
		for j := 0; j < n; j++ {
			if j != i {
				sum -= row[j] * x[j]
			}
		}
		xNew[i-lo] = sum / row[i]
	}
}

func residual(a, b, x []float64, n int) float64 {
	var r2 float64
	for i := 0; i < n; i++ {
		sum := -b[i]
		row := a[i*n:]
		for j := 0; j < n; j++ {
			sum += row[j] * x[j]
		}
		r2 += sum * sum
	}
	return math.Sqrt(r2)
}

func l2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sequential runs Jacobi to the sweep limit or tolerance.
func Sequential(cfg Config) (*Result, error) {
	a, b := system(cfg)
	n := cfg.N
	x := make([]float64, n)
	xNew := make([]float64, n)
	sweeps := 0
	for s := 0; s < cfg.Sweeps; s++ {
		sweepRows(a, b, x, xNew, n, 0, n)
		copy(x, xNew)
		sweeps++
		if residual(a, b, x, n) < cfg.Tolerance {
			break
		}
	}
	return &Result{N: n, Sweeps: sweeps, Residual: residual(a, b, x, n), SolutionL2: l2(x)}, nil
}

func rowShare(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel distributes row blocks; each sweep computes the local block
// and allgathers the new iterate via gather-to-0 + broadcast. Tags: 50 =
// gather, 51 = broadcast.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagGather = 50
		tagBcast  = 51
	)
	n, p, me := cfg.N, ctx.Size(), ctx.Rank()
	// Every rank generates the (deterministic) system; the paper's codes
	// did the same to avoid shipping the matrix.
	a, b := system(cfg)
	ctx.Charge(2 * float64(n) * float64(n) / float64(p)) // generation, amortized
	lo, hi := rowShare(n, p, me)

	x := make([]float64, n)
	xNew := make([]float64, hi-lo)
	sweeps := 0
	for s := 0; s < cfg.Sweeps; s++ {
		sweepRows(a, b, x, xNew, n, lo, hi)
		ctx.Charge(OpsPerMAC*float64(hi-lo)*float64(n) + OpsPerUpdate*float64(hi-lo))

		// Allgather the iterate: blocks to rank 0, full vector back.
		if me == 0 {
			copy(x[lo:hi], xNew)
			for r := 1; r < p; r++ {
				msg, err := ctx.Comm.Recv(mpt.AnySource, tagGather)
				if err != nil {
					return nil, fmt.Errorf("linsolve gather: %w", err)
				}
				blk, err := mpt.DecodeFloat64s(msg.Data)
				if err != nil {
					return nil, err
				}
				blo, bhi := rowShare(n, p, msg.Src)
				if bhi-blo != len(blk) {
					return nil, fmt.Errorf("linsolve: rank %d sent %d rows, want %d", msg.Src, len(blk), bhi-blo)
				}
				copy(x[blo:bhi], blk)
			}
		} else {
			if err := ctx.Comm.Send(0, tagGather, mpt.EncodeFloat64s(xNew)); err != nil {
				return nil, fmt.Errorf("linsolve gather send: %w", err)
			}
		}
		full, err := ctx.Comm.Bcast(0, tagBcast, mpt.EncodeFloat64s(x))
		if err != nil {
			return nil, fmt.Errorf("linsolve bcast: %w", err)
		}
		x, err = mpt.DecodeFloat64s(full)
		if err != nil {
			return nil, err
		}
		sweeps++
	}
	if me != 0 {
		return nil, nil
	}
	ctx.Charge(2 * OpsPerMAC * float64(n) * float64(n)) // final residual check
	return &Result{N: n, Sweeps: sweeps, Residual: residual(a, b, x, n), SolutionL2: l2(x)}, nil
}

// VerifyAgainstSequential checks the parallel solve converged to the same
// solution.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("linsolve: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Sweeps != seq.Sweeps {
		// Jacobi with the same sweep budget and no early exit in the
		// parallel version can differ; only flag gross divergence.
		if par.Sweeps < seq.Sweeps {
			return fmt.Errorf("linsolve: parallel stopped after %d sweeps, sequential needed %d", par.Sweeps, seq.Sweeps)
		}
	}
	if math.Abs(par.SolutionL2-seq.SolutionL2) > 1e-6*(1+seq.SolutionL2) {
		return fmt.Errorf("linsolve: |x| %g != %g", par.SolutionL2, seq.SolutionL2)
	}
	if par.Residual > seq.Residual*1.5+cfg.Tolerance {
		return fmt.Errorf("linsolve: residual %g worse than sequential %g", par.Residual, seq.Residual)
	}
	return nil
}
