package linsolve

import (
	"math"
	"testing"
)

func TestSequentialConverges(t *testing.T) {
	res, err := Sequential(Config{N: 64, Sweeps: 80, Tolerance: 1e-9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-6 {
		t.Fatalf("residual %g after %d sweeps", res.Residual, res.Sweeps)
	}
	if res.SolutionL2 == 0 {
		t.Fatal("trivial solution")
	}
}

func TestResidualOfExactSolution(t *testing.T) {
	// For A = I, b arbitrary: x = b solves exactly.
	n := 5
	a := make([]float64, n*n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
		b[i] = float64(i + 1)
	}
	if r := residual(a, b, b, n); r > 1e-15 {
		t.Fatalf("residual of exact solution = %g", r)
	}
}

func TestSweepRowsJacobiStep(t *testing.T) {
	// 2x + y = 3; x + 3y = 5, starting from x = 0: first Jacobi iterate
	// is x1 = 3/2, y1 = 5/3.
	a := []float64{2, 1, 1, 3}
	b := []float64{3, 5}
	x := []float64{0, 0}
	xNew := make([]float64, 2)
	sweepRows(a, b, x, xNew, 2, 0, 2)
	if math.Abs(xNew[0]-1.5) > 1e-15 || math.Abs(xNew[1]-5.0/3) > 1e-15 {
		t.Fatalf("first iterate = %v, want [1.5, 1.667]", xNew)
	}
}

func TestResidualDecreasesAcrossSweeps(t *testing.T) {
	cfg := Config{N: 48, Sweeps: 1, Tolerance: 0, Seed: 8}
	a, b := system(cfg)
	x := make([]float64, cfg.N)
	xNew := make([]float64, cfg.N)
	prev := residual(a, b, x, cfg.N)
	for s := 0; s < 10; s++ {
		sweepRows(a, b, x, xNew, cfg.N, 0, cfg.N)
		copy(x, xNew)
		r := residual(a, b, x, cfg.N)
		if r > prev {
			t.Fatalf("sweep %d: residual rose %g -> %g", s, prev, r)
		}
		prev = r
	}
}

func TestL2(t *testing.T) {
	if got := l2([]float64{3, 4}); got != 5 {
		t.Fatalf("l2(3,4) = %g, want 5", got)
	}
}
