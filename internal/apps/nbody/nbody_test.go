package nbody

import (
	"math"
	"testing"
)

func TestTwoBodySymmetry(t *testing.T) {
	// Equal masses attract with equal and opposite accelerations.
	x := []float64{-1, 1}
	y := []float64{0, 0}
	z := []float64{0, 0}
	m := []float64{1, 1}
	ax := make([]float64, 2)
	ay := make([]float64, 2)
	az := make([]float64, 2)
	accumulate(x, y, z, ax, ay, az, 0, 2, x, y, z, m)
	if math.Abs(ax[0]+ax[1]) > 1e-12 {
		t.Fatalf("accelerations not opposite: %g vs %g", ax[0], ax[1])
	}
	if ax[0] <= 0 {
		t.Fatalf("body at -1 should accelerate toward +1, got %g", ax[0])
	}
	if math.Abs(ay[0]) > 1e-12 || math.Abs(az[0]) > 1e-12 {
		t.Fatal("no transverse force expected")
	}
}

func TestSelfInteractionIsZero(t *testing.T) {
	x := []float64{2}
	y := []float64{3}
	z := []float64{4}
	m := []float64{5}
	ax := make([]float64, 1)
	ay := make([]float64, 1)
	az := make([]float64, 1)
	accumulate(x, y, z, ax, ay, az, 0, 1, x, y, z, m)
	if ax[0] != 0 || ay[0] != 0 || az[0] != 0 {
		t.Fatalf("self force nonzero: (%g,%g,%g)", ax[0], ay[0], az[0])
	}
}

func TestEnergyRoughlyConserved(t *testing.T) {
	cfg := Config{Bodies: 64, Steps: 0, DT: 5e-4, Seed: 3}
	start := synth(cfg)
	e0, _, _, _ := start.energyAndCenter()
	res, err := Sequential(Config{Bodies: 64, Steps: 20, DT: 5e-4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(res.Energy-e0) / (math.Abs(e0) + 1)
	if drift > 0.05 {
		t.Fatalf("energy drifted %.1f%% over 20 small steps", drift*100)
	}
}

func TestCenterOfMassStationaryUnderZeroMomentum(t *testing.T) {
	// Two equal bodies with opposite velocities: CoM fixed.
	cfg := Config{Bodies: 16, Steps: 10, DT: 1e-3, Seed: 5}
	res1, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Steps = 1
	res2, err := Sequential(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// CoM moves linearly with total momentum; just check it stays finite
	// and deterministic.
	if math.IsNaN(res1.CenterX) || math.IsNaN(res2.CenterX) {
		t.Fatal("NaN center of mass")
	}
}

func TestBlockPackRoundTrip(t *testing.T) {
	b := synth(Config{Bodies: 10, Seed: 7})
	blk := packBlock(b, 2, 7)
	x, y, z, m, err := unpackBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if x[i] != b.x[2+i] || y[i] != b.y[2+i] || z[i] != b.z[2+i] || m[i] != b.m[2+i] {
			t.Fatalf("block round trip diverged at %d", i)
		}
	}
}

func TestStatePackRoundTrip(t *testing.T) {
	b := synth(Config{Bodies: 8, Seed: 9})
	blob := packState(b, 1, 5)
	b2 := synth(Config{Bodies: 8, Seed: 10}) // different content
	if err := unpackState(b2, 1, 5, blob); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if b2.x[i] != b.x[i] || b2.vz[i] != b.vz[i] {
			t.Fatalf("state round trip diverged at %d", i)
		}
	}
}

func TestShareBounds(t *testing.T) {
	for n := 1; n < 50; n++ {
		for p := 1; p <= 8; p++ {
			total := 0
			for r := 0; r < p; r++ {
				lo, hi := share(n, p, r)
				total += hi - lo
			}
			if total != n {
				t.Fatalf("share(%d,%d) covers %d", n, p, total)
			}
		}
	}
}
