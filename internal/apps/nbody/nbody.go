// Package nbody implements the N-body Simulation application of the SU
// PDABS suite (Table 2, Simulation/Optimization): direct O(n²)
// gravitational interaction with leapfrog integration; every step the
// body positions circulate around a ring of processors — the classic
// 1995 systolic decomposition.
package nbody

import (
	"fmt"
	"math"

	"tooleval/internal/mpt"
)

// Cost model: one pairwise interaction is ~18 flops on 1995 compilers
// (3 subs, 3 mults + r² accumulation, sqrt amortized, 3 force terms).
const OpsPerInteraction = 18.0

// Config sizes the benchmark.
type Config struct {
	Bodies int
	Steps  int
	DT     float64
	Seed   int64
}

// DefaultConfig simulates 768 bodies for 8 steps.
func DefaultConfig() Config { return Config{Bodies: 768, Steps: 8, DT: 1e-3, Seed: 59} }

// Scaled shrinks the body count.
func (c Config) Scaled(factor float64) Config {
	c.Bodies = int(float64(c.Bodies) * factor)
	if c.Bodies < 16 {
		c.Bodies = 16
	}
	return c
}

// Result summarizes the final state.
type Result struct {
	Bodies int
	Steps  int
	// Energy is the total (kinetic + potential) at the end; CenterX/Y/Z
	// the center of mass (conserved up to round-off).
	Energy  float64
	CenterX float64
	CenterY float64
	CenterZ float64
}

type bodies struct {
	x, y, z    []float64
	vx, vy, vz []float64
	m          []float64
}

func newBodies(n int) *bodies {
	return &bodies{
		x: make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		m: make([]float64, n),
	}
}

func synth(cfg Config) *bodies {
	b := newBodies(cfg.Bodies)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 13
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11)/float64(1<<53)*2 - 1
	}
	for i := 0; i < cfg.Bodies; i++ {
		b.x[i], b.y[i], b.z[i] = next(), next(), next()
		b.vx[i], b.vy[i], b.vz[i] = next()*0.1, next()*0.1, next()*0.1
		b.m[i] = 0.5 + (next()+1)/4
	}
	return b
}

const soften = 1e-3

// accumulate adds the acceleration exerted by sources on targets
// [tLo,tHi).
func accumulate(tx, ty, tz []float64, ax, ay, az []float64, tLo, tHi int,
	sx, sy, sz, sm []float64) {
	for i := tLo; i < tHi; i++ {
		xi, yi, zi := tx[i], ty[i], tz[i]
		var fx, fy, fz float64
		for j := range sx {
			dx := sx[j] - xi
			dy := sy[j] - yi
			dz := sz[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + soften
			inv := 1 / (r2 * math.Sqrt(r2))
			f := sm[j] * inv
			fx += f * dx
			fy += f * dy
			fz += f * dz
		}
		ax[i-tLo] += fx
		ay[i-tLo] += fy
		az[i-tLo] += fz
	}
}

func (b *bodies) energyAndCenter() (energy, cx, cy, cz float64) {
	n := len(b.x)
	var totalM float64
	for i := 0; i < n; i++ {
		v2 := b.vx[i]*b.vx[i] + b.vy[i]*b.vy[i] + b.vz[i]*b.vz[i]
		energy += 0.5 * b.m[i] * v2
		cx += b.m[i] * b.x[i]
		cy += b.m[i] * b.y[i]
		cz += b.m[i] * b.z[i]
		totalM += b.m[i]
		for j := i + 1; j < n; j++ {
			dx := b.x[j] - b.x[i]
			dy := b.y[j] - b.y[i]
			dz := b.z[j] - b.z[i]
			energy -= b.m[i] * b.m[j] / math.Sqrt(dx*dx+dy*dy+dz*dz+soften)
		}
	}
	return energy, cx / totalM, cy / totalM, cz / totalM
}

// Sequential runs the reference simulation.
func Sequential(cfg Config) (*Result, error) {
	b := synth(cfg)
	n := cfg.Bodies
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	for s := 0; s < cfg.Steps; s++ {
		for i := range ax {
			ax[i], ay[i], az[i] = 0, 0, 0
		}
		accumulate(b.x, b.y, b.z, ax, ay, az, 0, n, b.x, b.y, b.z, b.m)
		for i := 0; i < n; i++ {
			b.vx[i] += ax[i] * cfg.DT
			b.vy[i] += ay[i] * cfg.DT
			b.vz[i] += az[i] * cfg.DT
			b.x[i] += b.vx[i] * cfg.DT
			b.y[i] += b.vy[i] * cfg.DT
			b.z[i] += b.vz[i] * cfg.DT
		}
	}
	e, cx, cy, cz := b.energyAndCenter()
	return &Result{Bodies: n, Steps: cfg.Steps, Energy: e, CenterX: cx, CenterY: cy, CenterZ: cz}, nil
}

func share(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel owns a block of bodies per rank; each step the position/mass
// packets circulate around the ring so every rank sees every block.
// The final state is gathered on rank 0 for the energy audit. Tags: 70 =
// ring circulation, 71 = final gather.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagRing   = 70
		tagGather = 71
	)
	n, p, me := cfg.Bodies, ctx.Size(), ctx.Rank()
	b := synth(cfg) // deterministic initial conditions on every rank
	ctx.Charge(6 * float64(n) / float64(p))
	lo, hi := share(n, p, me)
	mine := hi - lo

	ax := make([]float64, mine)
	ay := make([]float64, mine)
	az := make([]float64, mine)
	next := (me + 1) % p
	prev := (me + p - 1) % p

	for s := 0; s < cfg.Steps; s++ {
		for i := range ax {
			ax[i], ay[i], az[i] = 0, 0, 0
		}
		// Systolic ring: start with my own block, then receive the
		// blocks of the other p-1 ranks from my predecessor.
		blkLo, blkHi := lo, hi
		blk := packBlock(b, blkLo, blkHi)
		for round := 0; round < p; round++ {
			sx, sy, sz, sm, err := unpackBlock(blk)
			if err != nil {
				return nil, err
			}
			accumulate(b.x, b.y, b.z, ax, ay, az, lo, hi, sx, sy, sz, sm)
			ctx.Charge(OpsPerInteraction * float64(mine) * float64(len(sx)))
			if round == p-1 {
				break
			}
			if err := ctx.Comm.Send(next, tagRing, blk); err != nil {
				return nil, fmt.Errorf("nbody ring send: %w", err)
			}
			msg, err := ctx.Comm.Recv(prev, tagRing)
			if err != nil {
				return nil, fmt.Errorf("nbody ring recv: %w", err)
			}
			blk = msg.Data
		}
		// Integrate my block; subtract self-interaction is unnecessary
		// (softening absorbs i==j which contributes zero force).
		for i := lo; i < hi; i++ {
			b.vx[i] += ax[i-lo] * cfg.DT
			b.vy[i] += ay[i-lo] * cfg.DT
			b.vz[i] += az[i-lo] * cfg.DT
			b.x[i] += b.vx[i] * cfg.DT
			b.y[i] += b.vy[i] * cfg.DT
			b.z[i] += b.vz[i] * cfg.DT
		}
		ctx.Charge(12 * float64(mine))
	}

	// Gather final blocks (positions and velocities) on rank 0.
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagGather, packState(b, lo, hi))
	}
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagGather)
		if err != nil {
			return nil, fmt.Errorf("nbody gather from %d: %w", r, err)
		}
		rlo, rhi := share(n, p, r)
		if err := unpackState(b, rlo, rhi, msg.Data); err != nil {
			return nil, err
		}
	}
	e, cx, cy, cz := b.energyAndCenter()
	return &Result{Bodies: n, Steps: cfg.Steps, Energy: e, CenterX: cx, CenterY: cy, CenterZ: cz}, nil
}

func packBlock(b *bodies, lo, hi int) []byte {
	n := hi - lo
	fs := make([]float64, 0, 4*n)
	fs = append(fs, b.x[lo:hi]...)
	fs = append(fs, b.y[lo:hi]...)
	fs = append(fs, b.z[lo:hi]...)
	fs = append(fs, b.m[lo:hi]...)
	return mpt.EncodeFloat64s(fs)
}

func unpackBlock(data []byte) (x, y, z, m []float64, err error) {
	fs, err := mpt.DecodeFloat64s(data)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if len(fs)%4 != 0 {
		return nil, nil, nil, nil, fmt.Errorf("nbody: block of %d floats not divisible by 4", len(fs))
	}
	n := len(fs) / 4
	return fs[:n], fs[n : 2*n], fs[2*n : 3*n], fs[3*n:], nil
}

func packState(b *bodies, lo, hi int) []byte {
	n := hi - lo
	fs := make([]float64, 0, 6*n)
	fs = append(fs, b.x[lo:hi]...)
	fs = append(fs, b.y[lo:hi]...)
	fs = append(fs, b.z[lo:hi]...)
	fs = append(fs, b.vx[lo:hi]...)
	fs = append(fs, b.vy[lo:hi]...)
	fs = append(fs, b.vz[lo:hi]...)
	return mpt.EncodeFloat64s(fs)
}

func unpackState(b *bodies, lo, hi int, data []byte) error {
	fs, err := mpt.DecodeFloat64s(data)
	if err != nil {
		return err
	}
	n := hi - lo
	if len(fs) != 6*n {
		return fmt.Errorf("nbody: state of %d floats, want %d", len(fs), 6*n)
	}
	copy(b.x[lo:hi], fs[:n])
	copy(b.y[lo:hi], fs[n:2*n])
	copy(b.z[lo:hi], fs[2*n:3*n])
	copy(b.vx[lo:hi], fs[3*n:4*n])
	copy(b.vy[lo:hi], fs[4*n:5*n])
	copy(b.vz[lo:hi], fs[5*n:])
	return nil
}

// VerifyAgainstSequential checks the trajectories agree bit-for-bit-ish
// (same arithmetic order within blocks differs, so a tight tolerance is
// used rather than equality).
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("nbody: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	tol := 1e-6 * (1 + math.Abs(seq.Energy))
	if math.Abs(par.Energy-seq.Energy) > tol {
		return fmt.Errorf("nbody: energy %g != %g", par.Energy, seq.Energy)
	}
	for _, d := range []struct{ a, b float64 }{
		{par.CenterX, seq.CenterX}, {par.CenterY, seq.CenterY}, {par.CenterZ, seq.CenterZ},
	} {
		if math.Abs(d.a-d.b) > 1e-9 {
			return fmt.Errorf("nbody: center of mass diverged: %g vs %g", d.a, d.b)
		}
	}
	return nil
}
