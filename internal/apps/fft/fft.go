// Package fft implements the two-dimensional Fast Fourier Transform
// application of the paper's benchmark suite (§3.3: 1D FFTs over every
// row, then every column; "a distributed 2D-FFT involves transfer of
// large amounts of data between processors", which makes it the paper's
// communication-stress application).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"tooleval/internal/mpt"
)

// Cost model: a radix-2 complex FFT of length n costs ~5 n log2 n
// floating-point operations; OpsPerFlop converts to host operations
// (calibrated against the single-processor FFT times of Figures 5-8).
const OpsPerFlop = 0.62

// FFT1DFlops is the flop count charged for one length-n transform.
func FFT1DFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// FFT computes an in-place iterative radix-2 decimation-in-time FFT.
// len(a) must be a power of two. inverse selects the inverse transform
// (including the 1/n scaling).
func FFT(a []complex128, inverse bool) error {
	n := len(a)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wn := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				u := a[start+k]
				v := a[start+k+size/2] * w
				a[start+k] = u + v
				a[start+k+size/2] = u - v
				w *= wn
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
	return nil
}

// Grid is a row-major N x N complex matrix.
type Grid struct {
	N    int
	Data []complex128
}

// NewGrid allocates an N x N grid.
func NewGrid(n int) *Grid { return &Grid{N: n, Data: make([]complex128, n*n)} }

// Synthetic fills a grid with a deterministic mixture of plane waves and
// pseudo-noise.
func Synthetic(n int, seed int64) *Grid {
	g := NewGrid(n)
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s = s*6364136223846793005 + 1442695040888963407
			noise := float64(s>>61) / 8
			g.Data[y*n+x] = complex(
				math.Sin(2*math.Pi*3*float64(x)/float64(n))+0.5*math.Cos(2*math.Pi*5*float64(y)/float64(n))+noise,
				0,
			)
		}
	}
	return g
}

// Row returns row y (aliased, not copied).
func (g *Grid) Row(y int) []complex128 { return g.Data[y*g.N : (y+1)*g.N] }

// Transpose returns the transposed grid.
func (g *Grid) Transpose() *Grid {
	out := NewGrid(g.N)
	for y := 0; y < g.N; y++ {
		for x := 0; x < g.N; x++ {
			out.Data[x*g.N+y] = g.Data[y*g.N+x]
		}
	}
	return out
}

// FFT2D computes the full 2D transform: FFT each row, transpose, FFT each
// (former) column, transpose back.
func FFT2D(g *Grid, inverse bool) error {
	for y := 0; y < g.N; y++ {
		if err := FFT(g.Row(y), inverse); err != nil {
			return err
		}
	}
	t := g.Transpose()
	for y := 0; y < t.N; y++ {
		if err := FFT(t.Row(y), inverse); err != nil {
			return err
		}
	}
	copy(g.Data, t.Transpose().Data)
	return nil
}

// MaxAbsDiff reports the largest element-wise magnitude difference.
func MaxAbsDiff(a, b *Grid) (float64, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("fft: size mismatch %d vs %d", a.N, b.N)
	}
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Config sizes the benchmark.
type Config struct {
	N    int
	Seed int64
}

// DefaultConfig is the paper-scale workload (128x128 complex — the FFT
// curves in Figures 5-8 are in the tens of milliseconds on the fast
// platforms).
func DefaultConfig() Config { return Config{N: 128, Seed: 17} }

// Scaled shrinks the workload to the nearest power of two.
func (c Config) Scaled(factor float64) Config {
	n := int(float64(c.N) * factor)
	p := 8
	for p*2 <= n {
		p *= 2
	}
	c.N = p
	return c
}

// Result carries the transform output for verification and the
// transform-phase timing (the paper's FFT curves exclude the initial
// data distribution; the image-style scatter/collect phases belong to
// the JPEG benchmark, §3.3).
type Result struct {
	Grid *Grid
	// Seconds is the barrier-to-barrier time of the distributed
	// transform (row FFTs + all-to-all transpose + column FFTs),
	// measured on rank 0 after the closing barrier.
	Seconds float64
}

// InnerSeconds reports the transform-phase timing; the benchmark harness
// prefers it over the whole-body elapsed time when present.
func (r *Result) InnerSeconds() (float64, bool) { return r.Seconds, r.Seconds > 0 }

// Sequential computes the reference 2D FFT.
func Sequential(cfg Config) (*Result, error) {
	g := Synthetic(cfg.N, cfg.Seed)
	if err := FFT2D(g, false); err != nil {
		return nil, err
	}
	return &Result{Grid: g}, nil
}

// Parallel distributes row bands across ranks: each rank transforms its
// rows, the grid is transposed with an all-to-all block exchange, each
// rank transforms its new rows (former columns), and the result is
// gathered on rank 0 in column-major (transposed) layout and transposed
// back. Tags: 20 = scatter, 21 = all-to-all, 22 = gather.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagScatter = 20
		tagAll     = 21
		tagGather  = 22
	)
	n, p, me := cfg.N, ctx.Size(), ctx.Rank()
	if n%p != 0 {
		return nil, fmt.Errorf("fft: N=%d not divisible by %d ranks", n, p)
	}
	rowsPer := n / p

	// Scatter row bands.
	var myRows []complex128
	if me == 0 {
		g := Synthetic(n, cfg.Seed)
		for r := 1; r < p; r++ {
			band := g.Data[r*rowsPer*n : (r+1)*rowsPer*n]
			if err := ctx.Comm.Send(r, tagScatter, encodeComplex(band)); err != nil {
				return nil, fmt.Errorf("fft scatter to %d: %w", r, err)
			}
		}
		myRows = append([]complex128(nil), g.Data[:rowsPer*n]...)
	} else {
		msg, err := ctx.Comm.Recv(0, tagScatter)
		if err != nil {
			return nil, fmt.Errorf("fft scatter recv: %w", err)
		}
		myRows, err = decodeComplex(msg.Data)
		if err != nil {
			return nil, err
		}
	}

	// The timed region covers the transform only.
	if err := ctx.Comm.Barrier(); err != nil {
		return nil, fmt.Errorf("fft start barrier: %w", err)
	}
	t0 := ctx.Now()

	// Row FFTs (real work + charge).
	for r := 0; r < rowsPer; r++ {
		if err := FFT(myRows[r*n:(r+1)*n], false); err != nil {
			return nil, err
		}
	}
	ctx.Charge(OpsPerFlop * float64(rowsPer) * FFT1DFlops(n))

	// All-to-all transpose: block (me, q) goes to rank q.
	blocks := make([][]complex128, p)
	for q := 0; q < p; q++ {
		blk := make([]complex128, rowsPer*rowsPer)
		for r := 0; r < rowsPer; r++ {
			copy(blk[r*rowsPer:(r+1)*rowsPer], myRows[r*n+q*rowsPer:r*n+(q+1)*rowsPer])
		}
		blocks[q] = blk
	}
	ctx.Charge(2 * float64(rowsPer*n)) // local block packing
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		if err := ctx.Comm.Send(dst, tagAll, encodeComplex(blocks[dst])); err != nil {
			return nil, fmt.Errorf("fft all-to-all send to %d: %w", dst, err)
		}
	}
	cols := make([]complex128, rowsPer*n) // my rows of the transposed grid
	placeBlock := func(from int, blk []complex128) {
		// blk is rows [me] block from rank `from`; transpose into my rows.
		for r := 0; r < rowsPer; r++ {
			for c := 0; c < rowsPer; c++ {
				cols[c*n+from*rowsPer+r] = blk[r*rowsPer+c]
			}
		}
	}
	placeBlock(me, blocks[me])
	for off := 1; off < p; off++ {
		src := (me + p - off) % p
		msg, err := ctx.Comm.Recv(src, tagAll)
		if err != nil {
			return nil, fmt.Errorf("fft all-to-all recv from %d: %w", src, err)
		}
		blk, err := decodeComplex(msg.Data)
		if err != nil {
			return nil, err
		}
		placeBlock(src, blk)
	}
	ctx.Charge(2 * float64(rowsPer*n)) // local block unpacking

	// Column FFTs (rows of the transposed grid).
	for r := 0; r < rowsPer; r++ {
		if err := FFT(cols[r*n:(r+1)*n], false); err != nil {
			return nil, err
		}
	}
	ctx.Charge(OpsPerFlop * float64(rowsPer) * FFT1DFlops(n))

	if err := ctx.Comm.Barrier(); err != nil {
		return nil, fmt.Errorf("fft end barrier: %w", err)
	}
	elapsed := (ctx.Now() - t0).Seconds()

	// Gather the transposed result on rank 0 (outside the timed region:
	// verification traffic, not part of the benchmarked transform).
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagGather, encodeComplex(cols))
	}
	full := NewGrid(n)
	copy(full.Data[:rowsPer*n], cols)
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagGather)
		if err != nil {
			return nil, fmt.Errorf("fft gather recv from %d: %w", r, err)
		}
		band, err := decodeComplex(msg.Data)
		if err != nil {
			return nil, err
		}
		copy(full.Data[r*rowsPer*n:(r+1)*rowsPer*n], band)
	}
	return &Result{Grid: full.Transpose(), Seconds: elapsed}, nil
}

// VerifyAgainstSequential checks the distributed transform against the
// reference.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil || par.Grid == nil {
		return fmt.Errorf("fft: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	d, err := MaxAbsDiff(seq.Grid, par.Grid)
	if err != nil {
		return err
	}
	if d > 1e-6 {
		return fmt.Errorf("fft: parallel result diverges from sequential by %g", d)
	}
	return nil
}

func encodeComplex(v []complex128) []byte {
	fs := make([]float64, 2*len(v))
	for i, c := range v {
		fs[2*i] = real(c)
		fs[2*i+1] = imag(c)
	}
	return mpt.EncodeFloat64s(fs)
}

func decodeComplex(data []byte) ([]complex128, error) {
	fs, err := mpt.DecodeFloat64s(data)
	if err != nil {
		return nil, err
	}
	if len(fs)%2 != 0 {
		return nil, fmt.Errorf("fft: odd float count %d", len(fs))
	}
	out := make([]complex128, len(fs)/2)
	for i := range out {
		out[i] = complex(fs[2*i], fs[2*i+1])
	}
	return out, nil
}
