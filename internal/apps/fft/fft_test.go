package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of a constant signal: all energy in bin 0.
	a := []complex128{1, 1, 1, 1}
	if err := FFT(a, false); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(a[0]-4) > 1e-12 {
		t.Fatalf("bin 0 = %v, want 4", a[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(a[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, a[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex exponential at frequency k lands in bin k.
	const n, k = 64, 5
	a := make([]complex128, n)
	for i := range a {
		a[i] = cmplx.Exp(complex(0, 2*math.Pi*k*float64(i)/n))
	}
	if err := FFT(a, false); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		want := 0.0
		if i == k {
			want = n
		}
		if math.Abs(cmplx.Abs(a[i])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude = %f, want %f", i, cmplx.Abs(a[i]), want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12), false); err == nil {
		t.Fatal("length 12 should be rejected")
	}
	if err := FFT(nil, false); err == nil {
		t.Fatal("empty should be rejected")
	}
}

// Property: inverse(forward(x)) == x.
func TestPropertyFFTInverse(t *testing.T) {
	prop := func(seed int64, szRaw uint8) bool {
		n := 1 << (uint(szRaw%7) + 1) // 2..128
		rng := rand.New(rand.NewSource(seed))
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			orig[i] = a[i]
		}
		if err := FFT(a, false); err != nil {
			return false
		}
		if err := FFT(a, true); err != nil {
			return false
		}
		for i := range a {
			if cmplx.Abs(a[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval's theorem — energy is preserved (up to the 1/n
// convention).
func TestPropertyParseval(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 64
		rng := rand.New(rand.NewSource(seed))
		a := make([]complex128, n)
		var timeEnergy float64
		for i := range a {
			a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			timeEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		}
		if err := FFT(a, false); err != nil {
			return false
		}
		var freqEnergy float64
		for i := range a {
			freqEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		}
		return math.Abs(freqEnergy/float64(n)-timeEnergy) < 1e-6*timeEnergy+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DInverse(t *testing.T) {
	g := Synthetic(32, 3)
	orig := append([]complex128(nil), g.Data...)
	if err := FFT2D(g, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(g, true); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip diverged at %d", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := NewGrid(3)
	for i := range g.Data {
		g.Data[i] = complex(float64(i), 0)
	}
	tr := g.Transpose()
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if tr.Data[x*3+y] != g.Data[y*3+x] {
				t.Fatalf("transpose wrong at (%d,%d)", y, x)
			}
		}
	}
}

func TestEncodeDecodeComplex(t *testing.T) {
	v := []complex128{complex(1, -2), complex(0.5, math.Pi)}
	got, err := decodeComplex(encodeComplex(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("complex codec round trip: %v vs %v", got[i], v[i])
		}
	}
}

func TestScaledConfigPowerOfTwo(t *testing.T) {
	cfg := DefaultConfig()
	for _, f := range []float64{1, 0.5, 0.3, 0.1} {
		s := cfg.Scaled(f)
		if s.N&(s.N-1) != 0 || s.N < 8 {
			t.Fatalf("Scaled(%f).N = %d not a power of two >= 8", f, s.N)
		}
	}
}

func TestFFT1DFlopsFormula(t *testing.T) {
	if got := FFT1DFlops(1024); math.Abs(got-5*1024*10) > 1e-9 {
		t.Fatalf("FFT1DFlops(1024) = %f, want %f", got, 5.0*1024*10)
	}
	if FFT1DFlops(1) != 0 {
		t.Fatal("FFT1DFlops(1) should be 0")
	}
}
