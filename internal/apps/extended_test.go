package apps_test

import (
	"testing"

	"tooleval/internal/apps"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
)

// TestExtendedSuiteOnEveryTool runs every SU PDABS suite application
// (Table 2) on every message-passing tool, verifying against the
// sequential references.
func TestExtendedSuiteOnEveryTool(t *testing.T) {
	const scale = 0.15
	pf, err := platform.Get("sp1-switch")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.ExtendedRegistry() {
		for _, toolName := range tools.Names() {
			app, toolName := app, toolName
			t.Run(app.Name+"/"+toolName, func(t *testing.T) {
				factory, err := tools.Factory(toolName)
				if err != nil {
					t.Fatal(err)
				}
				const procs = 4
				res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
					return app.Run(c, scale)
				})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if err := app.Verify(res.Value, procs, scale); err != nil {
					t.Fatalf("verify: %v", err)
				}
			})
		}
	}
}

// TestExtendedSuiteOddProcs exercises non-power-of-two and single
// processor counts, where share arithmetic has its edge cases.
func TestExtendedSuiteOddProcs(t *testing.T) {
	const scale = 0.1
	pf, err := platform.Get("alpha-fddi")
	if err != nil {
		t.Fatal(err)
	}
	factory, err := tools.Factory("p4")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.ExtendedRegistry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, procs := range []int{1, 3, 5} {
				if !app.ValidProcs(procs) {
					continue
				}
				res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
					return app.Run(c, scale)
				})
				if err != nil {
					t.Fatalf("procs=%d: %v", procs, err)
				}
				if err := app.Verify(res.Value, procs, scale); err != nil {
					t.Fatalf("procs=%d verify: %v", procs, err)
				}
			}
		})
	}
}

func TestExtendedRegistryCoversTable2Classes(t *testing.T) {
	classes := map[string]int{}
	for _, a := range apps.ExtendedRegistry() {
		classes[a.Class]++
	}
	for _, want := range []string{"Numerical Algorithms", "Signal/Image Processing", "Simulation/Optimization", "Utilities"} {
		if classes[want] < 3 {
			t.Fatalf("class %q has only %d apps; Table 2 coverage requires more", want, classes[want])
		}
	}
	if len(apps.ExtendedNames()) < 15 {
		t.Fatalf("extended suite has %d apps, want >= 15", len(apps.ExtendedNames()))
	}
}
