package psearch

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestHorspoolKnown(t *testing.T) {
	text := []byte("the cat sat on the mat with the cat")
	count, first := Horspool(text, "cat")
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if first != 4 {
		t.Fatalf("first = %d, want 4", first)
	}
}

func TestHorspoolNoMatch(t *testing.T) {
	count, first := Horspool([]byte("aaaa"), "b")
	if count != 0 || first != -1 {
		t.Fatalf("got (%d,%d), want (0,-1)", count, first)
	}
}

func TestHorspoolOverlapping(t *testing.T) {
	count, _ := Horspool([]byte("aaaa"), "aa")
	if count != 3 {
		t.Fatalf("overlapping matches = %d, want 3", count)
	}
}

func TestHorspoolPatternLongerThanText(t *testing.T) {
	count, first := Horspool([]byte("ab"), "abc")
	if count != 0 || first != -1 {
		t.Fatalf("got (%d,%d)", count, first)
	}
}

// Property: Horspool agrees with the naive counter.
func TestPropertyHorspoolMatchesNaive(t *testing.T) {
	prop := func(textRaw []byte, patRaw uint8) bool {
		// Use a small alphabet so matches actually occur.
		alphabet := "abc"
		text := make([]byte, len(textRaw))
		for i, b := range textRaw {
			text[i] = alphabet[int(b)%len(alphabet)]
		}
		pats := []string{"a", "ab", "abc", "ba", "aa", "cab"}
		pattern := pats[int(patRaw)%len(pats)]
		gotC, gotF := Horspool(text, pattern)
		wantC, wantF := 0, -1
		for i := 0; i+len(pattern) <= len(text); i++ {
			if bytes.HasPrefix(text[i:], []byte(pattern)) {
				wantC++
				if wantF == -1 {
					wantF = i
				}
			}
		}
		return gotC == wantC && gotF == wantF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusContainsPattern(t *testing.T) {
	cfg := Config{CorpusBytes: 64 << 10, Pattern: "needle in text", Seed: 3}
	text := Corpus(cfg)
	if !strings.Contains(string(text), cfg.Pattern) {
		t.Fatal("corpus generator must seed the pattern")
	}
}

func TestHorspoolLimitedBoundary(t *testing.T) {
	text := []byte("xxneedlexx")
	// Match starts at 2; with limit 2 it must not count, with 3 it must.
	if c, _ := horspoolLimited(text, "needle", 2); c != 0 {
		t.Fatalf("limit 2: count = %d, want 0", c)
	}
	if c, f := horspoolLimited(text, "needle", 3); c != 1 || f != 2 {
		t.Fatalf("limit 3: got (%d,%d), want (1,2)", c, f)
	}
}

func TestSequentialFindsSeededMatches(t *testing.T) {
	res, err := Sequential(Config{CorpusBytes: 128 << 10, Pattern: "evaluation methodology", Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches == 0 {
		t.Fatal("no matches in seeded corpus")
	}
	if res.First < 0 {
		t.Fatal("first offset missing")
	}
}
