// Package psearch implements the Parallel Search application of the SU
// PDABS suite (Table 2, Utilities): Boyer-Moore-Horspool substring
// search over a large corpus scattered in chunks (with pattern-length
// overlap so boundary matches are not lost), match counts and first
// positions reduced to the host.
package psearch

import (
	"fmt"

	"tooleval/internal/mpt"
)

// OpsPerByte is the scan cost per corpus byte (skip-table probe).
const OpsPerByte = 4.0

// Config sizes the benchmark.
type Config struct {
	CorpusBytes int
	Pattern     string
	Seed        int64
}

// DefaultConfig scans 1 MB for a recurring phrase.
func DefaultConfig() Config {
	return Config{CorpusBytes: 1 << 20, Pattern: "evaluation methodology", Seed: 67}
}

// Scaled shrinks the corpus.
func (c Config) Scaled(factor float64) Config {
	c.CorpusBytes = int(float64(c.CorpusBytes) * factor)
	if c.CorpusBytes < 4096 {
		c.CorpusBytes = 4096
	}
	return c
}

// Result summarizes the search.
type Result struct {
	Matches int
	First   int // global offset of first match, -1 if none
	Scanned int
}

// Corpus generates deterministic pseudo-text with the pattern seeded in
// at known-ish intervals.
func Corpus(cfg Config) []byte {
	words := []string{"software", "tool", "parallel", "system", "express",
		"network", "primitive", "message", "benchmark", "syracuse"}
	out := make([]byte, 0, cfg.CorpusBytes)
	s := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 19
	for len(out) < cfg.CorpusBytes {
		s = s*6364136223846793005 + 1442695040888963407
		if s%97 == 0 {
			out = append(out, cfg.Pattern...)
		} else {
			out = append(out, words[s%uint64(len(words))]...)
		}
		out = append(out, ' ')
	}
	return out[:cfg.CorpusBytes]
}

// Horspool counts matches of pattern in text, returning the count and
// first offset (-1 if none).
func Horspool(text []byte, pattern string) (count, first int) {
	first = -1
	m := len(pattern)
	if m == 0 || len(text) < m {
		return 0, -1
	}
	var skip [256]int
	for i := range skip {
		skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		skip[pattern[i]] = m - 1 - i
	}
	for pos := 0; pos+m <= len(text); {
		if matchAt(text, pattern, pos) {
			count++
			if first == -1 {
				first = pos
			}
			pos++
			continue
		}
		pos += skip[text[pos+m-1]]
	}
	return count, first
}

func matchAt(text []byte, pattern string, pos int) bool {
	for i := 0; i < len(pattern); i++ {
		if text[pos+i] != pattern[i] {
			return false
		}
	}
	return true
}

// Sequential scans the whole corpus.
func Sequential(cfg Config) (*Result, error) {
	text := Corpus(cfg)
	count, first := Horspool(text, cfg.Pattern)
	return &Result{Matches: count, First: first, Scanned: len(text)}, nil
}

func chunkShare(total, p, r int) (lo, hi int) {
	base, rem := total/p, total%p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel scatters overlapping chunks and reduces (count, first). Tags:
// 90 = chunk, 91 = result.
func Parallel(ctx *mpt.Ctx, cfg Config) (*Result, error) {
	const (
		tagChunk = 90
		tagRes   = 91
	)
	p, me := ctx.Size(), ctx.Rank()
	m := len(cfg.Pattern)

	var myChunk []byte
	var myLo int
	if me == 0 {
		text := Corpus(cfg)
		for r := 1; r < p; r++ {
			lo, hi := chunkShare(len(text), p, r)
			// Overlap by m-1 bytes so boundary matches are seen exactly
			// once (counted by the chunk where they start).
			end := hi + m - 1
			if end > len(text) {
				end = len(text)
			}
			payload := append(mpt.EncodeInt64s([]int64{int64(lo)}), text[lo:end]...)
			if err := ctx.Comm.Send(r, tagChunk, payload); err != nil {
				return nil, fmt.Errorf("psearch scatter to %d: %w", r, err)
			}
		}
		lo, hi := chunkShare(len(text), p, 0)
		end := hi + m - 1
		if end > len(text) {
			end = len(text)
		}
		myChunk, myLo = text[lo:end], lo
	} else {
		msg, err := ctx.Comm.Recv(0, tagChunk)
		if err != nil {
			return nil, fmt.Errorf("psearch chunk recv: %w", err)
		}
		if len(msg.Data) < 8 {
			return nil, fmt.Errorf("psearch: chunk header truncated")
		}
		off, err := mpt.DecodeInt64s(msg.Data[:8])
		if err != nil {
			return nil, err
		}
		myLo, myChunk = int(off[0]), msg.Data[8:]
	}

	// Count matches that START within my nominal share (the overlap tail
	// belongs to the next chunk).
	lo2, hi2 := chunkShare(cfg.CorpusBytes, p, me)
	nominal := hi2 - lo2
	count, first := horspoolLimited(myChunk, cfg.Pattern, nominal)
	ctx.Charge(OpsPerByte * float64(len(myChunk)))
	globalFirst := -1
	if first >= 0 {
		globalFirst = myLo + first
	}

	enc := mpt.EncodeInt64s([]int64{int64(count), int64(globalFirst), int64(nominal)})
	if me != 0 {
		return nil, ctx.Comm.Send(0, tagRes, enc)
	}
	total := &Result{Matches: count, First: globalFirst, Scanned: nominal}
	for r := 1; r < p; r++ {
		msg, err := ctx.Comm.Recv(r, tagRes)
		if err != nil {
			return nil, fmt.Errorf("psearch reduce from %d: %w", r, err)
		}
		v, err := mpt.DecodeInt64s(msg.Data)
		if err != nil {
			return nil, err
		}
		total.Matches += int(v[0])
		if v[1] >= 0 && (total.First == -1 || int(v[1]) < total.First) {
			total.First = int(v[1])
		}
		total.Scanned += int(v[2])
	}
	return total, nil
}

// horspoolLimited counts matches starting before limit. The chunk
// carries an overlap tail so matches straddling the boundary are seen,
// but only the chunk where a match starts counts it.
func horspoolLimited(text []byte, pattern string, limit int) (count, first int) {
	first = -1
	m := len(pattern)
	if m == 0 {
		return 0, -1
	}
	var skip [256]int
	for i := range skip {
		skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		skip[pattern[i]] = m - 1 - i
	}
	for pos := 0; pos+m <= len(text) && pos < limit; {
		if matchAt(text, pattern, pos) {
			count++
			if first == -1 {
				first = pos
			}
			pos++
			continue
		}
		pos += skip[text[pos+m-1]]
	}
	return count, first
}

// VerifyAgainstSequential checks count, first offset and coverage.
func VerifyAgainstSequential(cfg Config, par *Result) error {
	if par == nil {
		return fmt.Errorf("psearch: nil parallel result")
	}
	seq, err := Sequential(cfg)
	if err != nil {
		return err
	}
	if par.Matches != seq.Matches {
		return fmt.Errorf("psearch: %d matches != %d", par.Matches, seq.Matches)
	}
	if par.First != seq.First {
		return fmt.Errorf("psearch: first %d != %d", par.First, seq.First)
	}
	if par.Scanned != seq.Scanned {
		return fmt.Errorf("psearch: scanned %d != %d", par.Scanned, seq.Scanned)
	}
	if seq.Matches == 0 {
		return fmt.Errorf("psearch: corpus contained no matches — workload degenerate")
	}
	return nil
}
