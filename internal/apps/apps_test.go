package apps_test

import (
	"testing"

	"tooleval/internal/apps"
	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
)

// TestEveryAppOnEveryToolVerifies is the suite's core integration test:
// each application runs on each message-passing tool over a simulated
// platform, and rank 0's result must match the sequential reference.
func TestEveryAppOnEveryToolVerifies(t *testing.T) {
	const scale = 0.12 // shrink paper workloads for test speed
	pf, err := platform.Get("alpha-fddi")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.Registry() {
		for _, toolName := range tools.Names() {
			app, toolName := app, toolName
			t.Run(app.Name+"/"+toolName, func(t *testing.T) {
				factory, err := tools.Factory(toolName)
				if err != nil {
					t.Fatal(err)
				}
				procs := 4
				if !app.ValidProcs(procs) {
					t.Fatalf("%s cannot run on %d procs", app.Name, procs)
				}
				res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
					return app.Run(c, scale)
				})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if err := app.Verify(res.Value, procs, scale); err != nil {
					t.Fatalf("verify: %v", err)
				}
				if res.Elapsed <= 0 {
					t.Fatal("no virtual time elapsed")
				}
			})
		}
	}
}

// TestAppsScaleDown checks the paper's core scaling claim for the
// compute-bound applications: more processors, less time (on a fast
// network).
func TestAppsScaleDown(t *testing.T) {
	const scale = 0.25
	pf, err := platform.Get("alpha-fddi")
	if err != nil {
		t.Fatal(err)
	}
	factory, err := tools.Factory("p4")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"jpeg", "montecarlo"} {
		app, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		times := map[int]float64{}
		for _, procs := range []int{1, 4} {
			res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: procs}, func(c *mpt.Ctx) (any, error) {
				return app.Run(c, scale)
			})
			if err != nil {
				t.Fatalf("%s on %d procs: %v", name, procs, err)
			}
			times[procs] = res.Elapsed.Seconds()
		}
		if !(times[4] < times[1]*0.55) {
			t.Fatalf("%s: 4 procs (%f s) should be well under 1 proc (%f s)", name, times[4], times[1])
		}
	}
}

func TestSingleProcRuns(t *testing.T) {
	const scale = 0.1
	pf, err := platform.Get("sp1-switch")
	if err != nil {
		t.Fatal(err)
	}
	factory, err := tools.Factory("pvm")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: 1}, func(c *mpt.Ctx) (any, error) {
				return app.Run(c, scale)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Verify(res.Value, 1, scale); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	names := apps.Names()
	want := []string{"jpeg", "fft2d", "montecarlo", "psrs"}
	if len(names) < len(want) {
		t.Fatalf("registry has %d apps, want at least %d", len(names), len(want))
	}
	for _, n := range want {
		if _, err := apps.Get(n); err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
	}
	if _, err := apps.Get("nonexistent"); err == nil {
		t.Fatal("unknown app should error")
	}
}
