package mpt_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
)

func mustPlatform(t *testing.T, key string) platform.Platform {
	t.Helper()
	pf, err := platform.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func mustFactory(t *testing.T, name string) mpt.Factory {
	t.Helper()
	f, err := tools.Factory(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func forEachTool(t *testing.T, fn func(t *testing.T, name string, f mpt.Factory)) {
	t.Helper()
	for _, name := range tools.Names() {
		name := name
		f := mustFactory(t, name)
		t.Run(name, func(t *testing.T) { fn(t, name, f) })
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		payload := bytes.Repeat([]byte{0xAB}, 10_000)
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			switch c.Rank() {
			case 0:
				if err := c.Comm.Send(1, 7, payload); err != nil {
					return nil, err
				}
				msg, err := c.Comm.Recv(1, 8)
				if err != nil {
					return nil, err
				}
				return msg.Data, nil
			default:
				msg, err := c.Comm.Recv(0, 7)
				if err != nil {
					return nil, err
				}
				return nil, c.Comm.Send(0, 8, msg.Data)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, ok := res.Value.([]byte)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("%s: payload corrupted in transit (got %d bytes)", name, len(got))
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: elapsed = %v, want > 0", name, res.Elapsed)
		}
	})
}

func TestTagAndSourceMatching(t *testing.T) {
	pf := mustPlatform(t, "sun-atm-lan")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 3}, func(c *mpt.Ctx) (any, error) {
			switch c.Rank() {
			case 0:
				// Receive tag 2 before tag 1, even though 1 arrives first;
				// then take rank 2's message by source wildcard.
				m2, err := c.Comm.Recv(1, 2)
				if err != nil {
					return nil, err
				}
				m1, err := c.Comm.Recv(1, 1)
				if err != nil {
					return nil, err
				}
				mAny, err := c.Comm.Recv(mpt.AnySource, mpt.AnyTag)
				if err != nil {
					return nil, err
				}
				return []string{string(m2.Data), string(m1.Data), string(mAny.Data), fmt.Sprint(mAny.Src)}, nil
			case 1:
				if err := c.Comm.Send(0, 1, []byte("first")); err != nil {
					return nil, err
				}
				return nil, c.Comm.Send(0, 2, []byte("second"))
			default:
				return nil, c.Comm.Send(0, 9, []byte("third"))
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.Value.([]string)
		if got[0] != "second" || got[1] != "first" || got[2] != "third" || got[3] != "2" {
			t.Fatalf("%s: selective receive wrong: %v", name, got)
		}
	})
}

func TestFIFOPerPair(t *testing.T) {
	pf := mustPlatform(t, "alpha-fddi")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		const n = 20
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					if err := c.Comm.Send(1, 5, []byte{byte(i)}); err != nil {
						return nil, err
					}
				}
				return nil, nil
			}
			order := make([]byte, 0, n)
			for i := 0; i < n; i++ {
				msg, err := c.Comm.Recv(0, 5)
				if err != nil {
					return nil, err
				}
				order = append(order, msg.Data[0])
			}
			// Report the receive order back to rank 0 via result channel:
			// store in a closure-visible place is racy across ranks, so
			// verify here directly.
			for i := range order {
				if order[i] != byte(i) {
					return nil, fmt.Errorf("out of order: %v", order)
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = res
	})
}

func TestBcastAllToolsAllRoots(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		for root := 0; root < 4; root++ {
			root := root
			payload := []byte(fmt.Sprintf("bcast-from-%d", root))
			res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 4}, func(c *mpt.Ctx) (any, error) {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := c.Comm.Bcast(root, 3, in)
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(out, payload) {
					return nil, fmt.Errorf("rank %d got %q, want %q", c.Rank(), out, payload)
				}
				return string(out), nil
			})
			if err != nil {
				t.Fatalf("%s root=%d: %v", name, root, err)
			}
			if res.Value.(string) != string(payload) {
				t.Fatalf("%s root=%d: rank0 value %v", name, root, res.Value)
			}
		}
	})
}

func TestGlobalSumInt64(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	for _, name := range []string{"p4", "express"} {
		f := mustFactory(t, name)
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 4}, func(c *mpt.Ctx) (any, error) {
			vec := []int64{int64(c.Rank()), 10, int64(c.Rank() * c.Rank())}
			out, err := c.Comm.GlobalSumInt64(vec)
			if err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.Value.([]int64)
		want := []int64{0 + 1 + 2 + 3, 40, 0 + 1 + 4 + 9}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sum[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestPVMGlobalSumNotAvailable(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	f := mustFactory(t, "pvm")
	_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
		_, err := c.Comm.GlobalSumInt64([]int64{1})
		if !errors.Is(err, mpt.ErrNotSupported) {
			return nil, fmt.Errorf("GlobalSumInt64 err = %v, want ErrNotSupported", err)
		}
		_, err = c.Comm.GlobalSumFloat64([]float64{1})
		if !errors.Is(err, mpt.ErrNotSupported) {
			return nil, fmt.Errorf("GlobalSumFloat64 err = %v, want ErrNotSupported", err)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64FallsBackForPVM(t *testing.T) {
	pf := mustPlatform(t, "sun-atm-lan")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 4}, func(c *mpt.Ctx) (any, error) {
			out, err := mpt.SumFloat64(c.Comm, []float64{float64(c.Rank()) + 0.5})
			if err != nil {
				return nil, err
			}
			return out[0], nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := res.Value.(float64), 0.5+1.5+2.5+3.5; got != want {
			t.Fatalf("%s: sum = %v, want %v", name, got, want)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	pf := mustPlatform(t, "sp1-switch")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 4}, func(c *mpt.Ctx) (any, error) {
			// Rank r computes for r*10ms; after the barrier, every rank
			// must be past the slowest rank's compute.
			c.Charge(float64(c.Rank()) * 10e-3 * c.Host.OpsPerSec)
			before := c.Now()
			if err := c.Comm.Barrier(); err != nil {
				return nil, err
			}
			after := c.Now()
			if after < before {
				return nil, fmt.Errorf("time ran backwards")
			}
			// 30ms is the slowest rank's compute time.
			if after.Seconds() < 0.030 {
				return nil, fmt.Errorf("rank %d passed barrier at %v, before slowest rank finished", c.Rank(), after)
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = res
	})
}

func TestDeterministicElapsed(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		run := func() ([]byte, any) {
			res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 4, Seed: 11}, func(c *mpt.Ctx) (any, error) {
				data := make([]byte, 4000)
				c.Rng.Read(data)
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				if err := c.Comm.Send(next, 1, data); err != nil {
					return nil, err
				}
				msg, err := c.Comm.Recv(prev, 1)
				if err != nil {
					return nil, err
				}
				return msg.Data, nil
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return []byte(fmt.Sprint(res.Elapsed, res.PerRank)), res.Value
		}
		a, _ := run()
		b, _ := run()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: nondeterministic timing:\n%s\n%s", name, a, b)
		}
	})
}

func TestSelfSend(t *testing.T) {
	pf := mustPlatform(t, "alpha-fddi")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			if c.Rank() != 0 {
				return nil, nil
			}
			if err := c.Comm.Send(0, 4, []byte("loop")); err != nil {
				return nil, err
			}
			msg, err := c.Comm.Recv(0, 4)
			if err != nil {
				return nil, err
			}
			return string(msg.Data), nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Value.(string) != "loop" {
			t.Fatalf("%s: self-send got %v", name, res.Value)
		}
	})
}

func TestSendValidation(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			if c.Rank() == 0 {
				if err := c.Comm.Send(99, 0, nil); err == nil {
					return nil, fmt.Errorf("send to rank 99 should fail")
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

func TestZeroByteMessages(t *testing.T) {
	pf := mustPlatform(t, "sun-atm-lan")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			if c.Rank() == 0 {
				return nil, c.Comm.Send(1, 0, nil)
			}
			msg, err := c.Comm.Recv(0, 0)
			if err != nil {
				return nil, err
			}
			if len(msg.Data) != 0 {
				return nil, fmt.Errorf("zero-byte message carried %d bytes", len(msg.Data))
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

func TestLargeMessageAllTools(t *testing.T) {
	pf := mustPlatform(t, "sun-ethernet")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		payload := make([]byte, 64*1024)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
			if c.Rank() == 0 {
				if err := c.Comm.Send(1, 1, payload); err != nil {
					return nil, err
				}
				return nil, nil
			}
			msg, err := c.Comm.Recv(0, 1)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(msg.Data, payload) {
				return nil, fmt.Errorf("64KB payload corrupted")
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Elapsed.Milliseconds() < 10 {
			t.Fatalf("%s: 64KB over Ethernet in %v — faster than the wire allows", name, res.Elapsed)
		}
	})
}

// Property: codec round-trips.
func TestPropertyCodecRoundTrips(t *testing.T) {
	if err := quick.Check(func(v []int64) bool {
		got, err := mpt.DecodeInt64s(mpt.EncodeInt64s(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v []float64) bool {
		got, err := mpt.DecodeFloat64s(mpt.EncodeFloat64s(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(v[i] != v[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: XDR opaque round-trips and pads to 4-byte alignment.
func TestPropertyXDRRoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		enc := mpt.XDROpaque(data)
		if len(enc)%4 != 0 {
			return false
		}
		if len(enc) != mpt.XDROpaqueSize(len(data)) {
			return false
		}
		dec, err := mpt.XDROpaqueDecode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXDRDecodeErrors(t *testing.T) {
	if _, err := mpt.XDROpaqueDecode([]byte{1, 2}); err == nil {
		t.Fatal("short buffer should error")
	}
	if _, err := mpt.XDROpaqueDecode([]byte{0, 0, 0, 99, 1, 2, 3, 4}); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestDecodeLengthValidation(t *testing.T) {
	if _, err := mpt.DecodeInt64s(make([]byte, 7)); err == nil {
		t.Fatal("non-multiple-of-8 int64 payload should error")
	}
	if _, err := mpt.DecodeFloat64s(make([]byte, 9)); err == nil {
		t.Fatal("non-multiple-of-8 float64 payload should error")
	}
}
