package mpt

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tooleval/internal/platform"
	"tooleval/internal/sim"
	"tooleval/internal/simnet"
)

// RunConfig parameterizes one simulated SPMD execution.
type RunConfig struct {
	// Procs is the number of ranks (and stations). Required.
	Procs int
	// Seed feeds the per-rank random sources (rank i uses Seed+i).
	Seed int64
	// Faults optionally wraps the fabric with a fault plan.
	Faults simnet.FaultPlan
	// Trace optionally receives the engine execution trace.
	Trace sim.TraceFunc
}

// RunResult reports one simulated execution.
type RunResult struct {
	// Elapsed is the virtual wall-clock of the application phase: from
	// the harness start barrier to the completion of the slowest rank.
	Elapsed time.Duration
	// PerRank is each rank's own completion time relative to the start
	// barrier.
	PerRank []time.Duration
	// Value is whatever rank 0's body returned.
	Value any
	// NetStats snapshots fabric traffic; LoopStats the intra-host
	// channels.
	NetStats  simnet.Stats
	LoopStats simnet.Stats
}

// Body is one rank's program.
type Body func(*Ctx) (any, error)

// Run executes body on cfg.Procs ranks under the given tool over the
// given platform and returns timing and rank-0's result. The virtual
// clock (never the host clock) provides all timing.
func Run(pf platform.Platform, makeTool Factory, cfg RunConfig, body Body) (*RunResult, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpt: RunConfig.Procs = %d, need >= 1", cfg.Procs)
	}
	// Engines are pooled across runs: a benchmark sweep executes
	// hundreds of independent cells, and reusing the event queue and
	// free-list storage keeps the sweep's steady state allocation-free.
	// Reset-on-release guarantees a pooled engine is observationally
	// identical to a fresh one, so memoized results stay deterministic.
	eng := sim.AcquireEngine()
	defer eng.Release()
	if cfg.Trace != nil {
		eng.SetTrace(cfg.Trace)
	}
	var net simnet.Network = pf.NewNetwork(cfg.Procs)
	if cfg.Faults != nil {
		net = simnet.NewFaulty(net, cfg.Faults)
	}
	loop := pf.NewLoopback(cfg.Procs)
	env, err := NewEnv(eng, net, loop, pf.Host, cfg.Procs)
	if err != nil {
		return nil, err
	}
	tool, err := makeTool(env)
	if err != nil {
		return nil, fmt.Errorf("mpt: building tool: %w", err)
	}

	res := &RunResult{PerRank: make([]time.Duration, cfg.Procs)}
	var (
		start    sim.Time
		arrived  int
		gate     sim.WaitQ
		rankErrs = make([]error, cfg.Procs)
	)
	for rank := 0; rank < cfg.Procs; rank++ {
		rank := rank
		eng.Spawn("rank"+itoa(rank), func(p *sim.Proc) {
			comm := tool.NewComm(p, rank)
			ctx := &Ctx{P: p, Comm: comm, Host: pf.Host, Rng: rand.New(rand.NewSource(cfg.Seed + int64(rank)))}
			// Zero-cost start barrier: timing begins when every rank is
			// constructed, so tool setup does not pollute Elapsed.
			arrived++
			if arrived == cfg.Procs {
				start = p.Now()
				gate.WakeAll()
			} else {
				gate.Wait(p, "start-barrier")
			}
			v, err := body(ctx)
			res.PerRank[rank] = (p.Now() - start).Duration()
			if err != nil {
				rankErrs[rank] = fmt.Errorf("rank %d: %w", rank, err)
			}
			if rank == 0 {
				res.Value = v
			}
		})
	}
	runErr := eng.Run()
	res.NetStats = net.Stats()
	res.LoopStats = loop.Stats()
	for _, d := range res.PerRank {
		if d > res.Elapsed {
			res.Elapsed = d
		}
	}
	if err := errors.Join(rankErrs...); err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}
