package mpt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec helpers used by applications and tools to move typed data through
// []byte message payloads. The native encoding is little-endian; PVM's
// XDR wire format (big-endian, 4-byte aligned) is implemented separately
// because the paper charges PVM for its encode/decode pass.

// EncodeInt64s encodes vec little-endian.
func EncodeInt64s(vec []int64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// DecodeInt64s reverses EncodeInt64s.
func DecodeInt64s(data []byte) ([]int64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpt: int64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]int64, len(data)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// EncodeFloat64s encodes vec little-endian IEEE-754.
func EncodeFloat64s(vec []float64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s reverses EncodeFloat64s.
func DecodeFloat64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpt: float64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// EncodeUint32 appends v big-endian to dst (header fields of the daemon
// protocols).
func EncodeUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint32 reads a big-endian uint32 at off.
func DecodeUint32(src []byte, off int) (uint32, error) {
	if off+4 > len(src) {
		return 0, fmt.Errorf("mpt: short header: need 4 bytes at %d, have %d", off, len(src))
	}
	return binary.BigEndian.Uint32(src[off:]), nil
}

// XDROpaque encodes data as an XDR opaque: 4-byte big-endian length,
// payload, zero padding to a 4-byte boundary. This is the real pass PVM
// makes over every outgoing buffer; the simulation both performs it (the
// bytes on the simulated wire are XDR bytes) and charges CPU time for it.
func XDROpaque(data []byte) []byte {
	padded := (len(data) + 3) &^ 3
	out := make([]byte, 4+padded)
	binary.BigEndian.PutUint32(out, uint32(len(data)))
	copy(out[4:], data)
	return out
}

// XDROpaqueDecode reverses XDROpaque.
func XDROpaqueDecode(enc []byte) ([]byte, error) {
	if len(enc) < 4 {
		return nil, fmt.Errorf("mpt: XDR opaque too short: %d bytes", len(enc))
	}
	n := binary.BigEndian.Uint32(enc)
	padded := (int(n) + 3) &^ 3
	if len(enc) < 4+padded {
		return nil, fmt.Errorf("mpt: XDR opaque truncated: header says %d, have %d", n, len(enc)-4)
	}
	out := make([]byte, n)
	copy(out, enc[4:4+n])
	return out, nil
}

// XDROpaqueSize reports the encoded size of a payload without encoding.
func XDROpaqueSize(payloadLen int) int { return 4 + ((payloadLen + 3) &^ 3) }
