package mpt

import (
	"errors"
	"fmt"
)

// Reusable collective algorithms, parameterized over a tool's point-to-
// point primitives. Tools pick the algorithm that matches their 1995
// implementation: p4 uses the binomial tree for broadcast and global
// operations, Express broadcasts linearly from the root (the paper's
// "worst performance" broadcast) but combines over a tree, and PVM's
// multicast is a daemon-level fan-out implemented in its own package.

// BinomialBcast distributes the root's data to all ranks over a binomial
// spanning tree: round k has 2^k informed ranks, each forwarding to a
// partner 2^k away (in root-relative numbering).
func BinomialBcast(c Comm, root, tag int, data []byte) ([]byte, error) {
	n := c.Size()
	if err := validRank(n, root); err != nil {
		return nil, err
	}
	me := (c.Rank() - root + n) % n
	if me != 0 {
		// Wait for my copy from the unique partner that informs me: my
		// relative rank with its highest set bit cleared. Receiving from
		// the exact source keeps back-to-back collectives from cross-
		// matching each other's traffic.
		hb := 1
		for hb<<1 <= me {
			hb <<= 1
		}
		src := (me&^hb + root) % n
		msg, err := c.Recv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("binomial bcast recv from %d: %w", src, err)
		}
		data = msg.Data
	}
	// Forward: rank r (relative) becomes active once informed; in round k
	// it sends to r + 2^k when r < 2^k.
	for mask := 1; mask < n; mask <<= 1 {
		if me < mask && me+mask < n {
			dst := (me + mask + root) % n
			if err := c.Send(dst, tag, data); err != nil {
				return nil, fmt.Errorf("binomial bcast send to %d: %w", dst, err)
			}
		}
		if me >= mask && me < mask<<1 {
			// Already received above; nothing further this round.
			continue
		}
	}
	return data, nil
}

// LinearBcast has the root send a separate copy to every other rank in
// rank order — Express's exbroadcast, whose sequential fan-out is why the
// paper finds it the slowest broadcast.
func LinearBcast(c Comm, root, tag int, data []byte) ([]byte, error) {
	n := c.Size()
	if err := validRank(n, root); err != nil {
		return nil, err
	}
	if c.Rank() == root {
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, data); err != nil {
				return nil, fmt.Errorf("linear bcast send to %d: %w", r, err)
			}
		}
		return data, nil
	}
	msg, err := c.Recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("linear bcast recv: %w", err)
	}
	return msg.Data, nil
}

// TreeReduce folds every rank's contribution to rank root over a binomial
// tree. combine must be associative and commutative; it receives the
// accumulated local value and a peer's encoded contribution.
func TreeReduce(c Comm, root, tag int, local []byte, combine func(acc, peer []byte) ([]byte, error)) ([]byte, error) {
	n := c.Size()
	if err := validRank(n, root); err != nil {
		return nil, err
	}
	me := (c.Rank() - root + n) % n
	acc := local
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			dst := ((me &^ mask) + root) % n
			if err := c.Send(dst, tag, acc); err != nil {
				return nil, fmt.Errorf("tree reduce send to %d: %w", dst, err)
			}
			return nil, nil // contributed; only root returns data
		}
		if me|mask < n {
			src := ((me | mask) + root) % n
			msg, err := c.Recv(src, tag)
			if err != nil {
				return nil, fmt.Errorf("tree reduce recv from %d: %w", src, err)
			}
			acc, err = combine(acc, msg.Data)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// TreeBarrier synchronizes all ranks with a reduce-then-broadcast of
// empty messages.
func TreeBarrier(c Comm, tag int) error {
	_, err := TreeReduce(c, 0, tag, nil, func(acc, _ []byte) ([]byte, error) { return acc, nil })
	if err != nil {
		return err
	}
	_, err = BinomialBcast(c, 0, tag, nil)
	return err
}

// CombineSumInt64 is the element-wise int64 vector sum used by the
// global-summation primitive (Figure 4's benchmark).
func CombineSumInt64(acc, peer []byte) ([]byte, error) {
	a, err := DecodeInt64s(acc)
	if err != nil {
		return nil, err
	}
	b, err := DecodeInt64s(peer)
	if err != nil {
		return nil, err
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("mpt: global sum length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return EncodeInt64s(a), nil
}

// CombineSumFloat64 is the float64 variant of CombineSumInt64.
func CombineSumFloat64(acc, peer []byte) ([]byte, error) {
	a, err := DecodeFloat64s(acc)
	if err != nil {
		return nil, err
	}
	b, err := DecodeFloat64s(peer)
	if err != nil {
		return nil, err
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("mpt: global sum length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return EncodeFloat64s(a), nil
}

// GlobalSumViaTree implements the combine primitive (reduce to rank 0,
// broadcast the result) used by p4's p4_global_op and Express's
// excombine.
func GlobalSumViaTree(c Comm, local []byte, combine func(acc, peer []byte) ([]byte, error), bcast func(root, tag int, data []byte) ([]byte, error)) ([]byte, error) {
	reduced, err := TreeReduce(c, 0, TagReduce, local, combine)
	if err != nil {
		return nil, err
	}
	return bcast(0, TagBcast, reduced)
}

// ManualSumFloat64 is the application-level fallback a 1995 programmer
// wrote when the tool lacked a global operation (PVM): gather every
// contribution to rank 0 with point-to-point sends, add locally, and
// broadcast the result back.
func ManualSumFloat64(c Comm, vec []float64) ([]float64, error) {
	n := c.Size()
	if c.Rank() == 0 {
		acc := make([]float64, len(vec))
		copy(acc, vec)
		for i := 1; i < n; i++ {
			msg, err := c.Recv(AnySource, TagGatherOp)
			if err != nil {
				return nil, fmt.Errorf("manual sum gather: %w", err)
			}
			peer, err := DecodeFloat64s(msg.Data)
			if err != nil {
				return nil, err
			}
			if len(peer) != len(acc) {
				return nil, fmt.Errorf("mpt: manual sum length mismatch: %d vs %d", len(peer), len(acc))
			}
			for k := range acc {
				acc[k] += peer[k]
			}
		}
		out, err := c.Bcast(0, TagBcast, EncodeFloat64s(acc))
		if err != nil {
			return nil, err
		}
		return DecodeFloat64s(out)
	}
	if err := c.Send(0, TagGatherOp, EncodeFloat64s(vec)); err != nil {
		return nil, fmt.Errorf("manual sum send: %w", err)
	}
	out, err := c.Bcast(0, TagBcast, nil)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out)
}

// SumFloat64 uses the tool's global operation when available and falls
// back to the manual gather otherwise, exactly as the paper's application
// suite had to.
func SumFloat64(c Comm, vec []float64) ([]float64, error) {
	out, err := c.GlobalSumFloat64(vec)
	if err == nil {
		return out, nil
	}
	if errors.Is(err, ErrNotSupported) {
		return ManualSumFloat64(c, vec)
	}
	return nil, err
}
