package mpt

import (
	"math/rand"
	"time"

	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

// Ctx is what an SPMD application body receives: the rank's process, its
// tool endpoint, the host cost model, and a deterministic per-rank random
// source. The simulation moves real data and computes real results; Ctx's
// Charge is how an application converts the operation count of the real
// work it just did into virtual CPU time on the 1995 host.
type Ctx struct {
	P    *sim.Proc
	Comm Comm
	Host platform.Host
	Rng  *rand.Rand
}

// Rank is shorthand for Comm.Rank.
func (c *Ctx) Rank() int { return c.Comm.Rank() }

// Size is shorthand for Comm.Size.
func (c *Ctx) Size() int { return c.Comm.Size() }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.P.Now() }

// Charge advances this rank's virtual clock by the CPU time ops
// operations take on the platform host.
func (c *Ctx) Charge(ops float64) {
	d := c.Host.CostOf(ops)
	if d > 0 {
		c.P.Sleep(d)
	}
}

// ChargeDuration advances this rank's virtual clock by an explicit
// duration (used by cost models that are not op-count based).
func (c *Ctx) ChargeDuration(d time.Duration) {
	if d > 0 {
		c.P.Sleep(d)
	}
}
