// Package p4 models the Argonne p4 system's message passing: tasks hold
// direct stream connections to one another, sends are asynchronous once
// the data is handed to the transport, and the per-message software path
// is short — "a very small amount of overhead to the underlying transport
// layer", which the paper credits for p4 winning every primitive at the
// Tool Performance Level.
//
// Primitive name mapping (Table 1): p4_send / p4_recv, p4_broadcast
// (binomial spanning tree), ring via send/recv, p4_global_op (tree
// combine).
package p4

import (
	"fmt"

	"tooleval/internal/mpt"
	"tooleval/internal/sim"
)

// Params are p4's software cost constants, expressed in host operations
// so the same tool runs proportionally faster on the Alpha cluster than
// on a SPARCstation ELC — as in the paper.
type Params struct {
	// SendFixedOps / RecvFixedOps model the per-call library + kernel
	// entry path.
	SendFixedOps float64
	RecvFixedOps float64
	// SendOpsPerByte / RecvOpsPerByte model the single user-kernel copy
	// (plus checksum) each side performs.
	SendOpsPerByte float64
	RecvOpsPerByte float64
	// ChunkBytes is the socket-write granularity; ChunkOps the per-write
	// syscall cost.
	ChunkBytes int
	ChunkOps   float64
	// HeaderBytes is p4's small wire header per chunk.
	HeaderBytes int
}

// DefaultParams holds the calibrated constants (see EXPERIMENTS.md for
// the fit against Table 3).
func DefaultParams() Params {
	return Params{
		SendFixedOps:   5200,
		RecvFixedOps:   5200,
		SendOpsPerByte: 1.55,
		RecvOpsPerByte: 1.00,
		ChunkBytes:     4096,
		ChunkOps:       700,
		HeaderBytes:    16,
	}
}

// Tool implements mpt.Tool.
type Tool struct {
	env   *mpt.Env
	par   Params
	stats mpt.Stats
}

var _ mpt.Tool = (*Tool)(nil)

// New builds a p4 instance with default parameters.
func New(env *mpt.Env) (mpt.Tool, error) { return NewWithParams(env, DefaultParams()) }

// NewWithParams builds a p4 instance with explicit parameters (used by
// the ablation benchmarks).
func NewWithParams(env *mpt.Env, par Params) (*Tool, error) {
	if par.ChunkBytes <= 0 {
		return nil, fmt.Errorf("p4: ChunkBytes must be positive, got %d", par.ChunkBytes)
	}
	return &Tool{env: env, par: par}, nil
}

// Name implements mpt.Tool.
func (t *Tool) Name() string { return "p4" }

// Stats returns tool-level counters.
func (t *Tool) Stats() mpt.Stats { return t.stats }

// NewComm implements mpt.Tool.
func (t *Tool) NewComm(p *sim.Proc, rank int) mpt.Comm {
	return &comm{t: t, p: p, rank: rank}
}

type comm struct {
	t    *Tool
	p    *sim.Proc
	rank int
}

var _ mpt.Comm = (*comm)(nil)

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.t.env.N }

// Send implements p4_send: the sender charges its library path and the
// user-to-kernel copy of the whole buffer (the write() semantics of the
// stream transport), then the kernel streams the message to the
// destination in socket-sized chunks that serialize on the fabric.
func (c *comm) Send(dst, tag int, data []byte) error {
	env, par := c.t.env, c.t.par
	if dst < 0 || dst >= env.N {
		return fmt.Errorf("p4_send: bad destination %d", dst)
	}
	c.t.stats.Sends++
	c.t.stats.BytesSent += int64(len(data))
	sentAt := c.p.Now()
	c.p.Sleep(env.Cost(par.SendFixedOps + par.SendOpsPerByte*float64(len(data))))

	msg := &mpt.Message{Src: c.rank, Tag: tag, Data: mpt.CloneData(data), SentAt: sentAt}
	if dst == c.rank {
		arr, err := env.Loop.Transmit(c.p.Now(), c.rank, c.rank, len(data)+par.HeaderBytes)
		if err != nil {
			return fmt.Errorf("p4_send: %w", err)
		}
		env.DeliverAt(arr, env.Boxes[dst], msg)
		return nil
	}
	var last sim.Time
	remaining := len(data)
	for first := true; first || remaining > 0; first = false {
		chunk := remaining
		if chunk > par.ChunkBytes {
			chunk = par.ChunkBytes
		}
		remaining -= chunk
		c.p.Sleep(env.Cost(par.ChunkOps))
		arr, err := env.Net.Transmit(c.p.Now(), c.rank, dst, chunk+par.HeaderBytes)
		if err != nil {
			return fmt.Errorf("p4_send: to %d: %w", dst, err)
		}
		last = arr
	}
	env.DeliverAt(last, env.Boxes[dst], msg)
	return nil
}

// Recv implements p4_recv: block for a matching message, then charge the
// receive-side copy.
func (c *comm) Recv(src, tag int) (*mpt.Message, error) {
	env, par := c.t.env, c.t.par
	msg := env.Boxes[c.rank].Get(c.p, src, tag)
	if msg == nil {
		return nil, fmt.Errorf("p4_recv: interrupted")
	}
	c.t.stats.Recvs++
	c.p.Sleep(env.Cost(par.RecvFixedOps + par.RecvOpsPerByte*float64(len(msg.Data))))
	return msg, nil
}

// Bcast implements p4_broadcast over a binomial spanning tree.
func (c *comm) Bcast(root, tag int, data []byte) ([]byte, error) {
	return mpt.BinomialBcast(c, root, mixTag(tag, mpt.TagBcast), data)
}

// GlobalSumInt64 implements p4_global_op(sum) as a tree reduce plus tree
// broadcast, charging the element-wise additions.
func (c *comm) GlobalSumInt64(vec []int64) ([]int64, error) {
	c.chargeCombine(len(vec))
	out, err := mpt.GlobalSumViaTree(c, mpt.EncodeInt64s(vec), mpt.CombineSumInt64, c.Bcast)
	if err != nil {
		return nil, fmt.Errorf("p4_global_op: %w", err)
	}
	return mpt.DecodeInt64s(out)
}

// GlobalSumFloat64 is the float64 variant of GlobalSumInt64.
func (c *comm) GlobalSumFloat64(vec []float64) ([]float64, error) {
	c.chargeCombine(len(vec))
	out, err := mpt.GlobalSumViaTree(c, mpt.EncodeFloat64s(vec), mpt.CombineSumFloat64, c.Bcast)
	if err != nil {
		return nil, fmt.Errorf("p4_global_op: %w", err)
	}
	return mpt.DecodeFloat64s(out)
}

// Barrier synchronizes all ranks over the binomial tree.
func (c *comm) Barrier() error {
	return mpt.TreeBarrier(c, mpt.TagBarrier)
}

func (c *comm) chargeCombine(n int) {
	// ~2 ops per element per tree level for the local additions.
	c.p.Sleep(c.t.env.Cost(2 * float64(n)))
}

// mixTag keeps internal collective traffic out of the user tag space
// while still separating concurrent collectives with different user tags.
func mixTag(user, internal int) int {
	if user < 0 {
		return internal
	}
	return internal*1_000_003 - user
}
