package p4

import (
	"testing"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

func newTestEnv(t *testing.T, n int) *mpt.Env {
	t.Helper()
	pf, err := platform.Get("alpha-fddi")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	env, err := mpt.NewEnv(eng, pf.NewNetwork(n), pf.NewLoopback(n), pf.Host, n)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestParamValidation(t *testing.T) {
	env := newTestEnv(t, 2)
	bad := DefaultParams()
	bad.ChunkBytes = 0
	if _, err := NewWithParams(env, bad); err == nil {
		t.Fatal("zero ChunkBytes should be rejected")
	}
}

func TestSendIsAsync(t *testing.T) {
	// p4_send returns after the local software path; the wire time of a
	// large message must NOT be on the sender's clock.
	env := newTestEnv(t, 2)
	tool, err := NewWithParams(env, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var sendReturned, recvDone sim.Time
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, make([]byte, 256<<10)); err != nil {
			t.Errorf("send: %v", err)
		}
		sendReturned = p.Now()
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		if _, err := c.Recv(0, 1); err != nil {
			t.Errorf("recv: %v", err)
		}
		recvDone = p.Now()
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sendReturned >= recvDone {
		t.Fatalf("send returned at %v, after delivery at %v — not asynchronous", sendReturned, recvDone)
	}
}

func TestFasterHostsShrinkSoftwareCost(t *testing.T) {
	rtt := func(pfKey string) sim.Time {
		pf, err := platform.Get(pfKey)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		env, err := mpt.NewEnv(eng, pf.NewNetwork(2), pf.NewLoopback(2), pf.Host, 2)
		if err != nil {
			t.Fatal(err)
		}
		tool, err := NewWithParams(env, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var rtt sim.Time
		eng.Spawn("r0", func(p *sim.Proc) {
			c := tool.NewComm(p, 0)
			t0 := p.Now()
			if err := c.Send(1, 1, nil); err != nil {
				t.Errorf("send: %v", err)
			}
			if _, err := c.Recv(1, 1); err != nil {
				t.Errorf("recv: %v", err)
			}
			rtt = p.Now() - t0
		})
		eng.Spawn("r1", func(p *sim.Proc) {
			c := tool.NewComm(p, 1)
			msg, err := c.Recv(0, 1)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if err := c.Send(0, 1, msg.Data); err != nil {
				t.Errorf("send: %v", err)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	// Same tool constants: the 150 MHz Alpha must beat the 33 MHz ELC at
	// 0 bytes (pure software path).
	if alpha, elc := rtt("alpha-fddi"), rtt("sun-ethernet"); alpha >= elc {
		t.Fatalf("alpha RTT %v should beat ELC RTT %v", alpha, elc)
	}
}

func TestChunkingCountsWireChunks(t *testing.T) {
	env := newTestEnv(t, 2)
	par := DefaultParams()
	tool, err := NewWithParams(env, par)
	if err != nil {
		t.Fatal(err)
	}
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, make([]byte, 3*par.ChunkBytes+1)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		if _, err := c.Recv(0, 1); err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := env.Net.Stats().Chunks; got != 4 {
		t.Fatalf("wire chunks = %d, want 4", got)
	}
	st := tool.Stats()
	if st.Sends != 1 || st.BytesSent != int64(3*par.ChunkBytes+1) {
		t.Fatalf("stats = %+v", st)
	}
}
