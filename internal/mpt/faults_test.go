package mpt_test

import (
	"errors"
	"testing"
	"time"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
	"tooleval/internal/simnet"
)

// The paper's exception-handling criterion (§2.1.4): "network hardware
// and software failures must be reported to the user's application". All
// three 1995 tools score PS at best; these tests pin down the behaviour
// the simulation reproduces:
//
//   - p4 and Express surface the failure as an error from the send call
//     (synchronous transports);
//   - PVM's asynchronous daemon route accepts the message, retries in the
//     background, gives up silently — and the application hangs in recv,
//     which the engine reports as a deadlock with diagnostics.

func pingBody(payload []byte) mpt.Body {
	return func(c *mpt.Ctx) (any, error) {
		const tag = 1
		if c.Rank() == 0 {
			// Let the fault plan's trigger time pass.
			c.ChargeDuration(10 * time.Millisecond)
			if err := c.Comm.Send(1, tag, payload); err != nil {
				return nil, err
			}
			return nil, nil
		}
		msg, err := c.Comm.Recv(0, tag)
		if err != nil {
			return nil, err
		}
		_ = msg
		return nil, nil
	}
}

func TestP4SurfacesLinkFailure(t *testing.T) {
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFactory(t, "p4")
	cfg := mpt.RunConfig{Procs: 2, Faults: simnet.LinkDownAfter(sim.Time(5 * time.Millisecond))}
	_, err = mpt.Run(pf, f, cfg, pingBody(make([]byte, 1024)))
	if err == nil {
		t.Fatal("p4 should report the failure")
	}
	if !errors.Is(err, simnet.ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown in the chain", err)
	}
}

func TestExpressSurfacesLinkFailure(t *testing.T) {
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFactory(t, "express")
	cfg := mpt.RunConfig{Procs: 2, Faults: simnet.LinkDownAfter(sim.Time(5 * time.Millisecond))}
	_, err = mpt.Run(pf, f, cfg, pingBody(make([]byte, 1024)))
	if err == nil {
		t.Fatal("express should report the failure")
	}
	if !errors.Is(err, simnet.ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown in the chain", err)
	}
}

func TestPVMHangsOnLinkFailure(t *testing.T) {
	// PVM's pvm_send is asynchronous: the local daemon takes the message,
	// retries towards the dead link, and eventually drops it. The sender
	// never learns; the receiver waits forever. The engine converts that
	// into a deadlock diagnosis naming the stuck process — exactly the
	// debugging experience the paper's ADL assessment complains about.
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFactory(t, "pvm")
	cfg := mpt.RunConfig{Procs: 2, Faults: simnet.LinkDownAfter(sim.Time(5 * time.Millisecond))}
	_, err = mpt.Run(pf, f, cfg, pingBody(make([]byte, 1024)))
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError (PVM hangs silently)", err)
	}
	found := false
	for _, b := range dl.Blocked {
		if b == "rank1 (recv src=0 tag=1)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock diagnostics %v should name the blocked receiver", dl.Blocked)
	}
}

func TestStationDownOnlyAffectsItsPaths(t *testing.T) {
	pf, err := platform.Get("sun-atm-lan")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFactory(t, "p4")
	cfg := mpt.RunConfig{Procs: 4, Faults: simnet.StationDown(3)}
	res, err := mpt.Run(pf, f, cfg, func(c *mpt.Ctx) (any, error) {
		const tag = 2
		// Ranks 0..2 exchange among themselves; rank 3 stays silent.
		if c.Rank() == 3 {
			return nil, nil
		}
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		if err := c.Comm.Send(next, tag, []byte("ok")); err != nil {
			return nil, err
		}
		_, err := c.Comm.Recv(prev, tag)
		return nil, err
	})
	if err != nil {
		t.Fatalf("healthy stations should communicate: %v", err)
	}
	_ = res
}

func TestRecoveryAfterTransientFault(t *testing.T) {
	// A fault window that ends: PVM's retransmission protocol should
	// deliver once the link returns (within the retry budget).
	pf, err := platform.Get("sun-atm-lan")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFactory(t, "pvm")
	window := func(now sim.Time, src, dst int) bool {
		t0 := sim.Time(2 * time.Millisecond)
		t1 := sim.Time(15 * time.Millisecond)
		return now >= t0 && now < t1
	}
	cfg := mpt.RunConfig{Procs: 2, Faults: window}
	res, err := mpt.Run(pf, f, cfg, func(c *mpt.Ctx) (any, error) {
		const tag = 3
		if c.Rank() == 0 {
			c.ChargeDuration(3 * time.Millisecond) // send inside the outage
			return nil, c.Comm.Send(1, tag, []byte("retry me"))
		}
		msg, err := c.Comm.Recv(0, tag)
		if err != nil {
			return nil, err
		}
		return string(msg.Data), nil
	})
	if err != nil {
		t.Fatalf("message should survive a transient outage via retransmission: %v", err)
	}
	_ = res
}
