package pvm

import (
	"encoding/binary"
	"fmt"

	"tooleval/internal/mpt"
	"tooleval/internal/sim"
)

// daemon is one pvmd: a single-threaded select-loop process that routes
// task messages, runs the acknowledged fragment protocol towards peer
// daemons, and reassembles incoming messages for local delivery. Being
// single-threaded is load-bearing: while the daemon is fragmenting an
// outgoing message or generating acknowledgements it is not doing the
// other, which is part of PVM's cost under bidirectional traffic.
type daemon struct {
	t       *Tool
	station int
	box     *mpt.Mailbox
	proc    *sim.Proc

	// outgoing streams, FIFO; streams[0] is active (store-and-forward:
	// one message at a time towards the wire).
	streams []*outStream
	// reassembly state by msgid.
	assembling map[uint32]*inStream
	// delivered msgids (to drop retransmitted duplicates of completed
	// messages).
	delivered map[uint32]bool

	retransmits int64
	acks        int64
	dropped     int64
}

type outStream struct {
	msgid      uint32
	srcTask    int
	dstTask    int
	dstStation int
	tag        int
	payload    []byte
	nfrags     int
	nextFrag   int
	acked      []bool
	ackedCount int
	inFlight   int
	retries    []int
	dead       bool
}

type inStream struct {
	srcTask int
	dstTask int
	tag     int
	nfrags  int
	got     []bool
	chunks  [][]byte
	count   int
}

func newDaemon(t *Tool, station int) *daemon {
	return &daemon{
		t:          t,
		station:    station,
		box:        mpt.NewMailbox(t.env.Eng),
		assembling: make(map[uint32]*inStream),
		delivered:  make(map[uint32]bool),
	}
}

// run is the daemon main loop.
func (d *daemon) run(p *sim.Proc) {
	p.SetDaemon(true)
	d.proc = p
	for {
		m := d.box.Get(p, mpt.AnySource, mpt.AnyTag)
		if m == nil {
			return // engine shutting down
		}
		if len(m.Data) == 0 {
			continue
		}
		switch m.Data[0] {
		case kindRoute:
			d.handleRoute(m)
		case kindMcast:
			d.handleMcast(m)
		case kindFrag:
			d.handleFrag(m)
		case kindAck:
			d.handleAck(m)
		case kindTimeout:
			d.handleTimeout(m)
		}
		d.pump()
	}
}

func (d *daemon) env() *mpt.Env { return d.t.env }

func (d *daemon) handleRoute(m *mpt.Message) {
	par := d.t.par
	data := m.Data
	srcTask := int(binary.BigEndian.Uint32(data[1:]))
	dstTask := int(binary.BigEndian.Uint32(data[5:]))
	tag := bitsTag(binary.BigEndian.Uint32(data[9:]))
	paylen := int(binary.BigEndian.Uint32(data[13:]))
	payload := data[17 : 17+paylen]
	d.proc.Sleep(d.env().Cost(par.DaemonDispatchOps))
	if dstTask == d.station {
		d.deliverLocal(srcTask, dstTask, tag, payload)
		return
	}
	d.enqueue(srcTask, dstTask, tag, payload)
}

func (d *daemon) handleMcast(m *mpt.Message) {
	par := d.t.par
	data := m.Data
	srcTask := int(binary.BigEndian.Uint32(data[1:]))
	tag := bitsTag(binary.BigEndian.Uint32(data[5:]))
	ndst := int(binary.BigEndian.Uint16(data[9:]))
	dsts := make([]int, ndst)
	off := 11
	for i := range dsts {
		dsts[i] = int(binary.BigEndian.Uint16(data[off:]))
		off += 2
	}
	paylen := int(binary.BigEndian.Uint32(data[off:]))
	payload := data[off+4 : off+4+paylen]
	d.proc.Sleep(d.env().Cost(par.DaemonDispatchOps))
	for _, dst := range dsts {
		if dst == d.station {
			d.deliverLocal(srcTask, dst, tag, payload)
			continue
		}
		d.enqueue(srcTask, dst, tag, payload)
	}
}

// deliverLocal hands a fully assembled message to a task on this station
// over the loopback channel.
func (d *daemon) deliverLocal(srcTask, dstTask, tag int, payload []byte) {
	env, par := d.env(), d.t.par
	arr, err := env.Loop.Transmit(d.proc.Now(), d.station, d.station, len(payload)+par.HeaderBytes)
	if err != nil {
		d.dropped++
		return
	}
	env.DeliverAt(arr, env.Boxes[dstTask], &mpt.Message{
		Src: srcTask, Tag: tag, Data: mpt.CloneData(payload),
	})
}

func (d *daemon) enqueue(srcTask, dstTask, tag int, payload []byte) {
	par := d.t.par
	d.t.nextMsg++
	nfrags := (len(payload) + par.FragBytes - 1) / par.FragBytes
	if nfrags == 0 {
		nfrags = 1
	}
	d.streams = append(d.streams, &outStream{
		msgid:      d.t.nextMsg,
		srcTask:    srcTask,
		dstTask:    dstTask,
		dstStation: dstTask, // one task per station
		tag:        tag,
		payload:    mpt.CloneData(payload),
		nfrags:     nfrags,
		acked:      make([]bool, nfrags),
		retries:    make([]int, nfrags),
	})
}

// pump advances the active outgoing stream: send fragments while the
// window allows, then wait for acks (handled by the main loop).
func (d *daemon) pump() {
	par := d.t.par
	for len(d.streams) > 0 {
		s := d.streams[0]
		if s.dead || s.ackedCount == s.nfrags {
			copy(d.streams, d.streams[1:])
			d.streams[len(d.streams)-1] = nil
			d.streams = d.streams[:len(d.streams)-1]
			continue
		}
		for s.inFlight < par.Window && s.nextFrag < s.nfrags {
			d.sendFrag(s, s.nextFrag)
			s.nextFrag++
			s.inFlight++
		}
		return // wait for acks/timeouts before sending more
	}
}

func (d *daemon) sendFrag(s *outStream, frag int) {
	env, par := d.env(), d.t.par
	lo := frag * par.FragBytes
	hi := lo + par.FragBytes
	if hi > len(s.payload) {
		hi = len(s.payload)
	}
	var chunk []byte
	if lo < hi {
		chunk = s.payload[lo:hi]
	}
	d.proc.Sleep(env.Cost(par.FragSendOps) + par.FragSchedLatency)
	wire := encodeFrag(s.msgid, frag, s.nfrags, s.srcTask, s.dstTask, s.tag, chunk)
	arr, err := env.Net.Transmit(d.proc.Now(), d.station, s.dstStation, len(wire))
	if err == nil {
		peer := d.t.daemons[s.dstStation]
		env.DeliverAt(arr, peer.box, &mpt.Message{Src: d.station, Tag: kindFrag, Data: wire})
	}
	// Arm the retransmission timer whether or not the transmit succeeded;
	// the timeout path enforces MaxRetries and eventually drops. Like the
	// real pvmd, the timeout backs off exponentially so congestion-induced
	// delays (retransmit storms on a loaded Ethernet) eventually drain
	// rather than cascading into a dropped message.
	backoff := s.retries[frag]
	if backoff > 6 {
		backoff = 6
	}
	rto := par.RTO << uint(backoff)
	msgid, fragNo := s.msgid, frag
	env.Eng.After(rto, "pvmd-rto", func() {
		d.box.Put(&mpt.Message{Src: d.station, Tag: kindTimeout, Data: encodeTimeout(msgid, fragNo)})
	})
}

func (d *daemon) handleFrag(m *mpt.Message) {
	env, par := d.env(), d.t.par
	data := m.Data
	msgid := binary.BigEndian.Uint32(data[1:])
	frag := int(binary.BigEndian.Uint16(data[5:]))
	nfrags := int(binary.BigEndian.Uint16(data[7:]))
	srcTask := int(binary.BigEndian.Uint32(data[9:]))
	dstTask := int(binary.BigEndian.Uint32(data[13:]))
	tag := bitsTag(binary.BigEndian.Uint32(data[17:]))
	paylen := int(binary.BigEndian.Uint32(data[21:]))
	chunk := data[25 : 25+paylen]

	// The daemon acknowledges every fragment — including duplicates, whose
	// original ack may have been what got lost.
	d.proc.Sleep(env.Cost(par.FragRecvOps))
	ack := encodeAck(msgid, frag)
	arr, err := env.Net.Transmit(d.proc.Now(), d.station, m.Src, len(ack)+par.AckBytes)
	if err == nil {
		peer := d.t.daemons[m.Src]
		env.DeliverAt(arr, peer.box, &mpt.Message{Src: d.station, Tag: kindAck, Data: ack})
		d.acks++
	}
	if d.delivered[msgid] {
		return // duplicate of a completed message
	}
	st := d.assembling[msgid]
	if st == nil {
		st = &inStream{
			srcTask: srcTask, dstTask: dstTask, tag: tag, nfrags: nfrags,
			got: make([]bool, nfrags), chunks: make([][]byte, nfrags),
		}
		d.assembling[msgid] = st
	}
	if frag >= st.nfrags || st.got[frag] {
		return
	}
	st.got[frag] = true
	st.chunks[frag] = mpt.CloneData(chunk)
	st.count++
	if st.count == st.nfrags {
		var payload []byte
		for _, c := range st.chunks {
			payload = append(payload, c...)
		}
		delete(d.assembling, msgid)
		d.delivered[msgid] = true
		d.proc.Sleep(env.Cost(par.DaemonDispatchOps))
		d.deliverLocal(st.srcTask, st.dstTask, st.tag, payload)
	}
}

func (d *daemon) handleAck(m *mpt.Message) {
	msgid := binary.BigEndian.Uint32(m.Data[1:])
	frag := int(binary.BigEndian.Uint16(m.Data[5:]))
	s := d.findStream(msgid)
	if s == nil || frag >= s.nfrags || s.acked[frag] {
		return
	}
	s.acked[frag] = true
	s.ackedCount++
	if s.inFlight > 0 {
		s.inFlight--
	}
}

func (d *daemon) handleTimeout(m *mpt.Message) {
	par := d.t.par
	msgid := binary.BigEndian.Uint32(m.Data[1:])
	frag := int(binary.BigEndian.Uint16(m.Data[5:]))
	s := d.findStream(msgid)
	if s == nil || s.dead || frag >= s.nfrags || s.acked[frag] {
		return
	}
	if s.retries[frag] >= par.MaxRetries {
		// Give up on the whole message — PVM's famously thin error story.
		s.dead = true
		d.dropped++
		return
	}
	s.retries[frag]++
	d.retransmits++
	d.sendFrag(s, frag)
}

func (d *daemon) findStream(msgid uint32) *outStream {
	for _, s := range d.streams {
		if s.msgid == msgid {
			return s
		}
	}
	return nil
}

// String aids debugging.
func (d *daemon) String() string {
	return fmt.Sprintf("pvmd%d{out=%d, assembling=%d}", d.station, len(d.streams), len(d.assembling))
}
