package pvm

import (
	"bytes"
	"testing"
	"testing/quick"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

func newTestEnv(t *testing.T, n int) *mpt.Env {
	t.Helper()
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	env, err := mpt.NewEnv(eng, pf.NewNetwork(n), pf.NewLoopback(n), pf.Host, n)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestParamValidation(t *testing.T) {
	env := newTestEnv(t, 2)
	bad := DefaultParams()
	bad.FragBytes = 0
	if _, err := NewWithParams(env, bad); err == nil {
		t.Fatal("zero FragBytes should be rejected")
	}
	bad = DefaultParams()
	bad.Window = 0
	if _, err := NewWithParams(env, bad); err == nil {
		t.Fatal("zero Window should be rejected")
	}
}

func TestEnvelopeRouteRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	enc := encodeRoute(3, 7, -42, payload)
	if enc[0] != kindRoute {
		t.Fatalf("kind = %d", enc[0])
	}
	// Decode by hand as the daemon does.
	src := int(uint32(enc[1])<<24 | uint32(enc[2])<<16 | uint32(enc[3])<<8 | uint32(enc[4]))
	if src != 3 {
		t.Fatalf("src = %d", src)
	}
	if !bytes.Equal(enc[17:], payload) {
		t.Fatal("payload not appended verbatim")
	}
}

func TestEnvelopeTagBitsNegative(t *testing.T) {
	for _, tag := range []int{-1, -100, 0, 7, 1 << 20} {
		if got := bitsTag(tagBits(tag)); got != tag {
			t.Fatalf("tag %d round-tripped to %d", tag, got)
		}
	}
}

func TestFragEncodingRoundTrip(t *testing.T) {
	prop := func(msgid uint32, fragRaw, nfragsRaw uint8, chunk []byte) bool {
		frag := int(fragRaw)
		nfrags := int(nfragsRaw) + 1
		enc := encodeFrag(msgid, frag, nfrags, 1, 2, -5, chunk)
		if enc[0] != kindFrag {
			return false
		}
		gotID := uint32(enc[1])<<24 | uint32(enc[2])<<16 | uint32(enc[3])<<8 | uint32(enc[4])
		gotFrag := int(enc[5])<<8 | int(enc[6])
		gotN := int(enc[7])<<8 | int(enc[8])
		return gotID == msgid && gotFrag == frag && gotN == nfrags && bytes.Equal(enc[25:], chunk)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAckAndTimeoutEncoding(t *testing.T) {
	ack := encodeAck(99, 3)
	if ack[0] != kindAck || len(ack) != 7 {
		t.Fatalf("ack = %v", ack)
	}
	to := encodeTimeout(99, 3)
	if to[0] != kindTimeout || len(to) != 7 {
		t.Fatalf("timeout = %v", to)
	}
}

func TestDirectRouteSkipsDaemons(t *testing.T) {
	env := newTestEnv(t, 2)
	par := DefaultParams()
	par.RouteDirect = true
	tool, err := NewWithParams(env, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.daemons) != 0 {
		t.Fatalf("direct route spawned %d daemons", len(tool.daemons))
	}
	var got []byte
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, []byte("direct")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		msg, err := c.Recv(0, 1)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = msg.Data
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "direct" {
		t.Fatalf("got %q", got)
	}
}

func TestDaemonRouteStats(t *testing.T) {
	env := newTestEnv(t, 2)
	tool, err := NewWithParams(env, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, make([]byte, 20_000)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		if _, err := c.Recv(0, 1); err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tool.Stats()
	if st.Sends != 1 {
		t.Fatalf("Sends = %d", st.Sends)
	}
	// 20 KB at 4080-byte fragments = 5 fragments, each acked.
	if st.Acks != 5 {
		t.Fatalf("Acks = %d, want 5", st.Acks)
	}
	if st.DroppedMsgs != 0 || st.Retransmits != 0 {
		t.Fatalf("unexpected drops/retransmits on idle network: %+v", st)
	}
}

func TestDirectStillSlowerThanP4WouldBe(t *testing.T) {
	// Even with RouteDirect, the XDR pack/unpack keeps PVM above zero
	// software cost: a 64KB one-way must still take > wire time.
	env := newTestEnv(t, 2)
	par := DefaultParams()
	par.RouteDirect = true
	tool, err := NewWithParams(env, par)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, make([]byte, 64<<10)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		if _, err := c.Recv(0, 1); err != nil {
			t.Errorf("recv: %v", err)
		}
		elapsed = p.Now()
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	wireMs := 54.0 // 64KB on 10 Mbit/s with framing
	if elapsed.Milliseconds() < wireMs {
		t.Fatalf("one-way %v ms beats the wire (%v ms) — impossible", elapsed.Milliseconds(), wireMs)
	}
}
