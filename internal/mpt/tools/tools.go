// Package tools is the registry of the message-passing tools the paper
// evaluates, keyed by the names used throughout the benchmark harness
// and reports.
package tools

import (
	"fmt"

	"tooleval/internal/mpt"
	"tooleval/internal/mpt/express"
	"tooleval/internal/mpt/p4"
	"tooleval/internal/mpt/pvm"
)

// Names lists the registered tools in the paper's comparison order.
func Names() []string { return []string{"p4", "pvm", "express"} }

// Factory returns the constructor for the named tool.
func Factory(name string) (mpt.Factory, error) {
	switch name {
	case "p4":
		return p4.New, nil
	case "pvm":
		return pvm.New, nil
	case "express":
		return express.New, nil
	default:
		return nil, fmt.Errorf("tools: unknown tool %q (known: %v)", name, Names())
	}
}

// PrimitiveNames maps each benchmark primitive to the library calls the
// tools expose it through — Table 1 of the paper.
func PrimitiveNames() map[string]map[string]string {
	return map[string]map[string]string{
		"send/receive": {
			"express": "exsend/exreceive",
			"p4":      "p4_send/p4_recv",
			"pvm":     "pvm_send/pvm_recv",
		},
		"broadcast": {
			"express": "exbroadcast",
			"p4":      "p4_broadcast",
			"pvm":     "pvm_mcast",
		},
		"ring": {
			"express": "exsend/exreceive",
			"p4":      "p4_send/p4_recv",
			"pvm":     "pvm_send/pvm_recv",
		},
		"global sum": {
			"express": "excombine",
			"p4":      "p4_global_op",
			"pvm":     "Not Available",
		},
	}
}
