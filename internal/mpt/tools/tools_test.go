package tools

import (
	"testing"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	want := []string{"p4", "pvm", "express"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestFactoryBuildsEveryTool(t *testing.T) {
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		f, err := Factory(name)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		env, err := mpt.NewEnv(eng, pf.NewNetwork(2), pf.NewLoopback(2), pf.Host, 2)
		if err != nil {
			t.Fatal(err)
		}
		tool, err := f(env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tool.Name() != name {
			t.Fatalf("tool.Name() = %q, want %q", tool.Name(), name)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("%s: engine: %v", name, err)
		}
	}
}

func TestFactoryUnknown(t *testing.T) {
	if _, err := Factory("mpi"); err == nil {
		t.Fatal("unknown tool should error")
	}
}

func TestPrimitiveNamesTable1(t *testing.T) {
	m := PrimitiveNames()
	if m["global sum"]["pvm"] != "Not Available" {
		t.Fatalf("PVM global sum = %q, Table 1 says Not Available", m["global sum"]["pvm"])
	}
	if m["send/receive"]["express"] != "exsend/exreceive" {
		t.Fatalf("express send/receive = %q", m["send/receive"]["express"])
	}
	if m["broadcast"]["p4"] != "p4_broadcast" {
		t.Fatalf("p4 broadcast = %q", m["broadcast"]["p4"])
	}
	for _, prim := range []string{"send/receive", "broadcast", "ring", "global sum"} {
		if len(m[prim]) != 3 {
			t.Fatalf("primitive %q missing tools: %v", prim, m[prim])
		}
	}
}
