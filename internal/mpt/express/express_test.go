package express

import (
	"testing"

	"tooleval/internal/mpt"
	"tooleval/internal/platform"
	"tooleval/internal/sim"
)

func newTestEnv(t *testing.T, n int) *mpt.Env {
	t.Helper()
	pf, err := platform.Get("sun-ethernet")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	env, err := mpt.NewEnv(eng, pf.NewNetwork(n), pf.NewLoopback(n), pf.Host, n)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestParamValidation(t *testing.T) {
	env := newTestEnv(t, 2)
	bad := DefaultParams()
	bad.PacketBytes = 0
	if _, err := NewWithParams(env, bad); err == nil {
		t.Fatal("zero PacketBytes should be rejected")
	}
	bad = DefaultParams()
	bad.Window = 0
	if _, err := NewWithParams(env, bad); err == nil {
		t.Fatal("zero Window should be rejected")
	}
}

func oneWay(t *testing.T, par Params, size int) (sim.Time, mpt.Stats) {
	t.Helper()
	env := newTestEnv(t, 2)
	tool, err := NewWithParams(env, par)
	if err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	env.Eng.Spawn("r0", func(p *sim.Proc) {
		c := tool.NewComm(p, 0)
		if err := c.Send(1, 1, make([]byte, size)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Eng.Spawn("r1", func(p *sim.Proc) {
		c := tool.NewComm(p, 1)
		if _, err := c.Recv(0, 1); err != nil {
			t.Errorf("recv: %v", err)
		}
		done = p.Now()
	})
	if err := env.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return done, tool.Stats()
}

func TestAckPerPacket(t *testing.T) {
	par := DefaultParams()
	_, st := oneWay(t, par, 10*par.PacketBytes)
	if st.Acks != 10 {
		t.Fatalf("Acks = %d, want 10 (one per packet)", st.Acks)
	}
}

func TestLargerPacketsFasterBulk(t *testing.T) {
	small := DefaultParams()
	small.PacketBytes = 512
	big := DefaultParams()
	big.PacketBytes = 8192
	tSmall, _ := oneWay(t, small, 64<<10)
	tBig, _ := oneWay(t, big, 64<<10)
	if tBig >= tSmall {
		t.Fatalf("8KB packets (%v) should beat 512B packets (%v) for 64KB", tBig, tSmall)
	}
}

func TestWindowingHelps(t *testing.T) {
	stopAndWait := DefaultParams()
	windowed := DefaultParams()
	windowed.Window = 8
	t1, _ := oneWay(t, stopAndWait, 32<<10)
	t8, _ := oneWay(t, windowed, 32<<10)
	if t8 >= t1 {
		t.Fatalf("window 8 (%v) should beat stop-and-wait (%v)", t8, t1)
	}
}

func TestRendezvousAddsLatency(t *testing.T) {
	with := DefaultParams()
	without := DefaultParams()
	without.Rendezvous = false
	tWith, _ := oneWay(t, with, 0)
	tWithout, _ := oneWay(t, without, 0)
	if tWith <= tWithout {
		t.Fatalf("rendezvous (%v) should cost more than none (%v)", tWith, tWithout)
	}
}

func TestZeroByteStillOnePacket(t *testing.T) {
	par := DefaultParams()
	_, st := oneWay(t, par, 0)
	if st.Acks != 1 {
		t.Fatalf("zero-byte message should cost one packet/ack, got %d", st.Acks)
	}
}
