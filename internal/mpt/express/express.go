// Package express models ParaSoft Express message passing as the paper's
// test-beds ran it: exsend performs a rendezvous handshake with the
// destination's communication kernel, then moves the data in fixed-size
// packets, each individually acknowledged (stop-and-wait by default).
// exreceive drains the kernel buffer into the user buffer.
//
// The per-packet costs are Express's defining trade-off. In an isolated
// ping-pong they serialize, which is why the paper's Table 3 shows
// Express losing the large-message send/receive race badly. Under
// continuous bidirectional flow — the ring benchmark — the stop-and-wait
// gaps of one stream absorb other stations' traffic, so Express's
// effective cost rises far less than PVM's daemon protocol, reproducing
// the paper's observation that Express "is better suited for continuous
// flow of incoming and outgoing data".
//
// Primitive name mapping (Table 1): exsend / exreceive, exbroadcast
// (sequential fan-out from the root — the paper's worst broadcast),
// ring via exsend/exreceive, excombine (tree combine), exsync (barrier).
package express

import (
	"fmt"

	"tooleval/internal/mpt"
	"tooleval/internal/sim"
)

// Params are Express's software cost constants (host operations) and
// packet protocol parameters.
type Params struct {
	// SendFixedOps / RecvFixedOps are the per-call exsend/exreceive
	// library paths.
	SendFixedOps float64
	RecvFixedOps float64
	// RecvOpsPerByte is the exreceive buffer drain.
	RecvOpsPerByte float64
	// PacketBytes is the packetization unit (1 KB in the deployments the
	// paper measured). Per packet the sender charges PacketFixedOps plus
	// PacketOpsPerByte for the payload it carries.
	PacketBytes      int
	PacketFixedOps   float64
	PacketOpsPerByte float64
	// TurnaroundOps is the destination communication kernel's per-packet
	// handling before it acknowledges (charged as latency).
	TurnaroundOps float64
	// Window is how many packets may be unacknowledged; the measured
	// system behaved as stop-and-wait (1).
	Window int
	// Rendezvous enables the request/grant handshake before data moves.
	Rendezvous bool
	// CtrlBytes / AckBytes / HeaderBytes are wire sizes of the protocol
	// control traffic.
	CtrlBytes   int
	AckBytes    int
	HeaderBytes int
}

// DefaultParams holds the calibrated constants (see EXPERIMENTS.md for
// the fit against Table 3).
func DefaultParams() Params {
	return Params{
		SendFixedOps:     4200,
		RecvFixedOps:     4200,
		RecvOpsPerByte:   0.50,
		PacketBytes:      1024,
		PacketFixedOps:   3000,
		PacketOpsPerByte: 5.0,
		TurnaroundOps:    2600,
		Window:           1,
		Rendezvous:       true,
		CtrlBytes:        24,
		AckBytes:         32,
		HeaderBytes:      16,
	}
}

// Tool implements mpt.Tool.
type Tool struct {
	env   *mpt.Env
	par   Params
	stats mpt.Stats
}

var _ mpt.Tool = (*Tool)(nil)

// New builds an Express instance with default parameters.
func New(env *mpt.Env) (mpt.Tool, error) { return NewWithParams(env, DefaultParams()) }

// NewWithParams builds an Express instance with explicit parameters
// (used by the packet-size ablation).
func NewWithParams(env *mpt.Env, par Params) (*Tool, error) {
	if par.PacketBytes <= 0 {
		return nil, fmt.Errorf("express: PacketBytes must be positive, got %d", par.PacketBytes)
	}
	if par.Window < 1 {
		return nil, fmt.Errorf("express: Window must be >= 1, got %d", par.Window)
	}
	return &Tool{env: env, par: par}, nil
}

// Name implements mpt.Tool.
func (t *Tool) Name() string { return "express" }

// Stats returns tool-level counters.
func (t *Tool) Stats() mpt.Stats { return t.stats }

// NewComm implements mpt.Tool.
func (t *Tool) NewComm(p *sim.Proc, rank int) mpt.Comm {
	return &comm{t: t, p: p, rank: rank}
}

type comm struct {
	t    *Tool
	p    *sim.Proc
	rank int
}

var _ mpt.Comm = (*comm)(nil)

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.t.env.N }

// Send implements exsend: rendezvous with the destination kernel, then
// packetized transfer with per-packet acknowledgement. The call blocks
// until the final packet is acknowledged (synchronous semantics).
func (c *comm) Send(dst, tag int, data []byte) error {
	env, par := c.t.env, c.t.par
	if dst < 0 || dst >= env.N {
		return fmt.Errorf("exsend: bad destination %d", dst)
	}
	c.t.stats.Sends++
	c.t.stats.BytesSent += int64(len(data))
	sentAt := c.p.Now()
	c.p.Sleep(env.Cost(par.SendFixedOps))
	msg := &mpt.Message{Src: c.rank, Tag: tag, Data: mpt.CloneData(data), SentAt: sentAt}

	if dst == c.rank {
		arr, err := env.Loop.Transmit(c.p.Now(), c.rank, c.rank, len(data)+par.HeaderBytes)
		if err != nil {
			return fmt.Errorf("exsend: %w", err)
		}
		env.DeliverAt(arr, env.Boxes[dst], msg)
		return nil
	}

	turnaround := env.Cost(par.TurnaroundOps)
	if par.Rendezvous {
		reqArr, err := env.Net.Transmit(c.p.Now(), c.rank, dst, par.CtrlBytes)
		if err != nil {
			return fmt.Errorf("exsend: rendezvous request to %d: %w", dst, err)
		}
		c.p.SleepUntil(reqArr.Add(turnaround))
		grantArr, err := env.Net.Transmit(c.p.Now(), dst, c.rank, par.CtrlBytes)
		if err != nil {
			return fmt.Errorf("exsend: rendezvous grant from %d: %w", dst, err)
		}
		c.p.SleepUntil(grantArr)
	}

	npkts := (len(data) + par.PacketBytes - 1) / par.PacketBytes
	if npkts == 0 {
		npkts = 1
	}
	// ackDue[i] is when packet i's acknowledgement lands back at the
	// sender; with Window w the sender stalls until packet i-w is acked.
	ackDue := make([]sim.Time, npkts)
	var lastData sim.Time
	for i := 0; i < npkts; i++ {
		if i >= par.Window {
			c.p.SleepUntil(ackDue[i-par.Window])
		}
		lo := i * par.PacketBytes
		hi := lo + par.PacketBytes
		if hi > len(data) {
			hi = len(data)
		}
		size := hi - lo
		if size < 0 {
			size = 0
		}
		c.p.Sleep(env.Cost(par.PacketFixedOps + par.PacketOpsPerByte*float64(size)))
		arr, err := env.Net.Transmit(c.p.Now(), c.rank, dst, size+par.HeaderBytes)
		if err != nil {
			return fmt.Errorf("exsend: packet %d to %d: %w", i, dst, err)
		}
		lastData = arr
		// The destination kernel handles the packet, then acks.
		ackArr, err := env.Net.Transmit(arr.Add(turnaround), dst, c.rank, par.AckBytes)
		if err != nil {
			return fmt.Errorf("exsend: ack %d from %d: %w", i, dst, err)
		}
		ackDue[i] = ackArr
		c.t.stats.Acks++
	}
	c.p.SleepUntil(ackDue[npkts-1])
	env.DeliverAt(lastData.Add(turnaround), env.Boxes[dst], msg)
	return nil
}

// Recv implements exreceive: block for a matching message, then drain the
// kernel buffer.
func (c *comm) Recv(src, tag int) (*mpt.Message, error) {
	env, par := c.t.env, c.t.par
	msg := env.Boxes[c.rank].Get(c.p, src, tag)
	if msg == nil {
		return nil, fmt.Errorf("exreceive: interrupted")
	}
	c.t.stats.Recvs++
	c.p.Sleep(env.Cost(par.RecvFixedOps + par.RecvOpsPerByte*float64(len(msg.Data))))
	return msg, nil
}

// Bcast implements exbroadcast: the root exsends a separate copy to each
// destination in rank order. Sequential fan-out over a synchronous send
// is why the paper finds Express's broadcast the slowest of the three.
func (c *comm) Bcast(root, tag int, data []byte) ([]byte, error) {
	return mpt.LinearBcast(c, root, mixTag(tag), data)
}

// GlobalSumInt64 implements excombine(+) over a binomial tree.
func (c *comm) GlobalSumInt64(vec []int64) ([]int64, error) {
	c.p.Sleep(c.t.env.Cost(2 * float64(len(vec))))
	out, err := mpt.GlobalSumViaTree(c, mpt.EncodeInt64s(vec), mpt.CombineSumInt64, c.treeBcast)
	if err != nil {
		return nil, fmt.Errorf("excombine: %w", err)
	}
	return mpt.DecodeInt64s(out)
}

// GlobalSumFloat64 is the float64 variant of GlobalSumInt64.
func (c *comm) GlobalSumFloat64(vec []float64) ([]float64, error) {
	c.p.Sleep(c.t.env.Cost(2 * float64(len(vec))))
	out, err := mpt.GlobalSumViaTree(c, mpt.EncodeFloat64s(vec), mpt.CombineSumFloat64, c.treeBcast)
	if err != nil {
		return nil, fmt.Errorf("excombine: %w", err)
	}
	return mpt.DecodeFloat64s(out)
}

// treeBcast is the combine's internal distribution phase (excombine used
// a tree internally even though exbroadcast did not).
func (c *comm) treeBcast(root, tag int, data []byte) ([]byte, error) {
	return mpt.BinomialBcast(c, root, tag, data)
}

// Barrier implements exsync over the binomial tree.
func (c *comm) Barrier() error {
	return mpt.TreeBarrier(c, mpt.TagBarrier)
}

func mixTag(user int) int {
	if user < 0 {
		return user
	}
	return -3_000_017 - user
}
