package mpt

import (
	"fmt"
)

// Data-distribution helpers layered over a tool's point-to-point
// primitives, matching the decompositions the 1995 application suite
// used (host-node scatter/collect, block all-gather, pairwise
// all-to-all). The applications in internal/apps implement their own
// variants where the paper's code structure matters; these exported
// helpers are the reusable, tested equivalents for library users.

// BlockShare returns rank r's [lo, hi) block of n items split across p
// ranks, earlier ranks absorbing the remainder.
func BlockShare(n, p, r int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = r*base + minInt(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scatter distributes root's data blocks: rank i receives data[i]. Only
// the root's data argument is read. Every rank returns its own block.
func Scatter(c Comm, root, tag int, data [][]byte) ([]byte, error) {
	n := c.Size()
	if err := validRank(n, root); err != nil {
		return nil, err
	}
	if c.Rank() == root {
		if len(data) != n {
			return nil, fmt.Errorf("mpt: scatter needs %d blocks, got %d", n, len(data))
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, mixDistTag(tag, TagScatterOp), data[r]); err != nil {
				return nil, fmt.Errorf("scatter to %d: %w", r, err)
			}
		}
		return data[root], nil
	}
	msg, err := c.Recv(root, mixDistTag(tag, TagScatterOp))
	if err != nil {
		return nil, fmt.Errorf("scatter recv: %w", err)
	}
	return msg.Data, nil
}

// Gather collects every rank's block at root: the returned slice (only
// meaningful at root) holds rank i's contribution at index i.
func Gather(c Comm, root, tag int, mine []byte) ([][]byte, error) {
	n := c.Size()
	if err := validRank(n, root); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		if err := c.Send(root, mixDistTag(tag, TagGatherOp), mine); err != nil {
			return nil, fmt.Errorf("gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, n)
	out[root] = CloneData(mine)
	for i := 0; i < n-1; i++ {
		msg, err := c.Recv(AnySource, mixDistTag(tag, TagGatherOp))
		if err != nil {
			return nil, fmt.Errorf("gather recv: %w", err)
		}
		if msg.Src < 0 || msg.Src >= n || out[msg.Src] != nil {
			return nil, fmt.Errorf("gather: duplicate or invalid contribution from %d", msg.Src)
		}
		out[msg.Src] = msg.Data
	}
	return out, nil
}

// AllGather gives every rank every block: gather at 0, then a broadcast
// of the concatenation with a tiny length-prefixed framing.
func AllGather(c Comm, tag int, mine []byte) ([][]byte, error) {
	blocks, err := Gather(c, 0, tag, mine)
	if err != nil {
		return nil, err
	}
	var frame []byte
	if c.Rank() == 0 {
		for _, b := range blocks {
			frame = EncodeUint32(frame, uint32(len(b)))
			frame = append(frame, b...)
		}
	}
	frame, err = c.Bcast(0, mixDistTag(tag, TagScatterOp), frame)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, c.Size())
	off := 0
	for off < len(frame) {
		l, err := DecodeUint32(frame, off)
		if err != nil {
			return nil, err
		}
		off += 4
		if off+int(l) > len(frame) {
			return nil, fmt.Errorf("mpt: allgather frame truncated")
		}
		out = append(out, CloneData(frame[off:off+int(l)]))
		off += int(l)
	}
	if len(out) != c.Size() {
		return nil, fmt.Errorf("mpt: allgather produced %d blocks, want %d", len(out), c.Size())
	}
	return out, nil
}

// AllToAll performs the pairwise exchange: rank i sends blocks[j] to
// rank j and returns the blocks received (own block passed through),
// indexed by source. Sends go out in offset order to spread load.
func AllToAll(c Comm, tag int, blocks [][]byte) ([][]byte, error) {
	n, me := c.Size(), c.Rank()
	if len(blocks) != n {
		return nil, fmt.Errorf("mpt: alltoall needs %d blocks, got %d", n, len(blocks))
	}
	out := make([][]byte, n)
	out[me] = CloneData(blocks[me])
	for off := 1; off < n; off++ {
		dst := (me + off) % n
		if err := c.Send(dst, mixDistTag(tag, TagScatterOp), blocks[dst]); err != nil {
			return nil, fmt.Errorf("alltoall send to %d: %w", dst, err)
		}
	}
	for off := 1; off < n; off++ {
		src := (me + n - off) % n
		msg, err := c.Recv(src, mixDistTag(tag, TagScatterOp))
		if err != nil {
			return nil, fmt.Errorf("alltoall recv from %d: %w", src, err)
		}
		out[src] = msg.Data
	}
	return out, nil
}

// mixDistTag keeps distribution traffic separated per user tag.
func mixDistTag(user, internal int) int {
	if user < 0 {
		return internal
	}
	return internal*1_000_003 - user
}
