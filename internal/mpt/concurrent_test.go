package mpt_test

import (
	"fmt"
	"sync"
	"testing"

	"tooleval/internal/mpt"
	"tooleval/internal/mpt/tools"
	"tooleval/internal/platform"
)

// TestConcurrentRunsShareNoState drives many complete simulations at
// once from independent goroutines — every tool, several platforms,
// several rank counts — and checks each against the result of the same
// cell computed serially. Each mpt.Run builds its own engine, network
// and tool instance; under -race this test is the proof that nothing
// (engine state, tool daemons, rank mailboxes, catalog tables) leaks
// between concurrent simulations, which is what lets the experiment
// scheduler fan cells out safely.
func TestConcurrentRunsShareNoState(t *testing.T) {
	type cell struct {
		platformKey string
		tool        string
		procs       int
	}
	var cells []cell
	for _, key := range []string{"sun-ethernet", "sun-atm-wan", "sp1-switch"} {
		pf, err := platform.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, tool := range tools.Names() {
			if !pf.Supports(tool) {
				continue
			}
			for _, procs := range []int{2, 4} {
				cells = append(cells, cell{platformKey: key, tool: tool, procs: procs})
			}
		}
	}

	runCell := func(c cell) (float64, error) {
		pf, err := platform.Get(c.platformKey)
		if err != nil {
			return 0, err
		}
		factory, err := tools.Factory(c.tool)
		if err != nil {
			return 0, err
		}
		payload := make([]byte, 2048)
		for i := range payload {
			payload[i] = byte(i)
		}
		res, err := mpt.Run(pf, factory, mpt.RunConfig{Procs: c.procs}, func(ctx *mpt.Ctx) (any, error) {
			const tag = 9
			next := (ctx.Rank() + 1) % ctx.Size()
			prev := (ctx.Rank() + ctx.Size() - 1) % ctx.Size()
			if err := ctx.Comm.Send(next, tag, payload); err != nil {
				return nil, err
			}
			msg, err := ctx.Comm.Recv(prev, tag)
			if err != nil {
				return nil, err
			}
			if len(msg.Data) != len(payload) {
				return nil, fmt.Errorf("got %d bytes, want %d", len(msg.Data), len(payload))
			}
			return nil, nil
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Seconds(), nil
	}

	// Serial reference pass.
	want := make([]float64, len(cells))
	for i, c := range cells {
		v, err := runCell(c)
		if err != nil {
			t.Fatalf("serial %s/%s/%d: %v", c.platformKey, c.tool, c.procs, err)
		}
		want[i] = v
	}

	// Concurrent pass: every cell three times over, all at once.
	const replicas = 3
	var wg sync.WaitGroup
	errs := make([]error, len(cells)*replicas)
	got := make([]float64, len(cells)*replicas)
	for rep := 0; rep < replicas; rep++ {
		for i := range cells {
			wg.Add(1)
			go func(rep, i int) {
				defer wg.Done()
				got[rep*len(cells)+i], errs[rep*len(cells)+i] = runCell(cells[i])
			}(rep, i)
		}
	}
	wg.Wait()
	for rep := 0; rep < replicas; rep++ {
		for i, c := range cells {
			idx := rep*len(cells) + i
			if errs[idx] != nil {
				t.Fatalf("concurrent %s/%s/%d (replica %d): %v", c.platformKey, c.tool, c.procs, rep, errs[idx])
			}
			if got[idx] != want[i] {
				t.Fatalf("concurrent %s/%s/%d (replica %d) = %v, serial reference = %v — simulations share state",
					c.platformKey, c.tool, c.procs, rep, got[idx], want[i])
			}
		}
	}
}
