package mpt

import (
	"fmt"
	"time"

	"tooleval/internal/platform"
	"tooleval/internal/sim"
	"tooleval/internal/simnet"
)

// Env is the execution environment a tool is instantiated over: the
// engine, the network fabric, the per-station loopback channels, the
// host CPU model used to convert software path lengths into virtual
// time, and the per-rank user mailboxes.
type Env struct {
	Eng  *sim.Engine
	Net  simnet.Network
	Loop simnet.Network
	Host platform.Host
	// N is the number of ranks; rank i runs on station i.
	N int
	// Boxes[i] is rank i's user-level mailbox.
	Boxes []*Mailbox
}

// NewEnv wires up an environment with n ranks.
func NewEnv(eng *sim.Engine, net, loop simnet.Network, host platform.Host, n int) (*Env, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpt: need at least 1 rank, got %d", n)
	}
	if net.Stations() < n || loop.Stations() < n {
		return nil, fmt.Errorf("mpt: network has %d stations, loopback %d, need %d",
			net.Stations(), loop.Stations(), n)
	}
	boxes := make([]*Mailbox, n)
	for i := range boxes {
		boxes[i] = NewMailbox(eng)
	}
	return &Env{Eng: eng, Net: net, Loop: loop, Host: host, N: n, Boxes: boxes}, nil
}

// Cost converts an operation count to CPU time on this platform's host.
func (e *Env) Cost(ops float64) time.Duration { return e.Host.CostOf(ops) }

// DeliverAt schedules msg to appear in box at virtual time at. The
// delivery event is closure-free (sim.AtCall with the message as the
// argument), so the per-message scheduling cost is the message itself.
func (e *Env) DeliverAt(at sim.Time, box *Mailbox, msg *Message) {
	msg.DeliveredAt = at
	msg.box = box
	e.Eng.AtCall(at, "deliver", deliver, msg)
}

// deliver is the dispatch target of DeliverAt events.
func deliver(arg any) {
	msg := arg.(*Message)
	box := msg.box
	msg.box = nil
	box.Put(msg)
}

// CloneData copies a payload at an ownership boundary.
func CloneData(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}
