package mpt

import (
	"testing"
	"time"

	"tooleval/internal/sim"
)

func TestMailboxMatchBeforeWait(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var got *Message
	eng.Spawn("r", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // message arrives first
		got = box.Get(p, 3, 7)
	})
	eng.Spawn("s", func(p *sim.Proc) {
		box.Put(&Message{Src: 3, Tag: 7, Data: []byte("x")})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || string(got.Data) != "x" {
		t.Fatalf("got %+v", got)
	}
}

func TestMailboxWaiterWokenByMatch(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var got *Message
	eng.Spawn("r", func(p *sim.Proc) {
		got = box.Get(p, AnySource, 9) // waits
	})
	eng.Spawn("s", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		box.Put(&Message{Src: 1, Tag: 8}) // non-matching: queued
		box.Put(&Message{Src: 2, Tag: 9}) // matching: wakes waiter
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Src != 2 {
		t.Fatalf("got %+v", got)
	}
	if box.Len() != 1 {
		t.Fatalf("non-matching message should remain queued, Len=%d", box.Len())
	}
}

func TestMailboxGetDeadlineTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var ok bool
	var woke sim.Time
	eng.Spawn("r", func(p *sim.Proc) {
		_, ok = box.GetDeadline(p, AnySource, AnyTag, 5*time.Millisecond)
		woke = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("timeout should report no message")
	}
	if woke != sim.Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestMailboxGetDeadlineBeatsTimeout(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var got *Message
	var ok bool
	eng.Spawn("r", func(p *sim.Proc) {
		got, ok = box.GetDeadline(p, AnySource, AnyTag, 50*time.Millisecond)
	})
	eng.Spawn("s", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		box.Put(&Message{Src: 0, Tag: 1, Data: []byte("in time")})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got == nil || string(got.Data) != "in time" {
		t.Fatalf("got (%v, %v)", got, ok)
	}
	// The pending timeout event must be inert after the match (no panic,
	// no double wake) — Run finishing cleanly covers that.
}

func TestMailboxMultipleWaitersFIFO(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("r", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // deterministic wait order
			box.Get(p, AnySource, AnyTag)
			order = append(order, i)
		})
	}
	eng.Spawn("s", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		for k := 0; k < 3; k++ {
			box.Put(&Message{Src: k, Tag: 0})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order %v, want [0 1 2]", order)
	}
}

func TestMailboxSelectiveWaitersSkipped(t *testing.T) {
	eng := sim.NewEngine()
	box := NewMailbox(eng)
	var tagged, wild *Message
	eng.Spawn("tagged", func(p *sim.Proc) {
		tagged = box.Get(p, AnySource, 5)
	})
	eng.Spawn("wild", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		wild = box.Get(p, AnySource, AnyTag)
	})
	eng.Spawn("s", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		box.Put(&Message{Src: 0, Tag: 3}) // skips "tagged", matches "wild"
		box.Put(&Message{Src: 0, Tag: 5}) // matches "tagged"
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if wild == nil || wild.Tag != 3 {
		t.Fatalf("wildcard waiter got %+v", wild)
	}
	if tagged == nil || tagged.Tag != 5 {
		t.Fatalf("tagged waiter got %+v", tagged)
	}
}
