// Package mpt defines the common framework for the message-passing tools
// the paper evaluates (Express, p4, PVM): the Comm programming interface
// their primitives are exposed through, per-task mailboxes with selective
// receive, reusable collective algorithms, and the harness that runs an
// SPMD program over a simulated platform.
//
// Each tool lives in its own subpackage and implements the primitives
// with the mechanisms the 1995 systems actually used — direct streams
// for p4, daemon routing with XDR encoding for PVM, rendezvous plus
// fixed-size packetization for Express. The paper's Tool Performance
// Level results emerge from those mechanisms rather than from per-curve
// constants.
package mpt

import (
	"errors"
	"fmt"

	"tooleval/internal/sim"
)

// Wildcards for Recv matching, mirroring the tools' "any" receive modes.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tag space used by collective implementations. User code must
// use tags >= 0.
const (
	TagBarrier   = -2
	TagBcast     = -3
	TagReduce    = -4
	TagGatherOp  = -5
	TagScatterOp = -6
)

// ErrNotSupported reports that a tool does not provide the requested
// primitive (the paper's "Not Available": PVM has no global reduction).
var ErrNotSupported = errors.New("mpt: primitive not supported by this tool")

// Message is a delivered user-level message.
type Message struct {
	// Src is the sending rank and Tag the user tag.
	Src, Tag int
	// Data is the payload. The receiver owns it.
	Data []byte
	// SentAt is when the sending task issued the send; DeliveredAt is
	// when the message became visible to the receiving task.
	SentAt, DeliveredAt sim.Time
	// box carries the destination mailbox while the message rides an
	// in-flight delivery event (see Env.DeliverAt): storing it here lets
	// the delivery be a single closure-free sim.AtCall with the message
	// as the only argument.
	box *Mailbox
}

// Comm is the per-rank endpoint of a message-passing tool, the common
// surface of the primitives compared in Table 1 of the paper:
// send/receive, broadcast/multicast, and global summation. All methods
// must be called from the rank's own simulated process.
type Comm interface {
	// Rank is this task's id in 0..Size-1; Size is the number of tasks.
	Rank() int
	Size() int
	// Send transmits data to rank dst with the given tag. Buffering
	// semantics (whether Send blocks until the data is on the wire) are
	// tool-specific; data is always safe to reuse on return.
	Send(dst, tag int, data []byte) error
	// Recv blocks until a message matching (src, tag) is available.
	// AnySource / AnyTag act as wildcards.
	Recv(src, tag int) (*Message, error)
	// Bcast is a collective broadcast: every rank calls it, the root's
	// data is returned on all ranks.
	Bcast(root, tag int, data []byte) ([]byte, error)
	// GlobalSumInt64 is a collective reduction: every rank contributes a
	// vector and all ranks receive the element-wise sum. Tools without a
	// global operation return ErrNotSupported (PVM, per the paper).
	GlobalSumInt64(vec []int64) ([]int64, error)
	// GlobalSumFloat64 is the float64 variant of GlobalSumInt64.
	GlobalSumFloat64(vec []float64) ([]float64, error)
	// Barrier blocks until all ranks have entered it.
	Barrier() error
}

// Tool builds per-rank Comm endpoints over an Env. Implementations spawn
// any helper daemons at construction time.
type Tool interface {
	// Name is the tool's identifier: "p4", "pvm" or "express".
	Name() string
	// NewComm binds rank running on process p to the tool.
	NewComm(p *sim.Proc, rank int) Comm
}

// Factory constructs a tool over a prepared environment.
type Factory func(*Env) (Tool, error)

// Stats aggregates tool-internal accounting exposed for the benchmark
// harness and ablation studies.
type Stats struct {
	Sends       int64
	Recvs       int64
	BytesSent   int64
	Retransmits int64 // daemon-protocol retransmissions (PVM)
	Acks        int64 // protocol-level acknowledgements (Express, PVM)
	DroppedMsgs int64 // messages abandoned after repeated failures
}

func validRank(n, r int) error {
	if r < 0 || r >= n {
		return fmt.Errorf("mpt: rank %d out of range [0,%d)", r, n)
	}
	return nil
}
