package mpt

import (
	"time"

	"tooleval/internal/sim"
)

// Mailbox is a per-task (or per-daemon) message queue with selective
// receive: a receiver can wait for a specific (src, tag) combination
// while other messages queue up behind. Matching is FIFO within the set
// of messages that satisfy the pattern, mirroring the tools' semantics.
//
// All methods must be called from engine context; the engine's
// one-runnable-at-a-time discipline supplies mutual exclusion.
type Mailbox struct {
	eng     *sim.Engine
	msgs    []*Message
	waiters []*mboxWaiter
	// freeW recycles waiter records across blocking receives and
	// reasons memoizes the park-reason strings per (src, tag), so the
	// selective-receive hot path allocates nothing in steady state.
	freeW   []*mboxWaiter
	reasons map[[2]int]string
}

type mboxWaiter struct {
	m        *Mailbox
	src, tag int
	p        *sim.Proc
	got      *Message
	done     bool // matched or timed out
}

// NewMailbox creates an empty mailbox bound to the engine.
func NewMailbox(eng *sim.Engine) *Mailbox {
	return &Mailbox{eng: eng}
}

// Len reports queued (undelivered-to-receiver) messages.
func (m *Mailbox) Len() int { return len(m.msgs) }

func matches(wantSrc, wantTag int, msg *Message) bool {
	if wantSrc != AnySource && wantSrc != msg.Src {
		return false
	}
	if wantTag != AnyTag && wantTag != msg.Tag {
		return false
	}
	return true
}

// Put delivers msg to the mailbox, waking the longest-waiting matching
// receiver if there is one. It must be called from engine context (an
// event handler or a running process).
func (m *Mailbox) Put(msg *Message) {
	for _, w := range m.waiters {
		if !w.done && matches(w.src, w.tag, msg) {
			w.got = msg
			w.done = true
			m.eng.Unpark(w.p)
			m.compactWaiters()
			return
		}
	}
	m.msgs = append(m.msgs, msg)
}

// Get blocks the calling process until a message matching (src, tag) is
// available and returns it.
func (m *Mailbox) Get(p *sim.Proc, src, tag int) *Message {
	msg, _ := m.GetDeadline(p, src, tag, -1)
	return msg
}

// GetDeadline is Get with a timeout. A negative timeout waits forever. It
// returns (nil, false) if the timeout expired first; the boolean reports
// whether a message was received.
func (m *Mailbox) GetDeadline(p *sim.Proc, src, tag int, timeout time.Duration) (*Message, bool) {
	for i, msg := range m.msgs {
		if matches(src, tag, msg) {
			copy(m.msgs[i:], m.msgs[i+1:])
			m.msgs[len(m.msgs)-1] = nil
			m.msgs = m.msgs[:len(m.msgs)-1]
			return msg, true
		}
	}
	w := m.newWaiter(p, src, tag)
	m.waiters = append(m.waiters, w)
	if timeout >= 0 {
		m.eng.AtCall(m.eng.Now().Add(timeout), "mbox-timeout", expireWaiter, w)
	}
	p.Park(m.recvReason(src, tag))
	got := w.got
	// Recycle the waiter unless a still-pending timeout event references
	// it (message arrived first): reusing it then would let the stale
	// timeout cancel an unrelated later receive.
	if timeout < 0 || got == nil {
		*w = mboxWaiter{}
		m.freeW = append(m.freeW, w)
	}
	return got, got != nil
}

// expireWaiter is the dispatch target of mbox-timeout events.
func expireWaiter(arg any) {
	w := arg.(*mboxWaiter)
	if w.done || w.m == nil {
		return // already matched (or the waiter was recycled)
	}
	w.done = true
	w.m.compactWaiters()
	w.m.eng.Unpark(w.p)
}

// newWaiter takes a waiter record off the free list or allocates one.
func (m *Mailbox) newWaiter(p *sim.Proc, src, tag int) *mboxWaiter {
	var w *mboxWaiter
	if n := len(m.freeW); n > 0 {
		w = m.freeW[n-1]
		m.freeW[n-1] = nil
		m.freeW = m.freeW[:n-1]
	} else {
		w = new(mboxWaiter)
	}
	*w = mboxWaiter{m: m, src: src, tag: tag, p: p}
	return w
}

// recvReason memoizes the park-reason string for a (src, tag) pattern:
// selective receives park constantly with a small set of patterns, and
// rebuilding the string each time would put two itoa calls and a concat
// on the hot path.
func (m *Mailbox) recvReason(src, tag int) string {
	key := [2]int{src, tag}
	if s, ok := m.reasons[key]; ok {
		return s
	}
	if m.reasons == nil {
		m.reasons = make(map[[2]int]string)
	}
	s := "recv src=" + itoa(src) + " tag=" + itoa(tag)
	m.reasons[key] = s
	return s
}

func (m *Mailbox) compactWaiters() {
	keep := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.done {
			keep = append(keep, w)
		}
	}
	for i := len(keep); i < len(m.waiters); i++ {
		m.waiters[i] = nil
	}
	m.waiters = keep
}

// itoa is a tiny strconv.Itoa for the two wildcard-friendly values we
// format in park reasons (avoids fmt on the hot path).
func itoa(v int) string {
	switch v {
	case AnySource:
		return "any"
	}
	if v >= 0 && v < 10 {
		return string(rune('0' + v))
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if i == len(buf) {
		i--
		buf[i] = '0'
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
