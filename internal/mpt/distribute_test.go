package mpt_test

import (
	"bytes"
	"fmt"
	"testing"

	"tooleval/internal/mpt"
)

func TestBlockShare(t *testing.T) {
	for n := 0; n < 40; n++ {
		for p := 1; p <= 8; p++ {
			total, prevHi := 0, 0
			for r := 0; r < p; r++ {
				lo, hi := mpt.BlockShare(n, p, r)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d r=%d: gap at %d..%d", n, p, r, prevHi, lo)
				}
				total += hi - lo
				prevHi = hi
			}
			if total != n {
				t.Fatalf("n=%d p=%d: covered %d", n, p, total)
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	pf := mustPlatform(t, "alpha-fddi")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		const n = 4
		res, err := mpt.Run(pf, f, mpt.RunConfig{Procs: n}, func(c *mpt.Ctx) (any, error) {
			var blocks [][]byte
			if c.Rank() == 1 { // non-zero root
				blocks = make([][]byte, n)
				for i := range blocks {
					blocks[i] = []byte(fmt.Sprintf("block-%d", i))
				}
			}
			mine, err := mpt.Scatter(c.Comm, 1, 5, blocks)
			if err != nil {
				return nil, err
			}
			if want := fmt.Sprintf("block-%d", c.Rank()); string(mine) != want {
				return nil, fmt.Errorf("rank %d got %q, want %q", c.Rank(), mine, want)
			}
			// Transform and gather back at root 1.
			mine = append(mine, '!')
			gathered, err := mpt.Gather(c.Comm, 1, 6, mine)
			if err != nil {
				return nil, err
			}
			if c.Rank() == 1 {
				for i, b := range gathered {
					if want := fmt.Sprintf("block-%d!", i); string(b) != want {
						return nil, fmt.Errorf("gathered[%d] = %q, want %q", i, b, want)
					}
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = res
	})
}

func TestAllGather(t *testing.T) {
	pf := mustPlatform(t, "sun-atm-lan")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		const n = 4
		_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: n}, func(c *mpt.Ctx) (any, error) {
			mine := bytes.Repeat([]byte{byte('A' + c.Rank())}, c.Rank()+1) // varied lengths
			all, err := mpt.AllGather(c.Comm, 7, mine)
			if err != nil {
				return nil, err
			}
			for i, b := range all {
				want := bytes.Repeat([]byte{byte('A' + i)}, i+1)
				if !bytes.Equal(b, want) {
					return nil, fmt.Errorf("rank %d: all[%d] = %q, want %q", c.Rank(), i, b, want)
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

func TestAllToAll(t *testing.T) {
	pf := mustPlatform(t, "sp1-switch")
	forEachTool(t, func(t *testing.T, name string, f mpt.Factory) {
		const n = 4
		_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: n}, func(c *mpt.Ctx) (any, error) {
			blocks := make([][]byte, n)
			for j := range blocks {
				blocks[j] = []byte(fmt.Sprintf("%d->%d", c.Rank(), j))
			}
			got, err := mpt.AllToAll(c.Comm, 8, blocks)
			if err != nil {
				return nil, err
			}
			for src, b := range got {
				if want := fmt.Sprintf("%d->%d", src, c.Rank()); string(b) != want {
					return nil, fmt.Errorf("rank %d: from %d got %q, want %q", c.Rank(), src, b, want)
				}
			}
			return nil, nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

func TestScatterValidation(t *testing.T) {
	pf := mustPlatform(t, "alpha-fddi")
	f := mustFactory(t, "p4")
	_, err := mpt.Run(pf, f, mpt.RunConfig{Procs: 2}, func(c *mpt.Ctx) (any, error) {
		if c.Rank() == 0 {
			if _, err := mpt.Scatter(c.Comm, 0, 1, [][]byte{{1}}); err == nil {
				return nil, fmt.Errorf("wrong block count should error")
			}
			// Unblock rank 1, which is waiting in the valid scatter below.
			blocks := [][]byte{{1}, {2}}
			if _, err := mpt.Scatter(c.Comm, 0, 2, blocks); err != nil {
				return nil, err
			}
			return nil, nil
		}
		_, err := mpt.Scatter(c.Comm, 0, 2, nil)
		return nil, err
	})
	if err != nil {
		t.Fatal(err)
	}
}
