package simnet

import (
	"fmt"
	"time"

	"tooleval/internal/sim"
)

// Loopback models intra-host data movement: the memory-bandwidth-limited
// copies a message makes between a task and a co-resident daemon (PVM's
// task → pvmd hop) or between two tasks on the same station. Each station
// has an independent memory channel.
type Loopback struct {
	name      string
	copyBps   float64 // sustainable memcpy bandwidth, bytes/s
	perChunk  time.Duration
	busyUntil []sim.Time
	stats     Stats
}

var _ Network = (*Loopback)(nil)

// NewLoopback builds per-station memory channels. copyBps is the
// sustainable single-copy memory bandwidth of the host; perChunk is the
// fixed kernel/IPC cost per chunk (local socket write+read).
func NewLoopback(stations int, copyBps float64, perChunk time.Duration) *Loopback {
	return &Loopback{
		name:      "loopback",
		copyBps:   copyBps,
		perChunk:  perChunk,
		busyUntil: make([]sim.Time, stations),
	}
}

// Name implements Network.
func (l *Loopback) Name() string { return l.name }

// Stations implements Network.
func (l *Loopback) Stations() int { return len(l.busyUntil) }

// ChunkSize implements Network.
func (l *Loopback) ChunkSize() int { return 1 << 20 }

// Stats implements Network.
func (l *Loopback) Stats() Stats { return l.stats }

// Transmit implements Network. src and dst must be the same station.
func (l *Loopback) Transmit(now sim.Time, src, dst, size int) (sim.Time, error) {
	if src != dst {
		return 0, fmt.Errorf("simnet: loopback: src %d != dst %d", src, dst)
	}
	if src < 0 || src >= len(l.busyUntil) {
		return 0, fmt.Errorf("simnet: loopback: station %d out of range", src)
	}
	start := now
	if l.busyUntil[src] > start {
		l.stats.Conflicts++
		start = l.busyUntil[src]
	}
	tx := l.perChunk + time.Duration(float64(size)/l.copyBps*float64(time.Second))
	end := start.Add(tx)
	l.busyUntil[src] = end
	l.stats.Chunks++
	l.stats.Bytes += int64(size)
	l.stats.WireTime += tx
	l.stats.LastBusy = end
	return end, nil
}
