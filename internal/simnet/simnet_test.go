package simnet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"tooleval/internal/sim"
)

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func TestEthernetFramingSingleFrame(t *testing.T) {
	f := EthernetFraming{BitsPerSec: 10e6}
	// 1000 bytes: one frame, payload 1000 + 26 overhead + 12 gap = 1038 B.
	got := f.TxTime(1000)
	want := time.Duration(1038 * 8 * 100) // ns at 10 Mbit/s: 1 bit = 100 ns
	if got != want {
		t.Fatalf("TxTime(1000) = %v, want %v", got, want)
	}
}

func TestEthernetFramingMinFrame(t *testing.T) {
	f := EthernetFraming{BitsPerSec: 10e6}
	// Zero payload is padded to the 46-byte minimum.
	got := f.TxTime(0)
	want := time.Duration((46 + 26 + 12) * 8 * 100)
	if got != want {
		t.Fatalf("TxTime(0) = %v, want %v", got, want)
	}
	if f.TxTime(10) != want {
		t.Fatalf("TxTime(10) should equal min frame time %v, got %v", want, f.TxTime(10))
	}
}

func TestEthernetFramingMultiFrame(t *testing.T) {
	f := EthernetFraming{BitsPerSec: 10e6}
	one := f.TxTime(1500)
	four := f.TxTime(6000)
	if four != 4*one {
		t.Fatalf("TxTime(6000) = %v, want 4 * TxTime(1500) = %v", four, 4*one)
	}
	// 64 KB should take roughly 55 ms on 10 Mbit/s with framing overhead.
	ms := msOf(f.TxTime(64 * 1024))
	if ms < 52 || ms > 58 {
		t.Fatalf("64KB on Ethernet = %.2f ms, want ~52-58 ms", ms)
	}
}

func TestATMFramingCellTax(t *testing.T) {
	f := ATMFraming{BitsPerSec: 140e6}
	// 48 bytes + 8 trailer = 56 -> 2 cells = 106 bytes on the wire.
	got := f.TxTime(48)
	want := bitsTime(2*53*8, 140e6)
	if got != want {
		t.Fatalf("TxTime(48) = %v, want %v", got, want)
	}
	// Effective throughput for big transfers ≈ line rate * 48/53.
	big := 1 << 20
	eff := float64(big) * 8 / f.TxTime(big).Seconds()
	wantEff := 140e6 * 48.0 / 53.0
	if math.Abs(eff-wantEff)/wantEff > 0.02 {
		t.Fatalf("effective rate = %.3g, want within 2%% of %.3g", eff, wantEff)
	}
}

func TestFDDIFramingFasterThanEthernet(t *testing.T) {
	e := EthernetFraming{BitsPerSec: 10e6}
	f := FDDIFraming{BitsPerSec: 100e6}
	if f.TxTime(64*1024) >= e.TxTime(64*1024) {
		t.Fatal("FDDI should be faster than Ethernet for 64KB")
	}
	ratio := float64(e.TxTime(64*1024)) / float64(f.TxTime(64*1024))
	if ratio < 8 || ratio > 12 {
		t.Fatalf("Ethernet/FDDI ratio = %.1f, want ~10", ratio)
	}
}

func TestSharedBusSerializes(t *testing.T) {
	bus := NewEthernet10(4)
	// Two transmissions requested at the same time must not overlap.
	a1, err := bus.Transmit(0, 0, 1, 1500)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := bus.Transmit(0, 2, 3, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Fatalf("concurrent chunks overlapped: first arrives %v, second %v", a1, a2)
	}
	gap := (a2 - a1).Duration()
	tx := EthernetFraming{BitsPerSec: 10e6}.TxTime(1500)
	if gap < tx {
		t.Fatalf("second chunk arrived %v after first; needs at least one tx time %v", gap, tx)
	}
	if bus.Stats().Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", bus.Stats().Conflicts)
	}
}

func TestSwitchedParallelism(t *testing.T) {
	sw := NewATMLAN(4)
	// Disjoint port pairs transmit in parallel: same arrival time.
	a1, err := sw.Transmit(0, 0, 1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sw.Transmit(0, 2, 3, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("disjoint pairs should be parallel: %v vs %v", a1, a2)
	}
	// Same output port serializes.
	a3, err := sw.Transmit(0, 1, 3, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if a3 <= a2 {
		t.Fatalf("same-output-port chunks overlapped: %v then %v", a2, a3)
	}
}

func TestTransmitValidation(t *testing.T) {
	bus := NewEthernet10(2)
	if _, err := bus.Transmit(0, 0, 0, 10); err == nil {
		t.Fatal("src==dst on a fabric should error")
	}
	if _, err := bus.Transmit(0, 0, 5, 10); err == nil {
		t.Fatal("out-of-range station should error")
	}
	lb := NewLoopback(2, 50e6, time.Microsecond)
	if _, err := lb.Transmit(0, 0, 1, 10); err == nil {
		t.Fatal("loopback src!=dst should error")
	}
}

func TestLoopbackBandwidth(t *testing.T) {
	lb := NewLoopback(2, 8e6, 100*time.Microsecond) // 8 MB/s memcpy
	arr, err := lb.Transmit(0, 1, 1, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	secs := arr.Seconds()
	if secs < 0.99 || secs > 1.02 {
		t.Fatalf("8MB at 8MB/s = %.3f s, want ~1 s", secs)
	}
	// Per-station independence: station 0 unaffected by station 1 usage.
	arr0, err := lb.Transmit(0, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if arr0.Seconds() > 0.01 {
		t.Fatalf("station 0 should be idle, arrival %v", arr0)
	}
}

func TestAllnodeFasterThanFDDIFor8K(t *testing.T) {
	an := NewAllnode(4)
	fd := NewFDDIRing(4)
	a, err := an.Transmit(0, 0, 1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fd.Transmit(0, 0, 1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if a >= f {
		t.Fatalf("Allnode (40MB/s) should beat FDDI (100Mbit/s): %v vs %v", a, f)
	}
}

func TestATMWANAddsPropagationOnly(t *testing.T) {
	lan := NewATMLAN(2)
	wan := NewATMWAN(2)
	al, err := lan.Transmit(0, 0, 1, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := wan.Transmit(0, 0, 1, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	diff := (aw - al).Duration()
	// WAN has higher line rate (OC-3 vs TAXI) but ~600us propagation; net
	// effect should be sub-millisecond difference, as the paper observes
	// ("ATM WAN performance ... is similar to those of ATM LAN").
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("WAN vs LAN differ by %v for 16KB, want < 1 ms", diff)
	}
}

func TestFaultInjection(t *testing.T) {
	net := NewFaulty(NewEthernet10(4), LinkDownAfter(sim.Time(time.Second)))
	if _, err := net.Transmit(0, 0, 1, 100); err != nil {
		t.Fatalf("link should be up at t=0: %v", err)
	}
	_, err := net.Transmit(sim.Time(2*time.Second), 0, 1, 100)
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	if net.Stats().Failures != 1 {
		t.Fatalf("Failures = %d, want 1", net.Stats().Failures)
	}
}

func TestStationDownPlan(t *testing.T) {
	net := NewFaulty(NewATMLAN(4), StationDown(2))
	if _, err := net.Transmit(0, 0, 1, 100); err != nil {
		t.Fatalf("path 0->1 should be up: %v", err)
	}
	if _, err := net.Transmit(0, 0, 2, 100); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("path 0->2 should be down, got %v", err)
	}
	if _, err := net.Transmit(0, 2, 3, 100); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("path 2->3 should be down, got %v", err)
	}
}

// Property: arrival time is strictly after request time and monotonic in
// payload size for every fabric.
func TestPropertyArrivalMonotonicInSize(t *testing.T) {
	fabrics := func() []Network {
		return []Network{
			NewEthernet10(4), NewFDDIRing(4), NewATMLAN(4), NewATMWAN(4),
			NewAllnode(4), NewDedicatedEthernet(4),
		}
	}
	prop := func(rawSize uint16, rawGrow uint8) bool {
		size := int(rawSize)
		grow := int(rawGrow) + 1
		for _, n := range fabrics() {
			a1, err := n.Transmit(0, 0, 1, size)
			if err != nil || a1 <= 0 {
				return false
			}
			// fresh network for the larger size (no queue interference)
		}
		for _, n := range fabrics() {
			small, err := n.Transmit(0, 0, 1, size)
			if err != nil {
				return false
			}
			n2 := n
			_ = n2
			large, err := fabricsLike(n)(4).Transmit(0, 0, 1, size+grow)
			if err != nil {
				return false
			}
			if large < small {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// fabricsLike returns a constructor for a fresh network of the same kind.
func fabricsLike(n Network) func(int) Network {
	switch n.Name() {
	case "ethernet-10":
		return func(s int) Network { return NewEthernet10(s) }
	case "fddi-100-ring":
		return func(s int) Network { return NewFDDIRing(s) }
	case "atm-lan-140":
		return func(s int) Network { return NewATMLAN(s) }
	case "atm-wan-nynet":
		return func(s int) Network { return NewATMWAN(s) }
	case "allnode-switch":
		return func(s int) Network { return NewAllnode(s) }
	default:
		return func(s int) Network { return NewDedicatedEthernet(s) }
	}
}

// Property: bytes accounting matches what was offered.
func TestPropertyStatsConservation(t *testing.T) {
	prop := func(sizes []uint16) bool {
		bus := NewEthernet10(3)
		var total int64
		now := sim.Time(0)
		for i, s := range sizes {
			arr, err := bus.Transmit(now, i%2, 2, int(s))
			if err != nil {
				return false
			}
			total += int64(s)
			now = arr
		}
		st := bus.Stats()
		return st.Bytes == total && st.Chunks == int64(len(sizes))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
