package simnet

import (
	"time"
)

// Framer converts a payload size into time-on-the-wire for a specific
// link-layer technology, accounting for framing overhead and minimum
// frame sizes.
type Framer interface {
	// TxTime is the serialization time of size payload bytes, including
	// all per-frame overhead (headers, preamble, inter-frame gaps, cell
	// padding). A size of zero still costs at least one minimum frame.
	TxTime(size int) time.Duration
	// MTU is the largest payload carried in one frame.
	MTU() int
}

func bitsTime(bits float64, bps float64) time.Duration {
	return time.Duration(bits / bps * float64(time.Second))
}

func frameCount(size, mtu int) int {
	if size <= 0 {
		return 1
	}
	return (size + mtu - 1) / mtu
}

// EthernetFraming models IEEE 802.3: 1500-byte MTU, 18-byte MAC
// header/CRC, 8-byte preamble, 12-byte (9.6 µs at 10 Mbit/s) inter-frame
// gap, 46-byte minimum payload.
type EthernetFraming struct {
	BitsPerSec float64
}

// MTU implements Framer.
func (EthernetFraming) MTU() int { return 1500 }

// TxTime implements Framer.
func (f EthernetFraming) TxTime(size int) time.Duration {
	const (
		mtu        = 1500
		overhead   = 18 + 8 // MAC header+CRC, preamble
		gap        = 12     // inter-frame gap in byte times
		minPayload = 46
	)
	frames := frameCount(size, mtu)
	full := 0
	if size > 0 {
		full = size / mtu
	}
	rem := size - full*mtu
	totalBytes := 0
	for i := 0; i < frames; i++ {
		p := mtu
		if i == frames-1 {
			p = rem
			if size == 0 || (full > 0 && rem == 0) {
				p = mtu
			}
			if size == 0 {
				p = 0
			}
		}
		if p < minPayload {
			p = minPayload
		}
		totalBytes += p + overhead + gap
	}
	return bitsTime(float64(totalBytes*8), f.BitsPerSec)
}

// ATMFraming models AAL5 over ATM: payloads are carried in 48-byte cell
// payloads with 5-byte cell headers, plus an 8-byte AAL5 trailer padded to
// a cell boundary. The effective throughput is therefore at most 48/53 of
// the line rate.
type ATMFraming struct {
	BitsPerSec float64 // line rate (e.g. 140e6 TAXI, 155.52e6 OC-3)
	PDU        int     // max AAL5 PDU payload; 0 means 65535
}

// MTU implements Framer.
func (f ATMFraming) MTU() int {
	if f.PDU <= 0 {
		return 65535
	}
	return f.PDU
}

// TxTime implements Framer.
func (f ATMFraming) TxTime(size int) time.Duration {
	const (
		cellPayload = 48
		cellSize    = 53
		aal5Trailer = 8
	)
	mtu := f.MTU()
	frames := frameCount(size, mtu)
	totalCells := 0
	remaining := size
	for i := 0; i < frames; i++ {
		p := remaining
		if p > mtu {
			p = mtu
		}
		remaining -= p
		cells := (p + aal5Trailer + cellPayload - 1) / cellPayload
		if cells < 1 {
			cells = 1
		}
		totalCells += cells
	}
	return bitsTime(float64(totalCells*cellSize*8), f.BitsPerSec)
}

// FDDIFraming models FDDI: 100 Mbit/s line rate, 4352-byte max payload,
// ~28 bytes of header/trailer/preamble per frame.
type FDDIFraming struct {
	BitsPerSec float64 // normally 100e6
}

// MTU implements Framer.
func (FDDIFraming) MTU() int { return 4352 }

// TxTime implements Framer.
func (f FDDIFraming) TxTime(size int) time.Duration {
	const (
		mtu      = 4352
		overhead = 28
	)
	frames := frameCount(size, mtu)
	totalBytes := size + frames*overhead
	if size == 0 {
		totalBytes = overhead
	}
	return bitsTime(float64(totalBytes*8), f.BitsPerSec)
}

// SimpleFraming models a byte-pipe link with fixed fractional overhead,
// used for the Allnode crossbar (flit-level framing is below the fidelity
// we need) and for loopback memory channels.
type SimpleFraming struct {
	BytesPerSec   float64
	OverheadBytes int // per chunk
	MaxChunk      int // 0 = unlimited
}

// MTU implements Framer.
func (f SimpleFraming) MTU() int {
	if f.MaxChunk <= 0 {
		return 1 << 30
	}
	return f.MaxChunk
}

// TxTime implements Framer.
func (f SimpleFraming) TxTime(size int) time.Duration {
	frames := frameCount(size, f.MTU())
	total := size + frames*f.OverheadBytes
	return time.Duration(float64(total) / f.BytesPerSec * float64(time.Second))
}
