package simnet

import (
	"time"

	"tooleval/internal/sim"
)

// Switched models a non-blocking switch fabric: each station has a
// dedicated input port and output port, and a chunk occupies its source
// input port and destination output port for its serialization time.
// Distinct (src, dst) pairs proceed in parallel — the defining advantage
// over SharedBus that the paper's ATM and Allnode results demonstrate.
type Switched struct {
	name      string
	framer    Framer
	switchLat time.Duration
	prop      time.Duration
	in        []sim.Time
	out       []sim.Time
	stats     Stats
}

var _ Network = (*Switched)(nil)

// SwitchedConfig parameterizes a Switched fabric.
type SwitchedConfig struct {
	Name      string
	Stations  int
	Framer    Framer
	SwitchLat time.Duration // cut-through forwarding latency
	Prop      time.Duration // propagation per link (significant for WAN)
}

// NewSwitched builds a switched network.
func NewSwitched(cfg SwitchedConfig) *Switched {
	return &Switched{
		name:      cfg.Name,
		framer:    cfg.Framer,
		switchLat: cfg.SwitchLat,
		prop:      cfg.Prop,
		in:        make([]sim.Time, cfg.Stations),
		out:       make([]sim.Time, cfg.Stations),
	}
}

// Name implements Network.
func (s *Switched) Name() string { return s.name }

// Stations implements Network.
func (s *Switched) Stations() int { return len(s.in) }

// ChunkSize implements Network.
func (s *Switched) ChunkSize() int { return s.framer.MTU() }

// Stats implements Network.
func (s *Switched) Stats() Stats { return s.stats }

// Transmit implements Network.
func (s *Switched) Transmit(now sim.Time, src, dst, size int) (sim.Time, error) {
	if err := checkStations(s.name, len(s.in), src, dst); err != nil {
		return 0, err
	}
	start := now
	if s.in[src] > start || s.out[dst] > start {
		s.stats.Conflicts++
		if s.in[src] > start {
			start = s.in[src]
		}
		if s.out[dst] > start {
			start = s.out[dst]
		}
	}
	tx := s.framer.TxTime(size)
	end := start.Add(tx)
	s.in[src] = end
	s.out[dst] = end
	s.stats.Chunks++
	s.stats.Bytes += int64(size)
	s.stats.WireTime += tx
	s.stats.LastBusy = end
	return end.Add(s.switchLat + s.prop), nil
}

// NewATMLAN builds the paper's FORE-switch ATM LAN (§3.1): 140 Mbit/s
// TAXI host interfaces, AAL5 cell tax, ~25 µs switch latency, negligible
// propagation.
func NewATMLAN(stations int) *Switched {
	return NewSwitched(SwitchedConfig{
		Name:      "atm-lan-140",
		Stations:  stations,
		Framer:    ATMFraming{BitsPerSec: 140e6, PDU: 9188},
		SwitchLat: 25 * time.Microsecond,
		Prop:      2 * time.Microsecond,
	})
}

// NewATMWAN builds the NYNET ATM WAN segment between Syracuse University
// and Rome Laboratory (§3.1): OC-3 (155.52 Mbit/s) site access links, the
// same AAL5 cell tax, and ~600 µs one-way propagation+switching across
// the wide-area path (~70 miles of fibre plus intermediate switches).
func NewATMWAN(stations int) *Switched {
	return NewSwitched(SwitchedConfig{
		Name:      "atm-wan-nynet",
		Stations:  stations,
		Framer:    ATMFraming{BitsPerSec: 155.52e6, PDU: 9188},
		SwitchLat: 50 * time.Microsecond,
		Prop:      600 * time.Microsecond,
	})
}

// NewFDDISwitched builds the Alpha cluster's interconnect as §3.1
// describes it: "a high performance (100 Mbps) backbone composed of
// dedicated, switched FDDI segments" — one full-duplex FDDI segment per
// station into a switch (DEC GIGAswitch class).
func NewFDDISwitched(stations int) *Switched {
	return NewSwitched(SwitchedConfig{
		Name:      "fddi-100-switched",
		Stations:  stations,
		Framer:    FDDIFraming{BitsPerSec: 100e6},
		SwitchLat: 20 * time.Microsecond,
		Prop:      5 * time.Microsecond,
	})
}

// NewAllnode builds the IBM SP-1 Allnode crossbar switch (§3.1): a
// non-blocking crossbar with roughly 40 MB/s per-port bandwidth and a few
// microseconds of hardware latency.
func NewAllnode(stations int) *Switched {
	return NewSwitched(SwitchedConfig{
		Name:      "allnode-switch",
		Stations:  stations,
		Framer:    SimpleFraming{BytesPerSec: 40e6, OverheadBytes: 16, MaxChunk: 8192},
		SwitchLat: 5 * time.Microsecond,
		Prop:      1 * time.Microsecond,
	})
}

// NewDedicatedEthernet builds the SP-1's dedicated (switched, one host
// per segment) Ethernet: Ethernet framing and rate without shared-medium
// contention.
func NewDedicatedEthernet(stations int) *Switched {
	return NewSwitched(SwitchedConfig{
		Name:      "ethernet-10-dedicated",
		Stations:  stations,
		Framer:    EthernetFraming{BitsPerSec: 10e6},
		SwitchLat: 30 * time.Microsecond,
		Prop:      10 * time.Microsecond,
	})
}
