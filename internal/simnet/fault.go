package simnet

import (
	"tooleval/internal/sim"
)

// FaultPlan decides, per transmission attempt, whether the path from src
// to dst is down at virtual time now. It enables the exception-handling
// experiments (TPL criterion 4 in §2.1): the methodology evaluates how
// each tool reacts when the network hardware reports failures.
type FaultPlan func(now sim.Time, src, dst int) bool

// Faulty wraps a Network with fault injection. A transmission attempted
// while the plan reports the path down fails with ErrLinkDown and is
// counted in Stats.Failures.
type Faulty struct {
	inner Network
	plan  FaultPlan
	extra Stats
}

var _ Network = (*Faulty)(nil)

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Network, plan FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// LinkDownAfter returns a plan that fails every path once the virtual
// clock passes t.
func LinkDownAfter(t sim.Time) FaultPlan {
	return func(now sim.Time, src, dst int) bool { return now >= t }
}

// StationDown returns a plan that fails every path touching the given
// station.
func StationDown(station int) FaultPlan {
	return func(now sim.Time, src, dst int) bool { return src == station || dst == station }
}

// Name implements Network.
func (f *Faulty) Name() string { return f.inner.Name() + "+faults" }

// Stations implements Network.
func (f *Faulty) Stations() int { return f.inner.Stations() }

// ChunkSize implements Network.
func (f *Faulty) ChunkSize() int { return f.inner.ChunkSize() }

// Stats implements Network.
func (f *Faulty) Stats() Stats {
	s := f.inner.Stats()
	s.Failures += f.extra.Failures
	return s
}

// Transmit implements Network.
func (f *Faulty) Transmit(now sim.Time, src, dst, size int) (sim.Time, error) {
	if f.plan != nil && f.plan(now, src, dst) {
		f.extra.Failures++
		return 0, ErrLinkDown
	}
	return f.inner.Transmit(now, src, dst, size)
}
