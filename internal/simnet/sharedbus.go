package simnet

import (
	"time"

	"tooleval/internal/sim"
)

// SharedBus models a broadcast medium on which all stations contend:
// classic 10 Mbit/s Ethernet (CSMA/CD) or an FDDI token ring. At most one
// transmission occupies the medium at a time; a sender that finds the
// medium busy queues behind the existing reservations in request order,
// which approximates both CSMA backoff fairness and token rotation.
type SharedBus struct {
	name     string
	stations int
	framer   Framer
	// access is the medium-acquisition latency paid on every chunk: CSMA
	// carrier-sense/defer time for Ethernet, mean token-rotation wait for
	// FDDI.
	access time.Duration
	// contention is an additional per-queued-chunk penalty modelling
	// collision backoff under load (Ethernet only; zero for token media).
	contention time.Duration
	prop       time.Duration
	busyUntil  sim.Time
	stats      Stats
}

var _ Network = (*SharedBus)(nil)

// SharedBusConfig parameterizes a SharedBus.
type SharedBusConfig struct {
	Name       string
	Stations   int
	Framer     Framer
	Access     time.Duration
	Contention time.Duration
	Prop       time.Duration
}

// NewSharedBus builds a shared-medium network.
func NewSharedBus(cfg SharedBusConfig) *SharedBus {
	return &SharedBus{
		name:       cfg.Name,
		stations:   cfg.Stations,
		framer:     cfg.Framer,
		access:     cfg.Access,
		contention: cfg.Contention,
		prop:       cfg.Prop,
	}
}

// Name implements Network.
func (b *SharedBus) Name() string { return b.name }

// Stations implements Network.
func (b *SharedBus) Stations() int { return b.stations }

// ChunkSize implements Network.
func (b *SharedBus) ChunkSize() int { return b.framer.MTU() }

// Stats implements Network.
func (b *SharedBus) Stats() Stats { return b.stats }

// Transmit implements Network.
func (b *SharedBus) Transmit(now sim.Time, src, dst, size int) (sim.Time, error) {
	if err := checkStations(b.name, b.stations, src, dst); err != nil {
		return 0, err
	}
	start := now.Add(b.access)
	if b.busyUntil > start {
		b.stats.Conflicts++
		start = b.busyUntil.Add(b.contention)
	}
	tx := b.framer.TxTime(size)
	end := start.Add(tx)
	b.busyUntil = end
	b.stats.Chunks++
	b.stats.Bytes += int64(size)
	b.stats.WireTime += tx
	b.stats.LastBusy = end
	return end.Add(b.prop), nil
}

// NewEthernet10 builds the paper's shared 10 Mbit/s Ethernet segment
// (SUN/Ethernet configuration, §3.1): CSMA access latency ~50 µs
// (carrier sense + deference on a populated segment), 20 µs backoff
// penalty per queued chunk, 15 µs propagation+repeater delay.
func NewEthernet10(stations int) *SharedBus {
	return NewSharedBus(SharedBusConfig{
		Name:       "ethernet-10",
		Stations:   stations,
		Framer:     EthernetFraming{BitsPerSec: 10e6},
		Access:     50 * time.Microsecond,
		Contention: 20 * time.Microsecond,
		Prop:       15 * time.Microsecond,
	})
}

// NewFDDIRing builds a classic shared FDDI token ring: 100 Mbit/s,
// token-rotation access latency ~80 µs on a lightly loaded ring, 5 µs
// propagation. The Alpha-cluster platform uses the switched variant
// (simnet.NewFDDISwitched) per §3.1; the ring model is kept for the
// shared-vs-switched ablation.
func NewFDDIRing(stations int) *SharedBus {
	return NewSharedBus(SharedBusConfig{
		Name:     "fddi-100-ring",
		Stations: stations,
		Framer:   FDDIFraming{BitsPerSec: 100e6},
		Access:   80 * time.Microsecond,
		Prop:     5 * time.Microsecond,
	})
}
