// Package simnet provides discrete-event models of the network fabrics
// used in the paper's experimentation environment (§3.1): shared 10 Mbit/s
// Ethernet, switched FDDI, ATM LAN (FORE switch, TAXI interface), ATM WAN
// (NYNET OC-3 access), the IBM SP-1 Allnode crossbar switch, and the SP-1
// dedicated Ethernet.
//
// A Network arbitrates the medium: Transmit reserves transmission capacity
// for one protocol chunk and returns the virtual time at which its last
// bit arrives at the destination. Contention emerges from the reservation
// discipline — concurrent senders on a shared bus serialize, senders on a
// switched fabric serialize only per port — which is what differentiates
// the platforms in the reproduced experiments.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"tooleval/internal/sim"
)

// ErrLinkDown reports that a transmission was attempted over a failed
// link. Message-passing tools surface it according to their (per the
// paper, uniformly immature) error-handling philosophy.
var ErrLinkDown = errors.New("simnet: link down")

// Stats aggregates traffic accounting for a network instance.
type Stats struct {
	Chunks    int64 // Transmit calls that succeeded
	Bytes     int64 // payload bytes carried
	WireTime  time.Duration
	LastBusy  sim.Time
	Failures  int64 // Transmit calls rejected by fault injection
	Conflicts int64 // times a sender found the medium/port busy
}

// Network is a contention-arbitrating model of one fabric. Implementations
// are not safe for concurrent use; the simulation engine's
// one-runnable-at-a-time discipline provides the necessary serialization.
type Network interface {
	// Name identifies the model (e.g. "ethernet-10", "atm-lan-140").
	Name() string
	// Stations reports how many attachment points the fabric has.
	Stations() int
	// Transmit reserves the medium at virtual time now for a chunk of
	// size payload bytes from station src to station dst and returns the
	// arrival time of its last bit at dst. Chunks larger than ChunkSize
	// are carried in back-to-back wire frames without yielding the
	// reservation. src == dst is invalid for fabrics (use Loopback).
	Transmit(now sim.Time, src, dst, size int) (sim.Time, error)
	// ChunkSize is the natural protocol chunk (wire MTU payload) of the
	// fabric. Tools that packetize pick their own, possibly smaller,
	// chunk sizes.
	ChunkSize() int
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
}

func checkStations(name string, stations, src, dst int) error {
	if src < 0 || src >= stations || dst < 0 || dst >= stations {
		return fmt.Errorf("simnet: %s: station out of range: src=%d dst=%d stations=%d", name, src, dst, stations)
	}
	if src == dst {
		return fmt.Errorf("simnet: %s: src == dst (%d); use Loopback for intra-host transfer", name, src)
	}
	return nil
}
