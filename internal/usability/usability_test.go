package usability

import (
	"strings"
	"testing"

	"tooleval/internal/core"
	"tooleval/internal/paperdata"
)

func TestMatrixMatchesPaper(t *testing.T) {
	m, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(paperdata.ADLCriteria) {
		t.Fatalf("matrix has %d criteria, want %d", len(m), len(paperdata.ADLCriteria))
	}
	// Spot checks straight from the paper's §3.3.1 table.
	checks := []struct {
		criterion, tool string
		want            core.Rating
	}{
		{"Ease of Programming", "pvm", core.WellSupported},
		{"Ease of Programming", "p4", core.PartiallySupported},
		{"Debugging Support", "express", core.WellSupported},
		{"Customization", "pvm", core.NotSupported},
		{"Error Handling", "p4", core.PartiallySupported},
		{"Integration with other Software Systems", "express", core.NotSupported},
		{"Portability", "p4", core.WellSupported},
	}
	for _, c := range checks {
		if got := m[c.criterion][c.tool]; got != c.want {
			t.Fatalf("%s/%s = %v, want %v", c.criterion, c.tool, got, c.want)
		}
	}
}

func TestAssessmentsHaveRationale(t *testing.T) {
	as, err := Assessments()
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != len(paperdata.ADLCriteria)*3 {
		t.Fatalf("got %d assessments, want %d", len(as), len(paperdata.ADLCriteria)*3)
	}
	for _, a := range as {
		if a.Rationale == "" {
			t.Fatalf("%s/%s has no rationale", a.Criterion, a.Tool)
		}
	}
}

func TestRenderLayout(t *testing.T) {
	text, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, criterion := range paperdata.ADLCriteria {
		if !strings.Contains(text, criterion) {
			t.Fatalf("rendered table missing %q", criterion)
		}
	}
	// All tools WS on portability (last line of the paper's table).
	lines := strings.Split(strings.TrimSpace(text), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "Portability") || strings.Count(last, "WS") != 3 {
		t.Fatalf("portability row wrong: %q", last)
	}
}

func TestErrorHandlingUniformlyPartial(t *testing.T) {
	// "All the tools that we used in this paper do not have a mature
	// error/exception handling feature" (§2.3).
	m, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for tool, r := range m["Error Handling"] {
		if r != core.PartiallySupported {
			t.Fatalf("Error Handling for %s = %v, want PS for all tools", tool, r)
		}
	}
}
