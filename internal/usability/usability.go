// Package usability carries the Application Development Level assessment
// of §3.3.1: the paper's NS/PS/WS matrix over the §2.3 criteria, together
// with the rationale the paper gives for each cell. It converts the
// assessment into the core methodology's input types.
package usability

import (
	"fmt"
	"sort"
	"strings"

	"tooleval/internal/core"
	"tooleval/internal/paperdata"
)

// Assessment is one cell of the usability matrix with its rationale.
type Assessment struct {
	Criterion string
	Tool      string
	Rating    core.Rating
	Rationale string
}

// rationale captures §2.3/§3.3.1 prose per (criterion, tool).
var rationale = map[string]map[string]string{
	"Programming Models Supported": {
		"p4":      "host-node and SPMD supported",
		"pvm":     "host-node and SPMD supported",
		"express": "host-node and Cubix (SPMD) supported",
	},
	"Language Interface": {
		"p4":      "C and FORTRAN bindings",
		"pvm":     "C and FORTRAN bindings",
		"express": "C and FORTRAN bindings",
	},
	"Ease of Programming": {
		"p4":      "procgroup files and explicit process management add learning curve",
		"pvm":     "simple spawn/send/receive model; quickest start of the three",
		"express": "Cubix model requires re-thinking program structure",
	},
	"Debugging Support": {
		"p4":      "listener/debug flags only",
		"pvm":     "console tracing only",
		"express": "ndb debugger plus execution tracing and performance tools",
	},
	"Customization": {
		"p4":      "buffer sizes and transport options tunable",
		"pvm":     "no macro or reconfiguration facilities",
		"express": "configurable kernel parameters (packetization, buffers)",
	},
	"Error Handling": {
		"p4":      "errors abort the computation with minimal diagnostics",
		"pvm":     "error codes returned but recovery is the application's problem",
		"express": "errors reported without cleanup guarantees",
	},
	"Run-Time Interface": {
		"p4":      "no parallel I/O or data redistribution support",
		"pvm":     "dynamic process groups and host management at run time",
		"express": "Cubix parallel I/O and runtime reconfiguration",
	},
	"Integration with other Software Systems": {
		"p4":      "library-only; no visualization or profiling hooks",
		"pvm":     "XPVM visualization, group server, broad third-party ecosystem",
		"express": "closed commercial environment",
	},
	"Portability": {
		"p4":      "wide workstation and MPP coverage",
		"pvm":     "the de-facto portable message passing layer of 1995",
		"express": "commercial ports across workstations and MPPs; virtual topology independent of physical",
	},
}

// Matrix returns the paper's assessment as methodology input.
func Matrix() (core.UsabilityMatrix, error) {
	out := core.UsabilityMatrix{}
	for criterion, tools := range paperdata.ADLMatrix {
		out[criterion] = map[string]core.Rating{}
		for tool, r := range tools {
			rating, err := core.ParseRating(string(r))
			if err != nil {
				return nil, fmt.Errorf("usability: %s/%s: %w", criterion, tool, err)
			}
			out[criterion][tool] = rating
		}
	}
	return out, nil
}

// Assessments returns all cells with rationale, ordered by the paper's
// criterion order then tool name.
func Assessments() ([]Assessment, error) {
	m, err := Matrix()
	if err != nil {
		return nil, err
	}
	var out []Assessment
	for _, criterion := range paperdata.ADLCriteria {
		tools := make([]string, 0, len(m[criterion]))
		for t := range m[criterion] {
			tools = append(tools, t)
		}
		sort.Strings(tools)
		for _, t := range tools {
			out = append(out, Assessment{
				Criterion: criterion,
				Tool:      t,
				Rating:    m[criterion][t],
				Rationale: rationale[criterion][t],
			})
		}
	}
	return out, nil
}

// Render formats the matrix in the layout of the paper's §3.3.1 table.
func Render() (string, error) {
	m, err := Matrix()
	if err != nil {
		return "", err
	}
	tools := []string{"p4", "pvm", "express"}
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s", "Criterion")
	for _, t := range tools {
		fmt.Fprintf(&b, " %-8s", t)
	}
	b.WriteString("\n")
	for _, criterion := range paperdata.ADLCriteria {
		fmt.Fprintf(&b, "%-42s", criterion)
		for _, t := range tools {
			fmt.Fprintf(&b, " %-8s", m[criterion][t].String())
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
