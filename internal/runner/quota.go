package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrQuotaExceeded is the sentinel every quota breach unwraps to; match
// it with errors.Is. The concrete error is always a *QuotaError
// carrying which budget broke and by how much.
var ErrQuotaExceeded = errors.New("session quota exceeded")

// QuotaError reports one exhausted session budget.
type QuotaError struct {
	// Resource names the budget: "cells" or "virtual time".
	Resource string
	// Used and Limit are counts for "cells", nanoseconds for
	// "virtual time".
	Used, Limit int64
}

func (e *QuotaError) Error() string {
	if e.Resource == "virtual time" {
		return fmt.Sprintf("%v: %s budget %v spent (%v simulated)",
			ErrQuotaExceeded, e.Resource, time.Duration(e.Limit), time.Duration(e.Used))
	}
	return fmt.Sprintf("%v: %s budget %d spent (%d simulated)",
		ErrQuotaExceeded, e.Resource, e.Limit, e.Used)
}

// Unwrap makes errors.Is(err, ErrQuotaExceeded) match.
func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// Limits bounds what one session may consume. The zero value means
// unlimited.
type Limits struct {
	// MaxCells caps how many cells the session may simulate (cache
	// misses; hits are free until a budget is already exhausted).
	// 0 = unlimited.
	MaxCells int64
	// MaxVirtualTime caps the summed virtual wall-clock of the cells
	// the session simulates. 0 = unlimited.
	MaxVirtualTime time.Duration
}

func (l Limits) zero() bool { return l.MaxCells <= 0 && l.MaxVirtualTime <= 0 }

// NewQuota wraps base with per-session resource budgets, implementing
// the ROADMAP's multi-tenant fairness item at the executor seam so any
// backend — the in-process pool or a remote one — is bounded the same
// way. With zero Limits it returns base unwrapped.
//
// Budgets are enforced before each cell is scheduled: once a budget is
// exhausted, every further Memo and Do call fails with a *QuotaError
// (errors.Is ErrQuotaExceeded). Admission is gated to the backend's
// parallelism bound, so at most Workers() calls can pass the budget
// check before the charges of the cells ahead of them land: charging
// happens when a simulation completes, cells in flight at the moment
// of breach finish and are charged, and a session overshoots by at
// most its parallelism bound — a wide fan-out cannot slip past the
// budget wholesale. Memoized cells charge both budgets (their
// CellResult reports the virtual clock); direct Do runs charge one
// cell each but no virtual time, since Do carries no timing report.
//
// Quota errors are raised outside the memoization path and are
// therefore never cached: a shared Cache is not poisoned by one
// tenant's exhausted budget, and an unquota'd session sharing the
// cache computes the refused cells normally. Refused cells are still
// reported to the installed Observer (cached=false, the quota error),
// so per-cell progress sinks see them.
func NewQuota(base Executor, lim Limits) Executor {
	if lim.zero() {
		return base
	}
	return &quotaExecutor{
		base: base,
		lim:  lim,
		adm:  make(chan struct{}, base.Workers()),
	}
}

type quotaExecutor struct {
	base Executor
	lim  Limits
	// adm is the admission gate: a counting semaphore as wide as the
	// backend's pool. Holding a slot across the budget check and the
	// delegated call keeps the number of calls that have passed the
	// check but not yet charged bounded by the parallelism bound —
	// without it, every cell of a wide fan-out would pass the check
	// before the first charge landed. Progress is guaranteed because
	// slot holders only wait on simulations, which complete without
	// needing a slot from anyone else.
	adm     chan struct{}
	observe Observer
	cells   atomic.Int64 // simulations charged
	virt    atomic.Int64 // virtual nanoseconds charged
}

// admit acquires an admission slot and runs the budget check.
func (q *quotaExecutor) admit(ctx context.Context) (release func(), err error) {
	select {
	case q.adm <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := q.exceeded(); err != nil {
		<-q.adm
		return nil, err
	}
	return func() { <-q.adm }, nil
}

// notifyRefusal reports a quota refusal to the installed observer —
// and only quota refusals, not context errors, which did not resolve
// the cell. Detection is errors.As, not a bare type assertion: a
// wrapping layer (the remote executor will wrap errors with transport
// context) must not silently drop the observer callback.
func (q *quotaExecutor) notifyRefusal(ctx context.Context, key Key, err error) {
	var qe *QuotaError
	if errors.As(err, &qe) && q.observe != nil {
		q.observe(ctx, key, false, err)
	}
}

// exceeded reports the first exhausted budget, or nil.
func (q *quotaExecutor) exceeded() error {
	if q.lim.MaxCells > 0 {
		if used := q.cells.Load(); used >= q.lim.MaxCells {
			return &QuotaError{Resource: "cells", Used: used, Limit: q.lim.MaxCells}
		}
	}
	if q.lim.MaxVirtualTime > 0 {
		if used := q.virt.Load(); used >= int64(q.lim.MaxVirtualTime) {
			return &QuotaError{Resource: "virtual time", Used: used, Limit: int64(q.lim.MaxVirtualTime)}
		}
	}
	return nil
}

func (q *quotaExecutor) Memo(ctx context.Context, key Key, compute func() (CellResult, error)) (float64, error) {
	release, err := q.admit(ctx)
	if err != nil {
		// The refusal resolved this cell (to an error) without touching
		// the cache; report it to the observer like any other outcome.
		q.notifyRefusal(ctx, key, err)
		return 0, err
	}
	defer release()
	return q.base.Memo(ctx, key, func() (res CellResult, err error) {
		// Charge on every exit of the closure, panics included: a
		// panicking user factory still ran a simulation, and letting it
		// escape uncharged would let a crashing tenant bypass its
		// budget. res.Virtual is the virtual clock the cell covered —
		// zero on error/panic paths that never started the engine, so
		// only the cell budget is charged then.
		defer func() {
			q.cells.Add(1)
			q.virt.Add(int64(res.Virtual))
		}()
		return compute()
	})
}

func (q *quotaExecutor) Do(ctx context.Context, fn func() error) error {
	release, err := q.admit(ctx)
	if err != nil {
		return err
	}
	defer release()
	// A direct run is a simulation too: charge it as one cell so a
	// Do-only workload still depletes its budget (Do carries no
	// virtual-time report, so only the cell budget is charged). Charge
	// exactly when fn actually ran — a Do cancelled while waiting for
	// an execution slot did no work.
	ran := false
	err = q.base.Do(ctx, func() error { ran = true; return fn() })
	if ran {
		q.cells.Add(1)
	}
	return err
}

func (q *quotaExecutor) Map(ctx context.Context, n int, fn func(i int) error) error {
	// Per-cell enforcement happens inside fn's Memo/Do calls; Map's
	// early-exit then stops launching further indices.
	return q.base.Map(ctx, n, fn)
}

func (q *quotaExecutor) Workers() int  { return q.base.Workers() }
func (q *quotaExecutor) Stats() Stats  { return q.base.Stats() }
func (q *quotaExecutor) Cache() *Cache { return q.base.Cache() }

// Observe keeps a copy of the observer so quota refusals — which never
// reach the base executor — are still reported.
func (q *quotaExecutor) Observe(fn Observer) {
	q.observe = fn
	q.base.Observe(fn)
}
