package runner

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkMemoContention measures the scheduler overhead the sharded
// executor exists to remove: many goroutines resolving cells through
// one executor. The cells themselves are trivial, so the benchmark is
// dominated by what the paper's matrix never should be dominated by —
// cache lock and pool semaphore traffic. Mostly hits (the steady state
// of a sweep whose report replays memoized curves) with a fresh miss
// every 16th call to keep the insert/evict path and the semaphore hot.
//
//   - serial:  one worker, single-stripe cache — every call through one
//     mutex (the pre-PR 5 shape at -j 1).
//   - pooled:  GOMAXPROCS workers, still one cache mutex (the pre-PR 5
//     shape at high -j).
//   - sharded: NewSharded(4, ...) — per-shard semaphores over a striped
//     cache.
//
// Recorded in BENCH_PR5.json via scripts/record_bench.sh pr5.
func BenchmarkMemoContention(b *testing.B) {
	per := runtime.GOMAXPROCS(0)/4 + 1
	for _, tc := range []struct {
		name string
		mk   func() Executor
	}{
		{"serial", func() Executor { return New(1) }},
		{"pooled", func() Executor { return New(0) }},
		{"sharded", func() Executor { return NewSharded(4, per) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchMemoContention(b, tc.mk())
		})
	}
}

func benchMemoContention(b *testing.B, x Executor) {
	const warm = 512
	compute := func() (CellResult, error) { return CellResult{Value: 1}, nil }
	for i := 0; i < warm; i++ {
		if _, err := x.Memo(bg, Key{Bench: "contend", Size: i}, compute); err != nil {
			b.Fatal(err)
		}
	}
	var fresh atomic.Int64
	fresh.Store(warm)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := 0
		for pb.Next() {
			n++
			key := Key{Bench: "contend", Size: n % warm}
			if n%16 == 0 {
				key.Size = int(fresh.Add(1)) // a genuinely new cell
			}
			if _, err := x.Memo(bg, key, compute); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedSweep exercises the whole executor contract the way
// the harness does — Map fan-out over a synthetic matrix of memoized
// cells — comparing the single pool and the sharded backend end to
// end.
func BenchmarkShardedSweep(b *testing.B) {
	const cells = 256
	per := runtime.GOMAXPROCS(0)/4 + 1
	for _, tc := range []struct {
		name string
		mk   func() Executor
	}{
		{"pooled", func() Executor { return New(0) }},
		{"sharded", func() Executor { return NewSharded(4, per) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			x := tc.mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := x.Map(bg, cells, func(j int) error {
					_, err := x.Memo(bg, Key{Bench: "sweep", Size: j}, func() (CellResult, error) {
						return CellResult{Value: float64(j)}, nil
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
