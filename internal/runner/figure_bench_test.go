// Serial-vs-parallel benchmarks of a real TPL figure. They live in an
// external test package so they can drive internal/bench (which itself
// builds on runner) without an import cycle. Each iteration builds a
// fresh harness — and with it an empty memoization cache — so the
// benchmark times real simulations, not cache replay.
package runner_test

import (
	"context"
	"testing"

	"tooleval/internal/bench"
	"tooleval/internal/runner"
)

func benchmarkFig2(b *testing.B, workers int) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness(runner.New(workers))
		fig, err := h.Fig2(ctx, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2Serial(b *testing.B)    { benchmarkFig2(b, 1) }
func BenchmarkFig2Parallel2(b *testing.B) { benchmarkFig2(b, 2) }
func BenchmarkFig2Parallel4(b *testing.B) { benchmarkFig2(b, 4) }
func BenchmarkFig2Parallel8(b *testing.B) { benchmarkFig2(b, 8) }

// BenchmarkFig2Memoized measures the cache-replay path: everything
// after the first iteration is pure hits, so this is the cost of
// serving a whole figure from the memoization cache.
func BenchmarkFig2Memoized(b *testing.B) {
	ctx := context.Background()
	h := bench.NewHarness(runner.New(4))
	if _, err := h.Fig2(ctx, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig2(ctx, 4); err != nil {
			b.Fatal(err)
		}
	}
}
