// Serial-vs-parallel benchmarks of a real TPL figure. They live in an
// external test package so they can drive internal/bench (which itself
// builds on runner) without an import cycle. Each iteration installs a
// fresh runner — and with it an empty memoization cache — so the
// benchmark times real simulations, not cache replay.
package runner_test

import (
	"testing"

	"tooleval/internal/bench"
	"tooleval/internal/runner"
)

func benchmarkFig2(b *testing.B, workers int) {
	old := runner.Default()
	defer runner.SetDefault(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner.SetDefault(runner.New(workers))
		fig, err := bench.Fig2(4)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2Serial(b *testing.B)    { benchmarkFig2(b, 1) }
func BenchmarkFig2Parallel2(b *testing.B) { benchmarkFig2(b, 2) }
func BenchmarkFig2Parallel4(b *testing.B) { benchmarkFig2(b, 4) }
func BenchmarkFig2Parallel8(b *testing.B) { benchmarkFig2(b, 8) }

// BenchmarkFig2Memoized measures the cache-replay path: everything
// after the first iteration is pure hits, so this is the cost of
// serving a whole figure from the memoization cache.
func BenchmarkFig2Memoized(b *testing.B) {
	old := runner.Default()
	defer runner.SetDefault(old)
	runner.SetDefault(runner.New(4))
	if _, err := bench.Fig2(4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2(4); err != nil {
			b.Fatal(err)
		}
	}
}
