package runner

// Tier is a second-tier result store behind the in-memory Cache: the
// seam the durable disk store (internal/store) plugs into. On a cache
// miss the scheduler consults the tier before simulating, and writes
// every successfully computed cell back into it — so a tier shared
// across process restarts turns a sweep into an incremental build.
//
// The contract mirrors what makes memoization sound:
//
//   - Lookup must return exactly what an earlier Fill recorded for the
//     key (cells are deterministic, so any faithfully stored result is
//     the correct result). A tier that cannot answer — corruption, a
//     version mismatch, an IO error — reports a miss, never a wrong
//     value and never a panic: the cell is simply re-simulated.
//   - Fill is called only for successfully computed cells. Errors are
//     never written to a tier — deterministic failures stay memoized in
//     the memory tier for the life of the process, and context errors
//     are not cached anywhere (see Executor.Memo).
//   - Both methods must be safe for concurrent use. They are called
//     outside the cache's stripe locks, from whichever goroutine
//     resolved the cell.
type Tier interface {
	// Lookup returns the stored result for key, if present.
	Lookup(key Key) (CellResult, bool)
	// Fill records a successfully computed cell. Implementations decide
	// their own durability and error handling; a failed write must
	// degrade to future misses, not corrupt earlier records.
	Fill(key Key, res CellResult)
}

// SetTier installs t as the cache's durable second tier: misses consult
// t before computing, and completed cells are written through to it.
// Install the tier before any cells are submitted. Installing a second
// tier panics — a cache wired to one store must not be silently
// re-pointed at another (two sessions configuring different stores over
// one shared cache is a configuration bug). SetTier(nil) detaches the
// current tier.
func (c *Cache) SetTier(t Tier) {
	if t == nil {
		c.tier.Store(nil)
		return
	}
	if !c.tier.CompareAndSwap(nil, &tierBox{t: t}) {
		panic("runner: cache already has a second-tier result store attached")
	}
}

// Tier returns the installed second tier, or nil.
func (c *Cache) Tier() Tier {
	if b := c.tier.Load(); b != nil {
		return b.t
	}
	return nil
}
