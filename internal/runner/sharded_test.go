package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// keysInBucket returns n distinct keys that all hash-route to bucket
// index want out of buckets — the in-package way to aim load at one
// shard pool or one cache stripe (both use the same hash/bucket
// routing).
func keysInBucket(buckets, want, n int) []Key {
	keys := make([]Key, 0, n)
	for size := 0; len(keys) < n; size++ {
		k := Key{Bench: "pin", Size: size}
		if bucket(k.Hash(), buckets) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestShardedImplementsExecutorContract(t *testing.T) {
	s := NewSharded(4, 2)
	if got := s.Workers(); got != 8 {
		t.Fatalf("Workers = %d, want 4 shards × 2 = 8", got)
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	if s.Cache() == nil || s.Cache().Stripes() < 4 {
		t.Fatalf("sharded executor should front a striped cache, got %d stripes", s.Cache().Stripes())
	}
	v, err := s.Memo(bg, Key{Bench: "contract"}, func() (CellResult, error) {
		return CellResult{Value: 5}, nil
	})
	if err != nil || v != 5 {
		t.Fatalf("Memo = %v, %v", v, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("Stats = %+v, want 1 miss", st)
	}
	if s.Cache().Len() != 1 {
		t.Fatalf("Cache.Len = %d, want 1", s.Cache().Len())
	}
}

func TestShardedClampsArguments(t *testing.T) {
	s := NewSharded(0, 0)
	if s.Shards() < 1 || s.Workers() < s.Shards() {
		t.Fatalf("clamped executor: shards=%d workers=%d", s.Shards(), s.Workers())
	}
	// More shards than GOMAXPROCS still gives every shard one worker.
	if got := NewSharded(64, 0).Workers(); got != 64 {
		t.Fatalf("NewSharded(64, 0).Workers() = %d, want 64 (one per shard)", got)
	}
}

func TestShardedMemoizesAndCoalesces(t *testing.T) {
	s := NewSharded(4, 2)
	key := Key{Bench: "sf-sharded"}
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Memo(bg, key, func() (CellResult, error) {
				calls.Add(1)
				<-release
				return CellResult{Value: 7}, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Memo = %v, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under concurrent requests, want 1 (single-flight across shards)", got)
	}
	// Replays are hits.
	if _, err := s.Memo(bg, key, func() (CellResult, error) {
		t.Error("cached cell recomputed")
		return CellResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits < 16 {
		t.Fatalf("Stats = %+v, want 1 miss and >= 16 hits", st)
	}
}

func TestShardedRoutesKeyToOneShard(t *testing.T) {
	// A key pinned to shard 0 must serialize behind that shard's single
	// worker even while the other shards sit idle: the shard bound, not
	// the global bound, governs one shard's keys.
	const shards = 4
	s := NewSharded(shards, 1)
	keys := keysInBucket(shards, 0, 6)
	var inShard, peak atomic.Int64
	var wg sync.WaitGroup
	for _, key := range keys {
		wg.Add(1)
		go func(key Key) {
			defer wg.Done()
			_, err := s.Memo(bg, key, func() (CellResult, error) {
				if cur := inShard.Add(1); cur > peak.Load() {
					peak.Store(cur)
				}
				defer inShard.Add(-1)
				return CellResult{Value: 1}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(key)
	}
	wg.Wait()
	if got := peak.Load(); got > 1 {
		t.Fatalf("shard 0 ran %d cells concurrently with workersPerShard=1", got)
	}
}

func TestShardedDoRoundRobinsAndBounds(t *testing.T) {
	// 4 shards × 1 worker: round-robin admits up to 4 concurrent Do
	// bodies, and a 5th must wait for a slot.
	s := NewSharded(4, 1)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Do(bg, func() error {
				started <- struct{}{}
				<-release
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-started // all four shards occupied
	}
	// The fifth Do targets an occupied shard: it must respect ctx while
	// waiting for the slot.
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if err := s.Do(ctx, func() error { t.Error("must not run"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on a full shard under cancelled ctx = %v", err)
	}
	close(release)
	wg.Wait()
}

func TestShardedMapOrderedFirstError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	body := func(i int) error {
		switch i {
		case 2:
			return errLow
		case 6:
			return errHigh
		}
		return nil
	}
	// A 1×1 sharded executor degenerates to the serial loop: first
	// failing index, deterministically.
	if err := NewSharded(1, 1).Map(bg, 8, body); !errors.Is(err, errLow) {
		t.Fatalf("1×1 sharded Map error = %v, want the first error", err)
	}
	err := NewSharded(4, 2).Map(bg, 8, body)
	if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
		t.Fatalf("sharded Map error = %v, want one of the injected errors", err)
	}
}

func TestShardedMapPreservesOrderAndNests(t *testing.T) {
	s := NewSharded(2, 2)
	out := make([]float64, 36)
	err := s.Map(bg, 6, func(i int) error {
		return s.Map(bg, 6, func(j int) error {
			v, err := s.Memo(bg, Key{Bench: "nest-sharded", Procs: i, Size: j}, func() (CellResult, error) {
				return CellResult{Value: float64(i * j)}, nil
			})
			out[i*6+j] = v
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if out[i*6+j] != float64(i*j) {
				t.Fatalf("out[%d][%d] = %v, want %d", i, j, out[i*6+j], i*j)
			}
		}
	}
}

func TestShardedObserverSeesEveryCell(t *testing.T) {
	s := NewSharded(4, 1)
	var mu sync.Mutex
	seen := map[Key]int{}
	s.Observe(func(_ context.Context, key Key, cached bool, err error) {
		mu.Lock()
		seen[key]++
		mu.Unlock()
	})
	const cells = 24
	for i := 0; i < cells; i++ {
		if _, err := s.Memo(bg, Key{Bench: "observed-sharded", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != cells {
		t.Fatalf("observer saw %d distinct cells, want %d", len(seen), cells)
	}
}

func TestShardedSharesCacheWithRunner(t *testing.T) {
	// A striped cache handed to both a plain Runner and a Sharded
	// executor pools their results, exactly like two Runners would.
	cache := NewStripedCache(8)
	r := New(2, WithCache(cache))
	s := NewSharded(4, 1, WithCache(cache))
	if s.Cache() != cache {
		t.Fatal("WithCache not honored by NewSharded")
	}
	key := Key{Bench: "pooled"}
	var calls atomic.Int64
	compute := func() (CellResult, error) { calls.Add(1); return CellResult{Value: 9}, nil }
	if _, err := r.Memo(bg, key, compute); err != nil {
		t.Fatal(err)
	}
	v, err := s.Memo(bg, key, compute)
	if err != nil || v != 9 {
		t.Fatalf("sharded Memo over shared cache = %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("shared cache recomputed: %d calls", calls.Load())
	}
}

func TestShardedCacheCapacityOption(t *testing.T) {
	s := NewSharded(2, 1, WithCacheCapacity(64))
	if got := s.Cache().Capacity(); got != 64 {
		t.Fatalf("Capacity = %d, want 64", got)
	}
}

func TestShardedPanickingCellDoesNotWedgeShard(t *testing.T) {
	const shards = 4
	s := NewSharded(shards, 1)
	keys := keysInBucket(shards, 1, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the computing caller")
			}
		}()
		_, _ = s.Memo(bg, keys[0], func() (CellResult, error) { panic("boom") })
	}()
	// The shard's only token was released: its next cell still runs.
	v, err := s.Memo(bg, keys[1], func() (CellResult, error) { return CellResult{Value: 5}, nil })
	if err != nil || v != 5 {
		t.Fatalf("shard wedged after panic: %v, %v", v, err)
	}
	// And the panicked cell is cached as an error.
	if _, err := s.Memo(bg, keys[0], func() (CellResult, error) { return CellResult{Value: 1}, nil }); err == nil {
		t.Fatal("panicked cell must be cached as an error")
	}
}

func TestShardedDeterministicVsRunner(t *testing.T) {
	// The same synthetic matrix computed through a serial Runner and a
	// sharded executor must assemble identical results — the executor
	// contract the determinism suite pins end to end with real cells.
	cell := func(k Key) float64 { return float64(k.Procs*1000+k.Size) / 7 }
	sweep := func(x Executor) []float64 {
		out := make([]float64, 64)
		err := x.Map(bg, len(out), func(i int) error {
			k := Key{Bench: "det", Procs: i / 8, Size: i % 8}
			v, err := x.Memo(bg, k, func() (CellResult, error) {
				return CellResult{Value: cell(k)}, nil
			})
			out[i] = v
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sweep(New(1))
	for _, shards := range []int{1, 2, 4, 7} {
		got := sweep(NewSharded(shards, 2))
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("shards=%d: point %d = %v, want %v", shards, i, got[i], serial[i])
			}
		}
	}
}

func TestKeyHashStable(t *testing.T) {
	// Routing must be a pure function of the key's content: equal keys
	// hash equal, and distinct fields actually reach the hash.
	a := Key{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 1024}
	if a.Hash() != a.Hash() {
		t.Fatal("hash is not deterministic")
	}
	distinct := []Key{
		a,
		{Platform: "sun-atm-lan", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 1024},
		{Platform: "sun-ethernet", Tool: "pvm", Bench: "pingpong", Procs: 2, Size: 1024},
		{Platform: "sun-ethernet", Tool: "p4", Bench: "ring", Procs: 2, Size: 1024},
		{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 4, Size: 1024},
		{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 2048},
		{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 1024, Scale: 0.5},
	}
	hashes := map[uint64]Key{}
	for _, k := range distinct {
		if prev, dup := hashes[k.Hash()]; dup {
			t.Fatalf("hash collision between %v and %v", prev, k)
		}
		hashes[k.Hash()] = k
	}
}

func TestShardedStatsAggregateAcrossShards(t *testing.T) {
	s := NewSharded(4, 2)
	const cells = 32
	for round := 0; round < 2; round++ {
		for i := 0; i < cells; i++ {
			if _, err := s.Memo(bg, Key{Bench: "agg", Size: i}, func() (CellResult, error) {
				return CellResult{Value: float64(i)}, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.Stats(); st.Misses != cells || st.Hits != cells {
		t.Fatalf("Stats = %+v, want %d misses / %d hits", st, cells, cells)
	}
}

func TestShardedWorkersFormula(t *testing.T) {
	for _, tc := range []struct{ shards, per, want int }{
		{1, 1, 1},
		{2, 3, 6},
		{8, 2, 16},
	} {
		if got := NewSharded(tc.shards, tc.per).Workers(); got != tc.want {
			t.Fatalf("NewSharded(%d, %d).Workers() = %d, want %d", tc.shards, tc.per, got, tc.want)
		}
	}
}

func TestStripesForCoversShardCounts(t *testing.T) {
	for _, tc := range []struct{ shards, want int }{
		{1, 4}, {2, 8}, {4, 16}, {5, 32}, {16, 64},
	} {
		if got := stripesFor(tc.shards); got != tc.want {
			t.Fatalf("stripesFor(%d) = %d, want %d", tc.shards, got, tc.want)
		}
	}
}

func TestShardedCollect(t *testing.T) {
	// Collect, the generic ordered fan-out every experiment uses, works
	// over the sharded backend unchanged.
	s := NewSharded(3, 2)
	jobs := []int{1, 2, 3, 4, 5}
	out, err := Collect(bg, s, jobs, func(j int) (string, error) {
		return fmt.Sprintf("cell-%d", j), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("cell-%d", j); out[i] != want {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], want)
		}
	}
}
