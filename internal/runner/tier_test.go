package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTier is an in-memory second-tier store recording traffic.
type fakeTier struct {
	mu    sync.Mutex
	m     map[Key]CellResult
	fills int
}

func newFakeTier() *fakeTier { return &fakeTier{m: make(map[Key]CellResult)} }

func (f *fakeTier) Lookup(key Key) (CellResult, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	res, ok := f.m[key]
	return res, ok
}

func (f *fakeTier) Fill(key Key, res CellResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fills++
	f.m[key] = res
}

func (f *fakeTier) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

func TestTierHitSkipsComputeAndCountsAsHit(t *testing.T) {
	tier := newFakeTier()
	key := Key{Bench: "stored"}
	tier.m[key] = CellResult{Value: 12.5, Virtual: time.Second}

	c := NewCache()
	c.SetTier(tier)
	r := New(2, WithCache(c))
	var observed []bool
	r.Observe(func(_ context.Context, _ Key, cached bool, err error) {
		observed = append(observed, cached)
		if err != nil {
			t.Errorf("observer error = %v", err)
		}
	})
	v, err := r.Memo(bg, key, func() (CellResult, error) {
		t.Fatal("compute must not run for a cell the tier holds")
		return CellResult{}, nil
	})
	if err != nil || v != 12.5 {
		t.Fatalf("Memo = %v, %v, want 12.5 from the tier", v, err)
	}
	if st := r.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("Stats = %+v; a tier-served cell must count as a hit", st)
	}
	if len(observed) != 1 || !observed[0] {
		t.Fatalf("observer saw %v, want one cached=true callback", observed)
	}
	// The replayed cell is now in the memory tier: a second Memo stays a
	// plain hit even if the tier disappears.
	c.SetTier(nil)
	if v, err := r.Memo(bg, key, func() (CellResult, error) {
		t.Fatal("compute must not run for a memory-cached cell")
		return CellResult{}, nil
	}); err != nil || v != 12.5 {
		t.Fatalf("second Memo = %v, %v", v, err)
	}
}

func TestTierFilledOnMissAndSharedAcrossCaches(t *testing.T) {
	tier := newFakeTier()
	key := Key{Bench: "fresh"}

	c1 := NewCache()
	c1.SetTier(tier)
	r1 := New(2, WithCache(c1))
	if v, err := r1.Memo(bg, key, func() (CellResult, error) {
		return CellResult{Value: 3, Virtual: time.Millisecond}, nil
	}); err != nil || v != 3 {
		t.Fatalf("Memo = %v, %v", v, err)
	}
	if res, ok := tier.Lookup(key); !ok || res.Value != 3 || res.Virtual != time.Millisecond {
		t.Fatalf("tier holds %+v, %v; want the computed cell written through", res, ok)
	}

	// A fresh cache over the same tier replays the cell without compute:
	// this is the process-restart path.
	c2 := NewCache()
	c2.SetTier(tier)
	r2 := New(2, WithCache(c2))
	if v, err := r2.Memo(bg, key, func() (CellResult, error) {
		t.Fatal("restarted runner must replay from the tier, not recompute")
		return CellResult{}, nil
	}); err != nil || v != 3 {
		t.Fatalf("replayed Memo = %v, %v", v, err)
	}
}

func TestTierNeverFilledWithErrors(t *testing.T) {
	tier := newFakeTier()
	c := NewCache()
	c.SetTier(tier)
	r := New(2, WithCache(c))
	sentinel := errors.New("deterministic failure")
	key := Key{Bench: "bad"}
	var calls int
	for i := 0; i < 3; i++ {
		if _, err := r.Memo(bg, key, func() (CellResult, error) {
			calls++
			return CellResult{}, sentinel
		}); !errors.Is(err, sentinel) {
			t.Fatalf("Memo error = %v, want %v", err, sentinel)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (memoized in memory)", calls)
	}
	if tier.Len() != 0 || tier.fills != 0 {
		t.Fatalf("error cell reached the durable tier (%d cells, %d fills)", tier.Len(), tier.fills)
	}
}

func TestContextErrorsNeverPoisonCacheOrTier(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"canceled", context.Canceled},
		{"deadline", context.DeadlineExceeded},
		{"wrapped-canceled", fmt.Errorf("factory: %w", context.Canceled)},
		{"wrapped-deadline", fmt.Errorf("factory: %w", context.DeadlineExceeded)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Two sessions (runners) over one shared cache and one durable
			// tier: the first tenant's cancellation mid-compute must not be
			// served to the second as a cached result.
			tier := newFakeTier()
			cache := NewCache()
			cache.SetTier(tier)
			r1 := New(2, WithCache(cache))
			r2 := New(2, WithCache(cache))
			key := Key{Bench: "shared-" + tc.name}

			if _, err := r1.Memo(bg, key, func() (CellResult, error) {
				return CellResult{}, tc.err
			}); !errors.Is(err, tc.err) {
				t.Fatalf("first Memo error = %v, want %v", err, tc.err)
			}
			if n := cache.Len(); n != 0 {
				t.Fatalf("cache holds %d entries after a context error, want 0", n)
			}
			if tier.Len() != 0 {
				t.Fatal("context error written to the durable tier")
			}

			v, err := r2.Memo(bg, key, func() (CellResult, error) {
				return CellResult{Value: 42}, nil
			})
			if err != nil || v != 42 {
				t.Fatalf("second tenant got %v, %v; want a fresh 42 — cache was poisoned", v, err)
			}
			if res, ok := tier.Lookup(key); !ok || res.Value != 42 {
				t.Fatalf("tier holds %+v, %v after the successful recompute", res, ok)
			}
		})
	}
}

func TestContextErrorWakesCoalescedWaitersThenRecomputes(t *testing.T) {
	r := New(4)
	key := Key{Bench: "retracted"}
	started := make(chan struct{})
	release := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		_, err := r.Memo(bg, key, func() (CellResult, error) {
			close(started)
			<-release
			return CellResult{}, context.Canceled
		})
		waited <- err
	}()
	<-started
	coalesced := make(chan error, 1)
	val := make(chan float64, 1)
	go func() {
		v, err := r.Memo(bg, key, func() (CellResult, error) {
			// Only runs if this goroutine raced past the retraction and
			// became the new owner; either way the cache must be clean.
			return CellResult{Value: 5}, nil
		})
		val <- v
		coalesced <- err
	}()
	// Give the waiter a moment to attach to the in-flight entry, then let
	// the owner fail with the context error.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner error = %v, want context.Canceled", err)
	}
	// A coalesced waiter is woken with the owner's error (never left
	// hanging); one that arrived after the retraction recomputes.
	if err := <-coalesced; err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("coalesced waiter error = %v, want context.Canceled", err)
		}
	} else if v := <-val; v != 5 {
		t.Fatalf("late waiter recomputed %v, want 5", v)
	}
	// The retraction must leave the key computable: no stale error entry.
	v, err := r.Memo(bg, key, func() (CellResult, error) {
		return CellResult{Value: 5}, nil
	})
	if err != nil || v != 5 {
		t.Fatalf("recompute after retraction = %v, %v; the context error was cached", v, err)
	}
}

func TestSetTierTwicePanics(t *testing.T) {
	c := NewCache()
	c.SetTier(newFakeTier())
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("attaching a second tier must panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "already has a second-tier result store") {
			t.Fatalf("panic = %v, want the double-attach message", p)
		}
	}()
	c.SetTier(newFakeTier())
}

func TestSetTierDetachReattach(t *testing.T) {
	c := NewCache()
	first := newFakeTier()
	c.SetTier(first)
	if c.Tier() != Tier(first) {
		t.Fatal("Tier() must return the attached tier")
	}
	c.SetTier(nil)
	if c.Tier() != nil {
		t.Fatal("Tier() must be nil after detach")
	}
	second := newFakeTier()
	c.SetTier(second) // detach makes the slot free again
	if c.Tier() != Tier(second) {
		t.Fatal("reattach after detach must succeed")
	}
}

func TestCacheResetAndSetCapacityConcurrentWithTierFills(t *testing.T) {
	// Exercised under -race in CI: Reset and SetCapacity must be safe
	// while Memos are being served from and written through to a tier.
	tier := newFakeTier()
	cache := NewStripedCache(8)
	cache.SetTier(tier)
	r := New(8, WithCache(cache))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := Key{Bench: "cell", Procs: (g*64 + i) % 96}
				v, err := r.Memo(bg, key, func() (CellResult, error) {
					return CellResult{Value: float64(key.Procs)}, nil
				})
				if err != nil {
					t.Errorf("Memo: %v", err)
					return
				}
				if v != float64(key.Procs) {
					t.Errorf("Memo = %v, want %d", v, key.Procs)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			cache.Reset()
			cache.SetCapacity(16 + i%32)
			runtime.Gosched()
		}
		close(stop)
	}()
	wg.Wait()
	// Every key ever computed must have landed in the tier with its own
	// value, regardless of how often the memory tier was wiped.
	tier.mu.Lock()
	defer tier.mu.Unlock()
	for key, res := range tier.m {
		if res.Value != float64(key.Procs) {
			t.Fatalf("tier cell %v = %v, want %d", key, res.Value, key.Procs)
		}
	}
}

func TestMapBoundsGoroutineFanout(t *testing.T) {
	// A generated 100k-cell sweep must not spawn 100k goroutines just to
	// funnel them through a 4-token semaphore: mapIndices launches at
	// most workers goroutines and feeds them from a shared counter.
	const workers = 4
	const n = 100_000
	r := New(workers)
	base := runtime.NumGoroutine()
	var entered atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- r.Map(bg, n, func(i int) error {
			if entered.Add(1) <= workers {
				<-release // park the first wave so we can count goroutines
			}
			return nil
		})
	}()
	for entered.Load() < workers {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > base+workers+8 {
		t.Fatalf("Map over %d indices is running %d goroutines (baseline %d, workers %d): fan-out is unbounded", n, g, base, workers)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := entered.Load(); got != n {
		t.Fatalf("fn ran %d times, want %d", got, n)
	}
}

func TestMapParallelReturnsLowestIndexError(t *testing.T) {
	// With the bounded dispatcher, indices are handed out in ascending
	// order and the lowest recorded error wins — even when a higher
	// index fails first in wall-clock time.
	r := New(4)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	highFailed := make(chan struct{})
	err := r.Map(bg, 100, func(i int) error {
		switch i {
		case 3:
			<-highFailed // fail only after index 7 already has
			return errLow
		case 7:
			close(highFailed)
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("Map error = %v, want the lowest-index error %v", err, errLow)
	}
}
