// Package runner is the concurrent experiment scheduler behind the
// benchmark harness. The paper's methodology is a fixed matrix of
// experiments — platforms × tools × message sizes (TPL) or processor
// counts (APL) — and every cell of that matrix is one independent,
// deterministic virtual-time simulation (one mpt.Run). The runner
// exploits both properties:
//
//   - Independence: cells fan out over a bounded worker pool (the -j
//     flag of cmd/toolbench; default GOMAXPROCS). Map preserves the
//     caller's index order, so after the fan-out the assembled results
//     are bit-identical to a serial sweep. Workers == 1 degenerates to
//     the plain serial loop with no goroutines at all.
//
//   - Determinism: a cell's result is a pure function of its content
//     key (platform, tool, benchmark, procs, size/scale), so results
//     are memoized in a Cache. Re-running a cell — e.g. `toolbench all`
//     computing Figure 2 and the closing report needing the same curves
//     for the methodology input — is a cache hit and simulates exactly
//     once. Concurrent requests for the same in-flight cell coalesce
//     (single-flight) rather than duplicating the simulation.
//
// There is deliberately no process-global runner: every evaluation
// session owns its Runner (and usually its Cache), so concurrent
// sessions never share or clobber each other's parallelism bound,
// memoization, or statistics. A Cache can be shared across Runners
// explicitly, which keeps the counters and memoized cells with the
// cache rather than with any one pool.
//
// Cancellation is observed between simulation cells: Map checks the
// context before starting each index and Memo checks it before
// computing (or while waiting on an in-flight computation). A cell
// that has started always runs to completion — individual cells are
// milliseconds of work, and abandoning a published in-flight entry
// would strand coalesced waiters.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Key identifies one experiment cell: one simulated run in the paper's
// evaluation matrix. Two cells with equal keys are the same simulation
// and therefore — virtual time being deterministic — have equal
// results. The zero value of unused fields participates in equality, so
// benchmarks that have no Size (APL sweeps) or no Scale (TPL
// micro-benchmarks) simply leave them zero.
type Key struct {
	// Platform is the platform catalog key ("sun-ethernet", ...).
	Platform string
	// Tool is the message-passing tool ("p4", "pvm", "express").
	Tool string
	// Bench names the benchmark or application ("pingpong", "ring",
	// "apl/jpeg", ...).
	Bench string
	// Procs is the rank count of the cell.
	Procs int
	// Size is the message size in bytes (TPL) or vector length
	// (global sum); zero for APL cells.
	Size int
	// Scale is the APL workload scale; zero for TPL cells.
	Scale float64
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s procs=%d size=%d scale=%g", k.Platform, k.Tool, k.Bench, k.Procs, k.Size, k.Scale)
}

// Stats counts cache traffic. Misses is exactly the number of
// simulations executed through Memo against the cache.
type Stats struct {
	Hits   int64 // served from cache, or coalesced onto an in-flight compute
	Misses int64 // computed by this call
}

// entry is one memoized cell. done is closed once val/err are final, so
// latecomers for an in-flight cell block instead of re-simulating.
type entry struct {
	done chan struct{}
	val  float64
	err  error
}

// Cache is the memoization store for experiment cells. It is safe for
// concurrent use and may be shared between Runners (sessions that want
// to pool their simulation results while keeping independent
// parallelism bounds). The zero value is not usable; call NewCache.
type Cache struct {
	mu sync.Mutex
	m  map[Key]*entry

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cell cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]*entry)}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len reports how many cells are memoized or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every memoized cell and zeroes the hit/miss counters,
// returning the cache to its freshly-constructed state. It is the
// building block for eviction policies on long-lived shared caches
// (ROADMAP), which otherwise grow without bound by design.
//
// Reset is safe concurrently with in-flight Memo calls: a computation
// that was published before the Reset still completes and wakes every
// waiter already coalesced onto it — the entry is merely no longer
// findable, so later calls for the same key recompute (correctly, since
// cells are deterministic).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[Key]*entry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Observer is notified after each Memo call resolves: cached reports
// whether the cell was served from the cache (or coalesced onto an
// in-flight computation) rather than simulated by this call. Observers
// run on the calling goroutine and must be safe for concurrent use.
type Observer func(key Key, cached bool, err error)

// Runner schedules experiment cells over a bounded pool and memoizes
// their results in its Cache. The zero value is not usable; call New.
type Runner struct {
	workers int
	sem     chan struct{} // counting semaphore; one token per running cell
	cache   *Cache
	observe Observer
}

// Option configures a Runner under construction.
type Option func(*Runner)

// WithCache makes the Runner memoize into c instead of a fresh private
// cache. Sharing one Cache across Runners pools their results; the
// hit/miss counters travel with the cache.
func WithCache(c *Cache) Option {
	return func(r *Runner) {
		if c != nil {
			r.cache = c
		}
	}
}

// WithObserver installs fn as the per-cell completion callback.
func WithObserver(fn Observer) Option {
	return func(r *Runner) { r.observe = fn }
}

// New returns a Runner executing at most workers simulations at once.
// workers < 1 selects GOMAXPROCS.
func New(workers int, opts ...Option) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.cache == nil {
		r.cache = NewCache()
	}
	return r
}

// Workers reports the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Cache returns the Runner's memoization store.
func (r *Runner) Cache() *Cache { return r.cache }

// Stats snapshots the cache counters (shared counters, if the cache is
// shared).
func (r *Runner) Stats() Stats { return r.cache.Stats() }

func (r *Runner) notify(key Key, cached bool, err error) {
	if r.observe != nil {
		r.observe(key, cached, err)
	}
}

// Memo returns the memoized result for key, invoking compute (under a
// worker-pool token) only if no completed or in-flight computation for
// key exists. Errors are cached too: a failed cell fails the same way
// on every retry, which is itself a deterministic fact worth keeping.
//
// ctx is observed while waiting for a worker-pool token and while
// waiting on an in-flight computation, so cancelling a sweep also
// drains the cells still queued behind the semaphore; once compute has
// been started by this call it runs to completion (a cell is
// milliseconds of simulation). A ctx error is returned as-is and is
// never cached.
func (r *Runner) Memo(ctx context.Context, key Key, compute func() (float64, error)) (float64, error) {
	c := r.cache
	wait := func(e *entry) (float64, error) {
		select {
		case <-e.done:
		case <-ctx.Done():
			// The call did not resolve a cell: no hit, no notify.
			return 0, ctx.Err()
		}
		c.hits.Add(1)
		r.notify(key, true, e.err)
		return e.val, e.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		return wait(e)
	}
	c.mu.Unlock()

	// Acquire the pool token before committing to compute, so a queued
	// cell can still be cancelled. Another goroutine may have published
	// the key meanwhile — re-check under the lock.
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-r.sem
		return wait(e)
	}
	e := &entry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	// Release the token and wake waiters even if compute panics
	// (user-supplied factories/apps run inside cells): a leaked token
	// would shrink the pool and a never-closed done channel would
	// strand every coalesced waiter. The panic is cached as the cell's
	// error — waiters must not read the zero value as success — and
	// re-raised on this goroutine.
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("runner: cell %s panicked: %v", key, p)
			<-r.sem
			close(e.done)
			r.notify(key, false, e.err)
			panic(p)
		}
		<-r.sem
		close(e.done)
		r.notify(key, false, e.err)
	}()
	e.val, e.err = compute()
	return e.val, e.err
}

// Do runs fn under a worker-pool token, bounding direct (non-memoized)
// simulations by the same parallelism as memoized cells. ctx is
// observed while waiting for a token; once fn starts it runs to
// completion. Do must not be called from inside a Memo compute (the
// caller would already hold a token).
func (r *Runner) Do(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-r.sem }()
	return fn()
}

// Map runs fn(0..n-1), fanning the indices out across goroutines while
// the worker-pool semaphore inside Memo bounds how many simulations are
// actually in flight. Callers write results into index i of a
// pre-sized slice, so assembled output is ordered exactly as a serial
// loop would produce it. The first non-nil error (lowest index among
// the indices that ran) is returned; once any index fails, indices
// that have not started yet are skipped, mirroring the serial loop's
// early exit. With workers == 1 the indices run serially in order on
// the calling goroutine — the original serial code path, not a
// simulation of it.
//
// ctx is checked before each index starts: a cancelled context stops
// launching new indices and Map returns ctx.Err() (indices already
// running complete first).
//
// Map may nest (a figure fans out platform×tool jobs whose bodies fan
// out sizes): only Memo's compute holds a pool token, so outer levels
// never starve inner ones.
func (r *Runner) Map(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil // an empty sweep is a no-op even under a cancelled ctx
	}
	if r.workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect is the ordered fan-out idiom every experiment uses: run fn
// over each job, assembling the results in job order. It is Map plus
// the pre-sized result slice, so call sites cannot get the
// ordered-assembly invariant wrong.
func Collect[J, R any](ctx context.Context, r *Runner, jobs []J, fn func(J) (R, error)) ([]R, error) {
	out := make([]R, len(jobs))
	err := r.Map(ctx, len(jobs), func(i int) error {
		var err error
		out[i], err = fn(jobs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
