// Package runner is the concurrent experiment scheduler behind the
// benchmark harness. The paper's methodology is a fixed matrix of
// experiments — platforms × tools × message sizes (TPL) or processor
// counts (APL) — and every cell of that matrix is one independent,
// deterministic virtual-time simulation (one mpt.Run). The runner
// exploits both properties:
//
//   - Independence: cells fan out over a bounded worker pool (the -j
//     flag of cmd/toolbench; default GOMAXPROCS). Map preserves the
//     caller's index order, so after the fan-out the assembled results
//     are bit-identical to a serial sweep. Workers == 1 degenerates to
//     the plain serial loop with no goroutines at all.
//
//   - Determinism: a cell's result is a pure function of its content
//     key (platform, tool, benchmark, procs, size/scale), so results
//     are memoized in a Cache. Re-running a cell — e.g. `toolbench all`
//     computing Figure 2 and the closing report needing the same curves
//     for the methodology input — is a cache hit and simulates exactly
//     once. Concurrent requests for the same in-flight cell coalesce
//     (single-flight) rather than duplicating the simulation.
//
// The scheduler surface callers program against is the Executor
// interface; Runner (the in-process bounded pool) is its default
// implementation, NewSharded partitions the work over N independent
// pools hash-keyed by cell (backed by a striped Cache), and NewQuota
// wraps any Executor with per-session resource budgets. Remote
// backends implement the same contract and slot in without the layers
// above changing.
//
// There is deliberately no process-global runner: every evaluation
// session owns its Executor (and usually its Cache), so concurrent
// sessions never share or clobber each other's parallelism bound,
// memoization, or statistics. A Cache can be shared across Runners
// explicitly, which keeps the counters and memoized cells with the
// cache rather than with any one pool.
//
// Cancellation is observed between simulation cells: Map checks the
// context before starting each index and Memo checks it before
// computing (or while waiting on an in-flight computation). A cell
// that has started always runs to completion — individual cells are
// milliseconds of work, and abandoning a published in-flight entry
// would strand coalesced waiters.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one experiment cell: one simulated run in the paper's
// evaluation matrix. Two cells with equal keys are the same simulation
// and therefore — virtual time being deterministic — have equal
// results. The zero value of unused fields participates in equality, so
// benchmarks that have no Size (APL sweeps) or no Scale (TPL
// micro-benchmarks) simply leave them zero.
type Key struct {
	// Platform is the platform catalog key ("sun-ethernet", ...).
	Platform string
	// Tool is the message-passing tool ("p4", "pvm", "express").
	Tool string
	// Bench names the benchmark or application ("pingpong", "ring",
	// "apl/jpeg", ...).
	Bench string
	// Procs is the rank count of the cell.
	Procs int
	// Size is the message size in bytes (TPL) or vector length
	// (global sum); zero for APL cells.
	Size int
	// Scale is the APL workload scale; zero for TPL cells.
	Scale float64
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s procs=%d size=%d scale=%g", k.Platform, k.Tool, k.Bench, k.Procs, k.Size, k.Scale)
}

// CellResult is what one simulated cell reports back to the scheduler:
// the measured value (milliseconds for TPL cells, seconds for APL
// cells) plus the virtual wall-clock the simulation covered. Virtual is
// the currency of WithMaxVirtualTime budgets — it is charged against a
// quota when the cell is actually simulated, never on a cache hit.
type CellResult struct {
	Value   float64
	Virtual time.Duration
}

// Stats counts cache traffic. Misses is exactly the number of
// simulations executed through Memo against the cache.
type Stats struct {
	Hits   int64 // served from cache, or coalesced onto an in-flight compute
	Misses int64 // computed by this call
}

// Observer is notified after each Memo call resolves: cached reports
// whether the cell was served from the cache (or coalesced onto an
// in-flight computation) rather than simulated by this call. Observers
// run on the calling goroutine and must be safe for concurrent use.
//
// ctx is the context of the Memo call being resolved — request-scoped
// carriers (a server routing one batch's events to one client stream)
// ride it through the executor, which otherwise has no per-call state.
// Observers must not retain ctx past the callback.
type Observer func(ctx context.Context, key Key, cached bool, err error)

// Executor is the execution-backend seam: the scheduler contract the
// session layer and the bench harness program against. Runner is the
// in-process implementation (a bounded worker pool over a memoization
// Cache); sharded or remote executors implement the same contract and
// slot in underneath without the layers above changing.
type Executor interface {
	// Memo resolves one memoized cell: it returns the cached value for
	// key, or invokes compute (under an execution slot) and caches the
	// outcome. Context errors are returned as-is and never cached.
	Memo(ctx context.Context, key Key, compute func() (CellResult, error)) (float64, error)
	// Do runs fn under an execution slot, bounding direct (non-memoized)
	// simulations by the same parallelism as memoized cells.
	Do(ctx context.Context, fn func() error) error
	// Map fans fn(0..n-1) out across the backend. Implementations must
	// preserve the Runner.Map contract: the first (lowest-index) error
	// among the indices that ran is returned, and callers assembling
	// into index i of a pre-sized slice observe serial-loop ordering.
	Map(ctx context.Context, n int, fn func(i int) error) error
	// Workers reports the backend's concurrency bound.
	Workers() int
	// Stats snapshots the memoization counters.
	Stats() Stats
	// Cache returns the backend's memoization store.
	Cache() *Cache
	// Observe installs fn as the per-cell completion callback. It is
	// called at most once, during session construction, before any
	// cells are submitted.
	Observe(fn Observer)
}

// Runner schedules experiment cells over a bounded pool and memoizes
// their results in its Cache. It is the in-process Executor. The zero
// value is not usable; call New.
type Runner struct {
	workers int
	sem     chan struct{} // counting semaphore; one token per running cell
	cache   *Cache
	observe Observer
}

var _ Executor = (*Runner)(nil)

// execConfig is the option state shared by the executor constructors
// (New, NewSharded): which cache to memoize into, what bound to put on
// it, and the per-cell completion callback.
type execConfig struct {
	cache       *Cache
	cacheCap    int
	cacheCapSet bool
	observe     Observer
}

// Option configures an executor under construction (New or NewSharded).
type Option func(*execConfig)

// WithCache makes the executor memoize into c instead of a fresh
// private cache. Sharing one Cache across executors pools their
// results; the hit/miss counters travel with the cache.
func WithCache(c *Cache) Option {
	return func(cfg *execConfig) {
		if c != nil {
			cfg.cache = c
		}
	}
}

// WithCacheCapacity bounds the executor's cache to at most n memoized
// cells with LRU eviction (see Cache.SetCapacity). It applies to
// whichever cache the executor ends up with — combined with WithCache
// it (re)configures the shared cache.
func WithCacheCapacity(n int) Option {
	return func(cfg *execConfig) {
		cfg.cacheCap, cfg.cacheCapSet = n, true
	}
}

// WithObserver installs fn as the per-cell completion callback.
func WithObserver(fn Observer) Option {
	return func(cfg *execConfig) { cfg.observe = fn }
}

// resolve applies the options and materializes the cache, so every
// constructor resolves the cache/capacity/observer triple identically.
// newCache builds the default when WithCache was not given.
func resolve(opts []Option, newCache func() *Cache) execConfig {
	var cfg execConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cache == nil {
		cfg.cache = newCache()
	}
	if cfg.cacheCapSet {
		cfg.cache.SetCapacity(cfg.cacheCap)
	}
	return cfg
}

// New returns a Runner executing at most workers simulations at once.
// workers < 1 selects GOMAXPROCS.
func New(workers int, opts ...Option) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := resolve(opts, NewCache)
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   cfg.cache,
		observe: cfg.observe,
	}
}

// Workers reports the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Cache returns the Runner's memoization store.
func (r *Runner) Cache() *Cache { return r.cache }

// Stats snapshots the cache counters (shared counters, if the cache is
// shared).
func (r *Runner) Stats() Stats { return r.cache.Stats() }

// Observe installs fn as the per-cell completion callback (the Executor
// form of WithObserver). Call it before submitting cells.
func (r *Runner) Observe(fn Observer) { r.observe = fn }

func (r *Runner) notify(ctx context.Context, key Key, cached bool, err error) {
	if r.observe != nil {
		r.observe(ctx, key, cached, err)
	}
}

// Memo returns the memoized result for key, invoking compute (under a
// worker-pool token) only if no completed or in-flight computation for
// key exists. When the cache carries a durable second tier
// (Cache.SetTier), a miss consults the tier before computing — a stored
// cell counts as a hit and is never re-simulated — and every
// successfully computed cell is written through to the tier.
//
// Which errors are memoized is part of the contract. Deterministic
// failures — an error or panic out of compute itself — are cached: a
// failed cell fails the same way on every retry, which is itself a
// deterministic fact worth keeping (in the memory tier only; error
// cells are never written to a durable tier). Context errors are the
// opposite of deterministic — they describe the calling tenant, not the
// cell — and are never cached: a compute that returns ctx.Err() (a
// cancelled tenant's factory bailing out) has its entry retracted from
// the cache, its coalesced waiters woken with the error, and nothing
// written to any tier, so a shared or durable cache is never poisoned
// by one tenant's cancellation.
//
// ctx is observed while waiting for a worker-pool token and while
// waiting on an in-flight computation, so cancelling a sweep also
// drains the cells still queued behind the semaphore; once compute has
// been started by this call it runs to completion (a cell is
// milliseconds of simulation). A ctx error is returned as-is and is
// never cached.
func (r *Runner) Memo(ctx context.Context, key Key, compute func() (CellResult, error)) (float64, error) {
	return r.memoOn(ctx, key, r.cache.stripeFor(key), compute)
}

// memoOn is Memo against a pre-resolved cache stripe: the sharded
// executor routes pool and stripe off one key hash and hands the
// stripe in directly.
func (r *Runner) memoOn(ctx context.Context, key Key, st *stripe, compute func() (CellResult, error)) (float64, error) {
	c := r.cache
	wait := func(e *entry) (float64, error) {
		select {
		case <-e.done:
		case <-ctx.Done():
			// The call did not resolve a cell: no hit, no notify.
			return 0, ctx.Err()
		}
		c.hits.Add(1)
		r.notify(ctx, key, true, e.err)
		return e.val, e.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	st.mu.Lock()
	if e, ok := st.lookupLocked(key); ok {
		st.mu.Unlock()
		return wait(e)
	}
	st.mu.Unlock()

	// Acquire the pool token before committing to compute, so a queued
	// cell can still be cancelled. Another goroutine may have published
	// the key meanwhile — re-check under the lock.
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	st.mu.Lock()
	if e, ok := st.lookupLocked(key); ok {
		st.mu.Unlock()
		<-r.sem
		return wait(e)
	}
	e := st.insertLocked(key)
	st.mu.Unlock()

	// This call owns the in-flight entry. Before simulating, consult the
	// durable second tier: a stored cell is a hit — deterministic, so the
	// stored result IS the result — served without charging a miss (or,
	// through the quota wrapper, a budget).
	tier := c.Tier()
	if tier != nil {
		if res, ok := tier.Lookup(key); ok {
			e.val, e.virtual = res.Value, res.Virtual
			c.hits.Add(1)
			<-r.sem
			close(e.done)
			r.notify(ctx, key, true, nil)
			return e.val, nil
		}
	}

	c.misses.Add(1)
	// Release the token and wake waiters even if compute panics
	// (user-supplied factories/apps run inside cells): a leaked token
	// would shrink the pool and a never-closed done channel would
	// strand every coalesced waiter. The panic is cached as the cell's
	// error — waiters must not read the zero value as success — and
	// re-raised on this goroutine.
	var res CellResult
	defer func() {
		if p := recover(); p != nil {
			e.err = fmt.Errorf("runner: cell %s panicked: %v", key, p)
			<-r.sem
			close(e.done)
			r.notify(ctx, key, false, e.err)
			panic(p)
		}
		switch {
		case e.err == nil:
			// Write the completed cell through to the durable tier —
			// behind the stripe lock's critical section, so a disk append
			// never extends any lock hold.
			if tier != nil {
				tier.Fill(key, res)
			}
		case errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded):
			// The Memo contract: context errors are never cached. This
			// compute was aborted by its tenant's cancellation, which says
			// nothing about the cell — retract the entry so the next
			// request re-simulates, and wake the coalesced waiters with
			// the error. Nothing reaches the durable tier either.
			st.remove(key, e)
		}
		<-r.sem
		close(e.done)
		r.notify(ctx, key, false, e.err)
	}()
	res, e.err = compute()
	e.val, e.virtual = res.Value, res.Virtual
	return e.val, e.err
}

// Do runs fn under a worker-pool token, bounding direct (non-memoized)
// simulations by the same parallelism as memoized cells. ctx is
// observed while waiting for a token; once fn starts it runs to
// completion. Do must not be called from inside a Memo compute (the
// caller would already hold a token).
func (r *Runner) Do(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-r.sem }()
	return fn()
}

// Map runs fn(0..n-1), fanning the indices out across goroutines while
// the worker-pool semaphore inside Memo bounds how many simulations are
// actually in flight. Callers write results into index i of a
// pre-sized slice, so assembled output is ordered exactly as a serial
// loop would produce it. The first non-nil error (lowest index among
// the indices that ran) is returned; once any index fails, indices
// that have not started yet are skipped, mirroring the serial loop's
// early exit. With workers == 1 the indices run serially in order on
// the calling goroutine — the original serial code path, not a
// simulation of it.
//
// ctx is checked before each index starts: a cancelled context stops
// launching new indices and Map returns ctx.Err() (indices already
// running complete first).
//
// Map may nest (a figure fans out platform×tool jobs whose bodies fan
// out sizes): only Memo's compute holds a pool token, so outer levels
// never starve inner ones.
func (r *Runner) Map(ctx context.Context, n int, fn func(i int) error) error {
	return mapIndices(ctx, r.workers, n, fn)
}

// mapIndices is the ordered fan-out shared by every in-process
// executor (Runner, Sharded): it implements the Map contract for a
// backend whose concurrency bound is workers. With workers == 1 the
// indices run serially in order on the calling goroutine.
//
// At most workers goroutines are launched regardless of n — a generated
// 100k-cell sweep must not spawn 100k goroutines just to funnel them
// through a 4-token semaphore. The goroutines dispatch indices in
// ascending order from a shared counter, so index assignment stays
// dense and the lowest-index-error rule means the same thing it does
// serially. Nested Maps each bound their own level; only Memo computes
// hold pool tokens, so the levels never starve each other.
func mapIndices(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil // an empty sweep is a no-op even under a cancelled ctx
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64 // the dispatch counter the workers draw from
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect is the ordered fan-out idiom every experiment uses: run fn
// over each job, assembling the results in job order. It is Map plus
// the pre-sized result slice, so call sites cannot get the
// ordered-assembly invariant wrong. It works over any Executor.
func Collect[J, R any](ctx context.Context, x Executor, jobs []J, fn func(J) (R, error)) ([]R, error) {
	out := make([]R, len(jobs))
	err := x.Map(ctx, len(jobs), func(i int) error {
		var err error
		out[i], err = fn(jobs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
