// Package runner is the concurrent experiment scheduler behind the
// benchmark harness. The paper's methodology is a fixed matrix of
// experiments — platforms × tools × message sizes (TPL) or processor
// counts (APL) — and every cell of that matrix is one independent,
// deterministic virtual-time simulation (one mpt.Run). The runner
// exploits both properties:
//
//   - Independence: cells fan out over a bounded worker pool (the -j
//     flag of cmd/toolbench; default GOMAXPROCS). Map preserves the
//     caller's index order, so after the fan-out the assembled results
//     are bit-identical to a serial sweep. Workers == 1 degenerates to
//     the plain serial loop with no goroutines at all.
//
//   - Determinism: a cell's result is a pure function of its content
//     key (platform, tool, benchmark, procs, size/scale), so results
//     are memoized. Re-running a cell — e.g. `toolbench all` computing
//     Figure 2 and the closing report needing the same curves for the
//     methodology input — is a cache hit and simulates exactly once.
//     Concurrent requests for the same in-flight cell coalesce
//     (single-flight) rather than duplicating the simulation.
//
// Stats exposes the hit/miss counters so callers (and tests) can assert
// that a sweep performed no redundant simulation.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Key identifies one experiment cell: one simulated run in the paper's
// evaluation matrix. Two cells with equal keys are the same simulation
// and therefore — virtual time being deterministic — have equal
// results. The zero value of unused fields participates in equality, so
// benchmarks that have no Size (APL sweeps) or no Scale (TPL
// micro-benchmarks) simply leave them zero.
type Key struct {
	// Platform is the platform catalog key ("sun-ethernet", ...).
	Platform string
	// Tool is the message-passing tool ("p4", "pvm", "express").
	Tool string
	// Bench names the benchmark or application ("pingpong", "ring",
	// "apl/jpeg", ...).
	Bench string
	// Procs is the rank count of the cell.
	Procs int
	// Size is the message size in bytes (TPL) or vector length
	// (global sum); zero for APL cells.
	Size int
	// Scale is the APL workload scale; zero for TPL cells.
	Scale float64
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s procs=%d size=%d scale=%g", k.Platform, k.Tool, k.Bench, k.Procs, k.Size, k.Scale)
}

// Stats counts cache traffic. Misses is exactly the number of
// simulations executed through Memo.
type Stats struct {
	Hits   int64 // served from cache, or coalesced onto an in-flight compute
	Misses int64 // computed by this call
}

// entry is one memoized cell. done is closed once val/err are final, so
// latecomers for an in-flight cell block instead of re-simulating.
type entry struct {
	done chan struct{}
	val  float64
	err  error
}

// Runner schedules experiment cells over a bounded pool and memoizes
// their results. The zero value is not usable; call New.
type Runner struct {
	workers int
	sem     chan struct{} // counting semaphore; one token per running cell

	mu    sync.Mutex
	cache map[Key]*entry

	hits   atomic.Int64
	misses atomic.Int64
}

// New returns a Runner executing at most workers simulations at once.
// workers < 1 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[Key]*entry),
	}
}

// Workers reports the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Stats snapshots the cache counters.
func (r *Runner) Stats() Stats {
	return Stats{Hits: r.hits.Load(), Misses: r.misses.Load()}
}

// Memo returns the memoized result for key, invoking compute (under a
// worker-pool token) only if no completed or in-flight computation for
// key exists. Errors are cached too: a failed cell fails the same way
// on every retry, which is itself a deterministic fact worth keeping.
func (r *Runner) Memo(key Key, compute func() (float64, error)) (float64, error) {
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	r.misses.Add(1)
	r.sem <- struct{}{}
	e.val, e.err = compute()
	<-r.sem
	close(e.done)
	return e.val, e.err
}

// Map runs fn(0..n-1), fanning the indices out across goroutines while
// the worker-pool semaphore inside Memo bounds how many simulations are
// actually in flight. Callers write results into index i of a
// pre-sized slice, so assembled output is ordered exactly as a serial
// loop would produce it. The first non-nil error (lowest index among
// the indices that ran) is returned; once any index fails, indices
// that have not started yet are skipped, mirroring the serial loop's
// early exit. With workers == 1 the indices run serially in order on
// the calling goroutine — the original serial code path, not a
// simulation of it.
//
// Map may nest (a figure fans out platform×tool jobs whose bodies fan
// out sizes): only Memo's compute holds a pool token, so outer levels
// never starve inner ones.
func (r *Runner) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if r.workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect is the ordered fan-out idiom every experiment uses: run fn
// over each job, assembling the results in job order. It is Map plus
// the pre-sized result slice, so call sites cannot get the
// ordered-assembly invariant wrong.
func Collect[J, R any](r *Runner, jobs []J, fn func(J) (R, error)) ([]R, error) {
	out := make([]R, len(jobs))
	err := r.Map(len(jobs), func(i int) error {
		var err error
		out[i], err = fn(jobs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// The process-wide default runner. cmd/toolbench replaces it once at
// startup from -j; the bench package routes every cell through it so
// the memoization cache spans an entire invocation (`all` followed by
// the report re-uses every curve).
var defaultRunner atomic.Pointer[Runner]

func init() {
	defaultRunner.Store(New(0))
}

// Default returns the process-wide runner.
func Default() *Runner { return defaultRunner.Load() }

// SetDefault installs r as the process-wide runner (and with it a fresh
// cache, unless r is shared). Tests use this to pin serial vs parallel
// execution with independent caches.
func SetDefault(r *Runner) {
	if r == nil {
		panic("runner: SetDefault(nil)")
	}
	defaultRunner.Store(r)
}
