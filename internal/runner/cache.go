package runner

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// entry is one memoized cell. done is closed once val/err are final, so
// latecomers for an in-flight cell block instead of re-simulating. el
// is the entry's node in the cache's recency list — always non-nil,
// maintained even while the cache is unbounded so that SetCapacity can
// start evicting in true LRU order at any point in the cache's life.
type entry struct {
	done chan struct{}
	val  float64
	err  error
	el   *list.Element
}

// Cache is the memoization store for experiment cells. It is safe for
// concurrent use and may be shared between Runners (sessions that want
// to pool their simulation results while keeping independent
// parallelism bounds). The zero value is not usable; call NewCache.
//
// By default a Cache grows without bound — the paper's evaluation
// matrix is finite, so for one sweep that is the right policy. Long-
// lived shared caches (a multi-tenant server memoizing across sessions)
// can bound it with SetCapacity, which turns the store into an LRU:
// inserting beyond the capacity evicts the least-recently-used
// completed cell. Evicted cells are recomputed on next request —
// correct, since cells are deterministic.
type Cache struct {
	mu       sync.Mutex
	m        map[Key]*entry
	capacity int        // 0 = unbounded
	order    *list.List // of Key; front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty, unbounded cell cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]*entry), order: list.New()}
}

// NewCacheWithCapacity returns an empty cache bounded to at most n
// memoized cells (LRU eviction). n <= 0 means unbounded.
func NewCacheWithCapacity(n int) *Cache {
	c := NewCache()
	c.SetCapacity(n)
	return c
}

// SetCapacity bounds the cache to at most n cells, evicting the
// least-recently-used completed cells immediately if it already holds
// more. n <= 0 removes the bound. Cells whose computation is still in
// flight are never evicted — single-flight coalescing stays intact — so
// the cache may transiently exceed n by the number of in-flight cells.
func (c *Cache) SetCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evictLocked()
}

// Capacity reports the configured bound (0 = unbounded).
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// evictLocked drops least-recently-used completed cells until the cache
// fits its capacity. Dropping a completed entry is safe concurrently
// with readers that already hold it: they block on its done channel (or
// have read val/err), never on map membership. In-flight entries are
// skipped so coalesced waiters keep finding them.
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && len(c.m) > c.capacity; {
		prev := el.Prev()
		key := el.Value.(Key)
		e := c.m[key]
		select {
		case <-e.done: // completed: evictable
			delete(c.m, key)
			c.order.Remove(el)
		default: // in flight: keep
		}
		el = prev
	}
}

// lookupLocked finds key and marks it most recently used.
func (c *Cache) lookupLocked(key Key) (*entry, bool) {
	e, ok := c.m[key]
	if ok {
		c.order.MoveToFront(e.el)
	}
	return e, ok
}

// insertLocked publishes a fresh in-flight entry for key and evicts if
// the insertion crossed the capacity.
func (c *Cache) insertLocked(key Key) *entry {
	e := &entry{done: make(chan struct{})}
	e.el = c.order.PushFront(key)
	c.m[key] = e
	c.evictLocked()
	return e
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len reports how many cells are memoized or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every memoized cell and zeroes the hit/miss counters,
// returning the cache to its freshly-constructed state (the configured
// capacity survives). It is the drop-everything eviction policy for
// long-lived shared caches; SetCapacity is the incremental one.
//
// Reset is safe concurrently with in-flight Memo calls: a computation
// that was published before the Reset still completes and wakes every
// waiter already coalesced onto it — the entry is merely no longer
// findable, so later calls for the same key recompute (correctly, since
// cells are deterministic).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[Key]*entry)
	c.order.Init()
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
