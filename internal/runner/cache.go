package runner

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// entry is one memoized cell. done is closed once val/err are final, so
// latecomers for an in-flight cell block instead of re-simulating. el
// is the entry's node in its stripe's recency list — always non-nil,
// maintained even while the cache is unbounded so that SetCapacity can
// start evicting in true LRU order at any point in the cache's life.
// virtual is the cell's simulated wall-clock, retained so Lookup can
// reconstruct the full CellResult (a remote worker re-serving a warm
// cell must report the same virtual cost it would on a cold compute).
type entry struct {
	done    chan struct{}
	val     float64
	virtual time.Duration
	err     error
	el      *list.Element
}

// stripe is one independently locked segment of a Cache: its own map,
// recency list, and capacity share. Striping is what keeps a cache
// shared by many worker pools (the sharded executor) off a single hot
// mutex — two cells in different stripes never contend.
type stripe struct {
	mu       sync.Mutex
	m        map[Key]*entry
	capacity int        // this stripe's share of the bound; 0 = unbounded
	order    *list.List // of Key; front = most recently used

	// pad spreads consecutively allocated stripes over distinct cache
	// lines so one stripe's mutex traffic does not false-share with its
	// neighbors.
	_ [96]byte
}

// Cache is the memoization store for experiment cells. It is safe for
// concurrent use and may be shared between executors (sessions that
// want to pool their simulation results while keeping independent
// parallelism bounds). The zero value is not usable; call NewCache or
// NewStripedCache.
//
// Internally the store is split into one or more stripes, each with its
// own lock, map, and LRU list; a key's stripe is fixed by an FNV hash
// over its canonical fields. NewCache builds a single-stripe cache —
// exact global LRU order, the right default for one session's pool —
// while NewStripedCache spreads the keys over n independently locked
// segments for high-contention use (many pools hammering one cache).
// Len, Reset, SetCapacity, and Stats aggregate across stripes; the
// single-flight and in-flight-never-evicted invariants hold per stripe.
//
// By default a Cache grows without bound — the paper's evaluation
// matrix is finite, so for one sweep that is the right policy. Long-
// lived shared caches (a multi-tenant server memoizing across sessions)
// can bound it with SetCapacity, which turns each stripe into an LRU:
// inserting beyond a stripe's share of the capacity evicts that
// stripe's least-recently-used completed cell. Evicted cells are
// recomputed on next request — correct, since cells are deterministic.
type Cache struct {
	stripes []*stripe

	// capacity is the configured total bound (0 = unbounded), kept for
	// Capacity(); each stripe holds its own share.
	capacity atomic.Int64

	// tier is the optional durable second tier (see SetTier): consulted
	// on misses, written through on completed cells. Boxed behind an
	// atomic pointer so the Memo hot path loads it without a lock.
	tier atomic.Pointer[tierBox]

	hits   atomic.Int64
	misses atomic.Int64
}

// tierBox wraps the Tier interface value so it can sit behind an
// atomic.Pointer.
type tierBox struct{ t Tier }

// defaultStripes is the stripe count NewStripedCache selects when the
// caller does not care: wide enough that a handful of worker pools
// rarely collide, small enough to stay cheap to aggregate over.
const defaultStripes = 16

// NewCache returns an empty, unbounded, single-stripe cell cache:
// exact global LRU semantics, one lock. Use NewStripedCache when many
// pools share the cache and the lock would become the bottleneck.
func NewCache() *Cache { return NewStripedCache(1) }

// NewStripedCache returns an empty, unbounded cache split into n
// independently locked stripes. n < 1 selects a default (16). A
// striped cache trades exact global LRU order for per-stripe LRU and
// uncontended access — the right shape in front of a sharded executor.
func NewStripedCache(n int) *Cache {
	if n < 1 {
		n = defaultStripes
	}
	c := &Cache{stripes: make([]*stripe, n)}
	for i := range c.stripes {
		c.stripes[i] = &stripe{m: make(map[Key]*entry), order: list.New()}
	}
	return c
}

// NewCacheWithCapacity returns an empty single-stripe cache bounded to
// at most n memoized cells (LRU eviction). n <= 0 means unbounded.
func NewCacheWithCapacity(n int) *Cache {
	c := NewCache()
	c.SetCapacity(n)
	return c
}

// Stripes reports how many independently locked segments the cache is
// split into (1 for NewCache).
func (c *Cache) Stripes() int { return len(c.stripes) }

// stripeFor picks the segment owning key. Single-stripe caches skip
// the hash entirely — the default Runner never pays for striping it
// does not use.
func (c *Cache) stripeFor(key Key) *stripe {
	if len(c.stripes) == 1 {
		return c.stripes[0]
	}
	return c.stripeAt(key.Hash())
}

// stripeAt picks the segment for a precomputed key hash, so callers
// that already hashed the key (the sharded executor routes and stripes
// off one hash) do not hash it twice.
func (c *Cache) stripeAt(h uint64) *stripe {
	return c.stripes[bucket(h, len(c.stripes))]
}

// bucket reduces a hash to [0, n) with a multiply-shift instead of a
// modulo — n is dynamic, so % would be a hardware divide on the Memo
// hot path.
func bucket(h uint64, n int) int {
	return int((h & 0xffffffff) * uint64(n) >> 32)
}

// fnv-1a over the canonical key fields. The same hash partitions keys
// over cache stripes and over the sharded executor's pools, so a key's
// stripe and shard are both pure functions of its content.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Field separator, so ("ab","c") and ("a","bc") cannot alias.
	h ^= 0xff
	h *= fnvPrime64
	return h
}

// fnvUint64 folds a whole word in with one xor/multiply round — the
// numeric key fields are small and the multiply mixes them plenty for
// bucket selection, at an eighth of the byte-at-a-time cost.
func fnvUint64(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime64
	return h
}

// Hash is FNV-1a over the canonical key fields. One hash is the
// content address everywhere: it partitions keys over cache stripes and
// the sharded executor's pools, and the durable store records it per
// cell as the key's fingerprint.
func (k Key) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, k.Platform)
	h = fnvString(h, k.Tool)
	h = fnvString(h, k.Bench)
	h = fnvUint64(h, uint64(k.Procs))
	h = fnvUint64(h, uint64(k.Size))
	h = fnvUint64(h, math.Float64bits(k.Scale))
	return h
}

// SetCapacity bounds the cache to at most n cells, evicting the
// least-recently-used completed cells immediately if it already holds
// more. n <= 0 removes the bound. The bound is divided evenly across
// the stripes (rounded up, so a striped cache may admit up to
// stripes-1 cells more than n); cells whose computation is still in
// flight are never evicted — single-flight coalescing stays intact — so
// a stripe may transiently exceed its share by its in-flight cells.
func (c *Cache) SetCapacity(n int) {
	if n < 0 {
		n = 0
	}
	c.capacity.Store(int64(n))
	per := 0
	if n > 0 {
		per = (n + len(c.stripes) - 1) / len(c.stripes)
	}
	for _, s := range c.stripes {
		s.mu.Lock()
		s.capacity = per
		s.evictLocked()
		s.mu.Unlock()
	}
}

// Capacity reports the configured total bound (0 = unbounded).
func (c *Cache) Capacity() int { return int(c.capacity.Load()) }

// evictLocked drops least-recently-used completed cells until the
// stripe fits its capacity share. Dropping a completed entry is safe
// concurrently with readers that already hold it: they block on its
// done channel (or have read val/err), never on map membership.
// In-flight entries are skipped so coalesced waiters keep finding them.
func (s *stripe) evictLocked() {
	if s.capacity <= 0 {
		return
	}
	for el := s.order.Back(); el != nil && len(s.m) > s.capacity; {
		prev := el.Prev()
		key := el.Value.(Key)
		e := s.m[key]
		select {
		case <-e.done: // completed: evictable
			delete(s.m, key)
			s.order.Remove(el)
		default: // in flight: keep
		}
		el = prev
	}
}

// lookupLocked finds key and marks it most recently used.
func (s *stripe) lookupLocked(key Key) (*entry, bool) {
	e, ok := s.m[key]
	if ok {
		s.order.MoveToFront(e.el)
	}
	return e, ok
}

// insertLocked publishes a fresh in-flight entry for key and evicts if
// the insertion crossed the stripe's capacity share.
func (s *stripe) insertLocked(key Key) *entry {
	e := &entry{done: make(chan struct{})}
	e.el = s.order.PushFront(key)
	s.m[key] = e
	s.evictLocked()
	return e
}

// remove un-publishes e from the stripe — the memoization path calls it
// to retract an entry whose compute resolved to a context error, which
// the Memo contract forbids caching. The entry-identity check makes the
// retraction safe concurrently with Reset (which swaps the map) and
// with a later re-publication of the same key.
func (s *stripe) remove(key Key, e *entry) {
	s.mu.Lock()
	if cur, ok := s.m[key]; ok && cur == e {
		delete(s.m, key)
		s.order.Remove(e.el)
	}
	s.mu.Unlock()
}

// Lookup peeks at the completed, successful cell memoized for key. It
// reports false for absent, in-flight, and failed entries, and does not
// touch the hit/miss counters — it is a read-side peek for callers (a
// worker daemon answering a cell RPC) that already resolved the cell
// through Memo and need the full CellResult back, not a scheduling
// primitive.
func (c *Cache) Lookup(key Key) (CellResult, bool) {
	st := c.stripeFor(key)
	st.mu.Lock()
	e, ok := st.lookupLocked(key)
	st.mu.Unlock()
	if !ok {
		return CellResult{}, false
	}
	select {
	case <-e.done:
	default:
		return CellResult{}, false
	}
	if e.err != nil {
		return CellResult{}, false
	}
	return CellResult{Value: e.val, Virtual: e.virtual}, true
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len reports how many cells are memoized or in flight, summed over the
// stripes.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.stripes {
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Reset drops every memoized cell and zeroes the hit/miss counters,
// returning the cache to its freshly-constructed state (the configured
// capacity survives). It is the drop-everything eviction policy for
// long-lived shared caches; SetCapacity is the incremental one.
//
// Reset is safe concurrently with in-flight Memo calls: a computation
// that was published before the Reset still completes and wakes every
// waiter already coalesced onto it — the entry is merely no longer
// findable, so later calls for the same key recompute (correctly, since
// cells are deterministic). Stripes reset one at a time, so a
// concurrent sweep may see some stripes emptied before others.
func (c *Cache) Reset() {
	for _, s := range c.stripes {
		s.mu.Lock()
		s.m = make(map[Key]*entry)
		s.order.Init()
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}
