package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuotaZeroLimitsIsTransparent(t *testing.T) {
	r := New(2)
	if x := NewQuota(r, Limits{}); x != Executor(r) {
		t.Fatal("zero Limits must return the base executor unwrapped")
	}
}

func TestQuotaMaxCells(t *testing.T) {
	r := New(2)
	x := NewQuota(r, Limits{MaxCells: 2})
	for i := 0; i < 2; i++ {
		if _, err := x.Memo(bg, Key{Bench: "cell", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatalf("cell %d within budget: %v", i, err)
		}
	}
	// Budget spent: the next cell — even one already cached — is refused.
	_, err := x.Memo(bg, Key{Bench: "cell", Size: 0}, func() (CellResult, error) {
		t.Fatal("compute must not run past the budget")
		return CellResult{}, nil
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Memo past budget = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "cells" || qe.Used != 2 || qe.Limit != 2 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	if !strings.Contains(err.Error(), "cells") {
		t.Fatalf("error text %q does not name the resource", err)
	}
	if err := x.Do(bg, func() error { t.Fatal("Do must not run past the budget"); return nil }); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Do past budget = %v, want ErrQuotaExceeded", err)
	}
}

func TestQuotaHitsAreFree(t *testing.T) {
	r := New(2)
	x := NewQuota(r, Limits{MaxCells: 1})
	key := Key{Bench: "free-hit"}
	compute := func() (CellResult, error) { return CellResult{Value: 3}, nil }
	if _, err := x.Memo(bg, key, compute); err != nil {
		t.Fatal(err)
	}
	// Only simulations charge a budget. Demonstrate it before
	// exhaustion (a spent budget refuses even hits): with budget 2, a
	// hit between two misses does not consume a cell.
	y := NewQuota(New(2, WithCache(r.Cache())), Limits{MaxCells: 2})
	if _, err := y.Memo(bg, key, compute); err != nil { // hit: free
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := y.Memo(bg, Key{Bench: "free-hit", Size: i + 1}, compute); err != nil {
			t.Fatalf("miss %d: budget 2 must admit 2 simulations after a free hit: %v", i, err)
		}
	}
}

func TestQuotaMaxVirtualTime(t *testing.T) {
	r := New(1)
	x := NewQuota(r, Limits{MaxVirtualTime: 50 * time.Millisecond})
	// First cell charges 40ms virtual: under budget, admitted.
	if _, err := x.Memo(bg, Key{Bench: "vt", Size: 0}, func() (CellResult, error) {
		return CellResult{Value: 1, Virtual: 40 * time.Millisecond}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Second charges 40ms more, overshooting to 80ms — in-flight work
	// completes and is charged.
	if _, err := x.Memo(bg, Key{Bench: "vt", Size: 1}, func() (CellResult, error) {
		return CellResult{Value: 1, Virtual: 40 * time.Millisecond}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Now the budget is exhausted: refused before scheduling.
	_, err := x.Memo(bg, Key{Bench: "vt", Size: 2}, func() (CellResult, error) {
		t.Fatal("compute must not run past the virtual-time budget")
		return CellResult{}, nil
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Memo past virtual budget = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "virtual time" {
		t.Fatalf("QuotaError = %+v, want virtual time resource", qe)
	}
	if !strings.Contains(err.Error(), "50ms") {
		t.Fatalf("error text %q should render the limit as a duration", err)
	}
}

func TestQuotaBreachDoesNotPoisonSharedCache(t *testing.T) {
	cache := NewCache()
	quotad := NewQuota(New(2, WithCache(cache)), Limits{MaxCells: 1})
	compute := func() (CellResult, error) { return CellResult{Value: 7}, nil }
	if _, err := quotad.Memo(bg, Key{Bench: "ok"}, compute); err != nil {
		t.Fatal(err)
	}
	refusedKey := Key{Bench: "refused"}
	if _, err := quotad.Memo(bg, refusedKey, compute); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("expected quota breach, got %v", err)
	}
	// The refusal must not have been memoized: an unquota'd runner
	// sharing the cache computes the cell normally.
	free := New(2, WithCache(cache))
	v, err := free.Memo(bg, refusedKey, compute)
	if err != nil || v != 7 {
		t.Fatalf("shared cache poisoned by quota breach: %v, %v", v, err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d cells, want 2 (ok + refused-then-computed)", cache.Len())
	}
}

func TestQuotaChargesFailedSimulations(t *testing.T) {
	r := New(1)
	x := NewQuota(r, Limits{MaxCells: 1})
	boom := errors.New("boom")
	if _, err := x.Memo(bg, Key{Bench: "fail"}, func() (CellResult, error) {
		return CellResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failing cell error = %v", err)
	}
	if _, err := x.Memo(bg, Key{Bench: "next"}, func() (CellResult, error) {
		return CellResult{Value: 1}, nil
	}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("failed simulation must still charge the budget: %v", err)
	}
}

func TestQuotaChargesPanickingCell(t *testing.T) {
	// A panicking user factory still ran a simulation: the charge must
	// land even though compute never returned, or a crashing tenant
	// simulates for free. (The charge used to sit after compute(), so a
	// panic skipped it.)
	r := New(1)
	x := NewQuota(r, Limits{MaxCells: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the computing caller")
			}
		}()
		_, _ = x.Memo(bg, Key{Bench: "kaboom-quota"}, func() (CellResult, error) { panic("boom") })
	}()
	_, err := x.Memo(bg, Key{Bench: "after-kaboom"}, func() (CellResult, error) {
		t.Fatal("compute must not run: the panicked cell spent the budget")
		return CellResult{}, nil
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Memo after a panicked cell = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "cells" || qe.Used != 1 {
		t.Fatalf("QuotaError = %+v, want 1 charged cell", qe)
	}
}

func TestQuotaPanickingCellChargesNoVirtualTime(t *testing.T) {
	// The panic path never produced a CellResult, so only the cell
	// budget is charged: a virtual-time budget must survive the crash
	// and still admit the next cell.
	x := NewQuota(New(1), Limits{MaxVirtualTime: 50 * time.Millisecond})
	func() {
		defer func() { _ = recover() }()
		_, _ = x.Memo(bg, Key{Bench: "kaboom-vt"}, func() (CellResult, error) { panic("boom") })
	}()
	if _, err := x.Memo(bg, Key{Bench: "after-kaboom-vt"}, func() (CellResult, error) {
		return CellResult{Value: 1, Virtual: 10 * time.Millisecond}, nil
	}); err != nil {
		t.Fatalf("virtual-time budget must survive a panicked cell: %v", err)
	}
}

func TestQuotaChargesDo(t *testing.T) {
	// Direct (non-memoized) runs are simulations too: a Do-only
	// workload must deplete its cell budget.
	x := NewQuota(New(1), Limits{MaxCells: 2})
	for i := 0; i < 2; i++ {
		if err := x.Do(bg, func() error { return nil }); err != nil {
			t.Fatalf("Do %d within budget: %v", i, err)
		}
	}
	if err := x.Do(bg, func() error { t.Fatal("must not run"); return nil }); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Do past a Do-spent budget = %v, want ErrQuotaExceeded", err)
	}
	if _, err := x.Memo(bg, Key{Bench: "after-do"}, func() (CellResult, error) {
		return CellResult{Value: 1}, nil
	}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Memo past a Do-spent budget = %v, want ErrQuotaExceeded", err)
	}
}

func TestQuotaBoundsConcurrentFanOutOvershoot(t *testing.T) {
	// The admission gate must keep a wide fan-out from slipping past
	// the budget wholesale: with slow cells and a concurrent Map, the
	// number of simulations may overshoot MaxCells by at most the
	// parallelism bound.
	const workers, budget, fanout = 2, 3, 40
	r := New(workers)
	x := NewQuota(r, Limits{MaxCells: budget})
	var simulated atomic.Int64
	err := x.Map(bg, fanout, func(i int) error {
		_, err := x.Memo(bg, Key{Bench: "wide", Size: i}, func() (CellResult, error) {
			simulated.Add(1)
			time.Sleep(2 * time.Millisecond) // realistic cell duration
			return CellResult{Value: 1}, nil
		})
		return err
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("wide fan-out past budget = %v, want ErrQuotaExceeded", err)
	}
	if got := simulated.Load(); got > budget+workers {
		t.Fatalf("fan-out simulated %d cells, want <= budget %d + parallelism %d", got, budget, workers)
	}
}

func TestQuotaRefusalsReachObserver(t *testing.T) {
	var mu sync.Mutex
	var refused []Key
	x := NewQuota(New(1), Limits{MaxCells: 1})
	x.Observe(func(_ context.Context, key Key, cached bool, err error) {
		if errors.Is(err, ErrQuotaExceeded) {
			mu.Lock()
			refused = append(refused, key)
			mu.Unlock()
			if cached {
				t.Error("refused cell reported as cached")
			}
		}
	})
	if _, err := x.Memo(bg, Key{Bench: "paid"}, func() (CellResult, error) {
		return CellResult{Value: 1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	want := Key{Bench: "turned-away"}
	if _, err := x.Memo(bg, want, func() (CellResult, error) {
		return CellResult{Value: 1}, nil
	}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("expected refusal, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(refused) != 1 || refused[0] != want {
		t.Fatalf("observer saw refusals %v, want exactly %v", refused, want)
	}
}

func TestQuotaWrappedRefusalReachesObserver(t *testing.T) {
	// notifyRefusal must detect the *QuotaError with errors.As, not a
	// bare type assertion: a wrapping layer (a remote executor adding
	// transport context) must not silently drop the observer callback.
	q := &quotaExecutor{}
	var seen []Key
	var seenErr error
	q.observe = func(_ context.Context, key Key, cached bool, err error) {
		seen = append(seen, key)
		seenErr = err
		if cached {
			t.Error("refusal reported as cached")
		}
	}
	key := Key{Bench: "wrapped"}
	wrapped := fmt.Errorf("remote executor: %w", &QuotaError{Resource: "cells", Used: 3, Limit: 3})
	q.notifyRefusal(context.Background(), key, wrapped)
	if len(seen) != 1 || seen[0] != key {
		t.Fatalf("observer saw %v, want exactly %v", seen, key)
	}
	if seenErr != wrapped {
		t.Fatalf("observer error = %v, want the wrapped refusal passed through", seenErr)
	}
	// Context errors did not resolve the cell and must stay silent.
	q.notifyRefusal(context.Background(), Key{Bench: "ctx"}, context.Canceled)
	if len(seen) != 1 {
		t.Fatalf("context error reached the observer: %v", seen)
	}
}
