package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheCapacityEvictsLRU(t *testing.T) {
	r := New(1, WithCacheCapacity(2))
	c := r.Cache()
	if c.Capacity() != 2 {
		t.Fatalf("Capacity = %d, want 2", c.Capacity())
	}
	var calls atomic.Int64
	memo := func(i int) {
		t.Helper()
		if _, err := r.Memo(bg, Key{Bench: "lru", Size: i}, func() (CellResult, error) {
			calls.Add(1)
			return CellResult{Value: float64(i)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	memo(0)
	memo(1)
	memo(0) // touch 0: key 1 becomes the LRU
	memo(2) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (capacity)", c.Len())
	}
	memo(0) // still cached: no recompute
	if got := calls.Load(); got != 3 {
		t.Fatalf("computed %d cells, want 3 (0, 1, 2)", got)
	}
	memo(1) // evicted: recomputes (and evicts the now-LRU key 2)
	if got := calls.Load(); got != 4 {
		t.Fatalf("computed %d cells after re-requesting evicted key, want 4", got)
	}
}

func TestCacheSetCapacityShrinksImmediately(t *testing.T) {
	c := NewCache()
	r := New(1, WithCache(c))
	for i := 0; i < 8; i++ {
		if _, err := r.Memo(bg, Key{Bench: "shrink", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetCapacity(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d after SetCapacity(3), want 3", c.Len())
	}
	c.SetCapacity(0) // unbounded again
	for i := 8; i < 20; i++ {
		if _, err := r.Memo(bg, Key{Bench: "shrink", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 15 {
		t.Fatalf("Len = %d after unbounding, want 15 (3 survivors + 12 new)", c.Len())
	}
}

func TestCacheCapacitySkipsInFlight(t *testing.T) {
	// An in-flight cell must never be evicted (waiters are coalesced
	// onto it), even when insertions push the cache past capacity.
	r := New(4, WithCacheCapacity(1))
	c := r.Cache()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan float64, 1)
	inflight := Key{Bench: "inflight"}
	go func() {
		v, _ := r.Memo(bg, inflight, func() (CellResult, error) {
			close(started)
			<-release
			return CellResult{Value: 9}, nil
		})
		done <- v
	}()
	<-started
	// Two more insertions while the first cell is still computing: each
	// would evict the in-flight entry if eviction did not skip it.
	for i := 0; i < 2; i++ {
		if _, err := r.Memo(bg, Key{Bench: "filler", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A coalescing waiter must still find the in-flight entry.
	waiter := make(chan float64, 1)
	go func() {
		v, _ := r.Memo(bg, inflight, func() (CellResult, error) {
			t.Error("coalesced waiter recomputed an in-flight cell")
			return CellResult{}, nil
		})
		waiter <- v
	}()
	close(release)
	if v := <-done; v != 9 {
		t.Fatalf("in-flight Memo = %v, want 9", v)
	}
	if v := <-waiter; v != 9 {
		t.Fatalf("coalesced Memo = %v, want 9", v)
	}
	// Once completed, the over-capacity cache shrinks on the next insert.
	if _, err := r.Memo(bg, Key{Bench: "post"}, func() (CellResult, error) {
		return CellResult{Value: 2}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d after all cells completed, want capacity 1", got)
	}
}

func TestCacheCapacityConcurrent(t *testing.T) {
	// Hammer a small LRU from many goroutines (run under -race in CI):
	// no deadlock, no lost updates, and the bound holds at quiesce.
	const capacity = 8
	r := New(4, WithCacheCapacity(capacity))
	c := r.Cache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := Key{Bench: "storm", Size: (g*7 + i) % 32}
				v, err := r.Memo(bg, key, func() (CellResult, error) {
					return CellResult{Value: float64(key.Size)}, nil
				})
				if err != nil {
					t.Errorf("Memo: %v", err)
					return
				}
				if v != float64(key.Size) {
					t.Errorf("Memo = %v, want %d (stale or clobbered cell)", v, key.Size)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > capacity {
		t.Fatalf("Len = %d at quiesce, want <= %d", got, capacity)
	}
	st := c.Stats()
	if st.Misses < 32 {
		t.Fatalf("misses = %d, want >= 32 (every distinct key computed at least once)", st.Misses)
	}
}

func TestCacheResetKeepsCapacity(t *testing.T) {
	c := NewCacheWithCapacity(2)
	r := New(1, WithCache(c))
	memo := func(i int) {
		t.Helper()
		if _, err := r.Memo(bg, Key{Bench: "rk", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	memo(0)
	c.Reset()
	if c.Len() != 0 || c.Capacity() != 2 {
		t.Fatalf("after Reset: Len=%d Capacity=%d, want 0 and 2", c.Len(), c.Capacity())
	}
	for i := 0; i < 5; i++ {
		memo(i)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after Reset + 5 inserts, want 2 (bound survives)", c.Len())
	}
}

func TestWithCacheCapacityOptionOrder(t *testing.T) {
	// The capacity must land on the final cache whichever way the
	// options are ordered.
	shared := NewCache()
	for name, opts := range map[string][]Option{
		"cap-then-cache": {WithCacheCapacity(4), WithCache(shared)},
		"cache-then-cap": {WithCache(shared), WithCacheCapacity(4)},
	} {
		r := New(1, opts...)
		if got := r.Cache().Capacity(); got != 4 {
			t.Fatalf("%s: Capacity = %d, want 4", name, got)
		}
		shared.SetCapacity(0)
	}
}

func TestCacheCapacityStatsCountEvictedRecompute(t *testing.T) {
	r := New(1, WithCacheCapacity(1))
	for round := 0; round < 2; round++ {
		for i := 0; i < 2; i++ {
			if _, err := r.Memo(bg, Key{Bench: fmt.Sprintf("k%d", i)}, func() (CellResult, error) {
				return CellResult{Value: 1}, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Capacity 1 with two alternating keys: every access evicts the
	// other key, so all four accesses are misses.
	if st := r.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("Stats = %+v, want 4 misses / 0 hits under thrashing", st)
	}
}
