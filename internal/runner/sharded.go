package runner

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Sharded is the second in-process Executor: N independent worker
// pools hash-partitioned by cell Key, fronted by one striped Cache.
// Where a single Runner funnels every cell through one semaphore and
// (with a single-stripe cache) one mutex, a Sharded executor gives each
// shard its own pool token channel and each cache stripe its own lock,
// so at high parallelism the scheduler stops being the bottleneck — the
// paper's matrix is embarrassingly parallel, and the scheduler should
// look that way too.
//
// Routing is content-keyed: a cell's shard is a pure function of its
// Key (the same FNV hash that picks its cache stripe), so one key is
// always computed by one shard and the single-flight invariant needs no
// cross-shard coordination. Do calls, which carry no key, round-robin
// over the shards. Virtual time makes every cell deterministic, so
// results — and the assembled output of Map — are bit-identical to a
// serial Runner's.
//
// The zero value is not usable; call NewSharded.
type Sharded struct {
	pools   []*Runner
	cache   *Cache
	workers int
	rr      atomic.Uint64 // round-robin cursor for keyless Do calls
}

var _ Executor = (*Sharded)(nil)

// NewSharded returns an Executor of shards independent worker pools,
// each executing at most workersPerShard simulations at once, over a
// shared striped cache. shards < 1 selects GOMAXPROCS;
// workersPerShard < 1 divides GOMAXPROCS evenly across the shards
// (minimum one).
//
// The same options as New apply. Without WithCache the executor builds
// a striped cache sized to the shard count; handing a cache in with
// WithCache uses it as-is — including its stripe count, so pass a
// NewStripedCache when the point is contention relief.
func NewSharded(shards, workersPerShard int, opts ...Option) *Sharded {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	if workersPerShard < 1 {
		workersPerShard = runtime.GOMAXPROCS(0) / shards
		if workersPerShard < 1 {
			workersPerShard = 1
		}
	}
	cfg := resolve(opts, func() *Cache { return NewStripedCache(stripesFor(shards)) })
	s := &Sharded{
		pools:   make([]*Runner, shards),
		cache:   cfg.cache,
		workers: shards * workersPerShard,
	}
	for i := range s.pools {
		s.pools[i] = New(workersPerShard, WithCache(cfg.cache), WithObserver(cfg.observe))
	}
	return s
}

// stripesFor picks a default stripe count for a shard count: the next
// power of two at or above 4× the shards, so adjacent shards rarely
// collide on a stripe lock even when their keys cluster.
func stripesFor(shards int) int {
	n := 1
	for n < 4*shards {
		n <<= 1
	}
	return n
}

// Shards reports the number of independent pools.
func (s *Sharded) Shards() int { return len(s.pools) }

// Memo resolves the cell on the shard owning its key: the shared
// striped cache keeps single-flight per key, and the shard's pool
// bounds how many of its cells simulate at once. One hash routes both
// the pool and the cache stripe.
func (s *Sharded) Memo(ctx context.Context, key Key, compute func() (CellResult, error)) (float64, error) {
	h := key.Hash()
	pool := s.pools[bucket(h, len(s.pools))]
	return pool.memoOn(ctx, key, s.cache.stripeAt(h), compute)
}

// Do runs fn under an execution slot of the next shard in round-robin
// order — keyless direct runs spread evenly over the pools.
func (s *Sharded) Do(ctx context.Context, fn func() error) error {
	i := s.rr.Add(1) - 1
	return s.pools[i%uint64(len(s.pools))].Do(ctx, fn)
}

// Map fans fn(0..n-1) out across goroutines, preserving the Runner.Map
// contract: ordered assembly into pre-sized slices, the lowest-index
// error among the indices that ran, early exit once any index fails.
// Only Memo computes hold pool tokens, so Map may nest. With a total
// worker count of one the indices run serially in order.
func (s *Sharded) Map(ctx context.Context, n int, fn func(i int) error) error {
	return mapIndices(ctx, s.workers, n, fn)
}

// Workers reports the total concurrency bound: the sum of the shard
// pools.
func (s *Sharded) Workers() int { return s.workers }

// Stats snapshots the shared cache's memoization counters.
func (s *Sharded) Stats() Stats { return s.cache.Stats() }

// Cache returns the shared striped cache.
func (s *Sharded) Cache() *Cache { return s.cache }

// Observe installs fn as the per-cell completion callback on every
// shard. Call it before submitting cells.
func (s *Sharded) Observe(fn Observer) {
	for _, p := range s.pools {
		p.Observe(fn)
	}
}
