package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

var bg = context.Background()

func TestMemoComputesOnce(t *testing.T) {
	r := New(4)
	key := Key{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 1024}
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := r.Memo(bg, key, func() (CellResult, error) {
			calls.Add(1)
			return CellResult{Value: 42.5}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v != 42.5 {
			t.Fatalf("Memo = %v, want 42.5", v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("Stats = %+v, want 1 miss / 4 hits", st)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	r := New(8)
	key := Key{Bench: "sf"}
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.Memo(bg, key, func() (CellResult, error) {
				calls.Add(1)
				<-release // hold the computation so the others must coalesce
				return CellResult{Value: 7}, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Memo = %v, %v", v, err)
			}
		}()
	}
	// Let the one in-flight compute finish only after all goroutines have
	// had a chance to request the key.
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under concurrent requests, want 1", got)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	r := New(2)
	key := Key{Bench: "boom"}
	sentinel := errors.New("cell failed")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := r.Memo(bg, key, func() (CellResult, error) {
			calls++
			return CellResult{}, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("Memo error = %v, want %v", err, sentinel)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors memoized)", calls)
	}
}

func TestMemoCancelledContext(t *testing.T) {
	r := New(2)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := r.Memo(ctx, Key{Bench: "never"}, func() (CellResult, error) {
		t.Fatal("compute must not run under a cancelled context")
		return CellResult{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Memo error = %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("cancelled Memo touched the counters: %+v", st)
	}
}

func TestMemoCancelledWhileCoalesced(t *testing.T) {
	// A waiter coalesced onto a slow in-flight cell must honor its own
	// context instead of blocking until the owner finishes.
	r := New(2)
	key := Key{Bench: "slow"}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := r.Memo(bg, key, func() (CellResult, error) {
			close(started)
			<-release
			return CellResult{Value: 1}, nil
		})
		if err != nil {
			t.Errorf("owner Memo failed: %v", err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(bg)
	go cancel()
	_, err := r.Memo(ctx, key, func() (CellResult, error) { return CellResult{Value: 0}, nil })
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("coalesced Memo error = %v, want context.Canceled", err)
	}
}

func TestMemoPanickingComputeReleasesResources(t *testing.T) {
	r := New(1) // one worker: a leaked token would wedge the runner
	key := Key{Bench: "kaboom"}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the computing caller")
			}
		}()
		_, _ = r.Memo(bg, key, func() (CellResult, error) { panic("boom") })
	}()
	// The panicked cell is cached as an error, not as a zero success.
	if _, err := r.Memo(bg, key, func() (CellResult, error) { return CellResult{Value: 1}, nil }); err == nil {
		t.Fatal("panicked cell must be cached as an error")
	}
	// The pool token was released: other cells still run.
	v, err := r.Memo(bg, Key{Bench: "after"}, func() (CellResult, error) { return CellResult{Value: 5}, nil })
	if err != nil || v != 5 {
		t.Fatalf("runner wedged after panic: %v, %v", v, err)
	}
}

func TestSharedCachePoolsResults(t *testing.T) {
	cache := NewCache()
	a := New(2, WithCache(cache))
	b := New(4, WithCache(cache))
	key := Key{Bench: "shared"}
	var calls atomic.Int64
	compute := func() (CellResult, error) { calls.Add(1); return CellResult{Value: 9}, nil }
	if _, err := a.Memo(bg, key, compute); err != nil {
		t.Fatal(err)
	}
	v, err := b.Memo(bg, key, compute)
	if err != nil || v != 9 {
		t.Fatalf("Memo via second runner = %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("shared cache recomputed: %d calls", calls.Load())
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("shared cache stats = %+v, want 1 hit / 1 miss", st)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d cells, want 1", cache.Len())
	}
}

func TestPrivateCachesAreIsolated(t *testing.T) {
	a, b := New(2), New(2)
	key := Key{Bench: "isolated"}
	var calls atomic.Int64
	compute := func() (CellResult, error) { calls.Add(1); return CellResult{Value: 3}, nil }
	if _, err := a.Memo(bg, key, compute); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Memo(bg, key, compute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("isolated runners coalesced: %d calls, want 2", calls.Load())
	}
	if sa, sb := a.Stats(), b.Stats(); sa.Misses != 1 || sb.Misses != 1 || sa.Hits != 0 || sb.Hits != 0 {
		t.Fatalf("stats leaked across runners: a=%+v b=%+v", sa, sb)
	}
}

func TestObserverSeesHitsAndMisses(t *testing.T) {
	type event struct {
		key    Key
		cached bool
	}
	var mu sync.Mutex
	var events []event
	r := New(1, WithObserver(func(_ context.Context, key Key, cached bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, event{key, cached})
	}))
	key := Key{Bench: "observed"}
	for i := 0; i < 2; i++ {
		if _, err := r.Memo(bg, key, func() (CellResult, error) { return CellResult{Value: 1}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if len(events) != 2 || events[0].cached || !events[1].cached {
		t.Fatalf("observer events = %+v, want miss then hit", events)
	}
}

func TestDoBoundsAndCancels(t *testing.T) {
	r := New(1)
	ran := false
	if err := r.Do(bg, func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("Do = %v, ran = %v", err, ran)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if err := r.Do(ctx, func() error { t.Fatal("must not run"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do under cancelled ctx = %v", err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			r := New(workers)
			out := make([]int, 100)
			err := r.Map(bg, len(out), func(i int) error {
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapSerialRunsInOrder(t *testing.T) {
	r := New(1)
	var seen []int
	if err := r.Map(bg, 10, func(i int) error {
		seen = append(seen, i) // safe: workers==1 runs on the calling goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial Map visited %v, want ascending order", seen)
		}
	}
}

func TestMapReturnsError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	body := func(i int) error {
		switch i {
		case 2:
			return errLow
		case 6:
			return errHigh
		}
		return nil
	}
	// Serial mode stops at the first failing index.
	if err := New(1).Map(bg, 8, body); !errors.Is(err, errLow) {
		t.Fatalf("j=1: Map error = %v, want the first error", err)
	}
	// Parallel mode skips not-yet-started indices after a failure, so
	// either failing index may be the one reported — but one must be.
	err := New(4).Map(bg, 8, body)
	if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
		t.Fatalf("j=4: Map error = %v, want one of the injected errors", err)
	}
}

func TestMapStopsLaunchingAfterFailure(t *testing.T) {
	// With one worker beyond the failing goroutine, indices that start
	// after the failure is recorded must be skipped.
	r := New(2)
	var ran atomic.Int64
	boom := errors.New("boom")
	err := r.Map(bg, 64, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom", err)
	}
	if got := ran.Load(); got == 64 {
		t.Fatalf("all 64 indices ran despite every one failing — no early exit")
	}
}

func TestMapCancelledMidSweepSerial(t *testing.T) {
	// Serial mode checks the context between indices, so a cancellation
	// raised inside index 0 deterministically stops the sweep there.
	r := New(1)
	ctx, cancel := context.WithCancel(bg)
	var ran int
	err := r.Map(ctx, 64, func(i int) error {
		ran++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d indices after cancellation, want 1", ran)
	}
}

func TestMapCancelledBeforeStartParallel(t *testing.T) {
	r := New(4)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	var ran atomic.Int64
	err := r.Map(ctx, 64, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d indices ran under a pre-cancelled context, want 0", got)
	}
}

func TestMapNests(t *testing.T) {
	// Outer Map items each run an inner Map plus a Memo'd cell; with a
	// pool of 2 this deadlocks unless only Memo's compute holds a token.
	r := New(2)
	var cells atomic.Int64
	err := r.Map(bg, 6, func(i int) error {
		return r.Map(bg, 6, func(j int) error {
			_, err := r.Memo(bg, Key{Bench: "nest", Procs: i, Size: j}, func() (CellResult, error) {
				cells.Add(1)
				return CellResult{Value: float64(i * j)}, nil
			})
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cells.Load(); got != 36 {
		t.Fatalf("ran %d cells, want 36", got)
	}
}

func TestCollectCancelled(t *testing.T) {
	r := New(1)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := Collect(ctx, r, []int{1, 2, 3}, func(j int) (int, error) { return j, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect error = %v, want context.Canceled", err)
	}
}

func TestNewClampsWorkers(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("New(%d).Workers() = %d, want GOMAXPROCS", w, got)
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d", got)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Platform: "sun-ethernet", Tool: "pvm", Bench: "ring", Procs: 4, Size: 2048}
	want := "sun-ethernet/pvm/ring procs=4 size=2048 scale=0"
	if got := k.String(); got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

func TestCacheLenAndReset(t *testing.T) {
	c := NewCache()
	if c.Len() != 0 {
		t.Fatalf("fresh cache Len = %d, want 0", c.Len())
	}
	r := New(2, WithCache(c))
	var calls atomic.Int64
	compute := func() (CellResult, error) {
		calls.Add(1)
		return CellResult{Value: 1}, nil
	}
	for i := 0; i < 3; i++ {
		key := Key{Bench: "cell", Size: i}
		if _, err := r.Memo(bg, key, compute); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Memo(bg, key, compute); err != nil { // hit
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache Len = %d after 3 distinct cells, want 3", c.Len())
	}
	if st := c.Stats(); st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("Stats = %+v, want 3 misses / 3 hits", st)
	}

	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("cache Len = %d after Reset, want 0", c.Len())
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Stats = %+v after Reset, want zeroes", st)
	}
	// Dropped cells recompute (deterministically) on the next request.
	if _, err := r.Memo(bg, Key{Bench: "cell", Size: 0}, compute); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("compute ran %d times, want 4 (3 before Reset + 1 after)", got)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("post-Reset Stats = %+v, want exactly 1 miss", st)
	}
}

func TestCacheResetDoesNotStrandInFlight(t *testing.T) {
	c := NewCache()
	r := New(4, WithCache(c))
	started := make(chan struct{})
	release := make(chan struct{})
	key := Key{Bench: "inflight"}
	done := make(chan float64, 1)
	go func() {
		v, _ := r.Memo(bg, key, func() (CellResult, error) {
			close(started)
			<-release
			return CellResult{Value: 9}, nil
		})
		done <- v
	}()
	<-started
	c.Reset() // drops the in-flight entry from the map
	close(release)
	if v := <-done; v != 9 {
		t.Fatalf("in-flight Memo = %v after Reset, want 9", v)
	}
	// The entry was dropped, so a later call recomputes rather than
	// waiting on anything stale.
	v, err := r.Memo(bg, key, func() (CellResult, error) { return CellResult{Value: 11}, nil })
	if err != nil || v != 11 {
		t.Fatalf("post-Reset Memo = %v, %v, want 11", v, err)
	}
}
