package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOnce(t *testing.T) {
	r := New(4)
	key := Key{Platform: "sun-ethernet", Tool: "p4", Bench: "pingpong", Procs: 2, Size: 1024}
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := r.Memo(key, func() (float64, error) {
			calls.Add(1)
			return 42.5, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v != 42.5 {
			t.Fatalf("Memo = %v, want 42.5", v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("Stats = %+v, want 1 miss / 4 hits", st)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	r := New(8)
	key := Key{Bench: "sf"}
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.Memo(key, func() (float64, error) {
				calls.Add(1)
				<-release // hold the computation so the others must coalesce
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Memo = %v, %v", v, err)
			}
		}()
	}
	// Let the one in-flight compute finish only after all goroutines have
	// had a chance to request the key.
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under concurrent requests, want 1", got)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	r := New(2)
	key := Key{Bench: "boom"}
	sentinel := errors.New("cell failed")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := r.Memo(key, func() (float64, error) {
			calls++
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("Memo error = %v, want %v", err, sentinel)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors memoized)", calls)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			r := New(workers)
			out := make([]int, 100)
			err := r.Map(len(out), func(i int) error {
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapSerialRunsInOrder(t *testing.T) {
	r := New(1)
	var seen []int
	if err := r.Map(10, func(i int) error {
		seen = append(seen, i) // safe: workers==1 runs on the calling goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial Map visited %v, want ascending order", seen)
		}
	}
}

func TestMapReturnsError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	body := func(i int) error {
		switch i {
		case 2:
			return errLow
		case 6:
			return errHigh
		}
		return nil
	}
	// Serial mode stops at the first failing index.
	if err := New(1).Map(8, body); !errors.Is(err, errLow) {
		t.Fatalf("j=1: Map error = %v, want the first error", err)
	}
	// Parallel mode skips not-yet-started indices after a failure, so
	// either failing index may be the one reported — but one must be.
	err := New(4).Map(8, body)
	if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
		t.Fatalf("j=4: Map error = %v, want one of the injected errors", err)
	}
}

func TestMapStopsLaunchingAfterFailure(t *testing.T) {
	// With one worker beyond the failing goroutine, indices that start
	// after the failure is recorded must be skipped.
	r := New(2)
	var ran atomic.Int64
	boom := errors.New("boom")
	err := r.Map(64, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom", err)
	}
	if got := ran.Load(); got == 64 {
		t.Fatalf("all 64 indices ran despite every one failing — no early exit")
	}
}

func TestMapNests(t *testing.T) {
	// Outer Map items each run an inner Map plus a Memo'd cell; with a
	// pool of 2 this deadlocks unless only Memo's compute holds a token.
	r := New(2)
	var cells atomic.Int64
	err := r.Map(6, func(i int) error {
		return r.Map(6, func(j int) error {
			_, err := r.Memo(Key{Bench: "nest", Procs: i, Size: j}, func() (float64, error) {
				cells.Add(1)
				return float64(i * j), nil
			})
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cells.Load(); got != 36 {
		t.Fatalf("ran %d cells, want 36", got)
	}
}

func TestNewClampsWorkers(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("New(%d).Workers() = %d, want GOMAXPROCS", w, got)
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d", got)
	}
}

func TestDefaultSwap(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	r := New(3)
	SetDefault(r)
	if Default() != r {
		t.Fatal("SetDefault did not install the runner")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Platform: "sun-ethernet", Tool: "pvm", Bench: "ring", Procs: 4, Size: 2048}
	want := "sun-ethernet/pvm/ring procs=4 size=2048 scale=0"
	if got := k.String(); got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}
