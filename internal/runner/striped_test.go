package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStripedCacheDefaults(t *testing.T) {
	if got := NewCache().Stripes(); got != 1 {
		t.Fatalf("NewCache().Stripes() = %d, want 1 (exact global LRU)", got)
	}
	if got := NewStripedCache(0).Stripes(); got != defaultStripes {
		t.Fatalf("NewStripedCache(0).Stripes() = %d, want the default %d", got, defaultStripes)
	}
	if got := NewStripedCache(7).Stripes(); got != 7 {
		t.Fatalf("NewStripedCache(7).Stripes() = %d, want 7", got)
	}
}

func TestStripedCacheAggregatesLenStatsReset(t *testing.T) {
	c := NewStripedCache(8)
	r := New(4, WithCache(c))
	const cells = 100
	for i := 0; i < cells; i++ {
		key := Key{Bench: "agg-striped", Size: i}
		if _, err := r.Memo(bg, key, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Memo(bg, key, func() (CellResult, error) {
			t.Error("hit recomputed")
			return CellResult{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != cells {
		t.Fatalf("Len = %d summed over stripes, want %d", got, cells)
	}
	if st := c.Stats(); st.Misses != cells || st.Hits != cells {
		t.Fatalf("Stats = %+v, want %d/%d", st, cells, cells)
	}
	c.Reset()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len = %d after Reset, want 0 (every stripe dropped)", got)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Stats = %+v after Reset, want zeroes", st)
	}
}

func TestStripedCapacityDividedPerStripe(t *testing.T) {
	const stripes = 4
	c := NewStripedCache(stripes)
	c.SetCapacity(8) // 2 per stripe
	if got := c.Capacity(); got != 8 {
		t.Fatalf("Capacity = %d, want the configured total 8", got)
	}
	r := New(1, WithCache(c))
	var calls atomic.Int64
	memo := func(k Key) {
		t.Helper()
		if _, err := r.Memo(bg, k, func() (CellResult, error) {
			calls.Add(1)
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Four keys aimed at one stripe overflow its share of two even
	// though the cache as a whole is nowhere near its total bound.
	keys := keysInBucket(stripes, 0, 4)
	for _, k := range keys {
		memo(k)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after overflowing one stripe, want its share 2", got)
	}
	// The survivors are the most recently used pair; the first two were
	// evicted and recompute on request.
	memo(keys[3])
	memo(keys[2])
	if got := calls.Load(); got != 4 {
		t.Fatalf("computed %d cells, want 4 (the per-stripe survivors replay)", got)
	}
	memo(keys[0])
	if got := calls.Load(); got != 5 {
		t.Fatalf("computed %d cells, want 5 (evicted key recomputes)", got)
	}
}

func TestStripedEvictionOrderAtStripeBoundary(t *testing.T) {
	// The LRU order within one stripe must match the single-stripe
	// cache's behavior exactly: touch a key and the other becomes the
	// eviction victim.
	const stripes = 4
	c := NewStripedCache(stripes)
	c.SetCapacity(2 * stripes) // 2 per stripe
	r := New(1, WithCache(c))
	var calls atomic.Int64
	memo := func(k Key) {
		t.Helper()
		if _, err := r.Memo(bg, k, func() (CellResult, error) {
			calls.Add(1)
			return CellResult{Value: float64(k.Size)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	keys := keysInBucket(stripes, 1, 3)
	memo(keys[0])
	memo(keys[1])
	memo(keys[0]) // touch key 0: key 1 becomes the stripe's LRU
	memo(keys[2]) // evicts key 1
	memo(keys[0]) // still cached
	if got := calls.Load(); got != 3 {
		t.Fatalf("computed %d cells, want 3 (touched key survived)", got)
	}
	memo(keys[1]) // evicted: recomputes
	if got := calls.Load(); got != 4 {
		t.Fatalf("computed %d cells after re-requesting the stripe's LRU victim, want 4", got)
	}
}

func TestStripedInFlightNeverEvicted(t *testing.T) {
	// Filling a stripe past its share while one of its cells is still
	// computing must not evict the in-flight entry: coalesced waiters
	// keep finding it (the per-stripe form of the Cache invariant).
	const stripes = 4
	c := NewStripedCache(stripes)
	c.SetCapacity(stripes) // 1 per stripe
	r := New(4, WithCache(c))
	keys := keysInBucket(stripes, 2, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan float64, 1)
	go func() {
		v, _ := r.Memo(bg, keys[0], func() (CellResult, error) {
			close(started)
			<-release
			return CellResult{Value: 9}, nil
		})
		done <- v
	}()
	<-started
	for _, k := range keys[1:3] {
		if _, err := r.Memo(bg, k, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	waiter := make(chan float64, 1)
	go func() {
		v, _ := r.Memo(bg, keys[0], func() (CellResult, error) {
			t.Error("coalesced waiter recomputed an in-flight cell")
			return CellResult{}, nil
		})
		waiter <- v
	}()
	close(release)
	if v := <-done; v != 9 {
		t.Fatalf("in-flight Memo = %v, want 9", v)
	}
	if v := <-waiter; v != 9 {
		t.Fatalf("coalesced Memo = %v, want 9", v)
	}
	// Once completed, the next insert in that stripe shrinks it back to
	// its share.
	if _, err := r.Memo(bg, keys[3], func() (CellResult, error) {
		return CellResult{Value: 2}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got > stripes {
		t.Fatalf("Len = %d after all cells completed, want <= %d (every stripe at its share)", got, stripes)
	}
}

// TestStripedCacheConcurrentCapacityResetMemo is the -race soak of the
// striped cache: Memo traffic across every stripe racing SetCapacity
// flips and Resets. Correctness bar: no deadlock, no lost update (a
// Memo always returns its key's value), bound respected at quiesce.
func TestStripedCacheConcurrentCapacityResetMemo(t *testing.T) {
	const stripes, capacity = 8, 32
	c := NewStripedCache(stripes)
	c.SetCapacity(capacity)
	s := NewSharded(4, 2, WithCache(c))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := Key{Bench: "striped-storm", Size: (g*13 + i) % 96}
				v, err := s.Memo(bg, key, func() (CellResult, error) {
					return CellResult{Value: float64(key.Size)}, nil
				})
				if err != nil {
					t.Errorf("Memo: %v", err)
					return
				}
				if v != float64(key.Size) {
					t.Errorf("Memo = %v, want %d (stale or clobbered cell)", v, key.Size)
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			c.SetCapacity(capacity / 2)
			c.SetCapacity(capacity)
			c.SetCapacity(0)
			c.SetCapacity(capacity)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			c.Reset()
			_ = c.Len()
		}
	}()
	wg.Wait()
	// Re-establish the bound and fill: at quiesce the aggregate length
	// must respect capacity plus the rounding headroom (one per stripe).
	c.SetCapacity(capacity)
	for i := 0; i < 96; i++ {
		if _, err := s.Memo(bg, Key{Bench: "striped-fill", Size: i}, func() (CellResult, error) {
			return CellResult{Value: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > capacity+stripes {
		t.Fatalf("Len = %d at quiesce, want <= capacity %d + per-stripe rounding %d", got, capacity, stripes)
	}
}
