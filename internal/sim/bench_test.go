package sim

import (
	"testing"
	"time"
)

// Microbenchmarks for the engine's hot paths. Every table and figure the
// evaluation produces decomposes into virtual-time simulation cells, so
// the cost of one Sleep/Unpark cycle multiplies through the entire
// toolbench sweep. The three workload shapes below are the ones the
// message-passing models actually generate:
//
//   - sleep storm: many processes advancing local time in small steps
//     (network transmission delays, CPU cost modeling);
//   - spawn/exit churn: short-lived processes (per-message helper
//     daemons, per-cell rank setup);
//   - unpark fan-out: one event waking many parked processes (barrier
//     release, broadcast delivery, WaitQ.WakeAll).
//
// All benchmarks use virtual time only and are bit-deterministic, so
// ns/op and allocs/op are comparable across commits; scripts/record_bench.sh
// snapshots them into BENCH_PR3.json.

// runStorm is the shared sleep-storm workload: procs processes each
// performing sleeps short sleeps with distinct periods, forcing constant
// re-heapification and park/wake cycling. Shared with the zero-alloc
// budget tests in alloc_test.go so the benchmark and its guard cannot
// drift apart.
func runStorm(tb testing.TB, e *Engine, procs, sleeps int) {
	tb.Helper()
	for pi := 0; pi < procs; pi++ {
		d := time.Duration(pi+1) * time.Microsecond
		e.Spawn("p", func(p *Proc) {
			for k := 0; k < sleeps; k++ {
				p.Sleep(d)
			}
		})
	}
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
}

// runFanout is the shared unpark fan-out workload: one waker releasing
// waiters parked processes rounds times (the WakeAll shape of barriers
// and broadcast delivery). Shared with alloc_test.go like runStorm.
func runFanout(tb testing.TB, e *Engine, waiters, rounds int) {
	tb.Helper()
	var q WaitQ
	for w := 0; w < waiters; w++ {
		e.Spawn("w", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				q.Wait(p, "fanout")
			}
		})
	}
	e.Spawn("waker", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Sleep(time.Microsecond)
			q.WakeAll()
		}
	})
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkSleepStorm is the headline engine benchmark: 8 interleaving
// sleepers, 8000 park/wake cycles per iteration.
func BenchmarkSleepStorm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runStorm(b, NewEngine(), 8, 1000)
	}
}

// BenchmarkSleepStormSingle is the degenerate storm: one process whose
// wake is always the next event, the best case for any scheduler.
func BenchmarkSleepStormSingle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runStorm(b, NewEngine(), 1, 8000)
	}
}

// BenchmarkSpawnExitChurn spawns 500 processes that run one event's
// worth of work and exit, per iteration.
func BenchmarkSpawnExitChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for k := 0; k < 500; k++ {
			e.Spawn("c", func(p *Proc) {
				p.Sleep(time.Microsecond)
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnparkFanout releases 64 parked processes 100 times per
// iteration.
func BenchmarkUnparkFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runFanout(b, NewEngine(), 64, 100)
	}
}

// BenchmarkEventFlood schedules and drains 10000 bare events (the
// Engine.At closure path used by message delivery and timers).
func BenchmarkEventFlood(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		sink := 0
		for k := 0; k < 10000; k++ {
			at := Time(k%977) * Time(time.Microsecond)
			e.At(at, "flood", func() { sink++ })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if sink != 10000 {
			b.Fatalf("fired %d events, want 10000", sink)
		}
	}
}

// Pooled variants: the same workloads on engines recycled through
// AcquireEngine/Release, the way mpt.Run executes a benchmark sweep's
// cells. After the first iteration the free list and queue storage are
// warm, so these measure the sweep steady state rather than cold-start
// allocation.

// BenchmarkSleepStormPooled is BenchmarkSleepStorm on a pooled engine.
func BenchmarkSleepStormPooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := AcquireEngine()
		runStorm(b, e, 8, 1000)
		e.Release()
	}
}

// BenchmarkEventFloodPooled is BenchmarkEventFlood with a pooled engine
// and the closure-free AtCall path.
func BenchmarkEventFloodPooled(b *testing.B) {
	b.ReportAllocs()
	sink := 0
	bump := func(any) { sink++ }
	for i := 0; i < b.N; i++ {
		e := AcquireEngine()
		sink = 0
		for k := 0; k < 10000; k++ {
			at := Time(k%977) * Time(time.Microsecond)
			e.AtCall(at, "flood", bump, nil)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if sink != 10000 {
			b.Fatalf("fired %d events, want 10000", sink)
		}
		e.Release()
	}
}
