package sim

// EngineVersion identifies the result-affecting behavior of the
// simulation stack: the engine's event semantics plus everything
// layered on it that shapes a simulated measurement (network models,
// tool models, platform tables, benchmark bodies). It is the
// invalidation stamp of the durable result store — a persisted cell is
// only trusted if it was written by the same EngineVersion, so bumping
// this constant retires every stored result at once.
//
// Bump it on ANY change that can alter a simulated value, however
// small: a cost-model tweak, an event-ordering fix, a platform-table
// correction. Leaving it unbumped after such a change makes old stores
// replay stale results that a fresh simulation would no longer produce.
// Pure performance work that provably preserves results (the PR 3
// allocation rework, scheduler sharding) does not need a bump — the
// determinism suite is the judge.
const EngineVersion uint64 = 1
