package sim

import "sync"

// Reset returns the engine to its initial state — virtual time zero,
// empty queue, no processes, no trace sink, runnable again — while
// keeping the event free list and queue storage, so a reset engine
// schedules with a warm allocator. Reset must not be called while Run is
// executing; any still-queued events are discarded (recycled).
//
// Determinism is unaffected by reuse: a reset engine is observationally
// identical to a fresh NewEngine (time, sequence numbers and process
// bookkeeping all restart from zero).
func (e *Engine) Reset() {
	es := e.queue.es
	for i, ev := range es {
		e.recycle(ev)
		es[i] = nil
	}
	e.queue.es = es[:0]
	for i := range e.procs {
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.now, e.seq = 0, 0
	e.trace = nil
	e.fatal = nil
	e.ran, e.stopping = false, false
}

// enginePool recycles engines across simulation cells: a toolbench sweep
// runs hundreds of independent virtual-time simulations, and reusing the
// event free list and queue storage across cells keeps the sweep's
// steady state allocation-free instead of regrowing each engine's heap
// from scratch.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// AcquireEngine returns an engine in its initial state from the package
// pool. Pair it with Release.
func AcquireEngine() *Engine {
	return enginePool.Get().(*Engine)
}

// Release resets e and returns it to the package pool. The caller must
// not use e afterwards, and Run must not be executing (it may have
// completed, or never started).
func (e *Engine) Release() {
	e.Reset()
	enginePool.Put(e)
}
