package sim

// WaitQ is a FIFO queue of parked processes, the building block for
// condition-variable-style blocking (mailboxes, barriers, resource
// queues). All methods must be called from engine context (a running
// process or an event handler); the engine's one-runnable-at-a-time
// discipline makes external locking unnecessary.
type WaitQ struct {
	ps []*Proc
}

// Len reports how many processes are waiting.
func (q *WaitQ) Len() int { return len(q.ps) }

// Wait parks the calling process on the queue until another process or
// event wakes it via WakeOne or WakeAll.
func (q *WaitQ) Wait(p *Proc, reason string) {
	q.ps = append(q.ps, p)
	p.park(reason)
}

// WakeOne schedules the longest-waiting process (if any) to resume at the
// current virtual time and removes it from the queue.
func (q *WaitQ) WakeOne() {
	if len(q.ps) == 0 {
		return
	}
	p := q.ps[0]
	copy(q.ps, q.ps[1:])
	q.ps[len(q.ps)-1] = nil
	q.ps = q.ps[:len(q.ps)-1]
	p.eng.Unpark(p)
}

// WakeAll schedules every waiting process to resume, in FIFO order, and
// empties the queue.
func (q *WaitQ) WakeAll() {
	for _, p := range q.ps {
		p.eng.Unpark(p)
	}
	for i := range q.ps {
		q.ps[i] = nil
	}
	q.ps = q.ps[:0]
}
