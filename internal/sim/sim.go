// Package sim provides a deterministic discrete-event simulation engine
// with process-oriented concurrency.
//
// Simulated processes are ordinary Go functions running on goroutines, but
// the engine guarantees that exactly one process executes at any instant:
// a process runs until it blocks (Sleep, Park, or a higher-level primitive
// built on them), at which point the next event is popped off a priority
// queue ordered by (virtual time, sequence number). Ties are broken by
// insertion order, so a simulation is bit-for-bit reproducible across runs
// and platforms.
//
// The scheduler is direct-switch: there is no dedicated engine goroutine
// that every yield must bounce through. Whichever goroutine is currently
// running — the Run caller initially, then each resumed process — owns the
// "engine role" and dispatches events itself until an event resumes
// another process, at which point the role is handed over with a single
// channel send (one handoff per yield instead of the classic two). When
// the next event wakes the very process that is parking, control never
// leaves its goroutine and the yield costs no channel operation at all.
//
// Event scheduling is allocation-free in steady state: events are small
// tagged structs drawn from an engine-owned free list — a wake carries
// its target process directly instead of a closure — and trace labels
// are only materialized when a TraceFunc is installed. Engines can be
// pooled across simulations with AcquireEngine/Release (or reused
// directly via Reset), so a sweep of hundreds of cells reuses queue and
// free-list storage instead of regrowing it.
//
// The engine is the substrate for the tooleval network models and
// message-passing tools: all timing in the reproduced experiments is
// virtual time produced by this engine, never wall-clock time.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration converts a virtual time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// Add returns t shifted by d. Negative results are clamped to zero so that
// model arithmetic can never schedule into the past.
func (t Time) Add(d time.Duration) Time {
	r := t + Time(d)
	if r < t && d > 0 { // overflow guard
		return t
	}
	if r < 0 {
		return 0
	}
	return r
}

func (t Time) String() string { return time.Duration(t).String() }

// killedPanic is thrown through a process goroutine to unwind it when the
// engine shuts the simulation down. It never escapes the package.
type killedPanic struct{}

// DeadlockError reports that the event queue drained while non-daemon
// processes were still blocked: the simulated system can make no further
// progress. Blocked lists each stuck process with the reason it parked,
// which is the engine's primary debugging aid.
type DeadlockError struct {
	At      Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %v", e.At, len(e.Blocked), e.Blocked)
}

// PanicError reports that a simulated process panicked. The simulation is
// aborted and the panic is surfaced as an error from Run.
type PanicError struct {
	Proc  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// TraceEvent is one entry of the engine's execution trace. Traces support
// the debugging-support criterion of the evaluation methodology: they let a
// user replay exactly what a tool did and when.
type TraceEvent struct {
	T      Time
	Kind   string // "spawn", "wake", "park", "exit", "event"
	Proc   string
	Detail string
}

// TraceFunc receives trace events as they occur. It must not call back
// into the engine.
type TraceFunc func(TraceEvent)

// evKind tags an event with its dispatch fast path. Wake-class events
// (evStart, evWake, evUnpark) carry the target process directly instead of
// a closure, so scheduling them allocates nothing once the free list is
// warm.
type evKind uint8

const (
	evFn     evKind = iota // run fn() — the general At path
	evCall                 // run call(a, b) — the closure-free At variant
	evStart                // first dispatch of a spawned process
	evWake                 // resume a sleeping process
	evUnpark               // resume the process iff it is still parked
)

// event is one scheduled occurrence. Events are owned by the engine and
// return to its free list after dispatch, so steady-state scheduling
// performs no allocation; callers never see them.
type event struct {
	t    Time
	seq  uint64
	kind evKind
	p    *Proc         // evStart/evWake/evUnpark target
	name string        // evFn/evCall trace label
	fn   func()        // evFn
	call func(arg any) // evCall
	arg  any           // evCall argument
}

// schedResult reports why a schedule loop stopped on this goroutine.
type schedResult uint8

const (
	// schedDrained: the queue is empty (or a process panic aborted the
	// run); the simulation is over.
	schedDrained schedResult = iota
	// schedHandedOff: the engine role was handed to a resumed process.
	schedHandedOff
	// schedSelf: the resumed process is the caller's own — control never
	// left this goroutine.
	schedSelf
)

// Engine is a discrete-event simulation engine. The zero value is not
// usable; call NewEngine (or AcquireEngine for a pooled one).
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	free  []*event // recycled events; steady-state scheduling is zero-alloc
	procs []*Proc
	trace TraceFunc
	fatal error
	ran   bool
	// stopping marks the shutdown phase: killed processes hand their
	// channel back to Run instead of continuing to dispatch events.
	stopping bool
	// done is signaled by whichever goroutine drains the queue, waking
	// the Run caller for shutdown.
	done chan struct{}
}

// NewEngine returns an engine at virtual time zero with an empty event
// queue.
func NewEngine() *Engine {
	return &Engine{done: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs fn as the trace sink. A nil fn disables tracing.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

func (e *Engine) emit(kind, proc, detail string) {
	if e.trace != nil {
		e.trace(TraceEvent{T: e.now, Kind: kind, Proc: proc, Detail: detail})
	}
}

// newEvent takes an event off the free list (or allocates one the first
// time), stamps it with the clamped time and the next sequence number,
// and tags it. The caller fills the payload fields and pushes it.
func (e *Engine) newEvent(t Time, kind evKind) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.t, ev.seq, ev.kind = t, e.seq, kind
	return ev
}

// recycle clears an event's payload (so the free list retains neither
// processes nor closures) and returns it to the free list.
func (e *Engine) recycle(ev *event) {
	ev.p, ev.name, ev.fn, ev.call, ev.arg = nil, "", nil, nil, nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at virtual time t (or now, if t is in the past).
// fn runs in engine context: it must not block, but it may schedule
// further events and unpark processes.
func (e *Engine) At(t Time, name string, fn func()) {
	ev := e.newEvent(t, evFn)
	ev.name, ev.fn = name, fn
	e.queue.push(ev)
}

// AtCall schedules call(arg) at virtual time t, like At but with a plain
// function and an explicit argument instead of a closure: the event
// stores both, so hot paths that would otherwise allocate a closure per
// event (message delivery, timers) schedule allocation-free. A
// pointer-typed arg does not allocate when boxed into the event.
func (e *Engine) AtCall(t Time, name string, call func(arg any), arg any) {
	ev := e.newEvent(t, evCall)
	ev.name, ev.call, ev.arg = name, call, arg
	e.queue.push(ev)
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, name string, fn func()) {
	e.At(e.now.Add(d), name, fn)
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine (i.e. from within the function passed to Spawn)
// unless documented otherwise.
type Proc struct {
	name string
	eng  *Engine
	// ch is the single park/resume handoff channel: the engine role
	// arrives with a receive and leaves with a send, in strict
	// alternation.
	ch     chan struct{}
	parked bool
	reason string
	daemon bool
	killed bool
	exited bool
	// Lazily-built trace labels; only materialized when tracing.
	startName  string
	wakeName   string
	unparkName string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on. Safe to call from
// anywhere.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// SetDaemon marks the process as a daemon: it is expected to still be
// blocked when the simulation ends (e.g. a message-routing daemon waiting
// for traffic) and does not trigger deadlock detection.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

func (p *Proc) label(prefix string, cache *string) string {
	if *cache == "" {
		*cache = prefix + p.name
	}
	return *cache
}

// eventName builds the trace label for an event. Only called while a
// TraceFunc is installed.
func eventName(ev *event) string {
	switch ev.kind {
	case evStart:
		return ev.p.label("start:", &ev.p.startName)
	case evWake:
		return ev.p.label("wake:", &ev.p.wakeName)
	case evUnpark:
		return ev.p.label("unpark:", &ev.p.unparkName)
	default:
		return ev.name
	}
}

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. It may be called before Run or from within
// a running process or event.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{name: name, eng: e, ch: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		<-p.ch
		defer p.finish()
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	ev := e.newEvent(e.now, evStart)
	ev.p = p
	e.queue.push(ev)
	return p
}

// finish runs as the process goroutine unwinds — because the body
// returned, panicked, or was killed during shutdown. Outside shutdown the
// goroutine still holds the engine role, so it keeps dispatching events
// until the role moves to another process or the queue drains.
func (p *Proc) finish() {
	e := p.eng
	if r := recover(); r != nil {
		if _, ok := r.(killedPanic); !ok && e.fatal == nil {
			e.fatal = &PanicError{Proc: p.name, Value: r}
		}
	}
	p.exited = true
	if e.stopping {
		// Shutdown kill: Run is waiting on our channel for the exit
		// handshake; the dispatch loop is already over.
		p.ch <- struct{}{}
		return
	}
	e.emit("exit", p.name, "")
	if e.schedule(nil) == schedDrained {
		e.done <- struct{}{}
	}
}

// schedule dispatches events until the engine role leaves the calling
// goroutine. self is the process whose goroutine is running the loop (nil
// for the Run caller or an exiting process): when the next runnable
// process is self, the loop returns schedSelf and control simply continues
// on this goroutine with no handoff.
func (e *Engine) schedule(self *Proc) schedResult {
	for e.queue.Len() > 0 && e.fatal == nil {
		ev := e.queue.pop()
		e.now = ev.t
		if e.trace != nil {
			e.trace(TraceEvent{T: e.now, Kind: "event", Detail: eventName(ev)})
		}
		switch ev.kind {
		case evFn:
			fn := ev.fn
			e.recycle(ev)
			fn()
		case evCall:
			call, arg := ev.call, ev.arg
			e.recycle(ev)
			call(arg)
		case evStart:
			p := ev.p
			e.recycle(ev)
			if p.exited {
				continue
			}
			e.emit("spawn", p.name, "")
			p.ch <- struct{}{}
			return schedHandedOff
		case evWake:
			p := ev.p
			e.recycle(ev)
			if p.exited {
				continue // stale wake for a dead process: lazy-deleted
			}
			p.parked = false
			if p == self {
				return schedSelf
			}
			p.ch <- struct{}{}
			return schedHandedOff
		case evUnpark:
			p := ev.p
			e.recycle(ev)
			if !p.parked || p.exited {
				continue // the wake was overtaken: lazy-deleted, no-op
			}
			p.parked = false
			if p == self {
				return schedSelf
			}
			p.ch <- struct{}{}
			return schedHandedOff
		}
	}
	return schedDrained
}

// park blocks the calling process until the engine resumes it. The
// parking goroutine itself dispatches the next events (it holds the
// engine role), so a yield costs at most one channel handoff — and none
// at all when the next runnable process is this one.
func (p *Proc) park(reason string) {
	if p.killed {
		// Parking from a defer while the shutdown kill unwinds this
		// process: the dispatch loop is over and nothing could ever
		// resume us, so keep unwinding instead of scheduling (which
		// would strand Run's kill handshake).
		panic(killedPanic{})
	}
	e := p.eng
	p.reason = reason
	p.parked = true
	e.emit("park", p.name, reason)
	switch e.schedule(p) {
	case schedSelf:
		// Our own wake was the next event: control never left this
		// goroutine.
	case schedDrained:
		e.done <- struct{}{}
		<-p.ch
	case schedHandedOff:
		<-p.ch
	}
	if p.killed {
		panic(killedPanic{})
	}
	e.emit("wake", p.name, reason)
}

// Park blocks the process until another event calls Engine.Unpark on it.
// reason is reported in deadlock diagnostics and traces.
func (p *Proc) Park(reason string) { p.park(reason) }

// Sleep advances the process's local time by d, yielding to other
// processes in the meantime. Sleeping for a non-positive duration still
// yields (it schedules a wake at the current time, after already-queued
// events at this timestamp).
func (p *Proc) Sleep(d time.Duration) {
	e := p.eng
	ev := e.newEvent(e.now.Add(d), evWake)
	ev.p = p
	e.queue.push(ev)
	p.park("sleep")
}

// SleepUntil blocks the process until virtual time t (a no-op yield if t
// is not in the future).
func (p *Proc) SleepUntil(t Time) {
	e := p.eng
	ev := e.newEvent(t, evWake)
	ev.p = p
	e.queue.push(ev)
	p.park("sleep-until")
}

// Unpark schedules p to resume at the current virtual time. It is the
// counterpart of Proc.Park and may be called from event handlers or other
// processes. Unparking a process that is not parked is a no-op: the wake
// event is lazily deleted when it reaches the head of the queue.
func (e *Engine) Unpark(p *Proc) {
	ev := e.newEvent(e.now, evUnpark)
	ev.p = p
	e.queue.push(ev)
}

// Run executes events until the queue is empty, then shuts down any
// still-blocked processes. It returns a *DeadlockError if non-daemon
// processes were still blocked, a *PanicError if a process panicked, and
// nil otherwise. Run may be called only once per engine; call Reset to
// reuse the engine for a fresh simulation.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("sim: engine already ran (Reset it to run again)")
	}
	e.ran = true
	if e.schedule(nil) == schedHandedOff {
		// The engine role is out among the process goroutines; wait for
		// whichever one drains the queue.
		<-e.done
	}
	var blocked []string
	for _, p := range e.procs {
		if p.parked && !p.exited && !p.daemon {
			blocked = append(blocked, p.name+" ("+p.reason+")")
		}
	}
	sort.Strings(blocked)
	// Kill every parked process, daemon or not, so no goroutines leak.
	e.stopping = true
	for _, p := range e.procs {
		if p.parked && !p.exited {
			p.killed = true
			p.parked = false
			p.ch <- struct{}{}
			<-p.ch
		}
	}
	if e.fatal != nil {
		return e.fatal
	}
	if len(blocked) > 0 {
		return &DeadlockError{At: e.now, Blocked: blocked}
	}
	return nil
}
