// Package sim provides a deterministic discrete-event simulation engine
// with process-oriented concurrency.
//
// Simulated processes are ordinary Go functions running on goroutines, but
// the engine guarantees that exactly one process executes at any instant:
// a process runs until it blocks (Sleep, Park, or a higher-level primitive
// built on them), at which point control returns to the engine, which pops
// the next event off a priority queue ordered by (virtual time, sequence
// number). Ties are broken by insertion order, so a simulation is
// bit-for-bit reproducible across runs and platforms.
//
// The engine is the substrate for the tooleval network models and
// message-passing tools: all timing in the reproduced experiments is
// virtual time produced by this engine, never wall-clock time.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration converts a virtual time span to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// Add returns t shifted by d. Negative results are clamped to zero so that
// model arithmetic can never schedule into the past.
func (t Time) Add(d time.Duration) Time {
	r := t + Time(d)
	if r < t && d > 0 { // overflow guard
		return t
	}
	if r < 0 {
		return 0
	}
	return r
}

func (t Time) String() string { return time.Duration(t).String() }

// killedPanic is thrown through a process goroutine to unwind it when the
// engine shuts the simulation down. It never escapes the package.
type killedPanic struct{}

// DeadlockError reports that the event queue drained while non-daemon
// processes were still blocked: the simulated system can make no further
// progress. Blocked lists each stuck process with the reason it parked,
// which is the engine's primary debugging aid.
type DeadlockError struct {
	At      Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %v", e.At, len(e.Blocked), e.Blocked)
}

// PanicError reports that a simulated process panicked. The simulation is
// aborted and the panic is surfaced as an error from Run.
type PanicError struct {
	Proc  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// TraceEvent is one entry of the engine's execution trace. Traces support
// the debugging-support criterion of the evaluation methodology: they let a
// user replay exactly what a tool did and when.
type TraceEvent struct {
	T      Time
	Kind   string // "spawn", "wake", "park", "exit", "event"
	Proc   string
	Detail string
}

// TraceFunc receives trace events as they occur. It must not call back
// into the engine.
type TraceFunc func(TraceEvent)

type parkSignal struct {
	p      *Proc
	exited bool
}

type event struct {
	t    Time
	seq  uint64
	name string
	fn   func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	parkCh chan parkSignal
	procs  []*Proc
	trace  TraceFunc
	fatal  error
	ran    bool
}

// NewEngine returns an engine at virtual time zero with an empty event
// queue.
func NewEngine() *Engine {
	return &Engine{parkCh: make(chan parkSignal)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs fn as the trace sink. A nil fn disables tracing.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

func (e *Engine) emit(kind, proc, detail string) {
	if e.trace != nil {
		e.trace(TraceEvent{T: e.now, Kind: kind, Proc: proc, Detail: detail})
	}
}

// At schedules fn to run at virtual time t (or now, if t is in the past).
// fn runs in engine context: it must not block, but it may schedule
// further events and unpark processes.
func (e *Engine) At(t Time, name string, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(&event{t: t, seq: e.seq, name: name, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, name string, fn func()) {
	e.At(e.now.Add(d), name, fn)
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine (i.e. from within the function passed to Spawn)
// unless documented otherwise.
type Proc struct {
	name   string
	eng    *Engine
	resume chan struct{}
	parked bool
	reason string
	daemon bool
	killed bool
	exited bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on. Safe to call from
// anywhere.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// SetDaemon marks the process as a daemon: it is expected to still be
// blocked when the simulation ends (e.g. a message-routing daemon waiting
// for traffic) and does not trigger deadlock detection.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. It may be called before Run or from within
// a running process or event.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{name: name, eng: e, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killedPanic); !ok && e.fatal == nil {
					e.fatal = &PanicError{Proc: p.name, Value: r}
				}
			}
			p.exited = true
			e.parkCh <- parkSignal{p: p, exited: true}
		}()
		if p.killed {
			panic(killedPanic{})
		}
		fn(p)
	}()
	e.At(e.now, "start:"+name, func() {
		e.emit("spawn", name, "")
		e.runProc(p)
	})
	return p
}

// runProc transfers control to p and waits until it parks or exits.
func (e *Engine) runProc(p *Proc) {
	if p.exited {
		return
	}
	p.parked = false
	p.resume <- struct{}{}
	sig := <-e.parkCh
	if sig.exited {
		e.emit("exit", p.name, "")
	}
}

// park blocks the calling process until the engine resumes it.
func (p *Proc) park(reason string) {
	p.reason = reason
	p.parked = true
	p.eng.emit("park", p.name, reason)
	p.eng.parkCh <- parkSignal{p: p}
	<-p.resume
	if p.killed {
		panic(killedPanic{})
	}
	p.eng.emit("wake", p.name, reason)
}

// Park blocks the process until another event calls Engine.Unpark on it.
// reason is reported in deadlock diagnostics and traces.
func (p *Proc) Park(reason string) { p.park(reason) }

// Sleep advances the process's local time by d, yielding to other
// processes in the meantime. Sleeping for a non-positive duration still
// yields (it schedules a wake at the current time, after already-queued
// events at this timestamp).
func (p *Proc) Sleep(d time.Duration) {
	e := p.eng
	e.At(e.now.Add(d), "wake:"+p.name, func() { e.runProc(p) })
	p.park("sleep")
}

// SleepUntil blocks the process until virtual time t (a no-op yield if t
// is not in the future).
func (p *Proc) SleepUntil(t Time) {
	e := p.eng
	e.At(t, "wake:"+p.name, func() { e.runProc(p) })
	p.park("sleep-until")
}

// Unpark schedules p to resume at the current virtual time. It is the
// counterpart of Proc.Park and may be called from event handlers or other
// processes. Unparking a process that is not parked is a no-op (the wake
// event finds it running or exited and does nothing harmful).
func (e *Engine) Unpark(p *Proc) {
	e.At(e.now, "unpark:"+p.name, func() {
		if p.parked && !p.exited {
			e.runProc(p)
		}
	})
}

// Run executes events until the queue is empty, then shuts down any
// still-blocked processes. It returns a *DeadlockError if non-daemon
// processes were still blocked, a *PanicError if a process panicked, and
// nil otherwise. Run may be called only once per engine.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("sim: engine already ran")
	}
	e.ran = true
	for e.queue.Len() > 0 && e.fatal == nil {
		ev := e.queue.pop()
		e.now = ev.t
		e.emit("event", "", ev.name)
		ev.fn()
	}
	var blocked []string
	for _, p := range e.procs {
		if p.parked && !p.exited && !p.daemon {
			blocked = append(blocked, p.name+" ("+p.reason+")")
		}
	}
	sort.Strings(blocked)
	// Kill every parked process, daemon or not, so no goroutines leak.
	for _, p := range e.procs {
		if p.parked && !p.exited {
			p.killed = true
			p.parked = false
			p.resume <- struct{}{}
			<-e.parkCh
		}
	}
	if e.fatal != nil {
		return e.fatal
	}
	if len(blocked) > 0 {
		return &DeadlockError{At: e.now, Blocked: blocked}
	}
	return nil
}
