package sim

import (
	"reflect"
	"testing"
	"time"
)

// The engine's zero-alloc guarantee: once the free list and queue are
// warm, scheduling and dispatching wake-class events (Sleep, Unpark)
// allocates nothing per event. These budgets are deliberately far below
// one allocation per event — if the fast path regresses to even a single
// alloc per Sleep, the measured count jumps by thousands.

func TestSleepSteadyStateZeroAlloc(t *testing.T) {
	const (
		procs  = 4
		sleeps = 2000
	)
	e := NewEngine()
	storm := func() {
		runStorm(t, e, procs, sleeps)
		e.Reset()
	}
	storm() // warm the free list and heap storage
	avg := testing.AllocsPerRun(5, storm)
	// The per-run fixed cost is the 4 Spawns (Proc, channel, goroutine);
	// the 8000 Sleep events must contribute zero.
	if avg > 100 {
		t.Fatalf("sleep storm allocated %.0f objects per run (budget 100 for %d events): the zero-alloc fast path regressed",
			avg, procs*sleeps)
	}
}

func TestUnparkSteadyStateZeroAlloc(t *testing.T) {
	const (
		waiters = 8
		rounds  = 1000
	)
	e := NewEngine()
	fanout := func() {
		runFanout(t, e, waiters, rounds)
		e.Reset()
	}
	fanout()
	avg := testing.AllocsPerRun(5, fanout)
	if avg > 100 {
		t.Fatalf("unpark fanout allocated %.0f objects per run (budget 100 for %d wakes): the zero-alloc fast path regressed",
			avg, waiters*rounds)
	}
}

func TestAtCallSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	sink := 0
	bump := func(any) { sink++ }
	flood := func() {
		for k := 0; k < 5000; k++ {
			e.AtCall(Time(k%97)*Time(time.Microsecond), "flood", bump, nil)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Reset()
	}
	flood()
	avg := testing.AllocsPerRun(5, flood)
	if avg > 50 {
		t.Fatalf("AtCall flood allocated %.0f objects per run (budget 50 for 5000 events): the closure-free path regressed", avg)
	}
}

// traceOf runs a canonical mixed workload (sleeps, parks, unparks,
// events, an exiting child) on e and returns its full trace.
func traceOf(t *testing.T, e *Engine) []TraceEvent {
	t.Helper()
	var tr []TraceEvent
	e.SetTrace(func(ev TraceEvent) { tr = append(tr, ev) })
	var q WaitQ
	e.Spawn("sleeper", func(p *Proc) {
		for k := 0; k < 3; k++ {
			p.Sleep(time.Duration(k+1) * time.Millisecond)
		}
	})
	e.Spawn("waiter", func(p *Proc) {
		q.Wait(p, "queued")
		p.Sleep(time.Millisecond)
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		e.Spawn("child", func(c *Proc) { c.Sleep(time.Microsecond) })
		q.WakeAll()
	})
	e.At(Time(5*time.Millisecond), "checkpoint", func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestResetReuseIsDeterministic is the engine-pooling guarantee: a reset
// engine must replay a workload with a bit-identical trace, as if it
// were freshly constructed.
func TestResetReuseIsDeterministic(t *testing.T) {
	fresh := traceOf(t, NewEngine())
	e := NewEngine()
	first := traceOf(t, e)
	e.Reset()
	second := traceOf(t, e)
	if !reflect.DeepEqual(fresh, first) {
		t.Fatal("two fresh engines produced different traces")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reset engine replayed differently:\nfirst  %v\nsecond %v", first, second)
	}
}

func TestResetAllowsRunAgain(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run without Reset succeeded, want error")
	}
	e.Reset()
	ran := false
	e.Spawn("again", func(p *Proc) { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if !ran {
		t.Fatal("process did not run after Reset")
	}
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		e := AcquireEngine()
		if e.Now() != 0 {
			t.Fatalf("acquired engine at t=%v, want 0", e.Now())
		}
		n := 0
		e.Spawn("w", func(p *Proc) {
			p.Sleep(time.Millisecond)
			n++
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("n = %d, want 1", n)
		}
		e.Release()
	}
}

func TestAtCallRunsWithArgument(t *testing.T) {
	e := NewEngine()
	got := ""
	e.AtCall(Time(time.Millisecond), "call", func(arg any) { got = arg.(string) }, "payload")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("AtCall arg = %q, want %q", got, "payload")
	}
}
