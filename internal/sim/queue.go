package sim

// eventHeap is a binary min-heap of events ordered by (time, sequence).
// It is hand-rolled rather than using container/heap to avoid the
// interface boxing overhead on the simulation hot path. It stores
// pointers to engine-owned events; dispatched events return to the
// engine's free list, so steady-state scheduling allocates nothing.
type eventHeap struct {
	es []*event
}

func (h *eventHeap) Len() int { return len(h.es) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.es[i], h.es[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	h.es = append(h.es, ev)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es[last] = nil
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.es) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.es) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
	return top
}
