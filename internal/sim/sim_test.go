package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		p.Sleep(2 * time.Millisecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := Time(5 * time.Millisecond); end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestEventOrderingByTimeThenSeq(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(Time(2*time.Second), "b", func() { got = append(got, "b") })
	e.At(Time(1*time.Second), "a", func() { got = append(got, "a") })
	e.At(Time(2*time.Second), "c", func() { got = append(got, "c") }) // same time as b, later seq
	e.At(Time(3*time.Second), "d", func() { got = append(got, "d") })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestInterleavingIsRoundRobinByWakeTime(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("p%d", i)
			d := time.Duration(i+1) * time.Millisecond
			e.Spawn(name, func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%v", name, p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\nfirst  %v\nsecond %v", i, first, again)
		}
	}
}

func TestDeterministicTraceAcrossRuns(t *testing.T) {
	run := func(seed int64) []TraceEvent {
		e := NewEngine()
		var tr []TraceEvent
		e.SetTrace(func(ev TraceEvent) { tr = append(tr, ev) })
		rng := rand.New(rand.NewSource(seed))
		delays := make([]time.Duration, 20)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
		}
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.Sleep(delays[i*5+k])
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return tr
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) {
		p.Park("waiting for a message that never comes")
	})
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("Blocked = %v, want exactly one entry", dl.Blocked)
	}
}

func TestDaemonDoesNotTriggerDeadlock(t *testing.T) {
	e := NewEngine()
	e.Spawn("daemon", func(p *Proc) {
		p.SetDaemon(true)
		p.Park("idle routing loop")
	})
	e.Spawn("worker", func(p *Proc) {
		p.Sleep(time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run = %v, want nil (daemon may stay parked)", err)
	}
}

func TestUnparkResumesProcess(t *testing.T) {
	e := NewEngine()
	var parked *Proc
	var resumedAt Time
	parked = e.Spawn("sleeper", func(p *Proc) {
		p.Park("until poked")
		resumedAt = p.Now()
	})
	e.Spawn("poker", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		e.Unpark(parked)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := Time(7 * time.Millisecond); resumedAt != want {
		t.Fatalf("resumedAt = %v, want %v", resumedAt, want)
	}
}

func TestPanicInProcessSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want PanicError", err)
	}
	if pe.Proc != "bomb" {
		t.Fatalf("Proc = %q, want bomb", pe.Proc)
	}
}

func TestWaitQWakeOneIsFIFO(t *testing.T) {
	e := NewEngine()
	var q WaitQ
	var order []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		d := time.Duration(i) * time.Millisecond
		e.Spawn(name, func(p *Proc) {
			p.Sleep(d) // deterministic arrival order w0, w1, w2
			q.Wait(p, "queued")
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			q.WakeOne()
			p.Sleep(time.Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w0", "w1", "w2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
}

func TestWaitQWakeAll(t *testing.T) {
	e := NewEngine()
	var q WaitQ
	woke := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p, "barrier")
			woke++
		})
	}
	e.Spawn("releaser", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestNoGoroutineLeakAfterRun(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := NewEngine()
		e.Spawn("daemon", func(p *Proc) {
			p.SetDaemon(true)
			p.Park("forever")
		})
		e.Spawn("worker", func(p *Proc) { p.Sleep(time.Millisecond) })
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	// Give the killed goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(5 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child process never ran")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestTimeAddClamping(t *testing.T) {
	if got := Time(5).Add(-100 * time.Nanosecond); got != 0 {
		t.Fatalf("negative result = %v, want clamp to 0", got)
	}
	if got := Time(10).Add(5 * time.Nanosecond); got != 15 {
		t.Fatalf("Add = %v, want 15", got)
	}
}

// Property: for any set of random sleeps, trace event times are
// monotonically non-decreasing (virtual time never runs backwards).
func TestPropertyTraceTimesMonotonic(t *testing.T) {
	prop := func(seed int64, nProcsRaw uint8) bool {
		nProcs := int(nProcsRaw%5) + 1
		e := NewEngine()
		var last Time
		ok := true
		e.SetTrace(func(ev TraceEvent) {
			if ev.T < last {
				ok = false
			}
			last = ev.T
		})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nProcs; i++ {
			n := rng.Intn(10) + 1
			ds := make([]time.Duration, n)
			for k := range ds {
				ds[k] = time.Duration(rng.Intn(5000)) * time.Microsecond
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range ds {
					p.Sleep(d)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled at time t never observe Engine.Now() != t.
func TestPropertyEventSeesItsOwnTime(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine()
		ok := true
		for _, off := range offsets {
			at := Time(off) * Time(time.Microsecond)
			e.At(at, "check", func() {
				if e.Now() != at {
					ok = false
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var want []int64
	for i := 0; i < 500; i++ {
		tm := Time(rng.Intn(1000))
		h.push(&event{t: tm, seq: uint64(i)})
		want = append(want, int64(tm))
	}
	var prev *event
	for h.Len() > 0 {
		ev := h.pop()
		if prev != nil {
			if ev.t < prev.t || (ev.t == prev.t && ev.seq < prev.seq) {
				t.Fatalf("heap order violated: (%v,%d) after (%v,%d)", ev.t, ev.seq, prev.t, prev.seq)
			}
		}
		prev = ev
	}
	_ = want
}

// TestParkFromDeferDuringShutdown: a process whose deferred cleanup
// parks again while the shutdown kill is unwinding it must not strand
// Run — the park keeps unwinding instead of waiting for a resume that
// can never come.
func TestParkFromDeferDuringShutdown(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		e := NewEngine()
		e.Spawn("cleanup-parker", func(p *Proc) {
			defer p.Sleep(time.Millisecond) // parks during the kill unwind
			p.Park("waiting forever")
		})
		done <- e.Run()
	}()
	select {
	case err := <-done:
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("Run = %v, want DeadlockError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung: shutdown kill deadlocked on a parking defer")
	}
}
