package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestStressManyProcesses runs hundreds of interleaving processes to
// validate the one-runnable-at-a-time scheduler at scale.
func TestStressManyProcesses(t *testing.T) {
	const nProcs = 400
	e := NewEngine()
	rng := rand.New(rand.NewSource(99))
	var total int64
	for i := 0; i < nProcs; i++ {
		sleeps := make([]time.Duration, 20)
		for k := range sleeps {
			sleeps[k] = time.Duration(rng.Intn(10000)) * time.Microsecond
		}
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for _, d := range sleeps {
				p.Sleep(d)
				total++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != nProcs*20 {
		t.Fatalf("total = %d, want %d", total, nProcs*20)
	}
}

// TestStressProducerConsumerChains wires processes into chains passing
// wakeups down the line; the last process must observe all rounds.
func TestStressProducerConsumerChains(t *testing.T) {
	const (
		chainLen = 50
		rounds   = 30
	)
	e := NewEngine()
	queues := make([]*WaitQ, chainLen+1)
	counts := make([]int, chainLen+1)
	for i := range queues {
		queues[i] = &WaitQ{}
	}
	for i := 0; i < chainLen; i++ {
		i := i
		e.Spawn(fmt.Sprintf("link%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				queues[i].Wait(p, "chain")
				counts[i]++
				p.Sleep(time.Microsecond)
				queues[i+1].WakeAll()
			}
		})
	}
	var sink int
	e.Spawn("sink", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			queues[chainLen].Wait(p, "sink")
			sink++
		}
	})
	e.Spawn("driver", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Sleep(time.Millisecond)
			queues[0].WakeAll()
			// Give the chain time to drain before the next pulse.
			p.Sleep(time.Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink != rounds {
		t.Fatalf("sink saw %d rounds, want %d", sink, rounds)
	}
	for i, c := range counts[:chainLen] {
		if c != rounds {
			t.Fatalf("link %d fired %d times, want %d", i, c, rounds)
		}
	}
}

// TestStressEventFlood schedules a large batch of bare events and checks
// monotonic execution.
func TestStressEventFlood(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	var last Time
	fired := 0
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(1_000_000)) * Time(time.Microsecond)
		e.At(at, "flood", func() {
			if e.Now() < last {
				t.Error("time ran backwards")
			}
			last = e.Now()
			fired++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
}
