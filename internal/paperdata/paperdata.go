// Package paperdata embeds the numbers the paper reports, used by the
// harness to print paper-vs-measured comparisons (EXPERIMENTS.md) and by
// the shape tests that assert the qualitative claims hold in the
// reproduction.
package paperdata

// Table3SizesKB are the message sizes of Table 3 in Kbytes.
var Table3SizesKB = []int{0, 1, 2, 4, 8, 16, 32, 64}

// Table3 holds the snd/recv round-trip times of Table 3 in milliseconds,
// indexed [tool][network][size index]. Networks: "ethernet" (SUN ELC,
// shared 10 Mbit/s), "atm-lan" (SUN IPX, FORE switch), "atm-wan"
// (SUN IPX, NYNET). Express has no atm-wan column (no NYNET port).
var Table3 = map[string]map[string][]float64{
	"pvm": {
		"ethernet": {9.655, 11.693, 14.306, 25.537, 44.392, 61.096, 109.844, 189.120},
		"atm-lan":  {7.991, 8.678, 9.896, 13.673, 18.574, 27.365, 48.028, 88.176},
		"atm-wan":  {7.764, 8.878, 10.105, 14.665, 19.526, 28.679, 53.320, 91.353},
	},
	"p4": {
		"ethernet": {3.199, 3.599, 4.399, 9.332, 24.165, 44.164, 98.996, 173.158},
		"atm-lan":  {2.966, 3.393, 3.748, 4.404, 6.482, 11.191, 19.104, 35.899},
		"atm-wan":  {3.636, 4.168, 4.822, 5.069, 7.459, 13.573, 22.254, 41.725},
	},
	"express": {
		"ethernet": {4.807, 10.375, 18.362, 32.669, 59.166, 111.411, 189.760, 311.700},
		"atm-lan":  {4.152, 7.240, 11.061, 16.990, 27.047, 46.003, 82.566, 153.970},
	},
}

// Table3PlatformKey maps Table 3 network labels to platform catalog keys.
var Table3PlatformKey = map[string]string{
	"ethernet": "sun-ethernet",
	"atm-lan":  "sun-atm-lan",
	"atm-wan":  "sun-atm-wan",
}

// Table4 holds the per-primitive tool rankings of Table 4 (fastest
// first), by platform key.
var Table4 = map[string]map[string][]string{
	"sun-ethernet": {
		"send/receive": {"p4", "pvm", "express"},
		"broadcast":    {"p4", "pvm", "express"},
		"ring":         {"p4", "express", "pvm"},
		"global sum":   {"p4", "express"}, // PVM not available
	},
	"sun-atm-wan": {
		"send/receive": {"p4", "pvm"}, // Express ranked via ATM LAN only
		"broadcast":    {"p4", "pvm"},
		"ring":         {"p4", "pvm"},
	},
	"sun-atm-lan": {
		"send/receive": {"p4", "pvm", "express"},
	},
}

// ADLRating is a usability rating from §3.3.1: NS (not supported), PS
// (partially supported), WS (well supported).
type ADLRating string

// The three rating levels of the usability matrix.
const (
	NS ADLRating = "NS"
	PS ADLRating = "PS"
	WS ADLRating = "WS"
)

// ADLCriteria lists the §2.3 criteria in the order of the usability
// table.
var ADLCriteria = []string{
	"Programming Models Supported",
	"Language Interface",
	"Ease of Programming",
	"Debugging Support",
	"Customization",
	"Error Handling",
	"Run-Time Interface",
	"Integration with other Software Systems",
	"Portability",
}

// ADLMatrix is the paper's usability assessment, [criterion][tool].
var ADLMatrix = map[string]map[string]ADLRating{
	"Programming Models Supported":            {"p4": WS, "pvm": WS, "express": WS},
	"Language Interface":                      {"p4": WS, "pvm": WS, "express": WS},
	"Ease of Programming":                     {"p4": PS, "pvm": WS, "express": PS},
	"Debugging Support":                       {"p4": PS, "pvm": PS, "express": WS},
	"Customization":                           {"p4": PS, "pvm": NS, "express": PS},
	"Error Handling":                          {"p4": PS, "pvm": PS, "express": PS},
	"Run-Time Interface":                      {"p4": PS, "pvm": WS, "express": WS},
	"Integration with other Software Systems": {"p4": PS, "pvm": WS, "express": NS},
	"Portability":                             {"p4": WS, "pvm": WS, "express": WS},
}

// SuiteTable2 reproduces Table 2: the SU PDABS application classes.
var SuiteTable2 = map[string][]string{
	"Numerical Algorithms":    {"Fast Fourier Transform", "LU Decomposition", "Linear Equation Solver", "Matrix Multiplication", "Cryptology"},
	"Signal/Image Processing": {"JPEG Compression", "Hough Transform", "Ray Tracing", "Data Compression"},
	"Simulation/Optimization": {"N-body Simulation", "Monte Carlo Integration", "Traveling Salesman", "Branch and Bound"},
	"Utilities":               {"ADA Compiler", "Parallel Sorting", "Parallel Search", "Distributed Spell Checker", "Distributed Make"},
}

// APLApps are the four applications benchmarked in §3.3.
var APLApps = []string{"jpeg", "fft2d", "montecarlo", "psrs"}

// APLPlatforms maps each APL figure to its platform key and processor
// sweep.
var APLPlatforms = []struct {
	Figure   string
	Platform string
	MaxProcs int
	Tools    []string
}{
	{"fig5", "alpha-fddi", 8, []string{"p4", "pvm", "express"}},
	{"fig6", "sp1-switch", 8, []string{"p4", "pvm", "express"}},
	{"fig7", "sun-atm-wan", 4, []string{"p4", "pvm"}},
	{"fig8", "sun-ethernet", 8, []string{"p4", "pvm", "express"}},
}

// APLSingleProcSeconds anchors the single-processor execution times read
// off Figures 5-8 (approximate — the paper publishes plots, not tables).
// Indexed [figure][app] in seconds. Used for order-of-magnitude
// comparison in EXPERIMENTS.md, not for strict assertions.
var APLSingleProcSeconds = map[string]map[string]float64{
	"fig5": {"fft2d": 0.013, "jpeg": 4.3, "montecarlo": 1.7, "psrs": 0.80},
	"fig6": {"fft2d": 0.028, "jpeg": 9.5, "montecarlo": 2.8, "psrs": 2.0},
	"fig7": {"fft2d": 0.022, "jpeg": 21.0, "montecarlo": 7.5, "psrs": 5.0},
	"fig8": {"fft2d": 0.30, "jpeg": 38.0, "montecarlo": 9.5, "psrs": 9.0},
}
