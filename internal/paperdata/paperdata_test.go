package paperdata

import "testing"

func TestTable3Shape(t *testing.T) {
	for tool, nets := range Table3 {
		for net, times := range nets {
			if len(times) != len(Table3SizesKB) {
				t.Fatalf("%s/%s has %d entries, want %d", tool, net, len(times), len(Table3SizesKB))
			}
			for i := 1; i < len(times); i++ {
				if times[i] < times[i-1] {
					// The paper's own data is monotone per curve.
					t.Fatalf("%s/%s: paper data decreases at index %d", tool, net, i)
				}
			}
		}
	}
	if _, ok := Table3["express"]["atm-wan"]; ok {
		t.Fatal("Express has no NYNET column in Table 3")
	}
}

func TestTable3EncodesPaperOrderings(t *testing.T) {
	// p4 fastest at every size on every network it shares with others.
	for _, net := range []string{"ethernet", "atm-lan"} {
		for i := range Table3SizesKB {
			p4 := Table3["p4"][net][i]
			if Table3["pvm"][net][i] <= p4 {
				t.Fatalf("%s@%dKB: paper says p4 < pvm", net, Table3SizesKB[i])
			}
			if Table3["express"][net][i] <= p4 {
				t.Fatalf("%s@%dKB: paper says p4 < express", net, Table3SizesKB[i])
			}
		}
	}
	// The Express/PVM crossover: Express ahead at 0KB on ATM, behind at 64KB.
	if !(Table3["express"]["atm-lan"][0] < Table3["pvm"]["atm-lan"][0]) {
		t.Fatal("paper: Express beats PVM at small sizes on ATM")
	}
	if !(Table3["express"]["atm-lan"][7] > Table3["pvm"]["atm-lan"][7]) {
		t.Fatal("paper: PVM beats Express at 64KB on ATM")
	}
}

func TestTable4RingInversion(t *testing.T) {
	ring := Table4["sun-ethernet"]["ring"]
	if len(ring) != 3 || ring[0] != "p4" || ring[1] != "express" || ring[2] != "pvm" {
		t.Fatalf("Table 4 ring column = %v, want [p4 express pvm]", ring)
	}
	gs := Table4["sun-ethernet"]["global sum"]
	if len(gs) != 2 {
		t.Fatalf("global sum must have 2 entries (PVM n/a): %v", gs)
	}
}

func TestADLMatrixComplete(t *testing.T) {
	for _, criterion := range ADLCriteria {
		row, ok := ADLMatrix[criterion]
		if !ok {
			t.Fatalf("criterion %q missing from matrix", criterion)
		}
		for _, tool := range []string{"p4", "pvm", "express"} {
			if _, ok := row[tool]; !ok {
				t.Fatalf("%s has no rating for %s", criterion, tool)
			}
		}
	}
}

func TestSuiteTable2HasAllClasses(t *testing.T) {
	if len(SuiteTable2) != 4 {
		t.Fatalf("Table 2 has %d classes, want 4", len(SuiteTable2))
	}
	total := 0
	for _, apps := range SuiteTable2 {
		total += len(apps)
	}
	if total != 18 {
		t.Fatalf("Table 2 lists %d applications, want 18", total)
	}
}

func TestAPLPlatformsConsistent(t *testing.T) {
	if len(APLPlatforms) != 4 {
		t.Fatalf("APL covers %d figures, want 4 (Figs 5-8)", len(APLPlatforms))
	}
	for _, spec := range APLPlatforms {
		anchors, ok := APLSingleProcSeconds[spec.Figure]
		if !ok {
			t.Fatalf("%s has no single-proc anchors", spec.Figure)
		}
		for _, app := range APLApps {
			if anchors[app] <= 0 {
				t.Fatalf("%s/%s anchor missing", spec.Figure, app)
			}
		}
	}
}
