package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tooleval/internal/lint"
)

// TestToolvetCleanOverTree is the smoke test behind the CI gate: the
// full suite over the whole module must exit 0. A regression here means
// either new code broke an invariant or an analyzer grew a false
// positive — both block merges, which is the point.
func TestToolvetCleanOverTree(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := lint.Main([]string{"-C", root, "./..."}, &stdout, &stderr, lint.Analyzers())
	if code != 0 {
		t.Fatalf("toolvet over %s exited %d\nstdout:\n%s\nstderr:\n%s", root, code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestMainReportsFindings pins the driver contract end to end on a
// scratch module: findings print as path:line:col with the analyzer
// name, and the exit status is 1 so CI fails the merge.
func TestMainReportsFindings(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.23\n")
	write(t, filepath.Join(dir, "scratch.go"), `package scratch

import "errors"

var ErrNope = errors.New("nope")

func check(err error) bool {
	return err == ErrNope
}

func fan(jobs []int) {
	for range jobs {
		go func() {}()
	}
}
`)
	var stdout, stderr bytes.Buffer
	code := lint.Main([]string{"-C", dir, "./..."}, &stdout, &stderr, lint.Analyzers())
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, wantLine := range []string{
		"scratch.go:8:9: comparing error with == ErrNope",
		"(errastype)",
		"scratch.go:13:3: goroutine started per iteration",
		"(boundedgo)",
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("output missing %q:\n%s", wantLine, out)
		}
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr.String())
	}
}

// TestMainSuppressionsApply pins that an ignore directive with a reason
// flips the same module to exit 0.
func TestMainSuppressionsApply(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.23\n")
	write(t, filepath.Join(dir, "scratch.go"), `package scratch

import "errors"

var ErrNope = errors.New("nope")

func check(err error) bool {
	//toolvet:ignore errastype identity latch; never wrapped
	return err == ErrNope
}
`)
	var stdout, stderr bytes.Buffer
	if code := lint.Main([]string{"-C", dir, "./..."}, &stdout, &stderr, lint.Analyzers()); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestMainUnknownFlag pins usage errors to exit 2, distinct from
// findings.
func TestMainUnknownFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := lint.Main([]string{"-no-such-flag"}, &stdout, &stderr, lint.Analyzers()); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
