// Package lint is toolvet's analysis framework: a small, dependency-free
// re-statement of the golang.org/x/tools/go/analysis surface, built
// directly on go/ast and go/types so the checker ships inside the module
// and moves in lockstep with the code it guards.
//
// The analyzers encode this repository's determinism and error-contract
// invariants — the bug families the project has actually shipped — as
// machine-checkable rules:
//
//   - detwalltime: no wall-clock or unseeded randomness inside
//     determinism-critical packages (the virtual clock is the only time
//     source a simulation may observe).
//   - sortedrange: no map iteration feeding an io.Writer, a float
//     accumulator, or a later-emitted slice without an intervening sort
//     (the PR 2 overall-score nondeterminism).
//   - errastype: errors.As / errors.Is instead of bare type assertions,
//     type switches, or == on typed and sentinel errors (the PR 6
//     *QuotaError observer miss).
//   - boundedgo: no unbounded goroutine-per-item fan-out in loops
//     without a worker-pool or semaphore idiom (the PR 6 Map explosion).
//
// A finding is suppressed by a directive comment on the flagged line or
// the line directly above it:
//
//	//toolvet:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named invariant check. Mirrors the
// x/tools/go/analysis shape so the checks port mechanically if the repo
// ever takes the real dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //toolvet:ignore directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Flags holds analyzer-specific configuration; the driver exposes
	// each flag as -<name>.<flag>.
	Flags flag.FlagSet
	// Run reports findings for one package through pass.Report.
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is shorthand for the type of an expression, nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, nil if unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Analyzers returns a fresh instance of the full toolvet suite. Fresh:
// analyzer flags are mutable configuration, so shared singletons would
// let one caller's Set leak into another's run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDetWallTime(),
		NewSortedRange(),
		NewErrAsType(),
		NewBoundedGo(),
	}
}

// Check runs one analyzer over one loaded package and returns its
// findings after //toolvet:ignore suppression — the single-analyzer
// slice of what the driver does, exported for linttest.
func Check(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, err := runAnalyzer(a, pkg)
	if err != nil {
		return nil, err
	}
	return applySuppressions(pkg, diags, map[string]bool{a.Name: true, "toolvet": true}), nil
}

// runAnalyzer applies a to pkg and returns its findings sorted by
// position. Analyzer output order must itself be deterministic — the
// tool that checks determinism cannot be flaky.
func runAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// inspectWithStack walks every file calling fn with the node and the
// stack of its ancestors (outermost first, n excluded). Returning false
// from fn prunes the subtree.
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// enclosingFuncName names the innermost function declaration on the
// stack as it appears in allowlists: "Func" for package functions,
// "Recv.Method" for methods (pointer receivers spelled without the
// star). Empty outside any declaration.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
				name = recv + "." + name
			}
		}
		return name
	}
	return ""
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
