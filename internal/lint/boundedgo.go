package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewBoundedGo builds the boundedgo analyzer: a `go` statement inside a
// loop is a goroutine-per-item fan-out unless something visibly bounds
// it. PR 6's Map spawned one goroutine per sweep index — thousands of
// runnable goroutines for a bound of eight workers — and the fix
// (a counted worker loop drawing indices from a shared atomic counter)
// is precisely the shape this analyzer recognizes as legal.
//
// A `go` statement lexically inside a for/range statement (in the same
// function literal) is flagged unless one of the bounded idioms holds:
//
//   - worker-pool loop: a counted loop (`for i := 0; i < bound; i++` or
//     `for range bound`) whose bound is a compile-time constant or an
//     identifier named like a concurrency bound (worker, parallel,
//     shard, stripe, pool, conc, cpu, thread, slot, sem, limit) — the
//     loop count is the concurrency, not the data size.
//   - semaphore acquire: a channel send or receive executed in the loop
//     body before the `go` statement (outside the spawned function) —
//     `sem <- struct{}{}` / `<-tokens` gate each spawn.
//
// Intentional data-sized fan-out (e.g. one producer goroutine per
// submitted spec, each parked on its own buffered slot) is suppressed
// with //toolvet:ignore boundedgo <reason>.
func NewBoundedGo() *Analyzer {
	a := &Analyzer{
		Name: "boundedgo",
		Doc:  "forbid unbounded goroutine-per-item fan-out in loops without a worker-pool or semaphore idiom",
	}
	a.Run = func(pass *Pass) error {
		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loop := enclosingLoop(stack)
			if loop == nil {
				return true
			}
			if boundedCountedLoop(pass, loop) || semaphoreBefore(loop, gs) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine started per iteration of an unbounded loop: bound the fan-out with a worker pool or a semaphore acquired before go (PR 6 Map bug shape)")
			return true
		})
		return nil
	}
	return a
}

// enclosingLoop returns the innermost for/range statement containing
// the go statement within the same function; crossing a function
// literal boundary means the loop (if any) spawns nothing directly.
func enclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt:
			return n
		case *ast.RangeStmt:
			return n
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// boundedCountedLoop recognizes the worker-pool shape: the loop count
// is a concurrency bound, not the size of the incoming data.
func boundedCountedLoop(pass *Pass, loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.ForStmt:
		bin, ok := l.Cond.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.LSS && bin.Op != token.LEQ) {
			return false
		}
		return boundExpr(pass, bin.Y)
	case *ast.RangeStmt:
		// Go 1.22 `for range n` over an integer.
		if t := pass.TypeOf(l.X); t != nil {
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				return boundExpr(pass, l.X)
			}
		}
	}
	return false
}

// boundExpr reports whether e reads as a concurrency bound: a constant,
// or a name that says it is one.
func boundExpr(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant bound
	}
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// min(workers, n) and friends: any bound-named argument bounds
		// the result.
		for _, arg := range e.Args {
			if boundExpr(pass, arg) {
				return true
			}
		}
		return false
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, marker := range []string{"worker", "parallel", "shard", "stripe", "pool", "conc", "cpu", "thread", "slot", "sem", "limit"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// semaphoreBefore reports whether a channel operation gates the spawn:
// a send or receive in the loop body, positioned before the go
// statement and not inside the spawned function literal (blocking
// inside the goroutine still admits unbounded goroutines — the PR 6
// failure mode — so it does not count).
func semaphoreBefore(loop ast.Stmt, gs *ast.GoStmt) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n == ast.Node(gs) {
			return false // don't descend into the spawned function
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if n.End() <= gs.Pos() {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && n.End() <= gs.Pos() {
				found = true
			}
		}
		return !found
	})
	return found
}
