package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one type-checked, non-test package ready for analysis.
// Only GoFiles are loaded: the determinism and error contracts bind
// production code; tests exercise wall-clock deadlines and goroutine
// storms on purpose.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load type-checks every package matching patterns under dir and
// returns them in `go list` order (dependencies first). It shells out
// to `go list -export -deps -json`, which compiles export data for the
// whole dependency graph, then re-parses only the target packages'
// sources and type-checks them against that export data — the same
// two-phase shape as x/tools/go/packages, restated on the standard
// library so toolvet needs no module dependencies.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files outside any
// module — the shape of a testdata fixture. Imports are resolved by
// asking `go list` for export data of exactly the packages the fixture
// files mention (fixtures import only the standard library).
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path != "C" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		// go list order is deterministic given sorted patterns; the map
		// itself is keyed by path so fill order is irrelevant.
		sort.Strings(patterns)
		pkgs, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	name := files[0].Name.Name
	return checkParsed(fset, exportImporter(fset, exports), name, dir, files)
}

func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data recorded by
// `go list -export`, so type-checking a target never re-parses its
// dependencies.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkParsed(fset, imp, pkgPath, dir, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
