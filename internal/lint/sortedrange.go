package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewSortedRange builds the sortedrange analyzer: iteration order over a
// Go map is deliberately randomized, so a `range` over a map may not
// feed anything order-sensitive. This is the PR 2 bug family — overall
// scores drifted in the last float bits because level weights were
// accumulated in map order — and the same shape corrupts any io.Writer
// emission or later-emitted slice.
//
// Flagged inside a `range` over a map:
//
//   - emission: calls to fmt.Print*/Fprint* or to methods named
//     Write/WriteString/WriteByte/WriteRune (io.Writer, bytes.Buffer,
//     hash.Hash — a hash is just an accumulator with a digest).
//   - floating-point accumulation: `sum += v` (or -=, *=, /=, or
//     `sum = sum + v`) into a float variable declared outside the loop.
//     Float addition is not associative; iteration order leaks into the
//     low bits. Integer accumulation is exact and therefore legal.
//   - append to a slice (or field) declared outside the loop with no
//     subsequent sort of that slice in the enclosing function. The
//     sanctioned idiom — collect keys, sort, range the sorted slice —
//     passes because the sort call follows the loop.
func NewSortedRange() *Analyzer {
	a := &Analyzer{
		Name: "sortedrange",
		Doc:  "forbid map iteration feeding writers, float accumulators, or unsorted later-emitted slices",
	}
	a.Run = func(pass *Pass) error {
		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.X == nil {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, stack)
			return true
		})
		return nil
	}
	return a
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := emissionCall(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside range over map: iteration order is random; sort the keys and range the sorted slice", name)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, stack, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isFloatAccumulator(pass, rng, lhs) {
			pass.Reportf(as.Pos(), "floating-point accumulation in map iteration order: float addition is not associative, so the result depends on the (randomized) order; sort the keys first")
		}
	case token.ASSIGN:
		// x = x + v spelled out.
		if bin, ok := rhs.(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) {
			if sameObjectExpr(pass, lhs, bin.X) || sameObjectExpr(pass, lhs, bin.Y) {
				if isFloatAccumulator(pass, rng, lhs) {
					pass.Reportf(as.Pos(), "floating-point accumulation in map iteration order: float addition is not associative, so the result depends on the (randomized) order; sort the keys first")
					return
				}
			}
		}
		checkAppendTarget(pass, rng, stack, lhs, rhs)
	}
}

func checkAppendTarget(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, lhs, rhs ast.Expr) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass, call) {
		return
	}
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	obj := pass.ObjectOf(base)
	if obj == nil || insideNode(rng, obj.Pos()) {
		return // loop-local scratch; its order dies with the iteration
	}
	target := types.ExprString(lhs)
	if sortedAfter(pass, rng, stack, target) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s in map iteration order with no later sort in this function: the slice inherits the map's randomized order; sort %s after the loop (or range over sorted keys)", target, target)
}

// emissionCall reports whether call writes bytes somewhere
// order-sensitive: fmt's Print/Fprint families, or a Write* method (an
// io.Writer, a bytes.Buffer, a hash — all accumulate in call order).
func emissionCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return types.ExprString(sel.X) + "." + fn.Name(), true
	}
	return "", false
}

func isFloatAccumulator(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false // keyed writes (m[k] += v) hit each key once; order-free
	}
	obj := pass.ObjectOf(id)
	if obj == nil || insideNode(rng, obj.Pos()) {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func sameObjectExpr(pass *Pass, a, b ast.Expr) bool {
	ia, ok1 := a.(*ast.Ident)
	ib, ok2 := b.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	oa, ob := pass.ObjectOf(ia), pass.ObjectOf(ib)
	return oa != nil && oa == ob
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func insideNode(n ast.Node, pos token.Pos) bool {
	return pos >= n.Pos() && pos < n.End()
}

// sortedAfter reports whether a sort/slices call naming target appears
// after the range statement, in any statement list enclosing it up to
// the function boundary.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, target string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var stmts []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		default:
			continue
		}
		for _, st := range stmts {
			if st.Pos() <= rng.End() {
				continue
			}
			found := false
			ast.Inspect(st, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isSortCall(pass, call, target) {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func isSortCall(pass *Pass, call *ast.CallExpr, target string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Sort") && !strings.HasPrefix(fn.Name(), "Slice") &&
		fn.Name() != "Strings" && fn.Name() != "Ints" && fn.Name() != "Float64s" && fn.Name() != "Stable" {
		return false
	}
	for _, arg := range call.Args {
		if types.ExprString(arg) == target {
			return true
		}
	}
	return false
}
