// Package errcase is an errastype fixture: the PR 6 bug family. Typed
// errors travel wrapped (fmt.Errorf %w, errors.Join), so bare type
// assertions, type switches, and == comparisons silently stop matching
// the moment a wrapping layer appears.
package errcase

import (
	"errors"
	"fmt"
)

// QuotaError mirrors tooleval.QuotaError.
type QuotaError struct{ Resource string }

func (e *QuotaError) Error() string { return "quota exceeded: " + e.Resource }

// ErrLocked mirrors store.ErrLocked.
var ErrLocked = errors.New("store locked by another process")

// assertBare is the exact PR 6 observer miss: a wrapped *QuotaError
// never matches the assertion.
func assertBare(err error) bool {
	_, ok := err.(*QuotaError) // want `type assertion on error value: a wrapped \*QuotaError never matches; use errors\.As`
	return ok
}

// switchBare is the same miss spelled as a type switch.
func switchBare(err error) string {
	switch err.(type) {
	case *QuotaError: // want `type switch case \*QuotaError on error value: a wrapped error never matches; use errors\.As`
		return "quota"
	case nil:
		return "ok"
	default:
		return "other"
	}
}

// switchAssigned is the `switch e := err.(type)` spelling.
func switchAssigned(err error) string {
	switch e := err.(type) {
	case *QuotaError: // want `type switch case \*QuotaError on error value`
		return e.Resource
	default:
		return ""
	}
}

// compareSentinel: wrapping breaks identity.
func compareSentinel(err error) bool {
	return err == ErrLocked // want `comparing error with == ErrLocked: a wrapped sentinel never compares equal; use errors\.Is`
}

// compareSentinelNeq is the negated spelling of the same bug.
func compareSentinelNeq(err error) error {
	if err != ErrLocked { // want `comparing error with != ErrLocked`
		return err
	}
	return nil
}

// useAs is the contract: structural matching survives wrapping.
func useAs(err error) (string, bool) {
	var q *QuotaError
	if errors.As(err, &q) {
		return q.Resource, true
	}
	return "", false
}

// useIs is the sentinel contract.
func useIs(err error) bool {
	return errors.Is(err, ErrLocked)
}

// nilChecks stay legal: nil-ness is the success contract, not an
// identity match against a sentinel.
func nilChecks(err error) bool {
	return err == nil || wrap(err) != nil
}

// nonErrorAssert asserts to an interface that does not implement
// error — outside this analyzer's contract.
func nonErrorAssert(err error) bool {
	_, ok := err.(interface{ Timeout() bool })
	return ok
}

// localCompare compares two locals — no sentinel involved.
func localCompare(a, b error) bool {
	return a == b
}

// concreteUse touches the concrete type directly; nothing is asserted.
func concreteUse(q *QuotaError) string {
	return q.Resource
}

// suppressed: identity comparison on purpose (e.g. a latch that stores
// the exact error instance it handed out), reason on record.
func suppressed(err error) bool {
	//toolvet:ignore errastype latch compares the exact instance it stored; wrapping cannot occur here
	return err == ErrLocked
}

func wrap(err error) error { return fmt.Errorf("wrapped: %w", err) }
