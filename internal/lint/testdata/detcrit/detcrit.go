// Package detcrit is a detwalltime fixture: a stand-in for a
// determinism-critical package (the test sets -detwalltime.critical to
// this package's path). Virtual time and seeded randomness are legal;
// the host clock, the global generator, and process identity are not.
package detcrit

import (
	"math/rand"
	"os"
	"time"
)

// wallClock is the classic leak: measuring a simulated phase with the
// host clock.
func wallClock() time.Duration {
	start := time.Now() // want `time\.Now in determinism-critical package`
	work()
	return time.Since(start) // want `time\.Since in determinism-critical package`
}

// deadline schedules against the host clock.
func deadline(t time.Time) {
	_ = time.Until(t)           // want `time\.Until in determinism-critical package`
	<-time.After(time.Second)   // want `time\.After in determinism-critical package`
	_ = time.NewTimer(1)        // want `time\.NewTimer in determinism-critical package`
	_ = time.NewTicker(1)       // want `time\.NewTicker in determinism-critical package`
	time.AfterFunc(1, func() {}) // want `time\.AfterFunc in determinism-critical package`
}

// globalRand draws from the process-global, unseeded generator — the
// same cell evaluated twice gives two different workloads.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle in determinism-critical package`
	return rand.Intn(10)               // want `rand\.Intn in determinism-critical package`
}

// identity leaks the process id into results.
func identity() int {
	return os.Getpid() // want `os\.Getpid in determinism-critical package`
}

// seededRand is the sanctioned idiom: a per-rank source seeded from the
// cell key. Constructors and methods on *rand.Rand are legal.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// virtualTime manipulates time.Duration and time.Time values without
// observing the host clock — values are data; only the clock is banned.
func virtualTime(now time.Time, d time.Duration) time.Time {
	return now.Add(d * 2)
}

// suppressed shows the escape hatch: wall-clock on purpose, with the
// reason on record.
func suppressed() time.Time {
	//toolvet:ignore detwalltime calibration fixture: comparing host and virtual clocks is the point here
	return time.Now()
}

func work() {}
