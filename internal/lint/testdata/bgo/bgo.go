// Package bgo is a boundedgo fixture: the PR 6 Map fan-out bug — one
// goroutine per sweep index instead of one per worker — and the bounded
// idioms that stay legal.
package bgo

// perItem is the bug: goroutine count scales with the data.
func perItem(jobs []int) {
	for range jobs {
		go work() // want `goroutine started per iteration of an unbounded loop`
	}
}

// perIndex is the exact PR 6 shape: a counted loop over the input size.
func perIndex(n int) {
	for i := 0; i < n; i++ {
		go work() // want `goroutine started per iteration of an unbounded loop`
	}
}

// acquireInsideGoroutine still admits unbounded goroutines — each one
// exists (stack and all) before it blocks on the semaphore. This is
// how the PR 6 bug looked "bounded" in review.
func acquireInsideGoroutine(jobs []int, sem chan struct{}) {
	for range jobs {
		go func() { // want `goroutine started per iteration of an unbounded loop`
			sem <- struct{}{}
			defer func() { <-sem }()
			work()
		}()
	}
}

// workerPool is the PR 6 fix shape: the loop count is the concurrency
// bound, workers draw items from a shared source.
func workerPool(workers int, items chan int) {
	for w := 0; w < workers; w++ {
		go func() {
			for range items {
				work()
			}
		}()
	}
}

// cappedPool bounds through min(workers, n) — the mapIndices idiom.
func cappedPool(workers, n int) {
	for i := 0; i < min(workers, n); i++ {
		go work()
	}
}

// rangeOverBound is the Go 1.22 spelling of the worker loop.
func rangeOverBound(numWorkers int) {
	for range numWorkers {
		go work()
	}
}

// constPool is bounded by a compile-time constant.
func constPool() {
	for i := 0; i < 4; i++ {
		go work()
	}
}

// semaphoreBeforeSpawn gates each spawn: at most cap(sem) goroutines
// exist at once, because the acquire happens before the go statement.
func semaphoreBeforeSpawn(jobs []int, sem chan struct{}) {
	for range jobs {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			work()
		}()
	}
}

// tokenBeforeSpawn is the receive-shaped semaphore.
func tokenBeforeSpawn(jobs []int, tokens chan struct{}) {
	for range jobs {
		<-tokens
		go func() {
			defer func() { tokens <- struct{}{} }()
			work()
		}()
	}
}

// singleSpawn is not a fan-out.
func singleSpawn() {
	go work()
}

// suppressed: deliberate data-sized fan-out, reason on record (the
// stream.go producer-per-spec contract).
func suppressed(jobs []int) {
	for range jobs {
		//toolvet:ignore boundedgo one parked producer per job is the API contract; each blocks on its own buffered slot
		go work()
	}
}

func work() {}
