// Package detallow is the detwalltime allowlist fixture: the test
// marks this package critical but allows the call site
// "detallow:Daemon.uptime" — the daemon-uptime shape the allowlist
// exists for. The same call outside the allowed function still flags.
package detallow

import "time"

type Daemon struct{ started time.Time }

// uptime is on the allowlist: wall-clock by design, like /statsz.
func (d *Daemon) uptime() time.Duration {
	return time.Since(d.started)
}

// elapsed is not on the allowlist.
func (d *Daemon) elapsed() time.Duration {
	return time.Since(d.started) // want `time\.Since in determinism-critical package`
}

func now() time.Time {
	return time.Now() // want `time\.Now in determinism-critical package`
}
